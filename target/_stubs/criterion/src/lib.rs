//! Offline dev stub for criterion (resolution only; benches are not
//! built locally).
