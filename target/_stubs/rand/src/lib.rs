//! Offline dev stub for rand 0.9: `RngCore`, `SeedableRng`, and a
//! deterministic `StdRng` (splitmix64 — NOT the real ChaCha12 StdRng,
//! so absolute values differ from a real-rand build, but every stream
//! is deterministic in its seed, which is all the tests compare).

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for StdRng.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut first = [0u8; 8];
            first.copy_from_slice(&seed[..8]);
            StdRng {
                state: u64::from_le_bytes(first),
            }
        }
    }
}
