//! Offline dev stub (resolution only; unused by workspace code).
