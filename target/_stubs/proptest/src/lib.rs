//! Offline dev stub for proptest: the `proptest!` macro expands to
//! nothing, so property bodies neither compile nor run locally. The
//! real dependency exercises them in CI. Strategy combinators used
//! *outside* the macro (strategy-constructor helper fns) typecheck via
//! phantom strategies that carry only the value type.

use std::marker::PhantomData;

#[macro_export]
macro_rules! proptest {
    ($($t:tt)*) => {};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$({ let _ = $weight; $crate::strategy::boxed($strat) }),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$($crate::strategy::boxed($strat)),+])
    };
}

pub mod strategy {
    use super::PhantomData;

    pub trait Strategy: Sized {
        type Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, _f: F) -> BoxedStrategy<O> {
            BoxedStrategy(PhantomData)
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(
            self,
            _f: F,
        ) -> BoxedStrategy<S::Value> {
            BoxedStrategy(PhantomData)
        }

        fn boxed(self) -> BoxedStrategy<Self::Value> {
            BoxedStrategy(PhantomData)
        }
    }

    pub struct BoxedStrategy<V>(pub(crate) PhantomData<V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
    }

    pub struct Just<T>(pub T);

    impl<T> Strategy for Just<T> {
        type Value = T;
    }

    impl<T> Strategy for std::ops::Range<T> {
        type Value = T;
    }

    impl<T> Strategy for std::ops::RangeFrom<T> {
        type Value = T;
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
    }

    pub fn boxed<S: Strategy>(_s: S) -> BoxedStrategy<S::Value> {
        BoxedStrategy(PhantomData)
    }

    pub fn union<V>(_arms: Vec<BoxedStrategy<V>>) -> BoxedStrategy<V> {
        BoxedStrategy(PhantomData)
    }

    pub fn any<A>() -> BoxedStrategy<A> {
        BoxedStrategy(PhantomData)
    }
}

pub mod collection {
    use super::strategy::{BoxedStrategy, Strategy};
    use super::PhantomData;

    pub fn vec<S: Strategy>(_element: S, _size: impl Sized) -> BoxedStrategy<Vec<S::Value>> {
        BoxedStrategy(PhantomData)
    }
}

pub mod test_runner {
    /// Failure payload produced by `prop_assert!` outside the macro.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{:?} != {:?}", a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

pub mod prelude {
    pub use crate::prop_oneof;
    pub use crate::proptest;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq};
    pub use rand::RngCore;

    pub struct ProptestConfig;

    impl ProptestConfig {
        pub fn with_cases(_cases: u32) -> Self {
            ProptestConfig
        }
    }
}
