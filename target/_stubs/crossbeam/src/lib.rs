//! Offline dev stub for the crossbeam APIs this workspace uses:
//! `crossbeam::scope` (delegating to `std::thread::scope`) and a
//! mutex-based `crossbeam::deque` work-stealing triple. Functional —
//! semantics match what the engine relies on (every pushed task is
//! eventually returned exactly once; child panics surface as `Err`).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

pub type ThreadResult<T> = Result<T, Box<dyn std::any::Any + Send + 'static>>;

pub fn scope<'env, F, R>(f: F) -> ThreadResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

pub struct Scope<'scope, 'env> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Placeholder for the nested-scope handle crossbeam passes to spawned
/// closures; every call site in this workspace ignores it (`|_|`).
pub struct SpawnArg;

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&SpawnArg) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&SpawnArg)),
        }
    }
}

pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> ThreadResult<T> {
        self.inner.join()
    }
}

pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

pub mod deque {
    use super::*;

    pub enum Steal<T> {
        Empty,
        Success(T),
        Retry,
    }

    impl<T> Steal<T> {
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
        pub fn or_else<F: FnOnce() -> Steal<T>>(self, f: F) -> Steal<T> {
            match self {
                Steal::Empty => f(),
                other => other,
            }
        }
    }

    impl<T> FromIterator<Steal<T>> for Steal<T> {
        fn from_iter<I: IntoIterator<Item = Steal<T>>>(iter: I) -> Steal<T> {
            let mut retry = false;
            for s in iter {
                match s {
                    Steal::Success(t) => return Steal::Success(t),
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
            }
            if retry {
                Steal::Retry
            } else {
                Steal::Empty
            }
        }
    }

    pub struct Injector<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Injector {
                q: Mutex::new(VecDeque::new()),
            }
        }
        pub fn push(&self, t: T) {
            if let Ok(mut q) = self.q.lock() {
                q.push_back(t);
            }
        }
        pub fn steal(&self) -> Steal<T> {
            match self.q.lock() {
                Ok(mut q) => match q.pop_front() {
                    Some(t) => Steal::Success(t),
                    None => Steal::Empty,
                },
                Err(_) => Steal::Retry,
            }
        }
        pub fn steal_batch_and_pop(&self, _dest: &Worker<T>) -> Steal<T> {
            self.steal()
        }
        pub fn is_empty(&self) -> bool {
            self.q.lock().map(|q| q.is_empty()).unwrap_or(true)
        }
    }

    pub struct Worker<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        pub fn new_fifo() -> Self {
            Worker {
                q: Arc::new(Mutex::new(VecDeque::new())),
            }
        }
        pub fn new_lifo() -> Self {
            Self::new_fifo()
        }
        pub fn push(&self, t: T) {
            if let Ok(mut q) = self.q.lock() {
                q.push_back(t);
            }
        }
        pub fn pop(&self) -> Option<T> {
            self.q.lock().ok().and_then(|mut q| q.pop_front())
        }
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { q: self.q.clone() }
        }
    }

    pub struct Stealer<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { q: self.q.clone() }
        }
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            match self.q.lock() {
                Ok(mut q) => match q.pop_front() {
                    Some(t) => Steal::Success(t),
                    None => Steal::Empty,
                },
                Err(_) => Steal::Retry,
            }
        }
    }
}
