//! Offline dev stub for serde: derive macros expand to nothing; the
//! traits exist so `use serde::{Serialize, Deserialize}` resolves.
pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}
