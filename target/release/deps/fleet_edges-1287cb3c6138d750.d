/root/repo/target/release/deps/fleet_edges-1287cb3c6138d750.d: tests/fleet_edges.rs

/root/repo/target/release/deps/fleet_edges-1287cb3c6138d750: tests/fleet_edges.rs

tests/fleet_edges.rs:
