/root/repo/target/release/deps/proptest-bcaaa97cea0e9f18.d: target/_stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-bcaaa97cea0e9f18.rlib: target/_stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-bcaaa97cea0e9f18.rmeta: target/_stubs/proptest/src/lib.rs

target/_stubs/proptest/src/lib.rs:
