/root/repo/target/release/deps/swiftrl_bench-92473ec4749d7f78.d: crates/bench/src/lib.rs crates/bench/src/scaling.rs

/root/repo/target/release/deps/libswiftrl_bench-92473ec4749d7f78.rlib: crates/bench/src/lib.rs crates/bench/src/scaling.rs

/root/repo/target/release/deps/libswiftrl_bench-92473ec4749d7f78.rmeta: crates/bench/src/lib.rs crates/bench/src/scaling.rs

crates/bench/src/lib.rs:
crates/bench/src/scaling.rs:
