/root/repo/target/release/deps/resilience-ed1c8b44d8d2c7e4.d: crates/bench/src/bin/resilience.rs

/root/repo/target/release/deps/resilience-ed1c8b44d8d2c7e4: crates/bench/src/bin/resilience.rs

crates/bench/src/bin/resilience.rs:
