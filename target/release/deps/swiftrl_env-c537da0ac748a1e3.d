/root/repo/target/release/deps/swiftrl_env-c537da0ac748a1e3.d: crates/env/src/lib.rs crates/env/src/cliff_walking.rs crates/env/src/collect.rs crates/env/src/dataset.rs crates/env/src/env.rs crates/env/src/frozen_lake.rs crates/env/src/taxi.rs

/root/repo/target/release/deps/libswiftrl_env-c537da0ac748a1e3.rlib: crates/env/src/lib.rs crates/env/src/cliff_walking.rs crates/env/src/collect.rs crates/env/src/dataset.rs crates/env/src/env.rs crates/env/src/frozen_lake.rs crates/env/src/taxi.rs

/root/repo/target/release/deps/libswiftrl_env-c537da0ac748a1e3.rmeta: crates/env/src/lib.rs crates/env/src/cliff_walking.rs crates/env/src/collect.rs crates/env/src/dataset.rs crates/env/src/env.rs crates/env/src/frozen_lake.rs crates/env/src/taxi.rs

crates/env/src/lib.rs:
crates/env/src/cliff_walking.rs:
crates/env/src/collect.rs:
crates/env/src/dataset.rs:
crates/env/src/env.rs:
crates/env/src/frozen_lake.rs:
crates/env/src/taxi.rs:
