/root/repo/target/release/deps/resilience-af4720e5a78537ec.d: tests/resilience.rs

/root/repo/target/release/deps/resilience-af4720e5a78537ec: tests/resilience.rs

tests/resilience.rs:
