/root/repo/target/release/deps/artifact_compat-e33b45617023a84d.d: tests/artifact_compat.rs

/root/repo/target/release/deps/artifact_compat-e33b45617023a84d: tests/artifact_compat.rs

tests/artifact_compat.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
