/root/repo/target/release/deps/service-2e59edb5ada5a588.d: tests/service.rs

/root/repo/target/release/deps/service-2e59edb5ada5a588: tests/service.rs

tests/service.rs:
