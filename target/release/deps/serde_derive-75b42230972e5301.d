/root/repo/target/release/deps/serde_derive-75b42230972e5301.d: target/_stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-75b42230972e5301.so: target/_stubs/serde_derive/src/lib.rs

target/_stubs/serde_derive/src/lib.rs:
