/root/repo/target/release/deps/crossbeam-3b86f6411bdf7754.d: target/_stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-3b86f6411bdf7754.rlib: target/_stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-3b86f6411bdf7754.rmeta: target/_stubs/crossbeam/src/lib.rs

target/_stubs/crossbeam/src/lib.rs:
