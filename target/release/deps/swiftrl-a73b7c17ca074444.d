/root/repo/target/release/deps/swiftrl-a73b7c17ca074444.d: src/lib.rs

/root/repo/target/release/deps/libswiftrl-a73b7c17ca074444.rlib: src/lib.rs

/root/repo/target/release/deps/libswiftrl-a73b7c17ca074444.rmeta: src/lib.rs

src/lib.rs:
