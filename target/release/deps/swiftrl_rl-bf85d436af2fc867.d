/root/repo/target/release/deps/swiftrl_rl-bf85d436af2fc867.d: crates/rl/src/lib.rs crates/rl/src/eval.rs crates/rl/src/fixed.rs crates/rl/src/io.rs crates/rl/src/online.rs crates/rl/src/policy.rs crates/rl/src/qlearning.rs crates/rl/src/qtable.rs crates/rl/src/rng.rs crates/rl/src/sampling.rs crates/rl/src/sarsa.rs

/root/repo/target/release/deps/libswiftrl_rl-bf85d436af2fc867.rlib: crates/rl/src/lib.rs crates/rl/src/eval.rs crates/rl/src/fixed.rs crates/rl/src/io.rs crates/rl/src/online.rs crates/rl/src/policy.rs crates/rl/src/qlearning.rs crates/rl/src/qtable.rs crates/rl/src/rng.rs crates/rl/src/sampling.rs crates/rl/src/sarsa.rs

/root/repo/target/release/deps/libswiftrl_rl-bf85d436af2fc867.rmeta: crates/rl/src/lib.rs crates/rl/src/eval.rs crates/rl/src/fixed.rs crates/rl/src/io.rs crates/rl/src/online.rs crates/rl/src/policy.rs crates/rl/src/qlearning.rs crates/rl/src/qtable.rs crates/rl/src/rng.rs crates/rl/src/sampling.rs crates/rl/src/sarsa.rs

crates/rl/src/lib.rs:
crates/rl/src/eval.rs:
crates/rl/src/fixed.rs:
crates/rl/src/io.rs:
crates/rl/src/online.rs:
crates/rl/src/policy.rs:
crates/rl/src/qlearning.rs:
crates/rl/src/qtable.rs:
crates/rl/src/rng.rs:
crates/rl/src/sampling.rs:
crates/rl/src/sarsa.rs:
