/root/repo/target/release/deps/serde-a3b75aabaaa95044.d: target/_stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-a3b75aabaaa95044.rlib: target/_stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-a3b75aabaaa95044.rmeta: target/_stubs/serde/src/lib.rs

target/_stubs/serde/src/lib.rs:
