/root/repo/target/release/deps/rand-dfffecc7b31775f7.d: target/_stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-dfffecc7b31775f7.rlib: target/_stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-dfffecc7b31775f7.rmeta: target/_stubs/rand/src/lib.rs

target/_stubs/rand/src/lib.rs:
