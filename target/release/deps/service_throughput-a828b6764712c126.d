/root/repo/target/release/deps/service_throughput-a828b6764712c126.d: crates/bench/src/bin/service_throughput.rs

/root/repo/target/release/deps/service_throughput-a828b6764712c126: crates/bench/src/bin/service_throughput.rs

crates/bench/src/bin/service_throughput.rs:
