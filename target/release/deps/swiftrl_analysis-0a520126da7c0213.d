/root/repo/target/release/deps/swiftrl_analysis-0a520126da7c0213.d: crates/analysis/src/lib.rs crates/analysis/src/budget.rs crates/analysis/src/callgraph.rs crates/analysis/src/parse.rs crates/analysis/src/report.rs crates/analysis/src/rules.rs crates/analysis/src/scanner.rs

/root/repo/target/release/deps/libswiftrl_analysis-0a520126da7c0213.rlib: crates/analysis/src/lib.rs crates/analysis/src/budget.rs crates/analysis/src/callgraph.rs crates/analysis/src/parse.rs crates/analysis/src/report.rs crates/analysis/src/rules.rs crates/analysis/src/scanner.rs

/root/repo/target/release/deps/libswiftrl_analysis-0a520126da7c0213.rmeta: crates/analysis/src/lib.rs crates/analysis/src/budget.rs crates/analysis/src/callgraph.rs crates/analysis/src/parse.rs crates/analysis/src/report.rs crates/analysis/src/rules.rs crates/analysis/src/scanner.rs

crates/analysis/src/lib.rs:
crates/analysis/src/budget.rs:
crates/analysis/src/callgraph.rs:
crates/analysis/src/parse.rs:
crates/analysis/src/report.rs:
crates/analysis/src/rules.rs:
crates/analysis/src/scanner.rs:
