/root/repo/target/release/deps/swiftrl_telemetry-758c086f77bd5d8d.d: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sink.rs crates/telemetry/src/trace.rs

/root/repo/target/release/deps/libswiftrl_telemetry-758c086f77bd5d8d.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sink.rs crates/telemetry/src/trace.rs

/root/repo/target/release/deps/libswiftrl_telemetry-758c086f77bd5d8d.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sink.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/trace.rs:
