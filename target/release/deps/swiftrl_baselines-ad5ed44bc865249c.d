/root/repo/target/release/deps/swiftrl_baselines-ad5ed44bc865249c.d: crates/baselines/src/lib.rs crates/baselines/src/cpu_exec.rs crates/baselines/src/cpu_model.rs crates/baselines/src/energy.rs crates/baselines/src/gpu_model.rs crates/baselines/src/roofline.rs crates/baselines/src/specs.rs

/root/repo/target/release/deps/libswiftrl_baselines-ad5ed44bc865249c.rlib: crates/baselines/src/lib.rs crates/baselines/src/cpu_exec.rs crates/baselines/src/cpu_model.rs crates/baselines/src/energy.rs crates/baselines/src/gpu_model.rs crates/baselines/src/roofline.rs crates/baselines/src/specs.rs

/root/repo/target/release/deps/libswiftrl_baselines-ad5ed44bc865249c.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cpu_exec.rs crates/baselines/src/cpu_model.rs crates/baselines/src/energy.rs crates/baselines/src/gpu_model.rs crates/baselines/src/roofline.rs crates/baselines/src/specs.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cpu_exec.rs:
crates/baselines/src/cpu_model.rs:
crates/baselines/src/energy.rs:
crates/baselines/src/gpu_model.rs:
crates/baselines/src/roofline.rs:
crates/baselines/src/specs.rs:
