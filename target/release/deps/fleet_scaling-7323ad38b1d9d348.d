/root/repo/target/release/deps/fleet_scaling-7323ad38b1d9d348.d: crates/bench/src/bin/fleet_scaling.rs

/root/repo/target/release/deps/fleet_scaling-7323ad38b1d9d348: crates/bench/src/bin/fleet_scaling.rs

crates/bench/src/bin/fleet_scaling.rs:
