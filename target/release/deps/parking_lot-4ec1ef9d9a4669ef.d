/root/repo/target/release/deps/parking_lot-4ec1ef9d9a4669ef.d: target/_stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-4ec1ef9d9a4669ef.rlib: target/_stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-4ec1ef9d9a4669ef.rmeta: target/_stubs/parking_lot/src/lib.rs

target/_stubs/parking_lot/src/lib.rs:
