/root/repo/target/debug/examples/quickstart-0e01e157f9961e8e.d: /root/repo/clippy.toml examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-0e01e157f9961e8e.rmeta: /root/repo/clippy.toml examples/quickstart.rs Cargo.toml

/root/repo/clippy.toml:
examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
