/root/repo/target/debug/examples/custom_kernel-821db33ec0c6c242.d: examples/custom_kernel.rs

/root/repo/target/debug/examples/custom_kernel-821db33ec0c6c242: examples/custom_kernel.rs

examples/custom_kernel.rs:
