/root/repo/target/debug/examples/quickstart-c758e607c0edae1e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c758e607c0edae1e: examples/quickstart.rs

examples/quickstart.rs:
