/root/repo/target/debug/examples/taxi_offline-1cc6740e809d1800.d: examples/taxi_offline.rs

/root/repo/target/debug/examples/taxi_offline-1cc6740e809d1800: examples/taxi_offline.rs

examples/taxi_offline.rs:
