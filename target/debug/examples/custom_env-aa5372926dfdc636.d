/root/repo/target/debug/examples/custom_env-aa5372926dfdc636.d: examples/custom_env.rs

/root/repo/target/debug/examples/custom_env-aa5372926dfdc636: examples/custom_env.rs

examples/custom_env.rs:
