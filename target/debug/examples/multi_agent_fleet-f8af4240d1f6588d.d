/root/repo/target/debug/examples/multi_agent_fleet-f8af4240d1f6588d.d: /root/repo/clippy.toml examples/multi_agent_fleet.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_agent_fleet-f8af4240d1f6588d.rmeta: /root/repo/clippy.toml examples/multi_agent_fleet.rs Cargo.toml

/root/repo/clippy.toml:
examples/multi_agent_fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
