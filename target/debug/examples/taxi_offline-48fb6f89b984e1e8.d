/root/repo/target/debug/examples/taxi_offline-48fb6f89b984e1e8.d: /root/repo/clippy.toml examples/taxi_offline.rs Cargo.toml

/root/repo/target/debug/examples/libtaxi_offline-48fb6f89b984e1e8.rmeta: /root/repo/clippy.toml examples/taxi_offline.rs Cargo.toml

/root/repo/clippy.toml:
examples/taxi_offline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
