/root/repo/target/debug/examples/custom_kernel-44c6468b6ee43f1e.d: /root/repo/clippy.toml examples/custom_kernel.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_kernel-44c6468b6ee43f1e.rmeta: /root/repo/clippy.toml examples/custom_kernel.rs Cargo.toml

/root/repo/clippy.toml:
examples/custom_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
