/root/repo/target/debug/examples/custom_env-fb14be02b52100aa.d: /root/repo/clippy.toml examples/custom_env.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_env-fb14be02b52100aa.rmeta: /root/repo/clippy.toml examples/custom_env.rs Cargo.toml

/root/repo/clippy.toml:
examples/custom_env.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
