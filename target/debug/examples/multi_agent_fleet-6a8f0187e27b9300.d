/root/repo/target/debug/examples/multi_agent_fleet-6a8f0187e27b9300.d: examples/multi_agent_fleet.rs

/root/repo/target/debug/examples/multi_agent_fleet-6a8f0187e27b9300: examples/multi_agent_fleet.rs

examples/multi_agent_fleet.rs:
