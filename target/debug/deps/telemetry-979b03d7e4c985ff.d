/root/repo/target/debug/deps/telemetry-979b03d7e4c985ff.d: /root/repo/clippy.toml tests/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-979b03d7e4c985ff.rmeta: /root/repo/clippy.toml tests/telemetry.rs Cargo.toml

/root/repo/clippy.toml:
tests/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
