/root/repo/target/debug/deps/lcg_consistency-089848f5b89e2a3f.d: tests/lcg_consistency.rs

/root/repo/target/debug/deps/lcg_consistency-089848f5b89e2a3f: tests/lcg_consistency.rs

tests/lcg_consistency.rs:
