/root/repo/target/debug/deps/cli-3892ff4ac0d6f796.d: crates/analysis/tests/cli.rs

/root/repo/target/debug/deps/cli-3892ff4ac0d6f796: crates/analysis/tests/cli.rs

crates/analysis/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_swiftrl-analysis=/root/repo/target/debug/swiftrl-analysis
# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/analysis
