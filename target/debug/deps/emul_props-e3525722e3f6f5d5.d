/root/repo/target/debug/deps/emul_props-e3525722e3f6f5d5.d: crates/pim/tests/emul_props.rs

/root/repo/target/debug/deps/emul_props-e3525722e3f6f5d5: crates/pim/tests/emul_props.rs

crates/pim/tests/emul_props.rs:
