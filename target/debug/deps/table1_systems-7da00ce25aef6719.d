/root/repo/target/debug/deps/table1_systems-7da00ce25aef6719.d: /root/repo/clippy.toml crates/bench/src/bin/table1_systems.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_systems-7da00ce25aef6719.rmeta: /root/repo/clippy.toml crates/bench/src/bin/table1_systems.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/table1_systems.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
