/root/repo/target/debug/deps/trace_run-bb4349e37cd9bab1.d: crates/bench/src/bin/trace_run.rs

/root/repo/target/debug/deps/trace_run-bb4349e37cd9bab1: crates/bench/src/bin/trace_run.rs

crates/bench/src/bin/trace_run.rs:
