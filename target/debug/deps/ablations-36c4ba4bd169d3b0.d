/root/repo/target/debug/deps/ablations-36c4ba4bd169d3b0.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-36c4ba4bd169d3b0: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
