/root/repo/target/debug/deps/swiftrl_baselines-d466326d496ba88e.d: crates/baselines/src/lib.rs crates/baselines/src/cpu_exec.rs crates/baselines/src/cpu_model.rs crates/baselines/src/energy.rs crates/baselines/src/gpu_model.rs crates/baselines/src/roofline.rs crates/baselines/src/specs.rs

/root/repo/target/debug/deps/swiftrl_baselines-d466326d496ba88e: crates/baselines/src/lib.rs crates/baselines/src/cpu_exec.rs crates/baselines/src/cpu_model.rs crates/baselines/src/energy.rs crates/baselines/src/gpu_model.rs crates/baselines/src/roofline.rs crates/baselines/src/specs.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cpu_exec.rs:
crates/baselines/src/cpu_model.rs:
crates/baselines/src/energy.rs:
crates/baselines/src/gpu_model.rs:
crates/baselines/src/roofline.rs:
crates/baselines/src/specs.rs:
