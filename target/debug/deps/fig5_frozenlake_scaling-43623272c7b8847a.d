/root/repo/target/debug/deps/fig5_frozenlake_scaling-43623272c7b8847a.d: crates/bench/src/bin/fig5_frozenlake_scaling.rs

/root/repo/target/debug/deps/fig5_frozenlake_scaling-43623272c7b8847a: crates/bench/src/bin/fig5_frozenlake_scaling.rs

crates/bench/src/bin/fig5_frozenlake_scaling.rs:
