/root/repo/target/debug/deps/proptest-7333592eb4c96b06.d: target/_stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7333592eb4c96b06.rlib: target/_stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7333592eb4c96b06.rmeta: target/_stubs/proptest/src/lib.rs

target/_stubs/proptest/src/lib.rs:
