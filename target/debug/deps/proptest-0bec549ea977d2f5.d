/root/repo/target/debug/deps/proptest-0bec549ea977d2f5.d: target/_stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-0bec549ea977d2f5.rmeta: target/_stubs/proptest/src/lib.rs

target/_stubs/proptest/src/lib.rs:
