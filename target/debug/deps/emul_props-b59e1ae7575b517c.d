/root/repo/target/debug/deps/emul_props-b59e1ae7575b517c.d: crates/pim/tests/emul_props.rs

/root/repo/target/debug/deps/emul_props-b59e1ae7575b517c: crates/pim/tests/emul_props.rs

crates/pim/tests/emul_props.rs:
