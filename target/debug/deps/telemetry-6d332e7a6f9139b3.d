/root/repo/target/debug/deps/telemetry-6d332e7a6f9139b3.d: tests/telemetry.rs

/root/repo/target/debug/deps/telemetry-6d332e7a6f9139b3: tests/telemetry.rs

tests/telemetry.rs:
