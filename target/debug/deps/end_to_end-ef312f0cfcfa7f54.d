/root/repo/target/debug/deps/end_to_end-ef312f0cfcfa7f54.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ef312f0cfcfa7f54: tests/end_to_end.rs

tests/end_to_end.rs:
