/root/repo/target/debug/deps/criterion-37bc917c741e3ee1.d: target/_stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-37bc917c741e3ee1.rlib: target/_stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-37bc917c741e3ee1.rmeta: target/_stubs/criterion/src/lib.rs

target/_stubs/criterion/src/lib.rs:
