/root/repo/target/debug/deps/extension_weak_scaling-9fe69b6d99ad0875.d: /root/repo/clippy.toml crates/bench/src/bin/extension_weak_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libextension_weak_scaling-9fe69b6d99ad0875.rmeta: /root/repo/clippy.toml crates/bench/src/bin/extension_weak_scaling.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/extension_weak_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
