/root/repo/target/debug/deps/swiftrl_telemetry-0181d69b2c607244.d: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sink.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/libswiftrl_telemetry-0181d69b2c607244.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sink.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/libswiftrl_telemetry-0181d69b2c607244.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sink.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/trace.rs:
