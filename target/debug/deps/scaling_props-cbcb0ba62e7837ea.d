/root/repo/target/debug/deps/scaling_props-cbcb0ba62e7837ea.d: tests/scaling_props.rs

/root/repo/target/debug/deps/scaling_props-cbcb0ba62e7837ea: tests/scaling_props.rs

tests/scaling_props.rs:
