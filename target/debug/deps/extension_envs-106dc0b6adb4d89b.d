/root/repo/target/debug/deps/extension_envs-106dc0b6adb4d89b.d: crates/bench/src/bin/extension_envs.rs

/root/repo/target/debug/deps/extension_envs-106dc0b6adb4d89b: crates/bench/src/bin/extension_envs.rs

crates/bench/src/bin/extension_envs.rs:
