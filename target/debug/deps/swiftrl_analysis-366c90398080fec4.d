/root/repo/target/debug/deps/swiftrl_analysis-366c90398080fec4.d: crates/analysis/src/lib.rs crates/analysis/src/budget.rs crates/analysis/src/callgraph.rs crates/analysis/src/parse.rs crates/analysis/src/report.rs crates/analysis/src/rules.rs crates/analysis/src/scanner.rs

/root/repo/target/debug/deps/libswiftrl_analysis-366c90398080fec4.rlib: crates/analysis/src/lib.rs crates/analysis/src/budget.rs crates/analysis/src/callgraph.rs crates/analysis/src/parse.rs crates/analysis/src/report.rs crates/analysis/src/rules.rs crates/analysis/src/scanner.rs

/root/repo/target/debug/deps/libswiftrl_analysis-366c90398080fec4.rmeta: crates/analysis/src/lib.rs crates/analysis/src/budget.rs crates/analysis/src/callgraph.rs crates/analysis/src/parse.rs crates/analysis/src/report.rs crates/analysis/src/rules.rs crates/analysis/src/scanner.rs

crates/analysis/src/lib.rs:
crates/analysis/src/budget.rs:
crates/analysis/src/callgraph.rs:
crates/analysis/src/parse.rs:
crates/analysis/src/report.rs:
crates/analysis/src/rules.rs:
crates/analysis/src/scanner.rs:
