/root/repo/target/debug/deps/rand-18054f3f8b1630e8.d: target/_stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-18054f3f8b1630e8.rlib: target/_stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-18054f3f8b1630e8.rmeta: target/_stubs/rand/src/lib.rs

target/_stubs/rand/src/lib.rs:
