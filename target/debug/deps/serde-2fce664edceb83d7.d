/root/repo/target/debug/deps/serde-2fce664edceb83d7.d: target/_stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-2fce664edceb83d7.rmeta: target/_stubs/serde/src/lib.rs

target/_stubs/serde/src/lib.rs:
