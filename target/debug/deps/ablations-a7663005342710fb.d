/root/repo/target/debug/deps/ablations-a7663005342710fb.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-a7663005342710fb: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
