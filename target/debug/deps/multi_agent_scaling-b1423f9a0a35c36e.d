/root/repo/target/debug/deps/multi_agent_scaling-b1423f9a0a35c36e.d: /root/repo/clippy.toml crates/bench/src/bin/multi_agent_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_agent_scaling-b1423f9a0a35c36e.rmeta: /root/repo/clippy.toml crates/bench/src/bin/multi_agent_scaling.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/multi_agent_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
