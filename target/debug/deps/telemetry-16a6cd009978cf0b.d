/root/repo/target/debug/deps/telemetry-16a6cd009978cf0b.d: tests/telemetry.rs

/root/repo/target/debug/deps/telemetry-16a6cd009978cf0b: tests/telemetry.rs

tests/telemetry.rs:
