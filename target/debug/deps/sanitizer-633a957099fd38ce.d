/root/repo/target/debug/deps/sanitizer-633a957099fd38ce.d: tests/sanitizer.rs

/root/repo/target/debug/deps/sanitizer-633a957099fd38ce: tests/sanitizer.rs

tests/sanitizer.rs:
