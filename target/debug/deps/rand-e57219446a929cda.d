/root/repo/target/debug/deps/rand-e57219446a929cda.d: target/_stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-e57219446a929cda.rmeta: target/_stubs/rand/src/lib.rs

target/_stubs/rand/src/lib.rs:
