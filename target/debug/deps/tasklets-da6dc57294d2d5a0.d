/root/repo/target/debug/deps/tasklets-da6dc57294d2d5a0.d: /root/repo/clippy.toml tests/tasklets.rs Cargo.toml

/root/repo/target/debug/deps/libtasklets-da6dc57294d2d5a0.rmeta: /root/repo/clippy.toml tests/tasklets.rs Cargo.toml

/root/repo/clippy.toml:
tests/tasklets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
