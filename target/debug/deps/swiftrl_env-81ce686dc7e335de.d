/root/repo/target/debug/deps/swiftrl_env-81ce686dc7e335de.d: /root/repo/clippy.toml crates/env/src/lib.rs crates/env/src/cliff_walking.rs crates/env/src/collect.rs crates/env/src/dataset.rs crates/env/src/env.rs crates/env/src/frozen_lake.rs crates/env/src/taxi.rs Cargo.toml

/root/repo/target/debug/deps/libswiftrl_env-81ce686dc7e335de.rmeta: /root/repo/clippy.toml crates/env/src/lib.rs crates/env/src/cliff_walking.rs crates/env/src/collect.rs crates/env/src/dataset.rs crates/env/src/env.rs crates/env/src/frozen_lake.rs crates/env/src/taxi.rs Cargo.toml

/root/repo/clippy.toml:
crates/env/src/lib.rs:
crates/env/src/cliff_walking.rs:
crates/env/src/collect.rs:
crates/env/src/dataset.rs:
crates/env/src/env.rs:
crates/env/src/frozen_lake.rs:
crates/env/src/taxi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
