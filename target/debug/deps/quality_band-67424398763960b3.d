/root/repo/target/debug/deps/quality_band-67424398763960b3.d: tests/quality_band.rs

/root/repo/target/debug/deps/quality_band-67424398763960b3: tests/quality_band.rs

tests/quality_band.rs:
