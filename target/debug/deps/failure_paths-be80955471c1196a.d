/root/repo/target/debug/deps/failure_paths-be80955471c1196a.d: tests/failure_paths.rs

/root/repo/target/debug/deps/failure_paths-be80955471c1196a: tests/failure_paths.rs

tests/failure_paths.rs:
