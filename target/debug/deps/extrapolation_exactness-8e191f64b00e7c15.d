/root/repo/target/debug/deps/extrapolation_exactness-8e191f64b00e7c15.d: tests/extrapolation_exactness.rs

/root/repo/target/debug/deps/extrapolation_exactness-8e191f64b00e7c15: tests/extrapolation_exactness.rs

tests/extrapolation_exactness.rs:
