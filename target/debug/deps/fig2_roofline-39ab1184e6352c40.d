/root/repo/target/debug/deps/fig2_roofline-39ab1184e6352c40.d: /root/repo/clippy.toml crates/bench/src/bin/fig2_roofline.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_roofline-39ab1184e6352c40.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig2_roofline.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig2_roofline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
