/root/repo/target/debug/deps/swiftrl-d612b18d6550a4ec.d: src/lib.rs

/root/repo/target/debug/deps/swiftrl-d612b18d6550a4ec: src/lib.rs

src/lib.rs:
