/root/repo/target/debug/deps/extension_weak_scaling-d4eccf7f23e97db7.d: crates/bench/src/bin/extension_weak_scaling.rs

/root/repo/target/debug/deps/extension_weak_scaling-d4eccf7f23e97db7: crates/bench/src/bin/extension_weak_scaling.rs

crates/bench/src/bin/extension_weak_scaling.rs:
