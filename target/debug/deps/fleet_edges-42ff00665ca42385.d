/root/repo/target/debug/deps/fleet_edges-42ff00665ca42385.d: /root/repo/clippy.toml tests/fleet_edges.rs Cargo.toml

/root/repo/target/debug/deps/libfleet_edges-42ff00665ca42385.rmeta: /root/repo/clippy.toml tests/fleet_edges.rs Cargo.toml

/root/repo/clippy.toml:
tests/fleet_edges.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
