/root/repo/target/debug/deps/sanitizer-b5525226967f1091.d: tests/sanitizer.rs

/root/repo/target/debug/deps/sanitizer-b5525226967f1091: tests/sanitizer.rs

tests/sanitizer.rs:
