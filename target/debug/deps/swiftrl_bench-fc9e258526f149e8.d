/root/repo/target/debug/deps/swiftrl_bench-fc9e258526f149e8.d: crates/bench/src/lib.rs crates/bench/src/scaling.rs

/root/repo/target/debug/deps/libswiftrl_bench-fc9e258526f149e8.rlib: crates/bench/src/lib.rs crates/bench/src/scaling.rs

/root/repo/target/debug/deps/libswiftrl_bench-fc9e258526f149e8.rmeta: crates/bench/src/lib.rs crates/bench/src/scaling.rs

crates/bench/src/lib.rs:
crates/bench/src/scaling.rs:
