/root/repo/target/debug/deps/swiftrl_pim-4d333f1e050f2067.d: /root/repo/clippy.toml crates/pim/src/lib.rs crates/pim/src/arena.rs crates/pim/src/config.rs crates/pim/src/cost.rs crates/pim/src/dpu.rs crates/pim/src/emul.rs crates/pim/src/engine.rs crates/pim/src/fastpath.rs crates/pim/src/faults.rs crates/pim/src/host.rs crates/pim/src/kernel.rs crates/pim/src/memory.rs crates/pim/src/report.rs crates/pim/src/sanitize.rs crates/pim/src/softfloat.rs crates/pim/src/stats.rs crates/pim/src/xfer.rs Cargo.toml

/root/repo/target/debug/deps/libswiftrl_pim-4d333f1e050f2067.rmeta: /root/repo/clippy.toml crates/pim/src/lib.rs crates/pim/src/arena.rs crates/pim/src/config.rs crates/pim/src/cost.rs crates/pim/src/dpu.rs crates/pim/src/emul.rs crates/pim/src/engine.rs crates/pim/src/fastpath.rs crates/pim/src/faults.rs crates/pim/src/host.rs crates/pim/src/kernel.rs crates/pim/src/memory.rs crates/pim/src/report.rs crates/pim/src/sanitize.rs crates/pim/src/softfloat.rs crates/pim/src/stats.rs crates/pim/src/xfer.rs Cargo.toml

/root/repo/clippy.toml:
crates/pim/src/lib.rs:
crates/pim/src/arena.rs:
crates/pim/src/config.rs:
crates/pim/src/cost.rs:
crates/pim/src/dpu.rs:
crates/pim/src/emul.rs:
crates/pim/src/engine.rs:
crates/pim/src/fastpath.rs:
crates/pim/src/faults.rs:
crates/pim/src/host.rs:
crates/pim/src/kernel.rs:
crates/pim/src/memory.rs:
crates/pim/src/report.rs:
crates/pim/src/sanitize.rs:
crates/pim/src/softfloat.rs:
crates/pim/src/stats.rs:
crates/pim/src/xfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
