/root/repo/target/debug/deps/analysis_clean-57e0e719a06297b0.d: tests/analysis_clean.rs

/root/repo/target/debug/deps/analysis_clean-57e0e719a06297b0: tests/analysis_clean.rs

tests/analysis_clean.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
