/root/repo/target/debug/deps/swiftrl_rl-71c8f0aa8a99bffd.d: crates/rl/src/lib.rs crates/rl/src/eval.rs crates/rl/src/fixed.rs crates/rl/src/io.rs crates/rl/src/online.rs crates/rl/src/policy.rs crates/rl/src/qlearning.rs crates/rl/src/qtable.rs crates/rl/src/rng.rs crates/rl/src/sampling.rs crates/rl/src/sarsa.rs

/root/repo/target/debug/deps/swiftrl_rl-71c8f0aa8a99bffd: crates/rl/src/lib.rs crates/rl/src/eval.rs crates/rl/src/fixed.rs crates/rl/src/io.rs crates/rl/src/online.rs crates/rl/src/policy.rs crates/rl/src/qlearning.rs crates/rl/src/qtable.rs crates/rl/src/rng.rs crates/rl/src/sampling.rs crates/rl/src/sarsa.rs

crates/rl/src/lib.rs:
crates/rl/src/eval.rs:
crates/rl/src/fixed.rs:
crates/rl/src/io.rs:
crates/rl/src/online.rs:
crates/rl/src/policy.rs:
crates/rl/src/qlearning.rs:
crates/rl/src/qtable.rs:
crates/rl/src/rng.rs:
crates/rl/src/sampling.rs:
crates/rl/src/sarsa.rs:
