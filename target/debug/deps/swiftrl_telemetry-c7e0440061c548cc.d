/root/repo/target/debug/deps/swiftrl_telemetry-c7e0440061c548cc.d: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sink.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/swiftrl_telemetry-c7e0440061c548cc: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sink.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/trace.rs:
