/root/repo/target/debug/deps/fleet_scaling-7727d90084a6aba8.d: crates/bench/src/bin/fleet_scaling.rs

/root/repo/target/debug/deps/fleet_scaling-7727d90084a6aba8: crates/bench/src/bin/fleet_scaling.rs

crates/bench/src/bin/fleet_scaling.rs:
