/root/repo/target/debug/deps/softfloat_props-d18dce48779235ab.d: crates/pim/tests/softfloat_props.rs

/root/repo/target/debug/deps/softfloat_props-d18dce48779235ab: crates/pim/tests/softfloat_props.rs

crates/pim/tests/softfloat_props.rs:
