/root/repo/target/debug/deps/tasklets-4b274ce5d9975ebc.d: tests/tasklets.rs

/root/repo/target/debug/deps/tasklets-4b274ce5d9975ebc: tests/tasklets.rs

tests/tasklets.rs:
