/root/repo/target/debug/deps/artifact_compat-8b5d17a8ff55d58e.d: tests/artifact_compat.rs

/root/repo/target/debug/deps/artifact_compat-8b5d17a8ff55d58e: tests/artifact_compat.rs

tests/artifact_compat.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
