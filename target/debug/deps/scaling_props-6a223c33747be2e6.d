/root/repo/target/debug/deps/scaling_props-6a223c33747be2e6.d: tests/scaling_props.rs

/root/repo/target/debug/deps/scaling_props-6a223c33747be2e6: tests/scaling_props.rs

tests/scaling_props.rs:
