/root/repo/target/debug/deps/scaling_props-41296d3cd7ddd1f8.d: /root/repo/clippy.toml tests/scaling_props.rs Cargo.toml

/root/repo/target/debug/deps/libscaling_props-41296d3cd7ddd1f8.rmeta: /root/repo/clippy.toml tests/scaling_props.rs Cargo.toml

/root/repo/clippy.toml:
tests/scaling_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
