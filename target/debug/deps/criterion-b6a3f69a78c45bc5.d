/root/repo/target/debug/deps/criterion-b6a3f69a78c45bc5.d: target/_stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-b6a3f69a78c45bc5.rmeta: target/_stubs/criterion/src/lib.rs

target/_stubs/criterion/src/lib.rs:
