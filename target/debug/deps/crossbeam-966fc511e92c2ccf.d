/root/repo/target/debug/deps/crossbeam-966fc511e92c2ccf.d: target/_stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-966fc511e92c2ccf.rlib: target/_stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-966fc511e92c2ccf.rmeta: target/_stubs/crossbeam/src/lib.rs

target/_stubs/crossbeam/src/lib.rs:
