/root/repo/target/debug/deps/trace_run-ff3fe49f05c6cf40.d: crates/bench/src/bin/trace_run.rs

/root/repo/target/debug/deps/trace_run-ff3fe49f05c6cf40: crates/bench/src/bin/trace_run.rs

crates/bench/src/bin/trace_run.rs:
