/root/repo/target/debug/deps/pim_host_parity-9969cbe2bd398a94.d: tests/pim_host_parity.rs

/root/repo/target/debug/deps/pim_host_parity-9969cbe2bd398a94: tests/pim_host_parity.rs

tests/pim_host_parity.rs:
