/root/repo/target/debug/deps/fastpath_parity-81f20ba12f1121bb.d: tests/fastpath_parity.rs

/root/repo/target/debug/deps/fastpath_parity-81f20ba12f1121bb: tests/fastpath_parity.rs

tests/fastpath_parity.rs:
