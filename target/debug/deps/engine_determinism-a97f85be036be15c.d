/root/repo/target/debug/deps/engine_determinism-a97f85be036be15c.d: tests/engine_determinism.rs

/root/repo/target/debug/deps/engine_determinism-a97f85be036be15c: tests/engine_determinism.rs

tests/engine_determinism.rs:
