/root/repo/target/debug/deps/analysis_clean-87a710228f07c6d3.d: tests/analysis_clean.rs

/root/repo/target/debug/deps/analysis_clean-87a710228f07c6d3: tests/analysis_clean.rs

tests/analysis_clean.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
