/root/repo/target/debug/deps/fig2_roofline-853a9542661db19b.d: crates/bench/src/bin/fig2_roofline.rs

/root/repo/target/debug/deps/fig2_roofline-853a9542661db19b: crates/bench/src/bin/fig2_roofline.rs

crates/bench/src/bin/fig2_roofline.rs:
