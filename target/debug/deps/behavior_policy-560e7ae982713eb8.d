/root/repo/target/debug/deps/behavior_policy-560e7ae982713eb8.d: crates/bench/src/bin/behavior_policy.rs

/root/repo/target/debug/deps/behavior_policy-560e7ae982713eb8: crates/bench/src/bin/behavior_policy.rs

crates/bench/src/bin/behavior_policy.rs:
