/root/repo/target/debug/deps/tasklets-92467db87afccc1c.d: tests/tasklets.rs

/root/repo/target/debug/deps/tasklets-92467db87afccc1c: tests/tasklets.rs

tests/tasklets.rs:
