/root/repo/target/debug/deps/engine_determinism-c1148ac4e4fb2114.d: /root/repo/clippy.toml tests/engine_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libengine_determinism-c1148ac4e4fb2114.rmeta: /root/repo/clippy.toml tests/engine_determinism.rs Cargo.toml

/root/repo/clippy.toml:
tests/engine_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
