/root/repo/target/debug/deps/failure_paths-db3d468e82d24fb1.d: tests/failure_paths.rs

/root/repo/target/debug/deps/failure_paths-db3d468e82d24fb1: tests/failure_paths.rs

tests/failure_paths.rs:
