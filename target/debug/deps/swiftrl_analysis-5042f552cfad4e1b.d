/root/repo/target/debug/deps/swiftrl_analysis-5042f552cfad4e1b.d: crates/analysis/src/lib.rs crates/analysis/src/budget.rs crates/analysis/src/callgraph.rs crates/analysis/src/parse.rs crates/analysis/src/report.rs crates/analysis/src/rules.rs crates/analysis/src/scanner.rs

/root/repo/target/debug/deps/swiftrl_analysis-5042f552cfad4e1b: crates/analysis/src/lib.rs crates/analysis/src/budget.rs crates/analysis/src/callgraph.rs crates/analysis/src/parse.rs crates/analysis/src/report.rs crates/analysis/src/rules.rs crates/analysis/src/scanner.rs

crates/analysis/src/lib.rs:
crates/analysis/src/budget.rs:
crates/analysis/src/callgraph.rs:
crates/analysis/src/parse.rs:
crates/analysis/src/report.rs:
crates/analysis/src/rules.rs:
crates/analysis/src/scanner.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/analysis
