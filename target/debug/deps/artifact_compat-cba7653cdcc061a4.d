/root/repo/target/debug/deps/artifact_compat-cba7653cdcc061a4.d: tests/artifact_compat.rs

/root/repo/target/debug/deps/artifact_compat-cba7653cdcc061a4: tests/artifact_compat.rs

tests/artifact_compat.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
