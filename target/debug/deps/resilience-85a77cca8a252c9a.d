/root/repo/target/debug/deps/resilience-85a77cca8a252c9a.d: crates/bench/src/bin/resilience.rs

/root/repo/target/debug/deps/resilience-85a77cca8a252c9a: crates/bench/src/bin/resilience.rs

crates/bench/src/bin/resilience.rs:
