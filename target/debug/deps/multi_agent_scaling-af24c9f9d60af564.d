/root/repo/target/debug/deps/multi_agent_scaling-af24c9f9d60af564.d: crates/bench/src/bin/multi_agent_scaling.rs

/root/repo/target/debug/deps/multi_agent_scaling-af24c9f9d60af564: crates/bench/src/bin/multi_agent_scaling.rs

crates/bench/src/bin/multi_agent_scaling.rs:
