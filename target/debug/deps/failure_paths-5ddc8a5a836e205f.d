/root/repo/target/debug/deps/failure_paths-5ddc8a5a836e205f.d: /root/repo/clippy.toml tests/failure_paths.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_paths-5ddc8a5a836e205f.rmeta: /root/repo/clippy.toml tests/failure_paths.rs Cargo.toml

/root/repo/clippy.toml:
tests/failure_paths.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
