/root/repo/target/debug/deps/fig6_taxi_scaling-fc64806f8afc276b.d: crates/bench/src/bin/fig6_taxi_scaling.rs

/root/repo/target/debug/deps/fig6_taxi_scaling-fc64806f8afc276b: crates/bench/src/bin/fig6_taxi_scaling.rs

crates/bench/src/bin/fig6_taxi_scaling.rs:
