/root/repo/target/debug/deps/swiftrl_analysis-59bd1389760605ef.d: /root/repo/clippy.toml crates/analysis/src/lib.rs crates/analysis/src/budget.rs crates/analysis/src/callgraph.rs crates/analysis/src/parse.rs crates/analysis/src/report.rs crates/analysis/src/rules.rs crates/analysis/src/scanner.rs Cargo.toml

/root/repo/target/debug/deps/libswiftrl_analysis-59bd1389760605ef.rmeta: /root/repo/clippy.toml crates/analysis/src/lib.rs crates/analysis/src/budget.rs crates/analysis/src/callgraph.rs crates/analysis/src/parse.rs crates/analysis/src/report.rs crates/analysis/src/rules.rs crates/analysis/src/scanner.rs Cargo.toml

/root/repo/clippy.toml:
crates/analysis/src/lib.rs:
crates/analysis/src/budget.rs:
crates/analysis/src/callgraph.rs:
crates/analysis/src/parse.rs:
crates/analysis/src/report.rs:
crates/analysis/src/rules.rs:
crates/analysis/src/scanner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
