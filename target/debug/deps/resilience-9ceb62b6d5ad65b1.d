/root/repo/target/debug/deps/resilience-9ceb62b6d5ad65b1.d: tests/resilience.rs

/root/repo/target/debug/deps/resilience-9ceb62b6d5ad65b1: tests/resilience.rs

tests/resilience.rs:
