/root/repo/target/debug/deps/swiftrl_analysis-9fea9fce8a2bf198.d: crates/analysis/src/main.rs

/root/repo/target/debug/deps/swiftrl_analysis-9fea9fce8a2bf198: crates/analysis/src/main.rs

crates/analysis/src/main.rs:
