/root/repo/target/debug/deps/artifact_compat-018c0673b83ea30f.d: /root/repo/clippy.toml tests/artifact_compat.rs Cargo.toml

/root/repo/target/debug/deps/libartifact_compat-018c0673b83ea30f.rmeta: /root/repo/clippy.toml tests/artifact_compat.rs Cargo.toml

/root/repo/clippy.toml:
tests/artifact_compat.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
