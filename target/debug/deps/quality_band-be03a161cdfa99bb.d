/root/repo/target/debug/deps/quality_band-be03a161cdfa99bb.d: /root/repo/clippy.toml tests/quality_band.rs Cargo.toml

/root/repo/target/debug/deps/libquality_band-be03a161cdfa99bb.rmeta: /root/repo/clippy.toml tests/quality_band.rs Cargo.toml

/root/repo/clippy.toml:
tests/quality_band.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
