/root/repo/target/debug/deps/behavior_policy-56c498f2f322e1cf.d: /root/repo/clippy.toml crates/bench/src/bin/behavior_policy.rs Cargo.toml

/root/repo/target/debug/deps/libbehavior_policy-56c498f2f322e1cf.rmeta: /root/repo/clippy.toml crates/bench/src/bin/behavior_policy.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/behavior_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
