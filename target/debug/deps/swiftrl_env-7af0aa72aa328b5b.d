/root/repo/target/debug/deps/swiftrl_env-7af0aa72aa328b5b.d: crates/env/src/lib.rs crates/env/src/cliff_walking.rs crates/env/src/collect.rs crates/env/src/dataset.rs crates/env/src/env.rs crates/env/src/frozen_lake.rs crates/env/src/taxi.rs

/root/repo/target/debug/deps/libswiftrl_env-7af0aa72aa328b5b.rlib: crates/env/src/lib.rs crates/env/src/cliff_walking.rs crates/env/src/collect.rs crates/env/src/dataset.rs crates/env/src/env.rs crates/env/src/frozen_lake.rs crates/env/src/taxi.rs

/root/repo/target/debug/deps/libswiftrl_env-7af0aa72aa328b5b.rmeta: crates/env/src/lib.rs crates/env/src/cliff_walking.rs crates/env/src/collect.rs crates/env/src/dataset.rs crates/env/src/env.rs crates/env/src/frozen_lake.rs crates/env/src/taxi.rs

crates/env/src/lib.rs:
crates/env/src/cliff_walking.rs:
crates/env/src/collect.rs:
crates/env/src/dataset.rs:
crates/env/src/env.rs:
crates/env/src/frozen_lake.rs:
crates/env/src/taxi.rs:
