/root/repo/target/debug/deps/lcg_consistency-cbdfc95eda88e1ac.d: tests/lcg_consistency.rs

/root/repo/target/debug/deps/lcg_consistency-cbdfc95eda88e1ac: tests/lcg_consistency.rs

tests/lcg_consistency.rs:
