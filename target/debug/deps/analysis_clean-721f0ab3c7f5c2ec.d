/root/repo/target/debug/deps/analysis_clean-721f0ab3c7f5c2ec.d: /root/repo/clippy.toml tests/analysis_clean.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis_clean-721f0ab3c7f5c2ec.rmeta: /root/repo/clippy.toml tests/analysis_clean.rs Cargo.toml

/root/repo/clippy.toml:
tests/analysis_clean.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
