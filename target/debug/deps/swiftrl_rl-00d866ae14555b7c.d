/root/repo/target/debug/deps/swiftrl_rl-00d866ae14555b7c.d: /root/repo/clippy.toml crates/rl/src/lib.rs crates/rl/src/eval.rs crates/rl/src/fixed.rs crates/rl/src/io.rs crates/rl/src/online.rs crates/rl/src/policy.rs crates/rl/src/qlearning.rs crates/rl/src/qtable.rs crates/rl/src/rng.rs crates/rl/src/sampling.rs crates/rl/src/sarsa.rs Cargo.toml

/root/repo/target/debug/deps/libswiftrl_rl-00d866ae14555b7c.rmeta: /root/repo/clippy.toml crates/rl/src/lib.rs crates/rl/src/eval.rs crates/rl/src/fixed.rs crates/rl/src/io.rs crates/rl/src/online.rs crates/rl/src/policy.rs crates/rl/src/qlearning.rs crates/rl/src/qtable.rs crates/rl/src/rng.rs crates/rl/src/sampling.rs crates/rl/src/sarsa.rs Cargo.toml

/root/repo/clippy.toml:
crates/rl/src/lib.rs:
crates/rl/src/eval.rs:
crates/rl/src/fixed.rs:
crates/rl/src/io.rs:
crates/rl/src/online.rs:
crates/rl/src/policy.rs:
crates/rl/src/qlearning.rs:
crates/rl/src/qtable.rs:
crates/rl/src/rng.rs:
crates/rl/src/sampling.rs:
crates/rl/src/sarsa.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
