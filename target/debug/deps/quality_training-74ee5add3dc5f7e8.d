/root/repo/target/debug/deps/quality_training-74ee5add3dc5f7e8.d: crates/bench/src/bin/quality_training.rs

/root/repo/target/debug/deps/quality_training-74ee5add3dc5f7e8: crates/bench/src/bin/quality_training.rs

crates/bench/src/bin/quality_training.rs:
