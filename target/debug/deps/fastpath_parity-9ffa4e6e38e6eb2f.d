/root/repo/target/debug/deps/fastpath_parity-9ffa4e6e38e6eb2f.d: tests/fastpath_parity.rs

/root/repo/target/debug/deps/fastpath_parity-9ffa4e6e38e6eb2f: tests/fastpath_parity.rs

tests/fastpath_parity.rs:
