/root/repo/target/debug/deps/service-d365c7da195a5286.d: tests/service.rs

/root/repo/target/debug/deps/service-d365c7da195a5286: tests/service.rs

tests/service.rs:
