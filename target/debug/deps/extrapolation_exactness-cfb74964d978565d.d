/root/repo/target/debug/deps/extrapolation_exactness-cfb74964d978565d.d: tests/extrapolation_exactness.rs

/root/repo/target/debug/deps/extrapolation_exactness-cfb74964d978565d: tests/extrapolation_exactness.rs

tests/extrapolation_exactness.rs:
