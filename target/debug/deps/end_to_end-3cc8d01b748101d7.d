/root/repo/target/debug/deps/end_to_end-3cc8d01b748101d7.d: /root/repo/clippy.toml tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-3cc8d01b748101d7.rmeta: /root/repo/clippy.toml tests/end_to_end.rs Cargo.toml

/root/repo/clippy.toml:
tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
