/root/repo/target/debug/deps/service_throughput-fa3670034fe6bac2.d: crates/bench/src/bin/service_throughput.rs

/root/repo/target/debug/deps/service_throughput-fa3670034fe6bac2: crates/bench/src/bin/service_throughput.rs

crates/bench/src/bin/service_throughput.rs:
