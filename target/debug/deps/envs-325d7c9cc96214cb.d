/root/repo/target/debug/deps/envs-325d7c9cc96214cb.d: /root/repo/clippy.toml crates/bench/benches/envs.rs Cargo.toml

/root/repo/target/debug/deps/libenvs-325d7c9cc96214cb.rmeta: /root/repo/clippy.toml crates/bench/benches/envs.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/envs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
