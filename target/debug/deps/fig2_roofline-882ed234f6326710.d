/root/repo/target/debug/deps/fig2_roofline-882ed234f6326710.d: crates/bench/src/bin/fig2_roofline.rs

/root/repo/target/debug/deps/fig2_roofline-882ed234f6326710: crates/bench/src/bin/fig2_roofline.rs

crates/bench/src/bin/fig2_roofline.rs:
