/root/repo/target/debug/deps/table1_systems-18db652c031d46df.d: crates/bench/src/bin/table1_systems.rs

/root/repo/target/debug/deps/table1_systems-18db652c031d46df: crates/bench/src/bin/table1_systems.rs

crates/bench/src/bin/table1_systems.rs:
