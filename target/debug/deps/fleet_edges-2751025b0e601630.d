/root/repo/target/debug/deps/fleet_edges-2751025b0e601630.d: tests/fleet_edges.rs

/root/repo/target/debug/deps/fleet_edges-2751025b0e601630: tests/fleet_edges.rs

tests/fleet_edges.rs:
