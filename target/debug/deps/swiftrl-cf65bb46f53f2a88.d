/root/repo/target/debug/deps/swiftrl-cf65bb46f53f2a88.d: src/lib.rs

/root/repo/target/debug/deps/libswiftrl-cf65bb46f53f2a88.rlib: src/lib.rs

/root/repo/target/debug/deps/libswiftrl-cf65bb46f53f2a88.rmeta: src/lib.rs

src/lib.rs:
