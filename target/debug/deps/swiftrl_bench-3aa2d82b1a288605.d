/root/repo/target/debug/deps/swiftrl_bench-3aa2d82b1a288605.d: crates/bench/src/lib.rs crates/bench/src/scaling.rs

/root/repo/target/debug/deps/swiftrl_bench-3aa2d82b1a288605: crates/bench/src/lib.rs crates/bench/src/scaling.rs

crates/bench/src/lib.rs:
crates/bench/src/scaling.rs:
