/root/repo/target/debug/deps/ablations-a2d3199e5fb5ae79.d: /root/repo/clippy.toml crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-a2d3199e5fb5ae79.rmeta: /root/repo/clippy.toml crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
