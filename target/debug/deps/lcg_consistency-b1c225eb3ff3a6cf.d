/root/repo/target/debug/deps/lcg_consistency-b1c225eb3ff3a6cf.d: /root/repo/clippy.toml tests/lcg_consistency.rs Cargo.toml

/root/repo/target/debug/deps/liblcg_consistency-b1c225eb3ff3a6cf.rmeta: /root/repo/clippy.toml tests/lcg_consistency.rs Cargo.toml

/root/repo/clippy.toml:
tests/lcg_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
