/root/repo/target/debug/deps/sim_throughput-2ab32d5271950b17.d: /root/repo/clippy.toml crates/bench/src/bin/sim_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libsim_throughput-2ab32d5271950b17.rmeta: /root/repo/clippy.toml crates/bench/src/bin/sim_throughput.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/sim_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
