/root/repo/target/debug/deps/swiftrl_core-ea5a0ef4305a3dd8.d: /root/repo/clippy.toml crates/core/src/lib.rs crates/core/src/backend.rs crates/core/src/breakdown.rs crates/core/src/config.rs crates/core/src/kernels.rs crates/core/src/layout.rs crates/core/src/multi_agent.rs crates/core/src/partition.rs crates/core/src/resilience.rs crates/core/src/runner.rs crates/core/src/service.rs Cargo.toml

/root/repo/target/debug/deps/libswiftrl_core-ea5a0ef4305a3dd8.rmeta: /root/repo/clippy.toml crates/core/src/lib.rs crates/core/src/backend.rs crates/core/src/breakdown.rs crates/core/src/config.rs crates/core/src/kernels.rs crates/core/src/layout.rs crates/core/src/multi_agent.rs crates/core/src/partition.rs crates/core/src/resilience.rs crates/core/src/runner.rs crates/core/src/service.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/lib.rs:
crates/core/src/backend.rs:
crates/core/src/breakdown.rs:
crates/core/src/config.rs:
crates/core/src/kernels.rs:
crates/core/src/layout.rs:
crates/core/src/multi_agent.rs:
crates/core/src/partition.rs:
crates/core/src/resilience.rs:
crates/core/src/runner.rs:
crates/core/src/service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
