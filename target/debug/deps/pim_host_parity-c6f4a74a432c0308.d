/root/repo/target/debug/deps/pim_host_parity-c6f4a74a432c0308.d: /root/repo/clippy.toml tests/pim_host_parity.rs Cargo.toml

/root/repo/target/debug/deps/libpim_host_parity-c6f4a74a432c0308.rmeta: /root/repo/clippy.toml tests/pim_host_parity.rs Cargo.toml

/root/repo/clippy.toml:
tests/pim_host_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
