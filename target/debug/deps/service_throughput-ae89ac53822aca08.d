/root/repo/target/debug/deps/service_throughput-ae89ac53822aca08.d: /root/repo/clippy.toml crates/bench/src/bin/service_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libservice_throughput-ae89ac53822aca08.rmeta: /root/repo/clippy.toml crates/bench/src/bin/service_throughput.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/service_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
