/root/repo/target/debug/deps/fig5_frozenlake_scaling-ca53451744d0cbb2.d: /root/repo/clippy.toml crates/bench/src/bin/fig5_frozenlake_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_frozenlake_scaling-ca53451744d0cbb2.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig5_frozenlake_scaling.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig5_frozenlake_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
