/root/repo/target/debug/deps/fig7_cpu_gpu_pim-12d7d09967eb560e.d: crates/bench/src/bin/fig7_cpu_gpu_pim.rs

/root/repo/target/debug/deps/fig7_cpu_gpu_pim-12d7d09967eb560e: crates/bench/src/bin/fig7_cpu_gpu_pim.rs

crates/bench/src/bin/fig7_cpu_gpu_pim.rs:
