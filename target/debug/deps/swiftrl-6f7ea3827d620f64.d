/root/repo/target/debug/deps/swiftrl-6f7ea3827d620f64.d: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libswiftrl-6f7ea3827d620f64.rmeta: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/clippy.toml:
src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
