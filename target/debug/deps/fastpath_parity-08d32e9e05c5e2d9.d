/root/repo/target/debug/deps/fastpath_parity-08d32e9e05c5e2d9.d: /root/repo/clippy.toml tests/fastpath_parity.rs Cargo.toml

/root/repo/target/debug/deps/libfastpath_parity-08d32e9e05c5e2d9.rmeta: /root/repo/clippy.toml tests/fastpath_parity.rs Cargo.toml

/root/repo/clippy.toml:
tests/fastpath_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
