/root/repo/target/debug/deps/proptest-d8ab565450dd3920.d: target/_stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-d8ab565450dd3920.rlib: target/_stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-d8ab565450dd3920.rmeta: target/_stubs/proptest/src/lib.rs

target/_stubs/proptest/src/lib.rs:
