/root/repo/target/debug/deps/resilience-fb2e55604962847b.d: tests/resilience.rs

/root/repo/target/debug/deps/resilience-fb2e55604962847b: tests/resilience.rs

tests/resilience.rs:
