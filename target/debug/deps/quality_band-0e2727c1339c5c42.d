/root/repo/target/debug/deps/quality_band-0e2727c1339c5c42.d: tests/quality_band.rs

/root/repo/target/debug/deps/quality_band-0e2727c1339c5c42: tests/quality_band.rs

tests/quality_band.rs:
