/root/repo/target/debug/deps/swiftrl_baselines-a7deb708ebd6d2db.d: crates/baselines/src/lib.rs crates/baselines/src/cpu_exec.rs crates/baselines/src/cpu_model.rs crates/baselines/src/energy.rs crates/baselines/src/gpu_model.rs crates/baselines/src/roofline.rs crates/baselines/src/specs.rs

/root/repo/target/debug/deps/libswiftrl_baselines-a7deb708ebd6d2db.rlib: crates/baselines/src/lib.rs crates/baselines/src/cpu_exec.rs crates/baselines/src/cpu_model.rs crates/baselines/src/energy.rs crates/baselines/src/gpu_model.rs crates/baselines/src/roofline.rs crates/baselines/src/specs.rs

/root/repo/target/debug/deps/libswiftrl_baselines-a7deb708ebd6d2db.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cpu_exec.rs crates/baselines/src/cpu_model.rs crates/baselines/src/energy.rs crates/baselines/src/gpu_model.rs crates/baselines/src/roofline.rs crates/baselines/src/specs.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cpu_exec.rs:
crates/baselines/src/cpu_model.rs:
crates/baselines/src/energy.rs:
crates/baselines/src/gpu_model.rs:
crates/baselines/src/roofline.rs:
crates/baselines/src/specs.rs:
