/root/repo/target/debug/deps/fig6_taxi_scaling-4a162f68e1f5e667.d: crates/bench/src/bin/fig6_taxi_scaling.rs

/root/repo/target/debug/deps/fig6_taxi_scaling-4a162f68e1f5e667: crates/bench/src/bin/fig6_taxi_scaling.rs

crates/bench/src/bin/fig6_taxi_scaling.rs:
