/root/repo/target/debug/deps/swiftrl_env-e15ae29f967271c9.d: crates/env/src/lib.rs crates/env/src/cliff_walking.rs crates/env/src/collect.rs crates/env/src/dataset.rs crates/env/src/env.rs crates/env/src/frozen_lake.rs crates/env/src/taxi.rs

/root/repo/target/debug/deps/swiftrl_env-e15ae29f967271c9: crates/env/src/lib.rs crates/env/src/cliff_walking.rs crates/env/src/collect.rs crates/env/src/dataset.rs crates/env/src/env.rs crates/env/src/frozen_lake.rs crates/env/src/taxi.rs

crates/env/src/lib.rs:
crates/env/src/cliff_walking.rs:
crates/env/src/collect.rs:
crates/env/src/dataset.rs:
crates/env/src/env.rs:
crates/env/src/frozen_lake.rs:
crates/env/src/taxi.rs:
