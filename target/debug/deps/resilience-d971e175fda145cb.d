/root/repo/target/debug/deps/resilience-d971e175fda145cb.d: /root/repo/clippy.toml tests/resilience.rs Cargo.toml

/root/repo/target/debug/deps/libresilience-d971e175fda145cb.rmeta: /root/repo/clippy.toml tests/resilience.rs Cargo.toml

/root/repo/clippy.toml:
tests/resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
