/root/repo/target/debug/deps/quality_training-7cdf8a7f209c6e10.d: crates/bench/src/bin/quality_training.rs

/root/repo/target/debug/deps/quality_training-7cdf8a7f209c6e10: crates/bench/src/bin/quality_training.rs

crates/bench/src/bin/quality_training.rs:
