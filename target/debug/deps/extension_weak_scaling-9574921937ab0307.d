/root/repo/target/debug/deps/extension_weak_scaling-9574921937ab0307.d: crates/bench/src/bin/extension_weak_scaling.rs

/root/repo/target/debug/deps/extension_weak_scaling-9574921937ab0307: crates/bench/src/bin/extension_weak_scaling.rs

crates/bench/src/bin/extension_weak_scaling.rs:
