/root/repo/target/debug/deps/fig5_frozenlake_scaling-5aa8f332dcd4caa4.d: crates/bench/src/bin/fig5_frozenlake_scaling.rs

/root/repo/target/debug/deps/fig5_frozenlake_scaling-5aa8f332dcd4caa4: crates/bench/src/bin/fig5_frozenlake_scaling.rs

crates/bench/src/bin/fig5_frozenlake_scaling.rs:
