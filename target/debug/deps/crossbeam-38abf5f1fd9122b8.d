/root/repo/target/debug/deps/crossbeam-38abf5f1fd9122b8.d: target/_stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-38abf5f1fd9122b8.rmeta: target/_stubs/crossbeam/src/lib.rs

target/_stubs/crossbeam/src/lib.rs:
