/root/repo/target/debug/deps/end_to_end-e81aa94047e7b6b5.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-e81aa94047e7b6b5: tests/end_to_end.rs

tests/end_to_end.rs:
