/root/repo/target/debug/deps/engine_determinism-2643b3ff3184673f.d: tests/engine_determinism.rs

/root/repo/target/debug/deps/engine_determinism-2643b3ff3184673f: tests/engine_determinism.rs

tests/engine_determinism.rs:
