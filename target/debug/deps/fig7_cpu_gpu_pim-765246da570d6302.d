/root/repo/target/debug/deps/fig7_cpu_gpu_pim-765246da570d6302.d: /root/repo/clippy.toml crates/bench/src/bin/fig7_cpu_gpu_pim.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_cpu_gpu_pim-765246da570d6302.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig7_cpu_gpu_pim.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig7_cpu_gpu_pim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
