/root/repo/target/debug/deps/swiftrl_core-9b85b0f381e23f06.d: crates/core/src/lib.rs crates/core/src/backend.rs crates/core/src/breakdown.rs crates/core/src/config.rs crates/core/src/kernels.rs crates/core/src/layout.rs crates/core/src/multi_agent.rs crates/core/src/partition.rs crates/core/src/resilience.rs crates/core/src/runner.rs crates/core/src/service.rs

/root/repo/target/debug/deps/swiftrl_core-9b85b0f381e23f06: crates/core/src/lib.rs crates/core/src/backend.rs crates/core/src/breakdown.rs crates/core/src/config.rs crates/core/src/kernels.rs crates/core/src/layout.rs crates/core/src/multi_agent.rs crates/core/src/partition.rs crates/core/src/resilience.rs crates/core/src/runner.rs crates/core/src/service.rs

crates/core/src/lib.rs:
crates/core/src/backend.rs:
crates/core/src/breakdown.rs:
crates/core/src/config.rs:
crates/core/src/kernels.rs:
crates/core/src/layout.rs:
crates/core/src/multi_agent.rs:
crates/core/src/partition.rs:
crates/core/src/resilience.rs:
crates/core/src/runner.rs:
crates/core/src/service.rs:
