/root/repo/target/debug/deps/extension_envs-a3285a793b42f523.d: /root/repo/clippy.toml crates/bench/src/bin/extension_envs.rs Cargo.toml

/root/repo/target/debug/deps/libextension_envs-a3285a793b42f523.rmeta: /root/repo/clippy.toml crates/bench/src/bin/extension_envs.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/extension_envs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
