/root/repo/target/debug/deps/swiftrl_env-95f1ee88aa4bad1f.d: crates/env/src/lib.rs crates/env/src/cliff_walking.rs crates/env/src/collect.rs crates/env/src/dataset.rs crates/env/src/env.rs crates/env/src/frozen_lake.rs crates/env/src/taxi.rs

/root/repo/target/debug/deps/swiftrl_env-95f1ee88aa4bad1f: crates/env/src/lib.rs crates/env/src/cliff_walking.rs crates/env/src/collect.rs crates/env/src/dataset.rs crates/env/src/env.rs crates/env/src/frozen_lake.rs crates/env/src/taxi.rs

crates/env/src/lib.rs:
crates/env/src/cliff_walking.rs:
crates/env/src/collect.rs:
crates/env/src/dataset.rs:
crates/env/src/env.rs:
crates/env/src/frozen_lake.rs:
crates/env/src/taxi.rs:
