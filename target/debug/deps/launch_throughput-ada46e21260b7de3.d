/root/repo/target/debug/deps/launch_throughput-ada46e21260b7de3.d: /root/repo/clippy.toml crates/bench/benches/launch_throughput.rs Cargo.toml

/root/repo/target/debug/deps/liblaunch_throughput-ada46e21260b7de3.rmeta: /root/repo/clippy.toml crates/bench/benches/launch_throughput.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/launch_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
