/root/repo/target/debug/deps/swiftrl_bench-2a64d172efb8f8b5.d: /root/repo/clippy.toml crates/bench/src/lib.rs crates/bench/src/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libswiftrl_bench-2a64d172efb8f8b5.rmeta: /root/repo/clippy.toml crates/bench/src/lib.rs crates/bench/src/scaling.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/lib.rs:
crates/bench/src/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
