/root/repo/target/debug/deps/parking_lot-fe07ff0e5e76580e.d: target/_stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-fe07ff0e5e76580e.rmeta: target/_stubs/parking_lot/src/lib.rs

target/_stubs/parking_lot/src/lib.rs:
