/root/repo/target/debug/deps/sim_throughput-2bebf03e2d981e8c.d: crates/bench/src/bin/sim_throughput.rs

/root/repo/target/debug/deps/sim_throughput-2bebf03e2d981e8c: crates/bench/src/bin/sim_throughput.rs

crates/bench/src/bin/sim_throughput.rs:
