/root/repo/target/debug/deps/swiftrl_baselines-7615f10490b690d0.d: /root/repo/clippy.toml crates/baselines/src/lib.rs crates/baselines/src/cpu_exec.rs crates/baselines/src/cpu_model.rs crates/baselines/src/energy.rs crates/baselines/src/gpu_model.rs crates/baselines/src/roofline.rs crates/baselines/src/specs.rs Cargo.toml

/root/repo/target/debug/deps/libswiftrl_baselines-7615f10490b690d0.rmeta: /root/repo/clippy.toml crates/baselines/src/lib.rs crates/baselines/src/cpu_exec.rs crates/baselines/src/cpu_model.rs crates/baselines/src/energy.rs crates/baselines/src/gpu_model.rs crates/baselines/src/roofline.rs crates/baselines/src/specs.rs Cargo.toml

/root/repo/clippy.toml:
crates/baselines/src/lib.rs:
crates/baselines/src/cpu_exec.rs:
crates/baselines/src/cpu_model.rs:
crates/baselines/src/energy.rs:
crates/baselines/src/gpu_model.rs:
crates/baselines/src/roofline.rs:
crates/baselines/src/specs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
