/root/repo/target/debug/deps/fleet_scaling-b31e518f084e21d6.d: crates/bench/src/bin/fleet_scaling.rs

/root/repo/target/debug/deps/fleet_scaling-b31e518f084e21d6: crates/bench/src/bin/fleet_scaling.rs

crates/bench/src/bin/fleet_scaling.rs:
