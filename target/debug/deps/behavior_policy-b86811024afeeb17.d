/root/repo/target/debug/deps/behavior_policy-b86811024afeeb17.d: crates/bench/src/bin/behavior_policy.rs

/root/repo/target/debug/deps/behavior_policy-b86811024afeeb17: crates/bench/src/bin/behavior_policy.rs

crates/bench/src/bin/behavior_policy.rs:
