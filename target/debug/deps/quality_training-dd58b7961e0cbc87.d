/root/repo/target/debug/deps/quality_training-dd58b7961e0cbc87.d: /root/repo/clippy.toml crates/bench/src/bin/quality_training.rs Cargo.toml

/root/repo/target/debug/deps/libquality_training-dd58b7961e0cbc87.rmeta: /root/repo/clippy.toml crates/bench/src/bin/quality_training.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/quality_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
