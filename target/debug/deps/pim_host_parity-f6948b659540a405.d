/root/repo/target/debug/deps/pim_host_parity-f6948b659540a405.d: tests/pim_host_parity.rs

/root/repo/target/debug/deps/pim_host_parity-f6948b659540a405: tests/pim_host_parity.rs

tests/pim_host_parity.rs:
