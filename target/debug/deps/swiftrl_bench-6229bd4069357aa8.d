/root/repo/target/debug/deps/swiftrl_bench-6229bd4069357aa8.d: /root/repo/clippy.toml crates/bench/src/lib.rs crates/bench/src/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libswiftrl_bench-6229bd4069357aa8.rmeta: /root/repo/clippy.toml crates/bench/src/lib.rs crates/bench/src/scaling.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/lib.rs:
crates/bench/src/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
