/root/repo/target/debug/deps/extension_envs-0115b830e96c889b.d: crates/bench/src/bin/extension_envs.rs

/root/repo/target/debug/deps/extension_envs-0115b830e96c889b: crates/bench/src/bin/extension_envs.rs

crates/bench/src/bin/extension_envs.rs:
