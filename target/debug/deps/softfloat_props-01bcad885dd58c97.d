/root/repo/target/debug/deps/softfloat_props-01bcad885dd58c97.d: crates/pim/tests/softfloat_props.rs

/root/repo/target/debug/deps/softfloat_props-01bcad885dd58c97: crates/pim/tests/softfloat_props.rs

crates/pim/tests/softfloat_props.rs:
