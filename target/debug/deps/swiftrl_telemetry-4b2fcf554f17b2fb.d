/root/repo/target/debug/deps/swiftrl_telemetry-4b2fcf554f17b2fb.d: /root/repo/clippy.toml crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sink.rs crates/telemetry/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libswiftrl_telemetry-4b2fcf554f17b2fb.rmeta: /root/repo/clippy.toml crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sink.rs crates/telemetry/src/trace.rs Cargo.toml

/root/repo/clippy.toml:
crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
