/root/repo/target/debug/deps/sanitizer-341b74ded1f1ff67.d: /root/repo/clippy.toml tests/sanitizer.rs Cargo.toml

/root/repo/target/debug/deps/libsanitizer-341b74ded1f1ff67.rmeta: /root/repo/clippy.toml tests/sanitizer.rs Cargo.toml

/root/repo/clippy.toml:
tests/sanitizer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
