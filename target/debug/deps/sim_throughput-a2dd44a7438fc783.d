/root/repo/target/debug/deps/sim_throughput-a2dd44a7438fc783.d: crates/bench/src/bin/sim_throughput.rs

/root/repo/target/debug/deps/sim_throughput-a2dd44a7438fc783: crates/bench/src/bin/sim_throughput.rs

crates/bench/src/bin/sim_throughput.rs:
