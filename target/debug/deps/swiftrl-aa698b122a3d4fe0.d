/root/repo/target/debug/deps/swiftrl-aa698b122a3d4fe0.d: src/lib.rs

/root/repo/target/debug/deps/swiftrl-aa698b122a3d4fe0: src/lib.rs

src/lib.rs:
