/root/repo/target/debug/deps/service-ca985027d4f17edc.d: /root/repo/clippy.toml tests/service.rs Cargo.toml

/root/repo/target/debug/deps/libservice-ca985027d4f17edc.rmeta: /root/repo/clippy.toml tests/service.rs Cargo.toml

/root/repo/clippy.toml:
tests/service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
