/root/repo/target/debug/deps/extrapolation_exactness-07e79c9bea2ee1b5.d: /root/repo/clippy.toml tests/extrapolation_exactness.rs Cargo.toml

/root/repo/target/debug/deps/libextrapolation_exactness-07e79c9bea2ee1b5.rmeta: /root/repo/clippy.toml tests/extrapolation_exactness.rs Cargo.toml

/root/repo/clippy.toml:
tests/extrapolation_exactness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
