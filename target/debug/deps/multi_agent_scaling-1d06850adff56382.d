/root/repo/target/debug/deps/multi_agent_scaling-1d06850adff56382.d: crates/bench/src/bin/multi_agent_scaling.rs

/root/repo/target/debug/deps/multi_agent_scaling-1d06850adff56382: crates/bench/src/bin/multi_agent_scaling.rs

crates/bench/src/bin/multi_agent_scaling.rs:
