/root/repo/target/debug/deps/serde-549518644681778a.d: target/_stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-549518644681778a.rlib: target/_stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-549518644681778a.rmeta: target/_stubs/serde/src/lib.rs

target/_stubs/serde/src/lib.rs:
