/root/repo/target/debug/deps/serde_derive-0d9b7ea068f58518.d: target/_stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-0d9b7ea068f58518.so: target/_stubs/serde_derive/src/lib.rs

target/_stubs/serde_derive/src/lib.rs:
