/root/repo/target/debug/deps/parking_lot-43918c9f85af8580.d: target/_stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-43918c9f85af8580.rlib: target/_stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-43918c9f85af8580.rmeta: target/_stubs/parking_lot/src/lib.rs

target/_stubs/parking_lot/src/lib.rs:
