/root/repo/target/debug/deps/table1_systems-f9ecd97d9897bbfc.d: crates/bench/src/bin/table1_systems.rs

/root/repo/target/debug/deps/table1_systems-f9ecd97d9897bbfc: crates/bench/src/bin/table1_systems.rs

crates/bench/src/bin/table1_systems.rs:
