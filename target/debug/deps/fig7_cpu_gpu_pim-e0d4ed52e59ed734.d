/root/repo/target/debug/deps/fig7_cpu_gpu_pim-e0d4ed52e59ed734.d: crates/bench/src/bin/fig7_cpu_gpu_pim.rs

/root/repo/target/debug/deps/fig7_cpu_gpu_pim-e0d4ed52e59ed734: crates/bench/src/bin/fig7_cpu_gpu_pim.rs

crates/bench/src/bin/fig7_cpu_gpu_pim.rs:
