/root/repo/target/debug/deps/env_props-f83a1a6ec60a837f.d: crates/env/tests/env_props.rs

/root/repo/target/debug/deps/env_props-f83a1a6ec60a837f: crates/env/tests/env_props.rs

crates/env/tests/env_props.rs:
