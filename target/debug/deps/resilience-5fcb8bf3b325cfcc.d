/root/repo/target/debug/deps/resilience-5fcb8bf3b325cfcc.d: crates/bench/src/bin/resilience.rs

/root/repo/target/debug/deps/resilience-5fcb8bf3b325cfcc: crates/bench/src/bin/resilience.rs

crates/bench/src/bin/resilience.rs:
