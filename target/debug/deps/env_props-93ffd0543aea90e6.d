/root/repo/target/debug/deps/env_props-93ffd0543aea90e6.d: crates/env/tests/env_props.rs

/root/repo/target/debug/deps/env_props-93ffd0543aea90e6: crates/env/tests/env_props.rs

crates/env/tests/env_props.rs:
