/root/repo/target/debug/deps/swiftrl_analysis-14e4e843eb2a27e1.d: crates/analysis/src/main.rs

/root/repo/target/debug/deps/swiftrl_analysis-14e4e843eb2a27e1: crates/analysis/src/main.rs

crates/analysis/src/main.rs:
