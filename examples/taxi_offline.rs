//! Offline RL on the Taxi environment: compares the FP32 and INT32
//! kernels on the same dataset — the paper's headline optimization — and
//! verifies both learn equivalent policies.
//!
//! ```text
//! cargo run --release --example taxi_offline
//! ```

use swiftrl::core::config::{RunConfig, WorkloadSpec};
use swiftrl::core::runner::PimRunner;
use swiftrl::env::collect::collect_random;
use swiftrl::env::taxi::Taxi;
use swiftrl::rl::eval::evaluate_greedy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut env = Taxi::new();
    let dataset = collect_random(&mut env, 400_000, 7);
    println!(
        "taxi dataset: {} transitions over Discrete({}) x Discrete({})",
        dataset.len(),
        dataset.num_states(),
        dataset.num_actions()
    );

    let cfg = RunConfig::paper_defaults()
        .with_dpus(100)
        .with_episodes(400)
        .with_tau(50);

    for spec in [
        WorkloadSpec::q_learning_seq_fp32(),
        WorkloadSpec::q_learning_seq_int32(),
    ] {
        let outcome = PimRunner::new(spec, cfg)?.run(&dataset)?;
        let stats = evaluate_greedy(&mut env, &outcome.q_table, 500, 3);
        println!("\n{spec}:");
        println!("  {}", outcome.breakdown);
        println!(
            "  mean reward {:.2} (optimal ~ +8; random ~ -770)",
            stats.mean_reward
        );
    }

    println!(
        "\nThe INT32 kernel avoids the runtime library's floating-point \
         emulation, which is why its PIM-kernel time is several times \
         smaller at equal policy quality."
    );
    Ok(())
}
