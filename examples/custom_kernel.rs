//! Program the PIM substrate directly: write a custom DPU kernel against
//! the intrinsics API and inspect its cycle accounting — the same
//! machinery the SwiftRL kernels are built on.
//!
//! The kernel computes a dot product of two FP32 vectors stored in MRAM,
//! once with emulated floating point and once in 16.16 fixed point, and
//! prints the cost difference (the paper's FP32-vs-INT32 story at the
//! scale of one kernel).
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use swiftrl::pim::config::PimConfig;
use swiftrl::pim::host::PimSystem;
use swiftrl::pim::kernel::{DpuContext, Kernel, KernelError, F32};

const N: usize = 1_024;
const A_OFFSET: usize = 0;
const B_OFFSET: usize = 8 * 1_024;
const OUT_OFFSET: usize = 64 * 1_024;

/// Dot product with runtime-library emulated FP32.
struct DotFp32;

impl Kernel for DotFp32 {
    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
        // WRAM-sized stack buffers: kernels must not heap-allocate (K002).
        let mut a = [0u8; 4 * N];
        let mut b = [0u8; 4 * N];
        ctx.mram_read(A_OFFSET, &mut a)?;
        ctx.mram_read(B_OFFSET, &mut b)?;
        let word = |buf: &[u8], i: usize| {
            F32(u32::from_le_bytes([
                buf[4 * i],
                buf[4 * i + 1],
                buf[4 * i + 2],
                buf[4 * i + 3],
            ]))
        };
        let mut acc = F32::ZERO;
        for i in 0..N {
            let prod = ctx.fmul(word(&a, i), word(&b, i));
            acc = ctx.fadd(acc, prod);
        }
        // Widen to the 8-byte DMA granule; the host reads the low word.
        ctx.mram_write(OUT_OFFSET, &u64::from(acc.bits()).to_le_bytes())?;
        Ok(())
    }
}

/// The same dot product in 16.16 fixed point with native-ish integers.
struct DotFixed;

impl Kernel for DotFixed {
    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
        let mut a = [0u8; 4 * N];
        let mut b = [0u8; 4 * N];
        ctx.mram_read(A_OFFSET, &mut a)?;
        ctx.mram_read(B_OFFSET, &mut b)?;
        let word = |buf: &[u8], i: usize| {
            i32::from_le_bytes([buf[4 * i], buf[4 * i + 1], buf[4 * i + 2], buf[4 * i + 3]])
        };
        let mut acc = 0i64;
        for i in 0..N {
            // Convert FP32 inputs host-side? No: this kernel expects
            // pre-scaled fixed-point inputs (done at load time below).
            let prod = ctx.mul_wide(word(&a, i), word(&b, i));
            acc = acc.wrapping_add(prod >> 16);
            ctx.charge_alu(2); // 64-bit add
        }
        ctx.mram_write(OUT_OFFSET, &u64::from(acc as i32 as u32).to_le_bytes())?;
        Ok(())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut system = PimSystem::new(PimConfig::builder().dpus(1).build());
    let mut set = system.alloc(1)?;

    // Load the vectors: FP32 bits for the float kernel.
    let xs: Vec<f32> = (0..N).map(|i| (i as f32 * 0.001).sin()).collect();
    let ys: Vec<f32> = (0..N).map(|i| (i as f32 * 0.002).cos()).collect();
    let to_bytes_f32 = |v: &[f32]| -> Vec<u8> { v.iter().flat_map(|x| x.to_bits().to_le_bytes()).collect() };
    set.copy_to(0, A_OFFSET, &to_bytes_f32(&xs))?;
    set.copy_to(0, B_OFFSET, &to_bytes_f32(&ys))?;
    set.launch(&DotFp32)?;
    let fp32_cycles = set.last_launch().max_cycles;
    let out = set.copy_from(0, OUT_OFFSET, 4)?;
    let fp32_result = f32::from_bits(u32::from_le_bytes(out.try_into().expect("copy_from returned 4 bytes")));

    // Reload as 16.16 fixed point for the integer kernel.
    let to_fixed = |v: &[f32]| -> Vec<u8> {
        v.iter()
            .flat_map(|x| (((*x) * 65_536.0) as i32).to_le_bytes())
            .collect()
    };
    set.copy_to(0, A_OFFSET, &to_fixed(&xs))?;
    set.copy_to(0, B_OFFSET, &to_fixed(&ys))?;
    set.launch(&DotFixed)?;
    let fixed_cycles = set.last_launch().max_cycles;
    let out = set.copy_from(0, OUT_OFFSET, 4)?;
    let fixed_result = i32::from_le_bytes(out.try_into().expect("copy_from returned 4 bytes")) as f32 / 65_536.0;

    let host: f32 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
    println!("dot product of {N} elements on one DPU:");
    println!("  host reference : {host:.4}");
    println!("  FP32 emulated  : {fp32_result:.4}  ({fp32_cycles} cycles)");
    println!("  16.16 fixed    : {fixed_result:.4}  ({fixed_cycles} cycles)");
    println!(
        "  emulation cost : {:.1}x more cycles for floating point",
        fp32_cycles as f64 / fixed_cycles as f64
    );
    Ok(())
}
