//! Bring your own environment: implement [`DiscreteEnv`] for a custom
//! task and train it on the PIM system unchanged.
//!
//! The environment here is a windy corridor: the agent walks right toward
//! a goal, but wind occasionally pushes it back one cell.
//!
//! ```text
//! cargo run --release --example custom_env
//! ```

use swiftrl::core::config::{RunConfig, WorkloadSpec};
use swiftrl::core::runner::PimRunner;
use swiftrl::env::collect::collect_random;
use swiftrl::env::{Action, DiscreteEnv, State, Step};
use swiftrl::rl::eval::evaluate_greedy;

/// A 1-D corridor of `n` cells. Actions: 0 = left, 1 = right. Reaching
/// the last cell yields +1 and ends the episode; wind pushes the agent
/// one cell left with probability 1/4 regardless of the action.
#[derive(Debug)]
struct WindyCorridor {
    n: u32,
    pos: u32,
    steps: u32,
    done: bool,
}

impl WindyCorridor {
    fn new(n: u32) -> Self {
        assert!(n >= 2);
        Self {
            n,
            pos: 0,
            steps: 0,
            done: true,
        }
    }
}

impl DiscreteEnv for WindyCorridor {
    fn name(&self) -> &str {
        "windy_corridor"
    }

    fn num_states(&self) -> usize {
        self.n as usize
    }

    fn num_actions(&self) -> usize {
        2
    }

    fn reset(&mut self, _rng: &mut dyn rand::RngCore) -> State {
        self.pos = 0;
        self.steps = 0;
        self.done = false;
        State(0)
    }

    fn step(&mut self, action: Action, rng: &mut dyn rand::RngCore) -> Step {
        assert!(!self.done, "episode finished");
        // Intended move.
        self.pos = match action.0 {
            0 => self.pos.saturating_sub(1),
            1 => (self.pos + 1).min(self.n - 1),
            a => panic!("invalid action {a}"),
        };
        // Wind: 1-in-4 chance of being blown back.
        if rng.next_u32().is_multiple_of(4) {
            self.pos = self.pos.saturating_sub(1);
        }
        self.steps += 1;
        let done = self.pos == self.n - 1 || self.steps >= 200;
        let reward = if self.pos == self.n - 1 { 1.0 } else { 0.0 };
        self.done = done;
        Step {
            next_state: State(self.pos),
            reward,
            done,
        }
    }

    fn state(&self) -> State {
        State(self.pos)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut env = WindyCorridor::new(12);
    let dataset = collect_random(&mut env, 50_000, 5);
    println!(
        "custom environment '{}': {} states, {} actions, {} transitions collected",
        env.name(),
        env.num_states(),
        env.num_actions(),
        dataset.len()
    );

    let outcome = PimRunner::new(
        WorkloadSpec::q_learning_seq_int32(),
        RunConfig::paper_defaults()
            .with_dpus(16)
            .with_episodes(100)
            .with_tau(50),
    )?
    .run(&dataset)?;

    let stats = evaluate_greedy(&mut env, &outcome.q_table, 500, 1);
    println!("modelled PIM time: {}", outcome.breakdown);
    println!(
        "mean reward {:.3}, mean episode length {:.1} steps \
         (always-right baseline needs ~14.7 steps over 11 cells of wind)",
        stats.mean_reward, stats.mean_length
    );
    Ok(())
}
