//! Multi-agent Q-learning: a fleet of independent learners, one per PIM
//! core, each with its own experience dataset and Q-table — the paper's
//! algorithmic-scaling workload (§3.2.1, §4.4).
//!
//! ```text
//! cargo run --release --example multi_agent_fleet
//! ```

use swiftrl::core::config::{RunConfig, WorkloadSpec};
use swiftrl::core::multi_agent::train_multi_agent;
use swiftrl::env::collect::collect_per_agent;
use swiftrl::env::frozen_lake::FrozenLake;
use swiftrl::rl::eval::evaluate_greedy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const AGENTS: usize = 32;

    let mut env = FrozenLake::slippery_4x4();
    let datasets = collect_per_agent(&mut env, AGENTS, 20_000, 99);
    println!("collected {} per-agent datasets of 20k transitions", AGENTS);

    let cfg = RunConfig::paper_defaults()
        .with_episodes(200)
        .with_tau(200); // tau is irrelevant: agents never synchronize
    let outcome = train_multi_agent(WorkloadSpec::q_learning_seq_int32(), &cfg, &datasets)?;

    println!("modelled PIM time: {}", outcome.breakdown);
    assert_eq!(outcome.breakdown.inter_pim_s, 0.0);

    // Each agent learned from its own data; evaluate a few of them.
    let mut rewards = Vec::new();
    for (agent, q) in outcome.q_tables.iter().enumerate() {
        let stats = evaluate_greedy(&mut env, q, 300, agent as u64);
        rewards.push(stats.mean_reward);
    }
    let mean = rewards.iter().sum::<f64>() / rewards.len() as f64;
    let best = rewards.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let worst = rewards.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "fleet of {AGENTS} agents: mean reward {mean:.3} (best {best:.3}, worst {worst:.3})"
    );
    println!(
        "agents train concurrently with zero inter-PIM communication — \
         the workload the paper finds best suited to the architecture."
    );
    Ok(())
}
