//! Quickstart: train tabular Q-learning on FrozenLake with SwiftRL's
//! PIM execution model, then evaluate the learned policy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use swiftrl::core::config::{RunConfig, WorkloadSpec};
use swiftrl::core::runner::PimRunner;
use swiftrl::env::collect::collect_random;
use swiftrl::env::frozen_lake::FrozenLake;
use swiftrl::rl::eval::evaluate_greedy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Offline data collection: a random behaviour policy interacts
    //    with the environment once and logs (s, a, r, s') experiences.
    let mut env = FrozenLake::slippery_4x4();
    let dataset = collect_random(&mut env, 100_000, 42);
    println!(
        "collected {} transitions from {} ({} states x {} actions)",
        dataset.len(),
        dataset.env_name(),
        dataset.num_states(),
        dataset.num_actions()
    );

    // 2. Train on 64 simulated PIM cores with the paper's INT32
    //    fixed-point optimization: the dataset is chunked across DPUs,
    //    each trains a local Q-table, and the host averages them every
    //    tau = 50 episodes.
    let spec = WorkloadSpec::q_learning_seq_int32();
    let cfg = RunConfig::paper_defaults()
        .with_dpus(64)
        .with_episodes(200)
        .with_tau(50);
    println!("training {spec} on {} PIM cores...", cfg.dpus);
    let outcome = PimRunner::new(spec, cfg)?.run(&dataset)?;

    // 3. Inspect the modelled execution-time breakdown (the four
    //    components of the paper's Figures 5-6).
    println!("modelled PIM time: {}", outcome.breakdown);

    // 4. Evaluate the aggregated policy greedily in the live environment.
    let stats = evaluate_greedy(&mut env, &outcome.q_table, 1_000, 7);
    println!(
        "mean reward over {} episodes: {:.3} (optimal on slippery 4x4 is ~0.74)",
        stats.episodes, stats.mean_reward
    );

    // 5. Show the learned policy on the lake map.
    println!("learned policy (H = hole, G = goal):");
    let q = &outcome.q_table;
    print!(
        "{}",
        env.render_policy(|s| q.greedy_action(swiftrl::env::State(s)).0)
    );
    Ok(())
}
