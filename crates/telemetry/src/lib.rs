#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `swiftrl-telemetry` — deterministic, engine-invariant observability
//! for the SwiftRL PIM simulator (DESIGN.md §11).
//!
//! The crate provides three layers:
//!
//! 1. **Event stream** ([`event::Event`], recorded by a [`Telemetry`]
//!    sink attached to `PimConfig`): typed host-side events for program
//!    loads, transfers, kernel launches (with per-DPU cycle spans on
//!    the simulated clock), sync rounds, fault injections and the
//!    resilience actions (retry/rollback/degradation). Everything is
//!    emitted after the engine's ordered merge, so the serial and
//!    threaded engines produce byte-identical streams.
//! 2. **Metrics snapshot** ([`MetricsSnapshot`]): cycle-class
//!    histograms, the per-launch imbalance distribution, transfer
//!    byte/latency totals and fault/resilience counters, rendered as
//!    versioned JSON shared by every bench binary.
//! 3. **Chrome trace export** ([`chrome_trace`]): a Perfetto-loadable
//!    `trace_event` timeline with one lane per DPU plus a host lane.
//! 4. **Service observability** ([`service`]): the typed
//!    [`ServiceEvent`] lifecycle/occupancy stream emitted by the
//!    multi-tenant training service, its logical-clock deterministic
//!    projection, the aggregated [`ServiceMetrics`] registry with
//!    Prometheus-style text exposition, and a fleet-wide
//!    [`service_trace`] timeline merging every tenant onto worker,
//!    rank and per-job lanes.
//!
//! The off switch is a true zero: a default (disabled) [`Telemetry`]
//! never evaluates event constructors, allocates nothing on the launch
//! hot path, and changes no simulated observable — pinned by the
//! differential test in `tests/telemetry.rs`.
//!
//! The crate is dependency-free; JSON is built and validated by the
//! hand-rolled [`json`] module.

pub mod event;
pub mod json;
pub mod metrics;
pub mod service;
pub mod sink;
pub mod trace;

pub use event::{CycleClassTotals, Event, TransferFaultKind, TransferKind};
pub use json::Json;
pub use metrics::{percentile, percentiles, snapshot_bundle, Histogram, MetricsSnapshot, TransferTotals};
pub use service::{
    deterministic_projection, render_deterministic, ServiceEvent, ServiceMetrics, ServiceRecord,
    ServiceTelemetry,
};
pub use sink::Telemetry;
pub use trace::{chrome_trace, chrome_trace_jobs, chrome_trace_multi, service_trace};
