//! Service-level observability: the typed [`ServiceEvent`] stream the
//! multi-tenant training service emits, its deterministic projection,
//! and the aggregated [`ServiceMetrics`] registry with Prometheus-style
//! text exposition (DESIGN.md §15).
//!
//! The stream records the **job lifecycle** (submitted → admitted →
//! sync rounds → completed/cancelled/failed) together with **fleet
//! occupancy** (worker busy/idle transitions, rank-lease changes,
//! queue-depth samples). Two clocks coexist:
//!
//! - a **logical clock** — job id, sync round, rank id — that keys the
//!   structure of every event and is a pure function of the submitted
//!   job set, hence identical across execution engines and worker
//!   counts;
//! - **wall-clock seconds** ([`ServiceRecord::wall_s`]) — the one
//!   explicitly non-deterministic section, used only for timeline
//!   layout and latency histograms, and zeroed by
//!   [`ServiceTelemetry::deterministic`] so tests can pin rendered
//!   streams byte-for-byte.
//!
//! [`deterministic_projection`] extracts the engine-invariant core:
//! lifecycle events only (scheduling-dependent occupancy events are
//! dropped), sorted by the logical clock, with the sync rounds of
//! cancelled jobs removed (how many rounds a job completes before its
//! cancel lands is inherently a race). `tests/service.rs` pins this
//! projection byte-identical across Serial/Threaded/WorkStealing
//! engines for a 100-tenant mixed-fault run.

use crate::json::Json;
use crate::metrics::Histogram;
use std::sync::{Arc, Mutex};

/// One occurrence in the training service's lifecycle/occupancy stream.
///
/// All fields are logical-clock quantities (ids, counts, simulated
/// seconds); host wall-clock lives only on the enclosing
/// [`ServiceRecord`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceEvent {
    /// A job entered the FIFO queue.
    JobSubmitted {
        /// Service-assigned job id (submission order).
        job: u64,
        /// Tenant label from the request.
        tenant: String,
        /// DPUs the job asked for.
        dpus: usize,
    },
    /// A worker admitted the job: lease granted, private DPU set
    /// allocated, training about to start.
    JobAdmitted {
        /// Job id.
        job: u64,
        /// DPUs allocated to the job.
        dpus: usize,
    },
    /// Ranks were leased to a job (occupancy; scheduling-dependent).
    LeaseGranted {
        /// Job id holding the lease.
        job: u64,
        /// Rank indices leased, ascending.
        ranks: Vec<usize>,
        /// Fleet-wide count of leased ranks after this grant.
        leased_ranks: usize,
    },
    /// A job's rank lease was returned (occupancy).
    LeaseReleased {
        /// Job id that held the lease.
        job: u64,
        /// Rank indices released, ascending.
        ranks: Vec<usize>,
        /// Fleet-wide count of leased ranks after this release.
        leased_ranks: usize,
    },
    /// A synchronization round of one job completed (re-emitted from
    /// the job's private telemetry onto the service timeline).
    SyncRound {
        /// Job id.
        job: u64,
        /// Zero-based round index within the job.
        round: u32,
        /// DPUs still participating in the job.
        live_dpus: usize,
    },
    /// The job trained to completion. Counters are folded from the
    /// job's private event stream; all are simulated observables.
    JobCompleted {
        /// Job id.
        job: u64,
        /// Synchronization rounds completed.
        sync_rounds: u64,
        /// Kernel launches (including retried subsets).
        launches: u64,
        /// Launches with at least one aborted DPU.
        faulted_launches: u64,
        /// Resilience retries issued.
        retries: u64,
        /// Resilience rollbacks to a checkpoint.
        rollbacks: u64,
        /// DPUs dropped by graceful degradation.
        degraded_dpus: u64,
        /// Simulated kernel seconds across all launches.
        kernel_seconds: f64,
        /// Per-launch critical-path cycles, in launch order.
        launch_cycles: Vec<f64>,
    },
    /// The job ended by cancellation (queued or mid-run).
    JobCancelled {
        /// Job id.
        job: u64,
    },
    /// The job failed with a PIM error.
    JobFailed {
        /// Job id.
        job: u64,
        /// Rendered error message.
        error: String,
    },
    /// A worker picked a job off the queue (occupancy).
    WorkerBusy {
        /// Worker index.
        worker: usize,
        /// Job id the worker is driving.
        job: u64,
    },
    /// A worker finished its job and returned to the queue (occupancy).
    WorkerIdle {
        /// Worker index.
        worker: usize,
    },
    /// Queue depth observed after an enqueue or dequeue (occupancy).
    QueueDepth {
        /// Jobs waiting in the FIFO queue.
        depth: usize,
    },
}

impl ServiceEvent {
    /// Stable snake_case discriminator used in JSON artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            ServiceEvent::JobSubmitted { .. } => "job_submitted",
            ServiceEvent::JobAdmitted { .. } => "job_admitted",
            ServiceEvent::LeaseGranted { .. } => "lease_granted",
            ServiceEvent::LeaseReleased { .. } => "lease_released",
            ServiceEvent::SyncRound { .. } => "sync_round",
            ServiceEvent::JobCompleted { .. } => "job_completed",
            ServiceEvent::JobCancelled { .. } => "job_cancelled",
            ServiceEvent::JobFailed { .. } => "job_failed",
            ServiceEvent::WorkerBusy { .. } => "worker_busy",
            ServiceEvent::WorkerIdle { .. } => "worker_idle",
            ServiceEvent::QueueDepth { .. } => "queue_depth",
        }
    }

    /// The job id this event is about, if it is a per-job event.
    pub fn job(&self) -> Option<u64> {
        match self {
            ServiceEvent::JobSubmitted { job, .. }
            | ServiceEvent::JobAdmitted { job, .. }
            | ServiceEvent::LeaseGranted { job, .. }
            | ServiceEvent::LeaseReleased { job, .. }
            | ServiceEvent::SyncRound { job, .. }
            | ServiceEvent::JobCompleted { job, .. }
            | ServiceEvent::JobCancelled { job, .. }
            | ServiceEvent::JobFailed { job, .. }
            | ServiceEvent::WorkerBusy { job, .. } => Some(*job),
            ServiceEvent::WorkerIdle { .. } | ServiceEvent::QueueDepth { .. } => None,
        }
    }

    /// Renders the event as a JSON object with a `"type"` discriminator
    /// and fixed key order.
    pub fn to_json(&self) -> Json {
        let typed = |fields: Vec<(String, Json)>| {
            let mut obj = vec![("type".to_string(), Json::str(self.name()))];
            obj.extend(fields);
            Json::Obj(obj)
        };
        let ranks_json =
            |ranks: &[usize]| Json::Arr(ranks.iter().map(|&r| Json::UInt(r as u64)).collect());
        match self {
            ServiceEvent::JobSubmitted { job, tenant, dpus } => typed(vec![
                ("job".to_string(), Json::UInt(*job)),
                ("tenant".to_string(), Json::str(tenant.clone())),
                ("dpus".to_string(), Json::UInt(*dpus as u64)),
            ]),
            ServiceEvent::JobAdmitted { job, dpus } => typed(vec![
                ("job".to_string(), Json::UInt(*job)),
                ("dpus".to_string(), Json::UInt(*dpus as u64)),
            ]),
            ServiceEvent::LeaseGranted {
                job,
                ranks,
                leased_ranks,
            } => typed(vec![
                ("job".to_string(), Json::UInt(*job)),
                ("ranks".to_string(), ranks_json(ranks)),
                ("leased_ranks".to_string(), Json::UInt(*leased_ranks as u64)),
            ]),
            ServiceEvent::LeaseReleased {
                job,
                ranks,
                leased_ranks,
            } => typed(vec![
                ("job".to_string(), Json::UInt(*job)),
                ("ranks".to_string(), ranks_json(ranks)),
                ("leased_ranks".to_string(), Json::UInt(*leased_ranks as u64)),
            ]),
            ServiceEvent::SyncRound {
                job,
                round,
                live_dpus,
            } => typed(vec![
                ("job".to_string(), Json::UInt(*job)),
                ("round".to_string(), Json::UInt(*round as u64)),
                ("live_dpus".to_string(), Json::UInt(*live_dpus as u64)),
            ]),
            ServiceEvent::JobCompleted {
                job,
                sync_rounds,
                launches,
                faulted_launches,
                retries,
                rollbacks,
                degraded_dpus,
                kernel_seconds,
                launch_cycles,
            } => typed(vec![
                ("job".to_string(), Json::UInt(*job)),
                ("sync_rounds".to_string(), Json::UInt(*sync_rounds)),
                ("launches".to_string(), Json::UInt(*launches)),
                (
                    "faulted_launches".to_string(),
                    Json::UInt(*faulted_launches),
                ),
                ("retries".to_string(), Json::UInt(*retries)),
                ("rollbacks".to_string(), Json::UInt(*rollbacks)),
                ("degraded_dpus".to_string(), Json::UInt(*degraded_dpus)),
                ("kernel_seconds".to_string(), Json::Num(*kernel_seconds)),
                (
                    "launch_cycles".to_string(),
                    Json::Arr(launch_cycles.iter().map(|&c| Json::Num(c)).collect()),
                ),
            ]),
            ServiceEvent::JobCancelled { job } => {
                typed(vec![("job".to_string(), Json::UInt(*job))])
            }
            ServiceEvent::JobFailed { job, error } => typed(vec![
                ("job".to_string(), Json::UInt(*job)),
                ("error".to_string(), Json::str(error.clone())),
            ]),
            ServiceEvent::WorkerBusy { worker, job } => typed(vec![
                ("worker".to_string(), Json::UInt(*worker as u64)),
                ("job".to_string(), Json::UInt(*job)),
            ]),
            ServiceEvent::WorkerIdle { worker } => typed(vec![(
                "worker".to_string(),
                Json::UInt(*worker as u64),
            )]),
            ServiceEvent::QueueDepth { depth } => {
                typed(vec![("depth".to_string(), Json::UInt(*depth as u64))])
            }
        }
    }
}

/// One recorded service event: the event plus its position on both
/// clocks.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRecord {
    /// Monotonic recording sequence number (arrival order at the sink;
    /// scheduling-dependent under concurrency).
    pub seq: u64,
    /// Host wall-clock seconds since the service started — **the
    /// non-deterministic section**. Zero when the sink was created in
    /// deterministic mode.
    pub wall_s: f64,
    /// The event itself (logical-clock quantities only).
    pub event: ServiceEvent,
}

/// Shared record buffer (present only when the sink is enabled).
type Sink = Arc<Mutex<Vec<ServiceRecord>>>;

/// A handle to an (optional) service-event stream, mirroring
/// [`Telemetry`](crate::Telemetry): disabled by default, closure-lazy,
/// clones share one buffer.
///
/// The `deterministic` flag marks the wall-clock section off: records
/// are stored with `wall_s = 0.0`, so the rendered stream is a pure
/// function of the logical clock and can be pinned byte-exactly.
#[derive(Debug, Clone, Default)]
pub struct ServiceTelemetry {
    sink: Option<Sink>,
    zero_wall: bool,
}

impl ServiceTelemetry {
    /// A disabled handle: emissions are no-ops, nothing is allocated.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled handle recording real wall-clock offsets.
    pub fn enabled() -> Self {
        Self {
            sink: Some(Arc::new(Mutex::new(Vec::new()))),
            zero_wall: false,
        }
    }

    /// An enabled handle that zeroes the wall-clock section
    /// (`wall_s = 0.0` on every record) for byte-exact pins.
    pub fn deterministic() -> Self {
        Self {
            sink: Some(Arc::new(Mutex::new(Vec::new()))),
            zero_wall: true,
        }
    }

    /// Whether records are being kept. Callers building expensive
    /// payloads (folding a job's event stream) should gate on this.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Whether the wall-clock section is being zeroed.
    pub fn is_deterministic(&self) -> bool {
        self.zero_wall
    }

    /// Appends a record. `wall_s` is the wall-clock offset the caller
    /// measured (zeroed here in deterministic mode); the closure is
    /// evaluated only when the handle is enabled, so event construction
    /// is free on the disabled path.
    #[inline]
    pub fn emit(&self, wall_s: f64, make: impl FnOnce() -> ServiceEvent) {
        if let Some(sink) = &self.sink {
            let event = make();
            let wall_s = if self.zero_wall { 0.0 } else { wall_s };
            if let Ok(mut records) = sink.lock() {
                let seq = records.len() as u64;
                records.push(ServiceRecord {
                    seq,
                    wall_s,
                    event,
                });
            }
        }
    }

    /// A snapshot of the records so far, in arrival order. Empty for a
    /// disabled handle.
    pub fn records(&self) -> Vec<ServiceRecord> {
        match &self.sink {
            Some(sink) => match sink.lock() {
                Ok(records) => records.clone(),
                Err(_) => Vec::new(),
            },
            None => Vec::new(),
        }
    }

    /// Number of records so far (0 when disabled).
    pub fn len(&self) -> usize {
        match &self.sink {
            Some(sink) => match sink.lock() {
                Ok(records) => records.len(),
                Err(_) => 0,
            },
            None => 0,
        }
    }

    /// Whether no records exist (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all records, keeping the handle enabled.
    pub fn clear(&self) {
        if let Some(sink) = &self.sink {
            if let Ok(mut records) = sink.lock() {
                records.clear();
            }
        }
    }
}

/// Identity equality, like [`Telemetry`](crate::Telemetry): equal when
/// both disabled or sharing one buffer.
impl PartialEq for ServiceTelemetry {
    fn eq(&self, other: &Self) -> bool {
        match (&self.sink, &other.sink) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// Logical-clock sort key of a lifecycle event: `(job, phase, round)`.
/// Submission < admission < sync rounds (by round) < terminal.
fn lifecycle_key(event: &ServiceEvent) -> Option<(u64, u8, u32)> {
    match event {
        ServiceEvent::JobSubmitted { job, .. } => Some((*job, 0, 0)),
        ServiceEvent::JobAdmitted { job, .. } => Some((*job, 1, 0)),
        ServiceEvent::SyncRound { job, round, .. } => Some((*job, 2, *round)),
        ServiceEvent::JobCompleted { job, .. }
        | ServiceEvent::JobCancelled { job }
        | ServiceEvent::JobFailed { job, .. } => Some((*job, 3, 0)),
        ServiceEvent::LeaseGranted { .. }
        | ServiceEvent::LeaseReleased { .. }
        | ServiceEvent::WorkerBusy { .. }
        | ServiceEvent::WorkerIdle { .. }
        | ServiceEvent::QueueDepth { .. } => None,
    }
}

/// Extracts the deterministic (engine- and scheduling-invariant) core
/// of a service stream:
///
/// - **lifecycle events only** — occupancy events (leases, worker
///   transitions, queue depth) encode scheduling choices and are
///   dropped;
/// - **sorted by the logical clock** `(job id, phase, round)` — arrival
///   order under concurrency is a race, the logical order is not;
/// - **cancelled jobs keep only submission/admission/terminal** — how
///   many sync rounds a job completes before its cancel lands depends
///   on wall-clock timing, so their `SyncRound` events are removed.
///
/// The result is a pure function of the submitted job set (given every
/// cancel lands after admission), pinned byte-identical across engines
/// and worker counts by `tests/service.rs`.
pub fn deterministic_projection(records: &[ServiceRecord]) -> Vec<ServiceEvent> {
    let cancelled: Vec<u64> = records
        .iter()
        .filter_map(|r| match &r.event {
            ServiceEvent::JobCancelled { job } => Some(*job),
            _ => None,
        })
        .collect();
    let mut keyed: Vec<((u64, u8, u32), ServiceEvent)> = records
        .iter()
        .filter_map(|r| lifecycle_key(&r.event).map(|key| (key, r.event.clone())))
        .filter(|((job, phase, _), _)| !(*phase == 2 && cancelled.contains(job)))
        .collect();
    keyed.sort_by_key(|(key, _)| *key);
    keyed.into_iter().map(|(_, event)| event).collect()
}

/// Renders the deterministic projection as a versioned JSON document
/// (schema `swiftrl-service-events-v1`). Byte-identical for identical
/// projections — the form the determinism tests compare.
pub fn render_deterministic(records: &[ServiceRecord]) -> String {
    let events = deterministic_projection(records);
    Json::obj([
        ("schema", Json::str("swiftrl-service-events-v1")),
        ("events", Json::Arr(events.iter().map(ServiceEvent::to_json).collect())),
    ])
    .render_pretty()
}

/// Aggregated service metrics: counters, occupancy gauges (maxima) and
/// latency/cycle histograms folded from a service stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceMetrics {
    /// Jobs that entered the queue.
    pub jobs_submitted: u64,
    /// Jobs admitted (lease granted, training started).
    pub jobs_admitted: u64,
    /// Jobs that trained to completion.
    pub jobs_completed: u64,
    /// Jobs that ended by cancellation.
    pub jobs_cancelled: u64,
    /// Jobs that failed with a PIM error.
    pub jobs_failed: u64,
    /// Kernel launches summed over completed jobs.
    pub launches: u64,
    /// Faulted launches summed over completed jobs.
    pub faulted_launches: u64,
    /// Resilience retries summed over completed jobs.
    pub retries: u64,
    /// Rollbacks summed over completed jobs.
    pub rollbacks: u64,
    /// Degraded DPUs summed over completed jobs.
    pub degraded_dpus: u64,
    /// Sync rounds summed over completed jobs.
    pub sync_rounds: u64,
    /// Simulated kernel seconds summed over completed jobs.
    pub kernel_seconds: f64,
    /// Deepest queue observed.
    pub queue_depth_max: u64,
    /// Most ranks leased at once.
    pub leased_ranks_max: u64,
    /// Most workers busy at once.
    pub workers_busy_max: u64,
    /// Wall-clock seconds from submission to admission, one sample per
    /// admitted job. All-zero in deterministic mode.
    pub admission_wait_s: Histogram,
    /// Wall-clock seconds from admission to the terminal event, one
    /// sample per finished job. All-zero in deterministic mode.
    pub run_duration_s: Histogram,
    /// Per-launch critical-path cycles over completed jobs (simulated;
    /// deterministic).
    pub launch_cycles: Histogram,
}

impl ServiceMetrics {
    /// Folds a service stream into the registry.
    pub fn from_records(records: &[ServiceRecord]) -> Self {
        let mut m = ServiceMetrics::default();
        // (job, wall_s) of submissions and admissions, for the latency
        // histograms. Linear lookup: job counts are small.
        let mut submitted_at: Vec<(u64, f64)> = Vec::new();
        let mut admitted_at: Vec<(u64, f64)> = Vec::new();
        let wall_of = |table: &[(u64, f64)], job: u64| {
            table.iter().find(|(j, _)| *j == job).map(|(_, w)| *w)
        };
        let mut workers_busy = 0u64;
        for record in records {
            match &record.event {
                ServiceEvent::JobSubmitted { job, .. } => {
                    m.jobs_submitted += 1;
                    submitted_at.push((*job, record.wall_s));
                }
                ServiceEvent::JobAdmitted { job, .. } => {
                    m.jobs_admitted += 1;
                    admitted_at.push((*job, record.wall_s));
                    if let Some(sub) = wall_of(&submitted_at, *job) {
                        m.admission_wait_s.record((record.wall_s - sub).max(0.0));
                    }
                }
                ServiceEvent::LeaseGranted { leased_ranks, .. } => {
                    m.leased_ranks_max = m.leased_ranks_max.max(*leased_ranks as u64);
                }
                ServiceEvent::LeaseReleased { .. } | ServiceEvent::SyncRound { .. } => {}
                ServiceEvent::JobCompleted {
                    job,
                    sync_rounds,
                    launches,
                    faulted_launches,
                    retries,
                    rollbacks,
                    degraded_dpus,
                    kernel_seconds,
                    launch_cycles,
                } => {
                    m.jobs_completed += 1;
                    m.sync_rounds += sync_rounds;
                    m.launches += launches;
                    m.faulted_launches += faulted_launches;
                    m.retries += retries;
                    m.rollbacks += rollbacks;
                    m.degraded_dpus += degraded_dpus;
                    m.kernel_seconds += kernel_seconds;
                    for &cycles in launch_cycles {
                        m.launch_cycles.record(cycles);
                    }
                    if let Some(adm) = wall_of(&admitted_at, *job) {
                        m.run_duration_s.record((record.wall_s - adm).max(0.0));
                    }
                }
                ServiceEvent::JobCancelled { job } => {
                    m.jobs_cancelled += 1;
                    if let Some(adm) = wall_of(&admitted_at, *job) {
                        m.run_duration_s.record((record.wall_s - adm).max(0.0));
                    }
                }
                ServiceEvent::JobFailed { job, .. } => {
                    m.jobs_failed += 1;
                    if let Some(adm) = wall_of(&admitted_at, *job) {
                        m.run_duration_s.record((record.wall_s - adm).max(0.0));
                    }
                }
                ServiceEvent::WorkerBusy { .. } => {
                    workers_busy += 1;
                    m.workers_busy_max = m.workers_busy_max.max(workers_busy);
                }
                ServiceEvent::WorkerIdle { .. } => {
                    workers_busy = workers_busy.saturating_sub(1);
                }
                ServiceEvent::QueueDepth { depth } => {
                    m.queue_depth_max = m.queue_depth_max.max(*depth as u64);
                }
            }
        }
        m
    }

    /// Renders the registry as a versioned JSON object (schema
    /// `swiftrl-service-metrics-v1`). Key order fixed, rendering
    /// byte-deterministic.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str("swiftrl-service-metrics-v1")),
            (
                "jobs",
                Json::obj([
                    ("submitted", Json::UInt(self.jobs_submitted)),
                    ("admitted", Json::UInt(self.jobs_admitted)),
                    ("completed", Json::UInt(self.jobs_completed)),
                    ("cancelled", Json::UInt(self.jobs_cancelled)),
                    ("failed", Json::UInt(self.jobs_failed)),
                ]),
            ),
            (
                "totals",
                Json::obj([
                    ("launches", Json::UInt(self.launches)),
                    ("faulted_launches", Json::UInt(self.faulted_launches)),
                    ("retries", Json::UInt(self.retries)),
                    ("rollbacks", Json::UInt(self.rollbacks)),
                    ("degraded_dpus", Json::UInt(self.degraded_dpus)),
                    ("sync_rounds", Json::UInt(self.sync_rounds)),
                    ("kernel_seconds", Json::Num(self.kernel_seconds)),
                ]),
            ),
            (
                "occupancy",
                Json::obj([
                    ("queue_depth_max", Json::UInt(self.queue_depth_max)),
                    ("leased_ranks_max", Json::UInt(self.leased_ranks_max)),
                    ("workers_busy_max", Json::UInt(self.workers_busy_max)),
                ]),
            ),
            ("admission_wait_seconds", self.admission_wait_s.to_json()),
            ("run_duration_seconds", self.run_duration_s.to_json()),
            ("launch_cycles", self.launch_cycles.to_json()),
        ])
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP`/`# TYPE` headers, `_total` counters,
    /// occupancy-max gauges, and summaries with p50/p95/p99 quantile
    /// lines plus `_sum`/`_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, help, value) in [
            (
                "swiftrl_service_jobs_submitted_total",
                "Jobs submitted to the service.",
                self.jobs_submitted,
            ),
            (
                "swiftrl_service_jobs_admitted_total",
                "Jobs admitted to the fleet.",
                self.jobs_admitted,
            ),
            (
                "swiftrl_service_jobs_completed_total",
                "Jobs that trained to completion.",
                self.jobs_completed,
            ),
            (
                "swiftrl_service_jobs_cancelled_total",
                "Jobs that ended by cancellation.",
                self.jobs_cancelled,
            ),
            (
                "swiftrl_service_jobs_failed_total",
                "Jobs that failed with a PIM error.",
                self.jobs_failed,
            ),
            (
                "swiftrl_service_launches_total",
                "Kernel launches across completed jobs.",
                self.launches,
            ),
            (
                "swiftrl_service_faulted_launches_total",
                "Launches with at least one aborted DPU.",
                self.faulted_launches,
            ),
            (
                "swiftrl_service_retries_total",
                "Resilience retries across completed jobs.",
                self.retries,
            ),
            (
                "swiftrl_service_rollbacks_total",
                "Resilience rollbacks across completed jobs.",
                self.rollbacks,
            ),
            (
                "swiftrl_service_degraded_dpus_total",
                "DPUs dropped by graceful degradation.",
                self.degraded_dpus,
            ),
            (
                "swiftrl_service_sync_rounds_total",
                "Synchronization rounds across completed jobs.",
                self.sync_rounds,
            ),
        ] {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        }
        out.push_str(&format!(
            "# HELP swiftrl_service_kernel_seconds_total Simulated kernel seconds across completed jobs.\n# TYPE swiftrl_service_kernel_seconds_total counter\nswiftrl_service_kernel_seconds_total {}\n",
            self.kernel_seconds
        ));
        for (name, help, value) in [
            (
                "swiftrl_service_queue_depth_max",
                "Deepest FIFO queue observed.",
                self.queue_depth_max,
            ),
            (
                "swiftrl_service_leased_ranks_max",
                "Most ranks leased at once.",
                self.leased_ranks_max,
            ),
            (
                "swiftrl_service_workers_busy_max",
                "Most workers busy at once.",
                self.workers_busy_max,
            ),
        ] {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        }
        for (name, help, hist) in [
            (
                "swiftrl_service_admission_wait_seconds",
                "Wall-clock seconds from submission to admission.",
                &self.admission_wait_s,
            ),
            (
                "swiftrl_service_run_duration_seconds",
                "Wall-clock seconds from admission to the terminal state.",
                &self.run_duration_s,
            ),
            (
                "swiftrl_service_launch_cycles",
                "Per-launch critical-path cycles (simulated).",
                &self.launch_cycles,
            ),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} summary\n"));
            for (q, v) in [
                ("0.5", hist.p50()),
                ("0.95", hist.p95()),
                ("0.99", hist.p99()),
            ] {
                out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!("{name}_sum {}\n", hist.sum()));
            out.push_str(&format!("{name}_count {}\n", hist.count()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, wall_s: f64, event: ServiceEvent) -> ServiceRecord {
        ServiceRecord {
            seq,
            wall_s,
            event,
        }
    }

    fn sample_records() -> Vec<ServiceRecord> {
        vec![
            rec(
                0,
                0.0,
                ServiceEvent::JobSubmitted {
                    job: 0,
                    tenant: "a".into(),
                    dpus: 4,
                },
            ),
            rec(1, 0.0, ServiceEvent::QueueDepth { depth: 1 }),
            rec(
                2,
                0.1,
                ServiceEvent::JobSubmitted {
                    job: 1,
                    tenant: "b".into(),
                    dpus: 4,
                },
            ),
            rec(3, 0.1, ServiceEvent::QueueDepth { depth: 2 }),
            rec(4, 0.2, ServiceEvent::WorkerBusy { worker: 0, job: 0 }),
            rec(
                5,
                0.2,
                ServiceEvent::LeaseGranted {
                    job: 0,
                    ranks: vec![0],
                    leased_ranks: 1,
                },
            ),
            rec(6, 0.2, ServiceEvent::JobAdmitted { job: 0, dpus: 4 }),
            rec(
                7,
                0.3,
                ServiceEvent::SyncRound {
                    job: 0,
                    round: 0,
                    live_dpus: 4,
                },
            ),
            rec(8, 0.35, ServiceEvent::WorkerBusy { worker: 1, job: 1 }),
            rec(
                9,
                0.35,
                ServiceEvent::LeaseGranted {
                    job: 1,
                    ranks: vec![1],
                    leased_ranks: 2,
                },
            ),
            rec(10, 0.35, ServiceEvent::JobAdmitted { job: 1, dpus: 4 }),
            rec(
                11,
                0.4,
                ServiceEvent::SyncRound {
                    job: 1,
                    round: 0,
                    live_dpus: 4,
                },
            ),
            rec(
                12,
                0.5,
                ServiceEvent::JobCompleted {
                    job: 0,
                    sync_rounds: 1,
                    launches: 2,
                    faulted_launches: 1,
                    retries: 1,
                    rollbacks: 0,
                    degraded_dpus: 0,
                    kernel_seconds: 0.25,
                    launch_cycles: vec![100.0, 300.0],
                },
            ),
            rec(
                13,
                0.5,
                ServiceEvent::LeaseReleased {
                    job: 0,
                    ranks: vec![0],
                    leased_ranks: 1,
                },
            ),
            rec(14, 0.5, ServiceEvent::WorkerIdle { worker: 0 }),
            rec(15, 0.6, ServiceEvent::JobCancelled { job: 1 }),
            rec(
                16,
                0.6,
                ServiceEvent::LeaseReleased {
                    job: 1,
                    ranks: vec![1],
                    leased_ranks: 0,
                },
            ),
            rec(17, 0.6, ServiceEvent::WorkerIdle { worker: 1 }),
        ]
    }

    #[test]
    fn disabled_sink_records_nothing_and_skips_the_closure() {
        let t = ServiceTelemetry::disabled();
        let mut evaluated = false;
        t.emit(1.0, || {
            evaluated = true;
            ServiceEvent::QueueDepth { depth: 1 }
        });
        assert!(!evaluated);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn deterministic_mode_zeroes_wall_clock() {
        let t = ServiceTelemetry::deterministic();
        t.emit(123.456, || ServiceEvent::QueueDepth { depth: 3 });
        let records = t.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].wall_s, 0.0);
        assert_eq!(records[0].seq, 0);
        assert!(t.is_deterministic());
        let real = ServiceTelemetry::enabled();
        real.emit(123.456, || ServiceEvent::QueueDepth { depth: 3 });
        assert_eq!(real.records()[0].wall_s, 123.456);
    }

    #[test]
    fn projection_keeps_lifecycle_drops_occupancy_and_cancelled_rounds() {
        let events = deterministic_projection(&sample_records());
        // Job 0: submitted, admitted, round 0, completed.
        // Job 1 (cancelled): submitted, admitted, cancelled — its sync
        // round is dropped.
        assert_eq!(events.len(), 7);
        let names: Vec<&str> = events.iter().map(ServiceEvent::name).collect();
        assert_eq!(
            names,
            vec![
                "job_submitted",
                "job_admitted",
                "sync_round",
                "job_completed",
                "job_submitted",
                "job_admitted",
                "job_cancelled",
            ]
        );
        assert!(events.iter().all(|e| e.job().is_some()));
    }

    #[test]
    fn projection_is_arrival_order_invariant() {
        let records = sample_records();
        let mut shuffled = records.clone();
        shuffled.reverse();
        assert_eq!(
            render_deterministic(&records),
            render_deterministic(&shuffled)
        );
        let doc = crate::json::parse(&render_deterministic(&records)).expect("parses");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("swiftrl-service-events-v1")
        );
    }

    #[test]
    fn metrics_fold_counters_gauges_and_histograms() {
        let m = ServiceMetrics::from_records(&sample_records());
        assert_eq!(m.jobs_submitted, 2);
        assert_eq!(m.jobs_admitted, 2);
        assert_eq!(m.jobs_completed, 1);
        assert_eq!(m.jobs_cancelled, 1);
        assert_eq!(m.jobs_failed, 0);
        assert_eq!(m.launches, 2);
        assert_eq!(m.faulted_launches, 1);
        assert_eq!(m.retries, 1);
        assert_eq!(m.sync_rounds, 1);
        assert_eq!(m.kernel_seconds, 0.25);
        assert_eq!(m.queue_depth_max, 2);
        assert_eq!(m.leased_ranks_max, 2);
        assert_eq!(m.workers_busy_max, 2);
        assert_eq!(m.admission_wait_s.count(), 2);
        // Job 0 waited 0.2 s, job 1 waited 0.25 s.
        assert!((m.admission_wait_s.max() - 0.25).abs() < 1e-12);
        assert_eq!(m.run_duration_s.count(), 2);
        assert_eq!(m.launch_cycles.count(), 2);
        assert_eq!(m.launch_cycles.p50(), 100.0);
    }

    #[test]
    fn json_and_prometheus_expositions_agree() {
        let m = ServiceMetrics::from_records(&sample_records());
        let doc = crate::json::parse(&m.to_json().render_pretty()).expect("parses");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("swiftrl-service-metrics-v1")
        );
        assert_eq!(
            doc.get("jobs")
                .and_then(|j| j.get("submitted"))
                .and_then(Json::as_u64),
            Some(2)
        );
        let text = m.to_prometheus();
        assert!(text.contains("swiftrl_service_jobs_submitted_total 2\n"));
        assert!(text.contains("# TYPE swiftrl_service_jobs_submitted_total counter\n"));
        assert!(text.contains("# TYPE swiftrl_service_admission_wait_seconds summary\n"));
        assert!(text.contains("swiftrl_service_admission_wait_seconds_count 2\n"));
        assert!(text.contains("swiftrl_service_launch_cycles{quantile=\"0.5\"} 100\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().expect("value");
            assert!(value.parse::<f64>().is_ok(), "bad exposition line: {line}");
            assert!(parts.next().is_some(), "bad exposition line: {line}");
        }
        assert_eq!(m.to_prometheus(), text, "exposition is deterministic");
    }
}
