//! [`MetricsSnapshot`]: an aggregate view of one run's event stream,
//! with a versioned JSON rendering shared by every bench binary.
//!
//! The snapshot folds the typed stream into the numbers Figs. 5–7 are
//! argued from — cycle-class totals (the histogram over `CycleCounter`
//! classes), the per-launch load-imbalance distribution, transfer
//! byte/latency totals per kind, and the fault/resilience counters —
//! so experiments read one schema instead of re-deriving them ad hoc.

use crate::event::{CycleClassTotals, Event, TransferFaultKind, TransferKind};
use crate::json::Json;

/// Nearest-rank percentile of a sample set: the smallest sample such
/// that at least `q · n` samples are ≤ it (`q` in `(0, 1]`). Returns
/// 0.0 for an empty set. Deterministic: ties and NaN-free inputs sort
/// totally via `f64::total_cmp`.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// `(p50, p95, p99)` nearest-rank percentiles of a sample set; all
/// zeros when empty.
pub fn percentiles(samples: &[f64]) -> (f64, f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let at = |q: f64| {
        let rank = (q * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    };
    (at(0.50), at(0.95), at(0.99))
}

/// An exact-sample histogram: records every observation and answers
/// count/sum/min/mean/max plus nearest-rank p50/p95/p99.
///
/// The simulator's distributions are small (one sample per launch or
/// per job), so exact samples beat bucketed approximations: percentiles
/// are reproducible to the bit, which is what lets rendered metrics
/// artifacts be compared with `==`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    samples: Vec<f64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.samples.push(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Smallest observation (0.0 when empty).
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .min_by(f64::total_cmp)
            .unwrap_or(0.0)
    }

    /// Largest observation (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .max_by(f64::total_cmp)
            .unwrap_or(0.0)
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum() / self.samples.len() as f64
        }
    }

    /// Nearest-rank percentile (`q` in `(0, 1]`; 0.0 when empty).
    pub fn percentile(&self, q: f64) -> f64 {
        percentile(&self.samples, q)
    }

    /// The median (nearest-rank p50).
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// Nearest-rank p95.
    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    /// Nearest-rank p99.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }

    /// The raw samples, in recording order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Renders the summary statistics as a JSON object with fixed key
    /// order (`count`, `sum`, `min`, `mean`, `max`, `p50`, `p95`,
    /// `p99`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::UInt(self.count())),
            ("sum", Json::Num(self.sum())),
            ("min", Json::Num(self.min())),
            ("mean", Json::Num(self.mean())),
            ("max", Json::Num(self.max())),
            ("p50", Json::Num(self.p50())),
            ("p95", Json::Num(self.p95())),
            ("p99", Json::Num(self.p99())),
        ])
    }
}

/// Count/bytes/seconds totals for one transfer kind.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransferTotals {
    /// Number of transfers.
    pub count: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Total simulated seconds.
    pub seconds: f64,
}

impl TransferTotals {
    fn add(&mut self, bytes: u64, seconds: f64) {
        self.count += 1;
        self.bytes += bytes;
        self.seconds += seconds;
    }

    fn to_json(self) -> Json {
        Json::obj([
            ("count", Json::UInt(self.count)),
            ("bytes", Json::UInt(self.bytes)),
            ("seconds", Json::Num(self.seconds)),
        ])
    }
}

/// Aggregate metrics derived from one run's telemetry stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Caller-chosen run label (workload/environment description).
    pub label: String,
    /// Kernel launches observed (including retried subsets).
    pub launches: u64,
    /// Launches in which at least one DPU was aborted by the fault plan.
    pub faulted_launches: u64,
    /// Simulated seconds across all launches (sum of critical paths).
    pub kernel_seconds: f64,
    /// Cycle-class totals merged over every launch — the histogram over
    /// `CycleCounter` classes.
    pub classes: CycleClassTotals,
    /// Per-launch load imbalance (`max_cycles / mean_cycles`), in
    /// launch order. Empty if no launch had survivors.
    pub imbalance: Vec<f64>,
    /// Per-launch critical-path cycles (`max_cycles`), in launch order.
    pub launch_cycles: Vec<f64>,
    /// Program-load totals (bytes pushed × simulated load time).
    pub program_load: TransferTotals,
    /// Per-kind transfer totals, in `TransferKind` declaration order.
    pub transfers: Vec<(TransferKind, TransferTotals)>,
    /// Synchronization rounds completed.
    pub sync_rounds: u64,
    /// Host-side Q-table aggregations and their simulated seconds.
    pub aggregates: TransferTotals,
    /// Injected transfer faults that dropped the payload.
    pub faults_dropped: u64,
    /// Injected transfer faults that corrupted one byte.
    pub faults_corrupted: u64,
    /// Total DPU-abort events across faulted launches.
    pub faulted_dpu_events: u64,
    /// Resilience retries issued.
    pub retries: u64,
    /// Resilience rollbacks to a checkpoint.
    pub rollbacks: u64,
    /// DPUs dropped by graceful degradation.
    pub degraded_dpus: u64,
    /// Bank bytes materialized across the fleet when the run's last
    /// [`Event::MemoryCeilings`] was emitted.
    pub bank_bytes: u64,
    /// Peak bank bytes materialized at any point in the run (max over
    /// all `MemoryCeilings` events).
    pub bank_peak_bytes: u64,
    /// Segment-arena footprint (live + pooled) at the last ceiling.
    pub arena_bytes: u64,
    /// Peak segment-arena footprint (max over all ceilings).
    pub arena_peak_bytes: u64,
    /// Sanitizer findings attributed to launches.
    pub sanitizer_findings: u64,
}

impl MetricsSnapshot {
    /// Folds an event stream into a snapshot.
    pub fn from_events(label: impl Into<String>, events: &[Event]) -> Self {
        let mut snap = MetricsSnapshot {
            label: label.into(),
            ..MetricsSnapshot::default()
        };
        for event in events {
            match event {
                Event::ProgramLoad { bytes, seconds, .. } => {
                    snap.program_load.add(*bytes, *seconds);
                }
                Event::Transfer {
                    kind,
                    bytes,
                    seconds,
                    ..
                } => {
                    match snap.transfers.iter_mut().find(|(k, _)| k == kind) {
                        Some((_, totals)) => totals.add(*bytes, *seconds),
                        None => {
                            let mut totals = TransferTotals::default();
                            totals.add(*bytes, *seconds);
                            snap.transfers.push((*kind, totals));
                        }
                    }
                }
                Event::TransferFault { kind, .. } => match kind {
                    TransferFaultKind::Dropped => snap.faults_dropped += 1,
                    TransferFaultKind::Corrupted => snap.faults_corrupted += 1,
                },
                Event::KernelLaunch {
                    max_cycles,
                    mean_cycles,
                    seconds,
                    faulted_dpus,
                    classes,
                    sanitizer_findings,
                    ..
                } => {
                    snap.launches += 1;
                    snap.kernel_seconds += *seconds;
                    snap.classes.merge(classes);
                    snap.sanitizer_findings += *sanitizer_findings;
                    snap.launch_cycles.push(*max_cycles as f64);
                    if *mean_cycles > 0.0 {
                        snap.imbalance.push(*max_cycles as f64 / *mean_cycles);
                    }
                    if !faulted_dpus.is_empty() {
                        snap.faulted_launches += 1;
                        snap.faulted_dpu_events += faulted_dpus.len() as u64;
                    }
                }
                Event::SyncRound { .. } => snap.sync_rounds += 1,
                Event::HostAggregate { bytes, seconds, .. } => {
                    snap.aggregates.add(*bytes, *seconds);
                }
                Event::Retry { .. } => snap.retries += 1,
                Event::Rollback { .. } => snap.rollbacks += 1,
                Event::Degradation { dead_dpus, .. } => {
                    snap.degraded_dpus += dead_dpus.len() as u64;
                }
                Event::MemoryCeilings {
                    bank_bytes,
                    bank_peak_bytes,
                    arena_bytes,
                    arena_peak_bytes,
                } => {
                    snap.bank_bytes = *bank_bytes;
                    snap.arena_bytes = *arena_bytes;
                    snap.bank_peak_bytes = snap.bank_peak_bytes.max(*bank_peak_bytes);
                    snap.arena_peak_bytes = snap.arena_peak_bytes.max(*arena_peak_bytes);
                }
            }
        }
        snap
    }

    /// Renders the snapshot as a versioned JSON object (schema
    /// `swiftrl-metrics-v3`; v2 added the `memory` ceilings object, v3
    /// adds nearest-rank p50/p95/p99 to `imbalance` and the
    /// `launch_cycles` summary over per-launch critical paths).
    /// Key order is fixed; rendering is byte-deterministic.
    pub fn to_json(&self) -> Json {
        let (imb_min, imb_mean, imb_max) = distribution(&self.imbalance);
        let (imb_p50, imb_p95, imb_p99) = percentiles(&self.imbalance);
        let (lc_min, lc_mean, lc_max) = distribution(&self.launch_cycles);
        let (lc_p50, lc_p95, lc_p99) = percentiles(&self.launch_cycles);
        Json::obj([
            ("schema", Json::str("swiftrl-metrics-v3")),
            ("label", Json::str(self.label.clone())),
            ("launches", Json::UInt(self.launches)),
            ("faulted_launches", Json::UInt(self.faulted_launches)),
            ("kernel_seconds", Json::Num(self.kernel_seconds)),
            (
                "cycle_classes",
                Json::obj([
                    ("alu_slots", Json::UInt(self.classes.alu_slots)),
                    ("wram_slots", Json::UInt(self.classes.wram_slots)),
                    ("control_slots", Json::UInt(self.classes.control_slots)),
                    ("int_emul_slots", Json::UInt(self.classes.int_emul_slots)),
                    ("float_emul_slots", Json::UInt(self.classes.float_emul_slots)),
                    ("dma_cycles", Json::UInt(self.classes.dma_cycles)),
                    ("dma_bytes", Json::UInt(self.classes.dma_bytes)),
                ]),
            ),
            (
                "imbalance",
                Json::obj([
                    ("min", Json::Num(imb_min)),
                    ("mean", Json::Num(imb_mean)),
                    ("max", Json::Num(imb_max)),
                    ("p50", Json::Num(imb_p50)),
                    ("p95", Json::Num(imb_p95)),
                    ("p99", Json::Num(imb_p99)),
                    (
                        "per_launch",
                        Json::Arr(self.imbalance.iter().map(|&x| Json::Num(x)).collect()),
                    ),
                ]),
            ),
            (
                "launch_cycles",
                Json::obj([
                    ("count", Json::UInt(self.launch_cycles.len() as u64)),
                    ("min", Json::Num(lc_min)),
                    ("mean", Json::Num(lc_mean)),
                    ("max", Json::Num(lc_max)),
                    ("p50", Json::Num(lc_p50)),
                    ("p95", Json::Num(lc_p95)),
                    ("p99", Json::Num(lc_p99)),
                ]),
            ),
            ("program_load", self.program_load.to_json()),
            (
                "transfers",
                Json::Obj(
                    self.transfers
                        .iter()
                        .map(|(kind, totals)| (kind.name().to_string(), totals.to_json()))
                        .collect(),
                ),
            ),
            ("sync_rounds", Json::UInt(self.sync_rounds)),
            ("host_aggregate", self.aggregates.to_json()),
            (
                "faults",
                Json::obj([
                    ("transfer_dropped", Json::UInt(self.faults_dropped)),
                    ("transfer_corrupted", Json::UInt(self.faults_corrupted)),
                    ("dpu_aborts", Json::UInt(self.faulted_dpu_events)),
                    ("retries", Json::UInt(self.retries)),
                    ("rollbacks", Json::UInt(self.rollbacks)),
                    ("degraded_dpus", Json::UInt(self.degraded_dpus)),
                ]),
            ),
            (
                "memory",
                Json::obj([
                    ("bank_bytes", Json::UInt(self.bank_bytes)),
                    ("bank_peak_bytes", Json::UInt(self.bank_peak_bytes)),
                    ("arena_bytes", Json::UInt(self.arena_bytes)),
                    ("arena_peak_bytes", Json::UInt(self.arena_peak_bytes)),
                ]),
            ),
            ("sanitizer_findings", Json::UInt(self.sanitizer_findings)),
        ])
    }
}

/// `(min, mean, max)` of a sample set; all zeros when empty.
fn distribution(samples: &[f64]) -> (f64, f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &x in samples {
        min = min.min(x);
        max = max.max(x);
        sum += x;
    }
    (min, sum / samples.len() as f64, max)
}

/// Wraps per-run snapshots in the envelope used by multi-run artifacts
/// (`trace_run`, the `--trace` flag on figure binaries): schema
/// `swiftrl-metrics-bundle-v1` with a `runs` array.
pub fn snapshot_bundle(benchmark: &str, runs: &[MetricsSnapshot]) -> Json {
    Json::obj([
        ("schema", Json::str("swiftrl-metrics-bundle-v1")),
        ("benchmark", Json::str(benchmark)),
        (
            "runs",
            Json::Arr(runs.iter().map(MetricsSnapshot::to_json).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::ProgramLoad {
                dpus: 2,
                bytes: 128,
                seconds: 0.25,
            },
            Event::Transfer {
                kind: TransferKind::Scatter,
                bytes: 1000,
                dpus: 2,
                seconds: 0.5,
            },
            Event::KernelLaunch {
                dpus: 2,
                max_cycles: 200,
                min_cycles: 100,
                mean_cycles: 150.0,
                seconds: 1.0,
                dpu_cycles: vec![(0, 200), (1, 100)],
                faulted_dpus: vec![],
                classes: CycleClassTotals {
                    alu_slots: 10,
                    ..CycleClassTotals::default()
                },
                sanitizer_findings: 0,
            },
            Event::KernelLaunch {
                dpus: 1,
                max_cycles: 300,
                min_cycles: 300,
                mean_cycles: 300.0,
                seconds: 1.5,
                dpu_cycles: vec![(1, 300)],
                faulted_dpus: vec![0],
                classes: CycleClassTotals::default(),
                sanitizer_findings: 2,
            },
            Event::TransferFault {
                kind: TransferFaultKind::Dropped,
                seq: 5,
                dpu: 1,
            },
            Event::SyncRound {
                round: 0,
                live_dpus: 2,
            },
            Event::HostAggregate {
                tables: 2,
                bytes: 256,
                seconds: 0.125,
            },
            Event::Retry {
                attempt: 1,
                dpus: vec![0],
            },
            Event::Rollback { to_round: 0 },
            Event::Degradation {
                dead_dpus: vec![0],
                survivors: 1,
            },
            Event::MemoryCeilings {
                bank_bytes: 4096,
                bank_peak_bytes: 8192,
                arena_bytes: 8192,
                arena_peak_bytes: 8192,
            },
        ]
    }

    #[test]
    fn snapshot_folds_the_stream() {
        let snap = MetricsSnapshot::from_events("test", &sample_events());
        assert_eq!(snap.launches, 2);
        assert_eq!(snap.faulted_launches, 1);
        assert_eq!(snap.kernel_seconds, 2.5);
        assert_eq!(snap.classes.alu_slots, 10);
        assert_eq!(snap.imbalance, vec![200.0 / 150.0, 1.0]);
        assert_eq!(snap.launch_cycles, vec![200.0, 300.0]);
        assert_eq!(snap.program_load.bytes, 128);
        assert_eq!(snap.transfers.len(), 1);
        assert_eq!(snap.transfers[0].0, TransferKind::Scatter);
        assert_eq!(snap.sync_rounds, 1);
        assert_eq!(snap.faults_dropped, 1);
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.rollbacks, 1);
        assert_eq!(snap.degraded_dpus, 1);
        assert_eq!(snap.bank_bytes, 4096);
        assert_eq!(snap.bank_peak_bytes, 8192);
        assert_eq!(snap.arena_peak_bytes, 8192);
        assert_eq!(snap.sanitizer_findings, 2);
    }

    #[test]
    fn json_rendering_is_deterministic_and_parses() {
        let snap = MetricsSnapshot::from_events("run A", &sample_events());
        let rendered = snap.to_json().render_pretty();
        assert_eq!(rendered, snap.to_json().render_pretty());
        let doc = crate::json::parse(&rendered).expect("self-parse");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("swiftrl-metrics-v3")
        );
        assert_eq!(doc.get("launches").and_then(Json::as_u64), Some(2));
        assert_eq!(
            doc.get("imbalance")
                .and_then(|i| i.get("p99"))
                .and_then(Json::as_f64),
            Some(200.0 / 150.0)
        );
        assert_eq!(
            doc.get("launch_cycles")
                .and_then(|l| l.get("p50"))
                .and_then(Json::as_f64),
            Some(200.0)
        );
        assert_eq!(
            doc.get("launch_cycles")
                .and_then(|l| l.get("count"))
                .and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            doc.get("memory")
                .and_then(|m| m.get("bank_peak_bytes"))
                .and_then(Json::as_u64),
            Some(8192)
        );
        let bundle = snapshot_bundle("trace_run", &[snap]);
        let parsed = crate::json::parse(&bundle.render_pretty()).expect("bundle parses");
        assert_eq!(
            parsed
                .get("runs")
                .and_then(Json::as_array)
                .map(|r| r.len()),
            Some(1)
        );
    }

    #[test]
    fn nearest_rank_percentiles_match_hand_computation() {
        // 1..=100: nearest-rank pQ of n=100 is exactly the Q-th value.
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&samples, 0.50), 50.0);
        assert_eq!(percentile(&samples, 0.95), 95.0);
        assert_eq!(percentile(&samples, 0.99), 99.0);
        assert_eq!(percentile(&samples, 1.0), 100.0);
        assert_eq!(percentiles(&samples), (50.0, 95.0, 99.0));
        // Small sets: p50 of [3,1] is the 1st sorted sample, p95/p99 the 2nd.
        assert_eq!(percentiles(&[3.0, 1.0]), (1.0, 3.0, 3.0));
        // Singleton: every percentile is the sample.
        assert_eq!(percentiles(&[7.5]), (7.5, 7.5, 7.5));
        // Empty: zeros, no panic.
        assert_eq!(percentiles(&[]), (0.0, 0.0, 0.0));
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn histogram_summary_statistics() {
        let mut h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p99(), 0.0);
        for v in [4.0, 2.0, 8.0, 6.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 20.0);
        assert_eq!(h.min(), 2.0);
        assert_eq!(h.max(), 8.0);
        assert_eq!(h.mean(), 5.0);
        assert_eq!(h.p50(), 4.0);
        assert_eq!(h.p95(), 8.0);
        assert_eq!(h.p99(), 8.0);
        assert_eq!(h.samples(), &[4.0, 2.0, 8.0, 6.0]);
        let doc = crate::json::parse(&h.to_json().render()).expect("parse");
        assert_eq!(doc.get("count").and_then(Json::as_u64), Some(4));
        assert_eq!(doc.get("p50").and_then(Json::as_f64), Some(4.0));
        assert_eq!(doc.get("sum").and_then(Json::as_f64), Some(20.0));
    }

    #[test]
    fn empty_stream_yields_zeroed_snapshot() {
        let snap = MetricsSnapshot::from_events("empty", &[]);
        assert_eq!(snap.launches, 0);
        assert!(snap.imbalance.is_empty());
        let doc = crate::json::parse(&snap.to_json().render()).expect("parse");
        assert_eq!(
            doc.get("imbalance")
                .and_then(|i| i.get("mean"))
                .and_then(Json::as_f64),
            Some(0.0)
        );
    }
}
