//! The [`Telemetry`] handle: a cloneable, optionally-attached event sink.
//!
//! Disabled (the default) it is a `None` — emitting is a single branch
//! and the event constructor closure is never evaluated, so the launch
//! hot path allocates nothing and observes nothing. Enabled, all clones
//! share one ordered buffer behind an `Arc<Mutex<…>>`; every emission
//! happens on the host thread after worker results are merged in
//! DPU-index order, so the buffer order is deterministic and
//! engine-invariant.

use crate::event::Event;
use std::sync::{Arc, Mutex};

/// Shared event buffer (present only when telemetry is enabled).
type Sink = Arc<Mutex<Vec<Event>>>;

/// A handle to an (optional) telemetry event stream.
///
/// `Telemetry::default()` is disabled and costs nothing. An enabled
/// handle created with [`Telemetry::enabled`] can be cloned freely —
/// clones share the same buffer, which is how a `PimConfig` carried
/// into a `DpuSet` keeps feeding the stream the caller holds.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    sink: Option<Sink>,
}

impl Telemetry {
    /// A disabled handle: emissions are no-ops, nothing is allocated.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled handle with a fresh, empty event buffer.
    pub fn enabled() -> Self {
        Self {
            sink: Some(Arc::new(Mutex::new(Vec::new()))),
        }
    }

    /// Whether events are being recorded. Callers building expensive
    /// event payloads (e.g. per-DPU span vectors) should gate the work
    /// on this.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Appends an event to the stream. The closure is evaluated only
    /// when the handle is enabled, so constructing the event (and any
    /// allocation inside it) is free on the disabled path.
    #[inline]
    pub fn emit(&self, make: impl FnOnce() -> Event) {
        if let Some(sink) = &self.sink {
            let event = make();
            if let Ok(mut events) = sink.lock() {
                events.push(event);
            }
        }
    }

    /// A snapshot of the events recorded so far, in emission order.
    /// Empty for a disabled handle.
    pub fn events(&self) -> Vec<Event> {
        match &self.sink {
            Some(sink) => match sink.lock() {
                Ok(events) => events.clone(),
                Err(_) => Vec::new(),
            },
            None => Vec::new(),
        }
    }

    /// Number of events recorded so far (0 when disabled).
    pub fn len(&self) -> usize {
        match &self.sink {
            Some(sink) => match sink.lock() {
                Ok(events) => events.len(),
                Err(_) => 0,
            },
            None => 0,
        }
    }

    /// Whether no events have been recorded (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all recorded events, keeping the handle enabled.
    pub fn clear(&self) {
        if let Some(sink) = &self.sink {
            if let Ok(mut events) = sink.lock() {
                events.clear();
            }
        }
    }
}

/// Identity equality: two handles are equal when they are both disabled
/// or share the same buffer. This keeps `PimConfig`'s derived
/// `PartialEq` meaningful without comparing stream contents.
impl PartialEq for Telemetry {
    fn eq(&self, other: &Self) -> bool {
        match (&self.sink, &other.sink) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[test]
    fn disabled_never_evaluates_the_closure() {
        let t = Telemetry::disabled();
        let mut evaluated = false;
        t.emit(|| {
            evaluated = true;
            Event::Rollback { to_round: 0 }
        });
        assert!(!evaluated);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = Telemetry::enabled();
        let clone = t.clone();
        clone.emit(|| Event::Rollback { to_round: 7 });
        assert_eq!(t.len(), 1);
        assert_eq!(t.events(), clone.events());
        assert_eq!(t, clone);
        t.clear();
        assert!(clone.is_empty());
    }

    #[test]
    fn equality_is_identity_not_contents() {
        let a = Telemetry::enabled();
        let b = Telemetry::enabled();
        assert_ne!(a, b); // both empty, but distinct buffers
        assert_eq!(Telemetry::disabled(), Telemetry::disabled());
        assert_ne!(a, Telemetry::disabled());
    }
}
