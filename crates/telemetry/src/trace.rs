//! Chrome `trace_event` JSON export: lays the event stream out as host
//! and per-DPU lanes on the **simulated** timeline, loadable in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Mapping:
//! - one *process* per run (`pid` = run index + 1, named by its label);
//! - `tid 0` is the host lane: program loads, transfers, launch
//!   critical paths and host aggregations as `"X"` complete events;
//! - `tid i+1` is DPU `i`: each launch contributes one `"X"` span per
//!   surviving DPU, scaled by its cycle share of the launch critical
//!   path (`seconds * cycles / max_cycles`) so lane lengths visualise
//!   load imbalance directly;
//! - faults, retries, rollbacks, degradations and sync-round boundaries
//!   are `"i"` instant events on the host lane.
//!
//! Timestamps (`ts`) and durations (`dur`) are microseconds of
//! simulated time accumulated event by event, matching the serialized
//! host timeline of the cost model. The export is a pure function of
//! the stream, hence byte-deterministic and engine-invariant.

use crate::event::Event;
use crate::json::Json;

const US_PER_S: f64 = 1e6;

/// Renders one run's event stream as a Chrome trace JSON string.
pub fn chrome_trace(label: &str, events: &[Event]) -> String {
    chrome_trace_multi(&[(label.to_string(), events)])
}

/// Renders several runs side by side (one trace process per run).
/// Accepts `(label, events)` pairs; run order fixes `pid` assignment.
pub fn chrome_trace_multi(runs: &[(String, &[Event])]) -> String {
    let mut trace_events = Vec::new();
    for (run_idx, (label, events)) in runs.iter().enumerate() {
        let pid = run_idx as u64 + 1;
        emit_run(&mut trace_events, pid, label, events);
    }
    Json::obj([
        ("traceEvents", Json::Arr(trace_events)),
        ("displayTimeUnit", Json::str("ms")),
    ])
    .render_pretty()
}

fn metadata(pid: u64, tid: u64, what: &'static str, name: &str) -> Json {
    Json::obj([
        ("ph", Json::str("M")),
        ("pid", Json::UInt(pid)),
        ("tid", Json::UInt(tid)),
        ("name", Json::str(what)),
        ("args", Json::obj([("name", Json::str(name))])),
    ])
}

fn complete(pid: u64, tid: u64, name: &str, ts_us: f64, dur_us: f64, args: Json) -> Json {
    Json::obj([
        ("ph", Json::str("X")),
        ("pid", Json::UInt(pid)),
        ("tid", Json::UInt(tid)),
        ("name", Json::str(name)),
        ("ts", Json::Num(ts_us)),
        ("dur", Json::Num(dur_us)),
        ("args", args),
    ])
}

fn instant(pid: u64, name: &str, ts_us: f64, args: Json) -> Json {
    Json::obj([
        ("ph", Json::str("i")),
        ("pid", Json::UInt(pid)),
        ("tid", Json::UInt(0)),
        ("name", Json::str(name)),
        ("ts", Json::Num(ts_us)),
        ("s", Json::str("t")),
        ("args", args),
    ])
}

fn emit_run(out: &mut Vec<Json>, pid: u64, label: &str, events: &[Event]) {
    out.push(metadata(pid, 0, "process_name", label));
    out.push(metadata(pid, 0, "thread_name", "host"));
    // Name each DPU lane once, in index order, by scanning the stream
    // for the set of DPUs that ever ran a span.
    let mut named = Vec::new();
    for event in events {
        if let Event::KernelLaunch { dpu_cycles, .. } = event {
            for &(dpu, _) in dpu_cycles {
                if !named.contains(&dpu) {
                    named.push(dpu);
                }
            }
        }
    }
    named.sort_unstable();
    for &dpu in &named {
        out.push(metadata(
            pid,
            dpu as u64 + 1,
            "thread_name",
            &format!("dpu {dpu}"),
        ));
    }

    let mut now_us = 0.0_f64;
    for event in events {
        match event {
            Event::ProgramLoad {
                dpus,
                bytes,
                seconds,
            } => {
                let dur = seconds * US_PER_S;
                out.push(complete(
                    pid,
                    0,
                    "program_load",
                    now_us,
                    dur,
                    Json::obj([("dpus", Json::UInt(*dpus as u64)), ("bytes", Json::UInt(*bytes))]),
                ));
                now_us += dur;
            }
            Event::Transfer {
                kind,
                bytes,
                dpus,
                seconds,
            } => {
                let dur = seconds * US_PER_S;
                out.push(complete(
                    pid,
                    0,
                    kind.name(),
                    now_us,
                    dur,
                    Json::obj([("dpus", Json::UInt(*dpus as u64)), ("bytes", Json::UInt(*bytes))]),
                ));
                now_us += dur;
            }
            Event::TransferFault { kind, seq, dpu } => {
                out.push(instant(
                    pid,
                    &format!("transfer_fault:{}", kind.name()),
                    now_us,
                    Json::obj([("seq", Json::UInt(*seq)), ("dpu", Json::UInt(*dpu as u64))]),
                ));
            }
            Event::KernelLaunch {
                dpus,
                max_cycles,
                min_cycles,
                mean_cycles,
                seconds,
                dpu_cycles,
                faulted_dpus,
                ..
            } => {
                let dur = seconds * US_PER_S;
                out.push(complete(
                    pid,
                    0,
                    "kernel_launch",
                    now_us,
                    dur,
                    Json::obj([
                        ("dpus", Json::UInt(*dpus as u64)),
                        ("max_cycles", Json::UInt(*max_cycles)),
                        ("min_cycles", Json::UInt(*min_cycles)),
                        ("mean_cycles", Json::Num(*mean_cycles)),
                        (
                            "imbalance",
                            Json::Num(if *mean_cycles > 0.0 {
                                *max_cycles as f64 / *mean_cycles
                            } else {
                                0.0
                            }),
                        ),
                        (
                            "faulted_dpus",
                            Json::Arr(
                                faulted_dpus.iter().map(|&d| Json::UInt(d as u64)).collect(),
                            ),
                        ),
                    ]),
                ));
                for &(dpu, cycles) in dpu_cycles {
                    // Scale each lane by its cycle share of the critical
                    // path: the slowest DPU spans the full launch.
                    let share = if *max_cycles > 0 {
                        cycles as f64 / *max_cycles as f64
                    } else {
                        0.0
                    };
                    out.push(complete(
                        pid,
                        dpu as u64 + 1,
                        "kernel",
                        now_us,
                        dur * share,
                        Json::obj([("cycles", Json::UInt(cycles))]),
                    ));
                }
                now_us += dur;
            }
            Event::SyncRound { round, live_dpus } => {
                out.push(instant(
                    pid,
                    "sync_round",
                    now_us,
                    Json::obj([
                        ("round", Json::UInt(*round as u64)),
                        ("live_dpus", Json::UInt(*live_dpus as u64)),
                    ]),
                ));
            }
            Event::HostAggregate {
                tables,
                bytes,
                seconds,
            } => {
                let dur = seconds * US_PER_S;
                out.push(complete(
                    pid,
                    0,
                    "host_aggregate",
                    now_us,
                    dur,
                    Json::obj([
                        ("tables", Json::UInt(*tables as u64)),
                        ("bytes", Json::UInt(*bytes)),
                    ]),
                ));
                now_us += dur;
            }
            Event::Retry { attempt, dpus } => {
                out.push(instant(
                    pid,
                    "retry",
                    now_us,
                    Json::obj([
                        ("attempt", Json::UInt(*attempt as u64)),
                        (
                            "dpus",
                            Json::Arr(dpus.iter().map(|&d| Json::UInt(d as u64)).collect()),
                        ),
                    ]),
                ));
            }
            Event::Rollback { to_round } => {
                out.push(instant(
                    pid,
                    "rollback",
                    now_us,
                    Json::obj([("to_round", Json::UInt(*to_round as u64))]),
                ));
            }
            Event::Degradation {
                dead_dpus,
                survivors,
            } => {
                out.push(instant(
                    pid,
                    "degradation",
                    now_us,
                    Json::obj([
                        (
                            "dead_dpus",
                            Json::Arr(dead_dpus.iter().map(|&d| Json::UInt(d as u64)).collect()),
                        ),
                        ("survivors", Json::UInt(*survivors as u64)),
                    ]),
                ));
            }
            Event::MemoryCeilings {
                bank_bytes,
                bank_peak_bytes,
                arena_bytes,
                arena_peak_bytes,
            } => {
                out.push(instant(
                    pid,
                    "memory_ceilings",
                    now_us,
                    Json::obj([
                        ("bank_bytes", Json::UInt(*bank_bytes)),
                        ("bank_peak_bytes", Json::UInt(*bank_peak_bytes)),
                        ("arena_bytes", Json::UInt(*arena_bytes)),
                        ("arena_peak_bytes", Json::UInt(*arena_peak_bytes)),
                    ]),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CycleClassTotals, TransferKind};
    use crate::json::{parse, Json};

    fn stream() -> Vec<Event> {
        vec![
            Event::ProgramLoad {
                dpus: 2,
                bytes: 64,
                seconds: 0.001,
            },
            Event::Transfer {
                kind: TransferKind::Scatter,
                bytes: 512,
                dpus: 2,
                seconds: 0.002,
            },
            Event::KernelLaunch {
                dpus: 2,
                max_cycles: 1000,
                min_cycles: 500,
                mean_cycles: 750.0,
                seconds: 0.004,
                dpu_cycles: vec![(0, 1000), (1, 500)],
                faulted_dpus: vec![],
                classes: CycleClassTotals::default(),
                sanitizer_findings: 0,
            },
            Event::SyncRound {
                round: 0,
                live_dpus: 2,
            },
        ]
    }

    #[test]
    fn trace_parses_and_lays_out_lanes() {
        let rendered = chrome_trace("unit test", &stream());
        let doc = parse(&rendered).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        // 2 process/host metadata + 2 DPU lane names + load + transfer
        // + launch + 2 spans + sync instant.
        assert_eq!(events.len(), 10);
        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("kernel"))
            .collect();
        assert_eq!(spans.len(), 2);
        // The slowest DPU spans the full launch; the other is scaled.
        let durs: Vec<f64> = spans
            .iter()
            .map(|s| s.get("dur").and_then(Json::as_f64).expect("dur"))
            .collect();
        assert!((durs[0] - 4000.0).abs() < 1e-9);
        assert!((durs[1] - 2000.0).abs() < 1e-9);
        // Spans start after load + transfer (3 ms in).
        assert_eq!(spans[0].get("ts").and_then(Json::as_f64), Some(3000.0));
    }

    #[test]
    fn multi_run_assigns_distinct_pids() {
        let s = stream();
        let rendered = chrome_trace_multi(&[("a".to_string(), &s[..]), ("b".to_string(), &s[..])]);
        let doc = parse(&rendered).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("array");
        let pids: Vec<u64> = events
            .iter()
            .filter_map(|e| e.get("pid").and_then(Json::as_u64))
            .collect();
        assert!(pids.contains(&1) && pids.contains(&2));
    }

    #[test]
    fn export_is_deterministic() {
        let s = stream();
        assert_eq!(chrome_trace("x", &s), chrome_trace("x", &s));
    }
}
