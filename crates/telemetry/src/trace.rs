//! Chrome `trace_event` JSON export: lays the event stream out as host
//! and per-DPU lanes on the **simulated** timeline, loadable in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Mapping:
//! - one *process* per run (`pid` = run index + 1, named by its label);
//! - `tid 0` is the host lane: program loads, transfers, launch
//!   critical paths and host aggregations as `"X"` complete events;
//! - `tid i+1` is DPU `i`: each launch contributes one `"X"` span per
//!   surviving DPU, scaled by its cycle share of the launch critical
//!   path (`seconds * cycles / max_cycles`) so lane lengths visualise
//!   load imbalance directly;
//! - faults, retries, rollbacks, degradations and sync-round boundaries
//!   are `"i"` instant events on the host lane.
//!
//! Timestamps (`ts`) and durations (`dur`) are microseconds of
//! simulated time accumulated event by event, matching the serialized
//! host timeline of the cost model. The export is a pure function of
//! the stream, hence byte-deterministic and engine-invariant.

use crate::event::Event;
use crate::json::Json;
use crate::service::{ServiceEvent, ServiceRecord};

const US_PER_S: f64 = 1e6;

/// Trace process id of the service scheduler/worker lanes in a merged
/// service timeline.
pub const SERVICE_PID: u64 = 1;
/// Trace process id of the rank-occupancy lanes in a merged service
/// timeline.
pub const RANKS_PID: u64 = 2;
/// First trace process id available to per-job processes: job `j` maps
/// to `pid = JOB_PID_BASE + j`, which is stable across exports and can
/// never collide with the service or rank processes.
pub const JOB_PID_BASE: u64 = 10;

/// Renders one run's event stream as a Chrome trace JSON string.
pub fn chrome_trace(label: &str, events: &[Event]) -> String {
    chrome_trace_multi(&[(label.to_string(), events)])
}

/// Renders several runs side by side (one trace process per run).
/// Accepts `(label, events)` pairs; run order fixes `pid` assignment.
pub fn chrome_trace_multi(runs: &[(String, &[Event])]) -> String {
    let mut trace_events = Vec::new();
    for (run_idx, (label, events)) in runs.iter().enumerate() {
        let pid = run_idx as u64 + 1;
        emit_run(&mut trace_events, pid, label, events, 0.0);
    }
    wrap(trace_events)
}

/// Renders several *jobs* side by side with **stable** lane identity:
/// each `(job_id, label, events)` run gets `pid = JOB_PID_BASE +
/// job_id`, so merged traces keep one distinct process per job no
/// matter which subset of jobs is exported or in what order — unlike
/// [`chrome_trace_multi`], whose pids follow slice order.
pub fn chrome_trace_jobs(runs: &[(u64, String, &[Event])]) -> String {
    let mut trace_events = Vec::new();
    for (job, label, events) in runs {
        emit_run(&mut trace_events, JOB_PID_BASE + job, label, events, 0.0);
    }
    wrap(trace_events)
}

fn wrap(trace_events: Vec<Json>) -> String {
    Json::obj([
        ("traceEvents", Json::Arr(trace_events)),
        ("displayTimeUnit", Json::str("ms")),
    ])
    .render_pretty()
}

/// Renders the fleet-wide service timeline: every tenant merged onto
/// one trace with lanes per worker, per rank, and per job.
///
/// Layout:
/// - process [`SERVICE_PID`] (`service`): `tid 0` is the scheduler lane
///   (job lifecycle instants and the `queue_depth` counter series);
///   `tid w+1` is worker `w`, with one `"X"` span per job it drove
///   (from its `WorkerBusy` to the matching `WorkerIdle`);
/// - process [`RANKS_PID`] (`ranks`): `tid r+1` is rank `r`, with one
///   span per lease it served (from `LeaseGranted` to
///   `LeaseReleased`);
/// - one process per job at the stable `pid = JOB_PID_BASE + job_id`
///   (via [`chrome_trace_jobs`]'s mapping), laying the job's private
///   event stream out exactly like [`chrome_trace`] but offset by the
///   job's admission wall time, so per-job simulated timelines sit in
///   service wall-clock context.
///
/// Service lanes are on the **wall clock** ([`ServiceRecord::wall_s`],
/// all-zero under a deterministic sink); job lanes are simulated time
/// offset by admission. `jobs` supplies `(job_id, label, events)` for
/// every job process to render.
pub fn service_trace(records: &[ServiceRecord], jobs: &[(u64, String, Vec<Event>)]) -> String {
    let mut out = Vec::new();
    out.push(metadata(SERVICE_PID, 0, "process_name", "service"));
    out.push(metadata(SERVICE_PID, 0, "thread_name", "scheduler"));

    // Name worker and rank lanes once each, in index order.
    let mut workers = Vec::new();
    let mut ranks = Vec::new();
    for record in records {
        match &record.event {
            ServiceEvent::WorkerBusy { worker, .. } | ServiceEvent::WorkerIdle { worker }
                if !workers.contains(worker) =>
            {
                workers.push(*worker);
            }
            ServiceEvent::LeaseGranted { ranks: r, .. }
            | ServiceEvent::LeaseReleased { ranks: r, .. } => {
                for rank in r {
                    if !ranks.contains(rank) {
                        ranks.push(*rank);
                    }
                }
            }
            _ => {}
        }
    }
    workers.sort_unstable();
    ranks.sort_unstable();
    for &worker in &workers {
        out.push(metadata(
            SERVICE_PID,
            worker as u64 + 1,
            "thread_name",
            &format!("worker {worker}"),
        ));
    }
    if !ranks.is_empty() {
        out.push(metadata(RANKS_PID, 0, "process_name", "ranks"));
        for &rank in &ranks {
            out.push(metadata(
                RANKS_PID,
                rank as u64 + 1,
                "thread_name",
                &format!("rank {rank}"),
            ));
        }
    }

    // Occupancy spans: track open worker-busy and rank-lease intervals
    // keyed by the logical ids, closing each on its matching release.
    let mut open_workers: Vec<(usize, f64, u64)> = Vec::new();
    let mut open_ranks: Vec<(usize, f64, u64)> = Vec::new();
    let mut last_ts = 0.0_f64;
    for record in records {
        let ts = record.wall_s * US_PER_S;
        last_ts = last_ts.max(ts);
        match &record.event {
            ServiceEvent::WorkerBusy { worker, job } => {
                open_workers.push((*worker, ts, *job));
            }
            ServiceEvent::WorkerIdle { worker } => {
                if let Some(pos) = open_workers.iter().position(|(w, _, _)| w == worker) {
                    let (worker, start, job) = open_workers.remove(pos);
                    out.push(complete(
                        SERVICE_PID,
                        worker as u64 + 1,
                        &format!("job {job}"),
                        start,
                        ts - start,
                        Json::obj([("job", Json::UInt(job))]),
                    ));
                }
            }
            ServiceEvent::LeaseGranted { job, ranks, .. } => {
                for &rank in ranks {
                    open_ranks.push((rank, ts, *job));
                }
            }
            ServiceEvent::LeaseReleased { job, ranks, .. } => {
                for &rank in ranks {
                    if let Some(pos) = open_ranks
                        .iter()
                        .position(|(r, _, j)| *r == rank && j == job)
                    {
                        let (rank, start, job) = open_ranks.remove(pos);
                        out.push(complete(
                            RANKS_PID,
                            rank as u64 + 1,
                            &format!("job {job}"),
                            start,
                            ts - start,
                            Json::obj([("job", Json::UInt(job))]),
                        ));
                    }
                }
            }
            ServiceEvent::QueueDepth { depth } => {
                out.push(Json::obj([
                    ("ph", Json::str("C")),
                    ("pid", Json::UInt(SERVICE_PID)),
                    ("tid", Json::UInt(0)),
                    ("name", Json::str("queue_depth")),
                    ("ts", Json::Num(ts)),
                    ("args", Json::obj([("depth", Json::UInt(*depth as u64))])),
                ]));
            }
            ServiceEvent::JobSubmitted { .. }
            | ServiceEvent::JobAdmitted { .. }
            | ServiceEvent::JobCompleted { .. }
            | ServiceEvent::JobCancelled { .. }
            | ServiceEvent::JobFailed { .. } => {
                let job = record.event.job().unwrap_or(0);
                out.push(instant(
                    SERVICE_PID,
                    record.event.name(),
                    ts,
                    Json::obj([("job", Json::UInt(job))]),
                ));
            }
            // Per-job sync rounds already appear on the job's own lanes.
            ServiceEvent::SyncRound { .. } => {}
        }
    }
    // Close intervals still open when the stream was snapshotted.
    for (worker, start, job) in open_workers {
        out.push(complete(
            SERVICE_PID,
            worker as u64 + 1,
            &format!("job {job}"),
            start,
            last_ts - start,
            Json::obj([("job", Json::UInt(job))]),
        ));
    }
    for (rank, start, job) in open_ranks {
        out.push(complete(
            RANKS_PID,
            rank as u64 + 1,
            &format!("job {job}"),
            start,
            last_ts - start,
            Json::obj([("job", Json::UInt(job))]),
        ));
    }

    // Per-job processes at stable pids, offset by admission wall time.
    for (job, label, events) in jobs {
        let admitted_us = records
            .iter()
            .find_map(|r| match &r.event {
                ServiceEvent::JobAdmitted { job: j, .. } if j == job => {
                    Some(r.wall_s * US_PER_S)
                }
                _ => None,
            })
            .unwrap_or(0.0);
        emit_run(&mut out, JOB_PID_BASE + job, label, events, admitted_us);
    }
    wrap(out)
}

fn metadata(pid: u64, tid: u64, what: &'static str, name: &str) -> Json {
    Json::obj([
        ("ph", Json::str("M")),
        ("pid", Json::UInt(pid)),
        ("tid", Json::UInt(tid)),
        ("name", Json::str(what)),
        ("args", Json::obj([("name", Json::str(name))])),
    ])
}

fn complete(pid: u64, tid: u64, name: &str, ts_us: f64, dur_us: f64, args: Json) -> Json {
    Json::obj([
        ("ph", Json::str("X")),
        ("pid", Json::UInt(pid)),
        ("tid", Json::UInt(tid)),
        ("name", Json::str(name)),
        ("ts", Json::Num(ts_us)),
        ("dur", Json::Num(dur_us)),
        ("args", args),
    ])
}

fn instant(pid: u64, name: &str, ts_us: f64, args: Json) -> Json {
    Json::obj([
        ("ph", Json::str("i")),
        ("pid", Json::UInt(pid)),
        ("tid", Json::UInt(0)),
        ("name", Json::str(name)),
        ("ts", Json::Num(ts_us)),
        ("s", Json::str("t")),
        ("args", args),
    ])
}

fn emit_run(out: &mut Vec<Json>, pid: u64, label: &str, events: &[Event], start_us: f64) {
    out.push(metadata(pid, 0, "process_name", label));
    out.push(metadata(pid, 0, "thread_name", "host"));
    // Name each DPU lane once, in index order, by scanning the stream
    // for the set of DPUs that ever ran a span.
    let mut named = Vec::new();
    for event in events {
        if let Event::KernelLaunch { dpu_cycles, .. } = event {
            for &(dpu, _) in dpu_cycles {
                if !named.contains(&dpu) {
                    named.push(dpu);
                }
            }
        }
    }
    named.sort_unstable();
    for &dpu in &named {
        out.push(metadata(
            pid,
            dpu as u64 + 1,
            "thread_name",
            &format!("dpu {dpu}"),
        ));
    }

    let mut now_us = start_us;
    for event in events {
        match event {
            Event::ProgramLoad {
                dpus,
                bytes,
                seconds,
            } => {
                let dur = seconds * US_PER_S;
                out.push(complete(
                    pid,
                    0,
                    "program_load",
                    now_us,
                    dur,
                    Json::obj([("dpus", Json::UInt(*dpus as u64)), ("bytes", Json::UInt(*bytes))]),
                ));
                now_us += dur;
            }
            Event::Transfer {
                kind,
                bytes,
                dpus,
                seconds,
            } => {
                let dur = seconds * US_PER_S;
                out.push(complete(
                    pid,
                    0,
                    kind.name(),
                    now_us,
                    dur,
                    Json::obj([("dpus", Json::UInt(*dpus as u64)), ("bytes", Json::UInt(*bytes))]),
                ));
                now_us += dur;
            }
            Event::TransferFault { kind, seq, dpu } => {
                out.push(instant(
                    pid,
                    &format!("transfer_fault:{}", kind.name()),
                    now_us,
                    Json::obj([("seq", Json::UInt(*seq)), ("dpu", Json::UInt(*dpu as u64))]),
                ));
            }
            Event::KernelLaunch {
                dpus,
                max_cycles,
                min_cycles,
                mean_cycles,
                seconds,
                dpu_cycles,
                faulted_dpus,
                ..
            } => {
                let dur = seconds * US_PER_S;
                out.push(complete(
                    pid,
                    0,
                    "kernel_launch",
                    now_us,
                    dur,
                    Json::obj([
                        ("dpus", Json::UInt(*dpus as u64)),
                        ("max_cycles", Json::UInt(*max_cycles)),
                        ("min_cycles", Json::UInt(*min_cycles)),
                        ("mean_cycles", Json::Num(*mean_cycles)),
                        (
                            "imbalance",
                            Json::Num(if *mean_cycles > 0.0 {
                                *max_cycles as f64 / *mean_cycles
                            } else {
                                0.0
                            }),
                        ),
                        (
                            "faulted_dpus",
                            Json::Arr(
                                faulted_dpus.iter().map(|&d| Json::UInt(d as u64)).collect(),
                            ),
                        ),
                    ]),
                ));
                for &(dpu, cycles) in dpu_cycles {
                    // Scale each lane by its cycle share of the critical
                    // path: the slowest DPU spans the full launch.
                    let share = if *max_cycles > 0 {
                        cycles as f64 / *max_cycles as f64
                    } else {
                        0.0
                    };
                    out.push(complete(
                        pid,
                        dpu as u64 + 1,
                        "kernel",
                        now_us,
                        dur * share,
                        Json::obj([("cycles", Json::UInt(cycles))]),
                    ));
                }
                now_us += dur;
            }
            Event::SyncRound { round, live_dpus } => {
                out.push(instant(
                    pid,
                    "sync_round",
                    now_us,
                    Json::obj([
                        ("round", Json::UInt(*round as u64)),
                        ("live_dpus", Json::UInt(*live_dpus as u64)),
                    ]),
                ));
            }
            Event::HostAggregate {
                tables,
                bytes,
                seconds,
            } => {
                let dur = seconds * US_PER_S;
                out.push(complete(
                    pid,
                    0,
                    "host_aggregate",
                    now_us,
                    dur,
                    Json::obj([
                        ("tables", Json::UInt(*tables as u64)),
                        ("bytes", Json::UInt(*bytes)),
                    ]),
                ));
                now_us += dur;
            }
            Event::Retry { attempt, dpus } => {
                out.push(instant(
                    pid,
                    "retry",
                    now_us,
                    Json::obj([
                        ("attempt", Json::UInt(*attempt as u64)),
                        (
                            "dpus",
                            Json::Arr(dpus.iter().map(|&d| Json::UInt(d as u64)).collect()),
                        ),
                    ]),
                ));
            }
            Event::Rollback { to_round } => {
                out.push(instant(
                    pid,
                    "rollback",
                    now_us,
                    Json::obj([("to_round", Json::UInt(*to_round as u64))]),
                ));
            }
            Event::Degradation {
                dead_dpus,
                survivors,
            } => {
                out.push(instant(
                    pid,
                    "degradation",
                    now_us,
                    Json::obj([
                        (
                            "dead_dpus",
                            Json::Arr(dead_dpus.iter().map(|&d| Json::UInt(d as u64)).collect()),
                        ),
                        ("survivors", Json::UInt(*survivors as u64)),
                    ]),
                ));
            }
            Event::MemoryCeilings {
                bank_bytes,
                bank_peak_bytes,
                arena_bytes,
                arena_peak_bytes,
            } => {
                out.push(instant(
                    pid,
                    "memory_ceilings",
                    now_us,
                    Json::obj([
                        ("bank_bytes", Json::UInt(*bank_bytes)),
                        ("bank_peak_bytes", Json::UInt(*bank_peak_bytes)),
                        ("arena_bytes", Json::UInt(*arena_bytes)),
                        ("arena_peak_bytes", Json::UInt(*arena_peak_bytes)),
                    ]),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CycleClassTotals, TransferKind};
    use crate::json::{parse, Json};

    fn stream() -> Vec<Event> {
        vec![
            Event::ProgramLoad {
                dpus: 2,
                bytes: 64,
                seconds: 0.001,
            },
            Event::Transfer {
                kind: TransferKind::Scatter,
                bytes: 512,
                dpus: 2,
                seconds: 0.002,
            },
            Event::KernelLaunch {
                dpus: 2,
                max_cycles: 1000,
                min_cycles: 500,
                mean_cycles: 750.0,
                seconds: 0.004,
                dpu_cycles: vec![(0, 1000), (1, 500)],
                faulted_dpus: vec![],
                classes: CycleClassTotals::default(),
                sanitizer_findings: 0,
            },
            Event::SyncRound {
                round: 0,
                live_dpus: 2,
            },
        ]
    }

    #[test]
    fn trace_parses_and_lays_out_lanes() {
        let rendered = chrome_trace("unit test", &stream());
        let doc = parse(&rendered).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        // 2 process/host metadata + 2 DPU lane names + load + transfer
        // + launch + 2 spans + sync instant.
        assert_eq!(events.len(), 10);
        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("kernel"))
            .collect();
        assert_eq!(spans.len(), 2);
        // The slowest DPU spans the full launch; the other is scaled.
        let durs: Vec<f64> = spans
            .iter()
            .map(|s| s.get("dur").and_then(Json::as_f64).expect("dur"))
            .collect();
        assert!((durs[0] - 4000.0).abs() < 1e-9);
        assert!((durs[1] - 2000.0).abs() < 1e-9);
        // Spans start after load + transfer (3 ms in).
        assert_eq!(spans[0].get("ts").and_then(Json::as_f64), Some(3000.0));
    }

    #[test]
    fn multi_run_assigns_distinct_pids() {
        let s = stream();
        let rendered = chrome_trace_multi(&[("a".to_string(), &s[..]), ("b".to_string(), &s[..])]);
        let doc = parse(&rendered).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("array");
        let pids: Vec<u64> = events
            .iter()
            .filter_map(|e| e.get("pid").and_then(Json::as_u64))
            .collect();
        assert!(pids.contains(&1) && pids.contains(&2));
    }

    #[test]
    fn export_is_deterministic() {
        let s = stream();
        assert_eq!(chrome_trace("x", &s), chrome_trace("x", &s));
    }

    #[test]
    fn job_traces_get_stable_pids_regardless_of_order() {
        let s = stream();
        let fwd = chrome_trace_jobs(&[(3, "job-3".into(), &s[..]), (7, "job-7".into(), &s[..])]);
        let doc = parse(&fwd).expect("valid JSON");
        let pids: Vec<u64> = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("array")
            .iter()
            .filter_map(|e| e.get("pid").and_then(Json::as_u64))
            .collect();
        assert!(pids.contains(&(JOB_PID_BASE + 3)));
        assert!(pids.contains(&(JOB_PID_BASE + 7)));
        // Same jobs in the opposite order keep the same pids.
        let rev = chrome_trace_jobs(&[(7, "job-7".into(), &s[..]), (3, "job-3".into(), &s[..])]);
        let rev_doc = parse(&rev).expect("valid JSON");
        let rev_pids: Vec<u64> = rev_doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("array")
            .iter()
            .filter_map(|e| e.get("pid").and_then(Json::as_u64))
            .collect();
        assert!(rev_pids.contains(&(JOB_PID_BASE + 3)));
        assert!(rev_pids.contains(&(JOB_PID_BASE + 7)));
    }

    #[test]
    fn service_trace_lays_out_worker_rank_and_job_lanes() {
        let records = vec![
            ServiceRecord {
                seq: 0,
                wall_s: 0.0,
                event: ServiceEvent::JobSubmitted {
                    job: 0,
                    tenant: "t".into(),
                    dpus: 2,
                },
            },
            ServiceRecord {
                seq: 1,
                wall_s: 0.0,
                event: ServiceEvent::QueueDepth { depth: 1 },
            },
            ServiceRecord {
                seq: 2,
                wall_s: 0.001,
                event: ServiceEvent::WorkerBusy { worker: 0, job: 0 },
            },
            ServiceRecord {
                seq: 3,
                wall_s: 0.001,
                event: ServiceEvent::LeaseGranted {
                    job: 0,
                    ranks: vec![2],
                    leased_ranks: 1,
                },
            },
            ServiceRecord {
                seq: 4,
                wall_s: 0.001,
                event: ServiceEvent::JobAdmitted { job: 0, dpus: 2 },
            },
            ServiceRecord {
                seq: 5,
                wall_s: 0.004,
                event: ServiceEvent::JobCompleted {
                    job: 0,
                    sync_rounds: 1,
                    launches: 1,
                    faulted_launches: 0,
                    retries: 0,
                    rollbacks: 0,
                    degraded_dpus: 0,
                    kernel_seconds: 0.004,
                    launch_cycles: vec![1000.0],
                },
            },
            ServiceRecord {
                seq: 6,
                wall_s: 0.004,
                event: ServiceEvent::LeaseReleased {
                    job: 0,
                    ranks: vec![2],
                    leased_ranks: 0,
                },
            },
            ServiceRecord {
                seq: 7,
                wall_s: 0.004,
                event: ServiceEvent::WorkerIdle { worker: 0 },
            },
        ];
        let jobs = vec![(0u64, "tenant/job-0".to_string(), stream())];
        let rendered = service_trace(&records, &jobs);
        let doc = parse(&rendered).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("array");
        let by = |pred: &dyn Fn(&&Json) -> bool| events.iter().filter(pred).count();
        // Worker span on the service process, lane 1.
        assert_eq!(
            by(&|e| e.get("pid").and_then(Json::as_u64) == Some(SERVICE_PID)
                && e.get("tid").and_then(Json::as_u64) == Some(1)
                && e.get("ph").and_then(Json::as_str) == Some("X")),
            1
        );
        // Rank lease span on the ranks process, lane rank+1 = 3.
        assert_eq!(
            by(&|e| e.get("pid").and_then(Json::as_u64) == Some(RANKS_PID)
                && e.get("tid").and_then(Json::as_u64) == Some(3)
                && e.get("ph").and_then(Json::as_str) == Some("X")),
            1
        );
        // Queue-depth counter sample.
        assert_eq!(by(&|e| e.get("ph").and_then(Json::as_str) == Some("C")), 1);
        // The job's own process is present at its stable pid and its
        // spans are offset by the admission wall time (1 ms).
        let job_events: Vec<_> = events
            .iter()
            .filter(|e| e.get("pid").and_then(Json::as_u64) == Some(JOB_PID_BASE))
            .collect();
        assert!(!job_events.is_empty());
        let first_span_ts = job_events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("program_load"))
            .and_then(|e| e.get("ts").and_then(Json::as_f64))
            .expect("program_load span");
        assert!((first_span_ts - 1000.0).abs() < 1e-9);
        assert_eq!(rendered, service_trace(&records, &jobs), "deterministic");
    }
}
