//! Minimal JSON tree: deterministic builder/renderer plus a validating
//! recursive-descent parser.
//!
//! The workspace deliberately carries no serialization-format crate, so
//! every JSON artifact (metrics snapshots, Chrome traces, bench output)
//! is built through this module. Objects preserve insertion order and
//! the renderer is byte-deterministic, which is what lets tests compare
//! whole artifacts with `==`. The parser exists so emitters can
//! self-validate what they wrote and so tests can parse pre-existing
//! artifacts (e.g. `BENCH_SIM_THROUGHPUT.json`) structurally.

use std::fmt::Write as _;

/// A JSON value. Objects keep insertion order; rendering is
/// byte-deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, rendered without a decimal point.
    UInt(u64),
    /// A signed integer, rendered without a decimal point.
    Int(i64),
    /// A float; non-finite values render as `null` (JSON has no NaN).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object (None for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an f64 if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a u64 if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders to a compact JSON string (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders to an indented JSON string (two-space indent, trailing
    /// newline) — the house style for artifacts meant to be diffed.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => write_f64(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Floats render with enough precision to round-trip; non-finite values
/// become `null` since JSON cannot represent them.
fn write_f64(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
        return;
    }
    if n == n.trunc() && n.abs() < 1e15 {
        // Keep integral floats readable and unambiguous as numbers.
        let _ = write!(out, "{n:.1}");
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse(src: &str) -> Result<Json, ParseError> {
    let bytes = src.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after document"));
    }
    Ok(value)
}

fn err(offset: usize, message: &str) -> ParseError {
    ParseError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: Json,
) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':' after key"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    *pos += 1; // consume '"'
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| err(*pos, "invalid \\u escape"))?;
                        // Surrogate pairs are not needed for our artifacts;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe
                // to do by char boundaries).
                let rest = &bytes[*pos..];
                let s = match std::str::from_utf8(rest) {
                    Ok(s) => s,
                    Err(_) => return Err(err(*pos, "invalid UTF-8")),
                };
                match s.chars().next() {
                    Some(c) => {
                        out.push(c);
                        *pos += c.len_utf8();
                    }
                    None => return Err(err(*pos, "unterminated string")),
                }
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad number"))?;
    if text.is_empty() || text == "-" {
        return Err(err(start, "expected a value"));
    }
    if !float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Json::UInt(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, "invalid number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_deterministic_and_ordered() {
        let doc = Json::obj([
            ("b", Json::UInt(1)),
            ("a", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("s", Json::str("he\"llo\n")),
        ]);
        assert_eq!(doc.render(), r#"{"b":1,"a":[true,null],"s":"he\"llo\n"}"#);
        assert_eq!(doc.render(), doc.render());
    }

    #[test]
    fn floats_round_trip_and_nan_is_null() {
        assert_eq!(Json::Num(1.0).render(), "1.0");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parse_round_trips_rendered_output() {
        let doc = Json::obj([
            ("n", Json::Num(0.125)),
            ("u", Json::UInt(u64::MAX)),
            ("i", Json::Int(-3)),
            ("nested", Json::obj([("k", Json::Arr(vec![Json::UInt(1)]))])),
        ]);
        let parsed = parse(&doc.render()).expect("round trip");
        assert_eq!(parsed, doc);
        let pretty = parse(&doc.render_pretty()).expect("pretty round trip");
        assert_eq!(pretty, doc);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn accessors_navigate_documents() {
        let doc = parse(r#"{"a": {"b": [1, 2.5, "x"]}, "n": -4}"#).expect("parse");
        let arr = doc
            .get("a")
            .and_then(|a| a.get("b"))
            .and_then(|b| b.as_array())
            .expect("array");
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(doc.get("n").and_then(|n| n.as_f64()), Some(-4.0));
        assert_eq!(doc.get("n").and_then(|n| n.as_u64()), None);
    }
}
