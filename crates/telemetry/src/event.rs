//! Typed events forming the telemetry stream.
//!
//! Every event is emitted **host-side**, after any per-worker state has
//! been merged in DPU-index order (the same ordered merge that makes
//! `LaunchStats` engine-invariant), so the stream is byte-identical
//! between the serial and threaded execution engines by construction.
//! Kernel regions must never emit events — analyzer rule K008 enforces
//! this statically.
//!
//! All fields are primitives (or vectors of primitives) so the stream
//! can be compared with `==`, rendered to JSON deterministically, and
//! replayed without touching simulator types.

/// Direction/shape of a host↔PIM bulk transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferKind {
    /// Host → one DPU, `copy_to`.
    CopyTo,
    /// One DPU → host, `copy_from`.
    CopyFrom,
    /// Host → all DPUs, distinct chunk per DPU (`scatter`).
    Scatter,
    /// Host → all (or a subset of) DPUs, same bytes replicated
    /// (`broadcast` / `broadcast_subset`).
    Broadcast,
    /// All (or a subset of) DPUs → host (`gather` family, including the
    /// zero-copy `_into` variants).
    Gather,
}

impl TransferKind {
    /// Stable lowercase name used in JSON artifacts and trace labels.
    pub fn name(self) -> &'static str {
        match self {
            TransferKind::CopyTo => "copy_to",
            TransferKind::CopyFrom => "copy_from",
            TransferKind::Scatter => "scatter",
            TransferKind::Broadcast => "broadcast",
            TransferKind::Gather => "gather",
        }
    }

    /// Whether bytes flow from the host into PIM memory.
    pub fn is_cpu_to_pim(self) -> bool {
        matches!(
            self,
            TransferKind::CopyTo | TransferKind::Scatter | TransferKind::Broadcast
        )
    }
}

/// What an injected transfer fault did to the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferFaultKind {
    /// The transfer was silently dropped (bytes never arrived).
    Dropped,
    /// One byte of the payload was flipped in place.
    Corrupted,
}

impl TransferFaultKind {
    /// Stable lowercase name used in JSON artifacts and trace labels.
    pub fn name(self) -> &'static str {
        match self {
            TransferFaultKind::Dropped => "dropped",
            TransferFaultKind::Corrupted => "corrupted",
        }
    }
}

/// Cycle-class totals mirroring `swiftrl_pim::cost::CycleCounter`,
/// duplicated here (primitives only) so the telemetry crate stays a
/// dependency-free leaf.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleClassTotals {
    /// Native ALU instruction slots charged.
    pub alu_slots: u64,
    /// WRAM access slots charged.
    pub wram_slots: u64,
    /// Control-flow slots charged.
    pub control_slots: u64,
    /// Slots executed by the integer multiply/divide emulation routines.
    pub int_emul_slots: u64,
    /// Slots executed by the soft-float runtime library.
    pub float_emul_slots: u64,
    /// Cycles spent in MRAM↔WRAM DMA transfers.
    pub dma_cycles: u64,
    /// Bytes moved over the MRAM↔WRAM DMA engine.
    pub dma_bytes: u64,
}

impl CycleClassTotals {
    /// Accumulates another total into this one.
    pub fn merge(&mut self, other: &CycleClassTotals) {
        self.alu_slots += other.alu_slots;
        self.wram_slots += other.wram_slots;
        self.control_slots += other.control_slots;
        self.int_emul_slots += other.int_emul_slots;
        self.float_emul_slots += other.float_emul_slots;
        self.dma_cycles += other.dma_cycles;
        self.dma_bytes += other.dma_bytes;
    }

    /// Total instruction slots charged (everything except DMA).
    pub fn total_slots(&self) -> u64 {
        self.alu_slots
            + self.wram_slots
            + self.control_slots
            + self.int_emul_slots
            + self.float_emul_slots
    }
}

/// One host-observed occurrence on the simulated timeline.
///
/// Durations are simulated seconds (the same numbers that feed
/// `TimeBreakdown`), never host wall-clock, so the stream is fully
/// deterministic for a given configuration and dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A kernel binary was loaded onto every DPU.
    ProgramLoad {
        /// Number of DPUs the program was pushed to.
        dpus: usize,
        /// Total bytes written across all DPUs.
        bytes: u64,
        /// Simulated seconds the load occupied the host.
        seconds: f64,
    },
    /// A bulk host↔PIM data transfer.
    Transfer {
        /// Direction/shape of the transfer.
        kind: TransferKind,
        /// Total bytes moved across all participating DPUs.
        bytes: u64,
        /// Number of DPUs that took part.
        dpus: usize,
        /// Simulated seconds under the transfer bandwidth model.
        seconds: f64,
    },
    /// The fault plan dropped or corrupted a host transfer.
    TransferFault {
        /// What happened to the payload.
        kind: TransferFaultKind,
        /// Monotonic per-`DpuSet` transfer sequence number the fault
        /// keyed on (deterministic across engines).
        seq: u64,
        /// Index of the DPU whose payload was hit.
        dpu: usize,
    },
    /// One kernel launch across a DPU set (or a retried subset).
    KernelLaunch {
        /// DPUs that completed the launch (survivors).
        dpus: usize,
        /// Slowest surviving DPU's cycle count — the launch critical path.
        max_cycles: u64,
        /// Fastest surviving DPU's cycle count.
        min_cycles: u64,
        /// Mean cycles over surviving DPUs.
        mean_cycles: f64,
        /// Simulated seconds: `max_cycles / f_clk`.
        seconds: f64,
        /// Per-DPU `(dpu_index, cycles)` spans in ascending index order
        /// (the ordered-merge order); survivors only.
        dpu_cycles: Vec<(usize, u64)>,
        /// Indices of DPUs the fault plan aborted this launch.
        faulted_dpus: Vec<usize>,
        /// Cycle-class totals merged over surviving DPUs.
        classes: CycleClassTotals,
        /// Sanitizer findings attributed to this launch.
        sanitizer_findings: u64,
    },
    /// A synchronization round completed: Q-tables gathered, averaged
    /// and re-broadcast.
    SyncRound {
        /// Zero-based round index within the run.
        round: u32,
        /// DPUs still participating (shrinks under degradation).
        live_dpus: usize,
    },
    /// Host-side aggregation (Q-table averaging) on the simulated clock.
    HostAggregate {
        /// Number of per-DPU tables reduced.
        tables: usize,
        /// Bytes in one table.
        bytes: u64,
        /// Simulated seconds under the host aggregate bandwidth model.
        seconds: f64,
    },
    /// The resilience layer re-launched the faulted subset of a launch.
    Retry {
        /// 1-based attempt number for this launch.
        attempt: u32,
        /// DPU indices being retried, ascending.
        dpus: Vec<usize>,
    },
    /// The resilience layer rolled the run back to a checkpoint.
    Rollback {
        /// Synchronization round the Q-table was restored from.
        to_round: u32,
    },
    /// DPUs were declared dead and their work remapped onto survivors.
    Degradation {
        /// Indices of the DPUs dropped from the run, ascending.
        dead_dpus: Vec<usize>,
        /// DPUs remaining after the remap.
        survivors: usize,
    },
    /// Fleet-wide bank-memory ceilings observed by the run: how many
    /// bank bytes the lazily-materialized banks actually held (current
    /// and peak) and the footprint of the segment arena backing them.
    /// Emitted host-side at the end of a run; engine-invariant because
    /// launches only ever *allocate* segments (copy-on-write releases
    /// happen on the single-threaded host paths), so the peak is a
    /// monotone function of the touched working set.
    MemoryCeilings {
        /// Bank bytes currently materialized across the fleet.
        bank_bytes: u64,
        /// Peak bank bytes materialized at any point in the run.
        bank_peak_bytes: u64,
        /// Arena footprint (live + pooled segments) in bytes.
        arena_bytes: u64,
        /// Peak arena footprint in bytes.
        arena_peak_bytes: u64,
    },
}

impl Event {
    /// Stable snake_case name of the event variant, used as the JSON
    /// `"event"` discriminator and trace label.
    pub fn name(&self) -> &'static str {
        match self {
            Event::ProgramLoad { .. } => "program_load",
            Event::Transfer { .. } => "transfer",
            Event::TransferFault { .. } => "transfer_fault",
            Event::KernelLaunch { .. } => "kernel_launch",
            Event::SyncRound { .. } => "sync_round",
            Event::HostAggregate { .. } => "host_aggregate",
            Event::Retry { .. } => "retry",
            Event::Rollback { .. } => "rollback",
            Event::Degradation { .. } => "degradation",
            Event::MemoryCeilings { .. } => "memory_ceilings",
        }
    }

    /// Simulated seconds this event occupies on the host timeline
    /// (instantaneous events return 0).
    pub fn seconds(&self) -> f64 {
        match self {
            Event::ProgramLoad { seconds, .. }
            | Event::Transfer { seconds, .. }
            | Event::KernelLaunch { seconds, .. }
            | Event::HostAggregate { seconds, .. } => *seconds,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(TransferKind::Scatter.name(), "scatter");
        assert_eq!(TransferKind::Gather.name(), "gather");
        assert!(TransferKind::Broadcast.is_cpu_to_pim());
        assert!(!TransferKind::CopyFrom.is_cpu_to_pim());
        assert_eq!(TransferFaultKind::Dropped.name(), "dropped");
    }

    #[test]
    fn class_totals_merge_and_sum() {
        let mut a = CycleClassTotals {
            alu_slots: 1,
            wram_slots: 2,
            control_slots: 3,
            int_emul_slots: 4,
            float_emul_slots: 5,
            dma_cycles: 6,
            dma_bytes: 7,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.total_slots(), 2 * (1 + 2 + 3 + 4 + 5));
        assert_eq!(a.dma_bytes, 14);
    }

    #[test]
    fn event_names_and_durations() {
        let e = Event::Transfer {
            kind: TransferKind::Broadcast,
            bytes: 64,
            dpus: 4,
            seconds: 0.5,
        };
        assert_eq!(e.name(), "transfer");
        assert_eq!(e.seconds(), 0.5);
        let i = Event::Rollback { to_round: 3 };
        assert_eq!(i.name(), "rollback");
        assert_eq!(i.seconds(), 0.0);
        let m = Event::MemoryCeilings {
            bank_bytes: 1,
            bank_peak_bytes: 2,
            arena_bytes: 3,
            arena_peak_bytes: 4,
        };
        assert_eq!(m.name(), "memory_ceilings");
        assert_eq!(m.seconds(), 0.0);
    }
}
