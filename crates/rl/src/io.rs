//! Saving and loading trained Q-tables.
//!
//! A minimal, versioned binary container so trained policies can be
//! deployed or re-evaluated later ("the policy is then ready for testing
//! and deployment", §2.1): a 16-byte header (magic, version, shape)
//! followed by the row-major little-endian values.

use crate::fixed::FixedScale;
use crate::qtable::{FixedQTable, QTable};
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: u32 = 0x5154_424C; // "QTBL"
const VERSION_F32: u32 = 1;
const VERSION_I32: u32 = 2;

fn write_header<W: Write>(w: &mut W, version: u32, ns: usize, na: usize) -> io::Result<()> {
    w.write_all(&MAGIC.to_le_bytes())?;
    w.write_all(&version.to_le_bytes())?;
    w.write_all(&(ns as u32).to_le_bytes())?;
    w.write_all(&(na as u32).to_le_bytes())?;
    Ok(())
}

fn read_header<R: Read>(r: &mut R) -> io::Result<(u32, usize, usize)> {
    let mut buf = [0u8; 16];
    r.read_exact(&mut buf)?;
    let word = |i: usize| u32::from_le_bytes([buf[4 * i], buf[4 * i + 1], buf[4 * i + 2], buf[4 * i + 3]]);
    if word(0) != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a Q-table file (bad magic)",
        ));
    }
    Ok((word(1), word(2) as usize, word(3) as usize))
}

/// Writes an FP32 Q-table to `writer`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_qtable<W: Write>(q: &QTable, writer: &mut W) -> io::Result<()> {
    write_header(writer, VERSION_F32, q.num_states(), q.num_actions())?;
    writer.write_all(&q.to_bytes())
}

/// Reads an FP32 Q-table from `reader`.
///
/// # Errors
///
/// Fails on I/O errors, a bad magic word, or a version mismatch.
pub fn load_qtable<R: Read>(reader: &mut R) -> io::Result<QTable> {
    let (version, ns, na) = read_header(reader)?;
    if version != VERSION_F32 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected FP32 table (v{VERSION_F32}), found v{version}"),
        ));
    }
    let mut bytes = vec![0u8; ns * na * 4];
    reader.read_exact(&mut bytes)?;
    Ok(QTable::from_bytes(ns, na, &bytes))
}

/// Writes a fixed-point Q-table (its scale factor is stored after the
/// header).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_fixed_qtable<W: Write>(q: &FixedQTable, writer: &mut W) -> io::Result<()> {
    write_header(writer, VERSION_I32, q.num_states(), q.num_actions())?;
    writer.write_all(&q.scale().factor().to_le_bytes())?;
    writer.write_all(&q.to_bytes())
}

/// Reads a fixed-point Q-table.
///
/// # Errors
///
/// Fails on I/O errors, a bad magic word, or a version mismatch.
pub fn load_fixed_qtable<R: Read>(reader: &mut R) -> io::Result<FixedQTable> {
    let (version, ns, na) = read_header(reader)?;
    if version != VERSION_I32 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected INT32 table (v{VERSION_I32}), found v{version}"),
        ));
    }
    let mut word = [0u8; 4];
    reader.read_exact(&mut word)?;
    let scale = FixedScale::new(i32::from_le_bytes(word));
    let mut bytes = vec![0u8; ns * na * 4];
    reader.read_exact(&mut bytes)?;
    Ok(FixedQTable::from_bytes(ns, na, scale, &bytes))
}

/// Saves an FP32 Q-table to a file path.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save_qtable_file<P: AsRef<Path>>(q: &QTable, path: P) -> io::Result<()> {
    save_qtable(q, &mut File::create(path)?)
}

/// Loads an FP32 Q-table from a file path.
///
/// # Errors
///
/// Propagates file-open and format errors.
pub fn load_qtable_file<P: AsRef<Path>>(path: P) -> io::Result<QTable> {
    load_qtable(&mut File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftrl_env::{Action, State};

    fn sample() -> QTable {
        let mut q = QTable::zeros(16, 4);
        q.set(State(3), Action(1), -2.5);
        q.set(State(15), Action(3), 0.7312);
        q
    }

    #[test]
    fn fp32_round_trip_in_memory() {
        let q = sample();
        let mut buf = Vec::new();
        save_qtable(&q, &mut buf).unwrap();
        let q2 = load_qtable(&mut buf.as_slice()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn fixed_round_trip_in_memory() {
        let q = sample().to_fixed(FixedScale::paper());
        let mut buf = Vec::new();
        save_fixed_qtable(&q, &mut buf).unwrap();
        let q2 = load_fixed_qtable(&mut buf.as_slice()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn file_round_trip() {
        let q = sample();
        let path = std::env::temp_dir().join("swiftrl_qtable_test.qtbl");
        save_qtable_file(&q, &path).unwrap();
        let q2 = load_qtable_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(q, q2);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = vec![0u8; 32];
        assert!(load_qtable(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn version_mismatch_rejected() {
        let q = sample();
        let mut buf = Vec::new();
        save_qtable(&q, &mut buf).unwrap();
        assert!(load_fixed_qtable(&mut buf.as_slice()).is_err());
        let f = q.to_fixed(FixedScale::paper());
        let mut buf = Vec::new();
        save_fixed_qtable(&f, &mut buf).unwrap();
        assert!(load_qtable(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_file_rejected() {
        let q = sample();
        let mut buf = Vec::new();
        save_qtable(&q, &mut buf).unwrap();
        buf.truncate(buf.len() - 7);
        assert!(load_qtable(&mut buf.as_slice()).is_err());
    }
}
