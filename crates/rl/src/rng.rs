//! The linear congruential generator shared by host and PIM code paths.
//!
//! SwiftRL implements an LCG inside PIM kernels because the C `rand()` is
//! unavailable there (§3.2.1). The same generator is provided host-side so
//! CPU baselines and quality checks can be driven by identical random
//! streams; the constants must match `swiftrl_pim::emul::Lcg32` (an
//! integration test enforces this).

use rand::RngCore;

/// 32-bit linear congruential generator (Numerical Recipes constants).
///
/// ```rust
/// use swiftrl_rl::rng::Lcg32;
///
/// let mut a = Lcg32::new(1);
/// let mut b = Lcg32::new(1);
/// assert_eq!(a.next_raw(), b.next_raw());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lcg32 {
    state: u32,
}

impl Lcg32 {
    /// Multiplier (Numerical Recipes).
    pub const MULTIPLIER: u32 = 1_664_525;
    /// Increment (Numerical Recipes).
    pub const INCREMENT: u32 = 1_013_904_223;

    /// Creates a generator from a seed.
    pub fn new(seed: u32) -> Self {
        Self { state: seed }
    }

    /// Advances and returns the next raw value.
    #[inline]
    pub fn next_raw(&mut self) -> u32 {
        self.state = self
            .state
            .wrapping_mul(Self::MULTIPLIER)
            .wrapping_add(Self::INCREMENT);
        self.state
    }

    /// Uniform value in `[0, bound)` (multiply-shift reduction).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "below() bound must be positive");
        ((self.next_raw() as u64 * bound as u64) >> 32) as u32
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f32(&mut self) -> f32 {
        (self.next_raw() >> 8) as f32 / (1u32 << 24) as f32
    }

    /// Current state (for checkpointing).
    pub fn state(&self) -> u32 {
        self.state
    }
}

impl RngCore for Lcg32 {
    fn next_u32(&mut self) -> u32 {
        self.next_raw()
    }

    fn next_u64(&mut self) -> u64 {
        (self.next_raw() as u64) << 32 | self.next_raw() as u64
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_raw().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Lcg32::new(99);
        let expected: Vec<u32> = (0..8).map(|_| a.next_raw()).collect();
        let mut b = Lcg32::new(99);
        let again: Vec<u32> = (0..8).map(|_| b.next_raw()).collect();
        assert_eq!(expected, again);
    }

    #[test]
    fn unit_f32_in_range() {
        let mut r = Lcg32::new(5);
        for _ in 0..10_000 {
            let v = r.unit_f32();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_in_range_and_covering() {
        let mut r = Lcg32::new(17);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v = r.below(6);
            assert!(v < 6);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn rngcore_fill_bytes_works() {
        let mut r = Lcg32::new(1);
        let mut buf = [0u8; 10];
        r.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 10]);
    }
}
