//! Action-selection policies over Q-tables.

use crate::qtable::{FixedQTable, QTable};
use crate::rng::Lcg32;
use swiftrl_env::{Action, State};

/// Uniform random action (the paper's behaviour policy for dataset
/// collection).
pub fn random_action(num_actions: usize, rng: &mut Lcg32) -> Action {
    Action(rng.below(num_actions as u32))
}

/// Converts an exploration rate into the integer draw threshold used by
/// the ε-greedy selectors: a raw 32-bit LCG draw below the threshold
/// means "explore". Integer thresholding is what the PIM kernels do (no
/// floating point needed), so the host reference uses it too, keeping the
/// two bit-identical.
///
/// # Panics
///
/// Panics if `epsilon` is not within `[0, 1]`.
pub fn epsilon_threshold(epsilon: f32) -> u64 {
    assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
    (epsilon as f64 * 4_294_967_296.0) as u64
}

/// ε-greedy selection over an FP32 Q-table: random with probability
/// `epsilon`, greedy otherwise (used by SARSA to pick the next action a',
/// Eq. 1).
///
/// # Panics
///
/// Panics if `epsilon` is not within `[0, 1]`.
pub fn epsilon_greedy(q: &QTable, s: State, epsilon: f32, rng: &mut Lcg32) -> Action {
    let threshold = epsilon_threshold(epsilon);
    if (rng.next_raw() as u64) < threshold {
        random_action(q.num_actions(), rng)
    } else {
        q.greedy_action(s)
    }
}

/// ε-greedy selection over a fixed-point Q-table.
///
/// # Panics
///
/// Panics if `epsilon` is not within `[0, 1]`.
pub fn epsilon_greedy_fixed(q: &FixedQTable, s: State, epsilon: f32, rng: &mut Lcg32) -> Action {
    let threshold = epsilon_threshold(epsilon);
    if (rng.next_raw() as u64) < threshold {
        random_action(q.num_actions(), rng)
    } else {
        q.greedy_action(s)
    }
}

/// Boltzmann (softmax) selection with temperature `tau` — one of the
/// alternative behaviour policies the paper mentions (§3.2.1).
///
/// # Panics
///
/// Panics if `tau <= 0`.
pub fn boltzmann(q: &QTable, s: State, tau: f32, rng: &mut Lcg32) -> Action {
    assert!(tau > 0.0, "temperature must be positive");
    let row = q.row(s);
    // Stabilize the exponentials by subtracting the max.
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let weights: Vec<f32> = row.iter().map(|&v| ((v - max) / tau).exp()).collect();
    let total: f32 = weights.iter().sum();
    let mut draw = rng.unit_f32() * total;
    for (i, w) in weights.iter().enumerate() {
        draw -= w;
        if draw <= 0.0 {
            return Action(i as u32);
        }
    }
    Action((row.len() - 1) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> QTable {
        let mut q = QTable::zeros(2, 4);
        q.set(State(0), Action(2), 5.0);
        q.set(State(1), Action(0), 1.0);
        q
    }

    #[test]
    fn epsilon_zero_is_greedy() {
        let q = table();
        let mut rng = Lcg32::new(1);
        for _ in 0..50 {
            assert_eq!(epsilon_greedy(&q, State(0), 0.0, &mut rng), Action(2));
        }
    }

    #[test]
    fn epsilon_one_is_uniform() {
        let q = table();
        let mut rng = Lcg32::new(2);
        let mut seen = [false; 4];
        for _ in 0..500 {
            seen[epsilon_greedy(&q, State(0), 1.0, &mut rng).index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn epsilon_intermediate_mostly_greedy() {
        let q = table();
        let mut rng = Lcg32::new(3);
        let greedy = (0..10_000)
            .filter(|_| epsilon_greedy(&q, State(0), 0.1, &mut rng) == Action(2))
            .count();
        // P(greedy) = 0.9 + 0.1/4 = 0.925.
        assert!((8_700..9_700).contains(&greedy), "greedy count {greedy}");
    }

    #[test]
    fn fixed_epsilon_greedy_agrees_with_float() {
        let q = table();
        let f = q.to_fixed(crate::fixed::FixedScale::paper());
        let mut r1 = Lcg32::new(9);
        let mut r2 = Lcg32::new(9);
        for s in [State(0), State(1)] {
            for _ in 0..200 {
                assert_eq!(
                    epsilon_greedy(&q, s, 0.3, &mut r1),
                    epsilon_greedy_fixed(&f, s, 0.3, &mut r2)
                );
            }
        }
    }

    #[test]
    fn boltzmann_prefers_high_values_at_low_temperature() {
        let q = table();
        let mut rng = Lcg32::new(5);
        let best = (0..2_000)
            .filter(|_| boltzmann(&q, State(0), 0.1, &mut rng) == Action(2))
            .count();
        assert!(best > 1_900, "best action chosen {best}/2000");
    }

    #[test]
    fn boltzmann_high_temperature_approaches_uniform() {
        let q = table();
        let mut rng = Lcg32::new(6);
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[boltzmann(&q, State(0), 1_000.0, &mut rng).index()] += 1;
        }
        for &c in &counts {
            assert!((1_500..2_500).contains(&c), "count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn bad_epsilon_rejected() {
        let q = table();
        let mut rng = Lcg32::new(7);
        epsilon_greedy(&q, State(0), 1.5, &mut rng);
    }
}
