//! # swiftrl-rl
//!
//! Tabular reinforcement-learning substrate for the SwiftRL reproduction:
//! the host-side reference implementations of everything the PIM kernels
//! compute, plus the pieces shared between host and device.
//!
//! * [`qtable`] — dense Q-tables in FP32 and fixed-point INT32, with the
//!   aggregation (averaging) the SwiftRL host performs between
//!   synchronization rounds;
//! * [`fixed`] — the paper's fixed-point scaling optimization (constant
//!   scale factor 10,000, §3.2.1);
//! * [`qlearning`] / [`sarsa`] — the update rules (Algorithm 1 and Eq. 1)
//!   and offline training loops over experience datasets;
//! * [`sampling`] — the three experience-sampling strategies: sequential
//!   (SEQ), stride-based (STR) and random (RAN);
//! * [`policy`] — random, greedy, ε-greedy and Boltzmann action selection;
//! * [`eval`] — policy evaluation by greedy rollouts (mean reward over
//!   episodes, the §4.2 training-quality metric);
//! * [`rng`] — the linear congruential generator used on both host and
//!   PIM sides.
//!
//! ## Example: offline Q-learning on FrozenLake
//!
//! ```rust
//! use swiftrl_env::frozen_lake::FrozenLake;
//! use swiftrl_env::collect::collect_random;
//! use swiftrl_rl::qlearning::{train_offline, QLearningConfig};
//! use swiftrl_rl::sampling::SamplingStrategy;
//! use swiftrl_rl::eval::evaluate_greedy;
//!
//! let mut env = FrozenLake::slippery_4x4();
//! let dataset = collect_random(&mut env, 20_000, 1);
//! let config = QLearningConfig::paper_defaults().with_episodes(50);
//! let q = train_offline(&dataset, &config, SamplingStrategy::Sequential, 7);
//! let stats = evaluate_greedy(&mut env, &q, 200, 3);
//! assert!(stats.mean_reward > 0.0); // learned something
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod fixed;
pub mod io;
pub mod online;
pub mod policy;
pub mod qlearning;
pub mod qtable;
pub mod rng;
pub mod sampling;
pub mod sarsa;

pub use qtable::{FixedQTable, QTable};
pub use sampling::SamplingStrategy;
