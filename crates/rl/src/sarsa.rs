//! SARSA learning (Equation 1 of the paper).
//!
//! SARSA is on-policy: instead of the max over next actions, it bootstraps
//! from `Q(s', a')` where `a'` is the action the learned policy would
//! actually take. In SwiftRL's offline adaptation, `a'` is chosen by an
//! ε-greedy rule over the current Q-table, using the custom LCG `rand()`
//! replacement inside the kernel (§3.2.2); this module is the bit-faithful
//! host reference.

use crate::fixed::FixedScale;
use crate::policy::{epsilon_greedy, epsilon_greedy_fixed};
use crate::qlearning::QLearningConfig;
use crate::qtable::{FixedQTable, QTable};
use crate::rng::Lcg32;
use crate::sampling::SamplingStrategy;
use serde::{Deserialize, Serialize};
use swiftrl_env::{ExperienceDataset, Transition};

/// Hyper-parameters of offline SARSA: Q-learning's plus the exploration
/// rate used to pick the next action.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SarsaConfig {
    /// Learning rate α.
    pub alpha: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Training episodes.
    pub episodes: u32,
    /// ε of the ε-greedy next-action selection.
    pub epsilon: f32,
}

impl SarsaConfig {
    /// The paper's hyper-parameters with a conventional ε = 0.1.
    pub fn paper_defaults() -> Self {
        Self {
            alpha: 0.1,
            gamma: 0.95,
            episodes: 2_000,
            epsilon: 0.1,
        }
    }

    /// Returns a copy with a different episode count.
    pub fn with_episodes(mut self, episodes: u32) -> Self {
        self.episodes = episodes;
        self
    }

    /// The Q-learning view of these hyper-parameters.
    pub fn as_qlearning(&self) -> QLearningConfig {
        QLearningConfig {
            alpha: self.alpha,
            gamma: self.gamma,
            episodes: self.episodes,
        }
    }
}

/// Applies one FP32 SARSA update in place, selecting `a'` ε-greedily with
/// the provided LCG (mirroring the kernel's in-PIM `rand()`).
#[inline]
pub fn sarsa_update(
    q: &mut QTable,
    t: &Transition,
    alpha: f32,
    gamma: f32,
    epsilon: f32,
    rng: &mut Lcg32,
) {
    let target = if t.done {
        // Terminal: no next action exists, no bootstrap (and no RNG
        // draw, matching the PIM kernel exactly).
        t.reward
    } else {
        let a_next = epsilon_greedy(q, t.next_state, epsilon, rng);
        t.reward + gamma * q.get(t.next_state, a_next)
    };
    let old = q.get(t.state, t.action);
    q.set(t.state, t.action, old + alpha * (target - old));
}

/// Applies one INT32 fixed-point SARSA update in place.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn sarsa_update_fixed(
    q: &mut FixedQTable,
    t: &Transition,
    alpha_scaled: i32,
    gamma_scaled: i32,
    reward_scaled: i32,
    epsilon: f32,
    scale: FixedScale,
    rng: &mut Lcg32,
) {
    let target = if t.done {
        reward_scaled
    } else {
        let a_next = epsilon_greedy_fixed(q, t.next_state, epsilon, rng);
        reward_scaled + scale.mul(gamma_scaled, q.get(t.next_state, a_next))
    };
    let old = q.get(t.state, t.action);
    let delta = scale.mul(alpha_scaled, target - old);
    q.set(t.state, t.action, old + delta);
}

/// Trains an FP32 Q-table offline with SARSA.
pub fn train_offline(
    dataset: &ExperienceDataset,
    config: &SarsaConfig,
    sampling: SamplingStrategy,
    seed: u32,
) -> QTable {
    let mut q = QTable::zeros(dataset.num_states(), dataset.num_actions());
    let transitions = dataset.transitions();
    let mut rng = Lcg32::new(seed ^ 0x5A85_AA11);
    for episode in 0..config.episodes {
        let ep_seed = seed.wrapping_add(episode).wrapping_mul(0x9E37_79B9);
        for i in sampling.indices(transitions.len(), ep_seed) {
            sarsa_update(
                &mut q,
                &transitions[i],
                config.alpha,
                config.gamma,
                config.epsilon,
                &mut rng,
            );
        }
    }
    q
}

/// Trains an INT32 fixed-point Q-table offline with SARSA and the scaling
/// optimization.
pub fn train_offline_fixed(
    dataset: &ExperienceDataset,
    config: &SarsaConfig,
    sampling: SamplingStrategy,
    scale: FixedScale,
    seed: u32,
) -> FixedQTable {
    let mut q = FixedQTable::zeros(dataset.num_states(), dataset.num_actions(), scale);
    let alpha_s = scale.to_fixed(config.alpha);
    let gamma_s = scale.to_fixed(config.gamma);
    let rewards: Vec<i32> = dataset.iter().map(|t| scale.to_fixed(t.reward)).collect();
    let transitions = dataset.transitions();
    let mut rng = Lcg32::new(seed ^ 0x5A85_AA11);
    for episode in 0..config.episodes {
        let ep_seed = seed.wrapping_add(episode).wrapping_mul(0x9E37_79B9);
        for i in sampling.indices(transitions.len(), ep_seed) {
            sarsa_update_fixed(
                &mut q,
                &transitions[i],
                alpha_s,
                gamma_s,
                rewards[i],
                config.epsilon,
                scale,
                &mut rng,
            );
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftrl_env::{Action, State};

    fn t(s: u32, a: u32, r: f32, ns: u32) -> Transition {
        Transition {
            state: State(s),
            action: Action(a),
            reward: r,
            next_state: State(ns),
            done: false,
        }
    }

    #[test]
    fn greedy_sarsa_update_matches_q_when_epsilon_zero_and_greedy_is_max() {
        let mut q1 = QTable::zeros(3, 2);
        q1.set(State(1), Action(1), 0.8);
        let mut q2 = q1.clone();
        let mut rng = Lcg32::new(1);
        sarsa_update(&mut q1, &t(0, 0, 1.0, 1), 0.1, 0.95, 0.0, &mut rng);
        crate::qlearning::q_update(&mut q2, &t(0, 0, 1.0, 1), 0.1, 0.95);
        assert_eq!(q1.get(State(0), Action(0)), q2.get(State(0), Action(0)));
    }

    #[test]
    fn exploratory_sarsa_bootstraps_below_max() {
        // With epsilon = 1 the next action is uniform, so the expected
        // target is the mean of the next row, lower than the max.
        let mut q = QTable::zeros(2, 2);
        q.set(State(1), Action(0), 1.0); // other action stays 0
        let mut rng = Lcg32::new(2);
        let mut acc = 0.0;
        let n = 2_000;
        for _ in 0..n {
            let mut qc = q.clone();
            sarsa_update(&mut qc, &t(0, 0, 0.0, 1), 1.0, 1.0, 1.0, &mut rng);
            acc += qc.get(State(0), Action(0));
        }
        let mean_target = acc / n as f32;
        assert!((mean_target - 0.5).abs() < 0.05, "mean target {mean_target}");
    }

    #[test]
    fn fixed_sarsa_tracks_float_sarsa() {
        let scale = FixedScale::paper();
        let mut qf = QTable::zeros(3, 2);
        let mut qi = FixedQTable::zeros(3, 2, scale);
        let data = [t(0, 0, 1.0, 1), t(1, 1, 0.5, 2), t(2, 0, -1.0, 0)];
        // Drive both with the same LCG so the epsilon draws coincide.
        let mut r1 = Lcg32::new(7);
        let mut r2 = Lcg32::new(7);
        for _ in 0..300 {
            for tr in &data {
                sarsa_update(&mut qf, tr, 0.1, 0.95, 0.1, &mut r1);
                sarsa_update_fixed(
                    &mut qi,
                    tr,
                    1_000,
                    9_500,
                    scale.to_fixed(tr.reward),
                    0.1,
                    scale,
                    &mut r2,
                );
            }
        }
        let diff = qi.to_float().max_abs_diff(&qf);
        assert!(diff < 0.05, "fixed-point drift too large: {diff}");
    }

    #[test]
    fn offline_training_deterministic() {
        let mut d = ExperienceDataset::new("chain", 3, 2);
        d.extend([t(0, 0, 0.0, 1), t(1, 0, 1.0, 2), t(2, 1, 0.0, 0)]);
        let c = SarsaConfig::paper_defaults().with_episodes(20);
        let a = train_offline(&d, &c, SamplingStrategy::Sequential, 3);
        let b = train_offline(&d, &c, SamplingStrategy::Sequential, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn config_conversion() {
        let c = SarsaConfig::paper_defaults();
        let q = c.as_qlearning();
        assert_eq!(q.alpha, c.alpha);
        assert_eq!(q.gamma, c.gamma);
        assert_eq!(q.episodes, c.episodes);
    }
}
