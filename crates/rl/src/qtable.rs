//! Dense Q-tables in FP32 and fixed-point INT32.
//!
//! Q-tables store the quality value of every `(state, action)` pair in
//! row-major order. The byte encodings here are the exact layouts the PIM
//! kernels read from and write to MRAM, and [`QTable::mean_of`] is the
//! host-side aggregation SwiftRL performs at every synchronization round
//! ("the final aggregated Q-estimate as the average of all local
//! Q-tables", §4.2).

use crate::fixed::FixedScale;
use swiftrl_env::{Action, State};

/// A dense FP32 Q-table.
#[derive(Debug, Clone, PartialEq)]
pub struct QTable {
    num_states: usize,
    num_actions: usize,
    values: Vec<f32>,
}

impl QTable {
    /// Creates a zero-initialized table (the paper initializes Q-tables
    /// with zeros/arbitrary values; zero is the reproducible choice).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(num_states: usize, num_actions: usize) -> Self {
        Self::filled(num_states, num_actions, 0.0)
    }

    /// Creates a table initialized to a constant value. Pessimistic
    /// initialization (below the minimum return) is useful for offline
    /// training on all-negative-reward environments, where zero-init is
    /// optimistic and draws the greedy policy toward unvisited pairs.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(num_states: usize, num_actions: usize, value: f32) -> Self {
        assert!(num_states > 0 && num_actions > 0, "empty Q-table");
        Self {
            num_states,
            num_actions,
            values: vec![value; num_states * num_actions],
        }
    }

    /// Number of states (rows).
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of actions (columns).
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    #[inline]
    fn idx(&self, s: State, a: Action) -> usize {
        debug_assert!(s.index() < self.num_states && a.index() < self.num_actions);
        s.index() * self.num_actions + a.index()
    }

    /// Q-value of `(s, a)`.
    #[inline]
    pub fn get(&self, s: State, a: Action) -> f32 {
        self.values[self.idx(s, a)]
    }

    /// Sets the Q-value of `(s, a)`.
    #[inline]
    pub fn set(&mut self, s: State, a: Action, v: f32) {
        let i = self.idx(s, a);
        self.values[i] = v;
    }

    /// The action row for `s`.
    pub fn row(&self, s: State) -> &[f32] {
        let start = s.index() * self.num_actions;
        &self.values[start..start + self.num_actions]
    }

    /// Maximum Q-value over actions in `s` (the `max_a' Q(s', a')` term).
    pub fn max_value(&self, s: State) -> f32 {
        self.row(s).iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Greedy action in `s` (first maximum wins ties, matching the
    /// kernels' deterministic argmax).
    pub fn greedy_action(&self, s: State) -> Action {
        let row = self.row(s);
        let mut best = 0usize;
        for (i, &v) in row.iter().enumerate().skip(1) {
            if v > row[best] {
                best = i;
            }
        }
        Action(best as u32)
    }

    /// Raw values (row-major).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Serializes as little-endian f32 bits (the MRAM layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.values.len() * 4);
        for v in &self.values {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        out
    }

    /// Deserializes from the MRAM layout.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() != num_states * num_actions * 4`.
    pub fn from_bytes(num_states: usize, num_actions: usize, bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), num_states * num_actions * 4, "bad Q-table size");
        let values = bytes
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
            .collect();
        Self {
            num_states,
            num_actions,
            values,
        }
    }

    /// Element-wise mean of several same-shape tables: the host-side
    /// aggregation step.
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty or shapes differ.
    pub fn mean_of(tables: &[QTable]) -> QTable {
        assert!(!tables.is_empty(), "cannot average zero Q-tables");
        let (ns, na) = (tables[0].num_states, tables[0].num_actions);
        let mut out = QTable::zeros(ns, na);
        for t in tables {
            assert_eq!((t.num_states, t.num_actions), (ns, na), "shape mismatch");
            for (o, v) in out.values.iter_mut().zip(&t.values) {
                *o += v;
            }
        }
        let n = tables.len() as f32;
        for o in &mut out.values {
            *o /= n;
        }
        out
    }

    /// Converts to fixed point with the given scale.
    pub fn to_fixed(&self, scale: FixedScale) -> FixedQTable {
        FixedQTable {
            num_states: self.num_states,
            num_actions: self.num_actions,
            scale,
            values: self.values.iter().map(|&v| scale.to_fixed(v)).collect(),
        }
    }

    /// Largest absolute difference with another same-shape table.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &QTable) -> f32 {
        assert_eq!(
            (self.num_states, self.num_actions),
            (other.num_states, other.num_actions),
            "shape mismatch"
        );
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// A dense fixed-point (INT32) Q-table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedQTable {
    num_states: usize,
    num_actions: usize,
    scale: FixedScale,
    values: Vec<i32>,
}

impl FixedQTable {
    /// Creates a zero-initialized fixed-point table.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(num_states: usize, num_actions: usize, scale: FixedScale) -> Self {
        Self::filled(num_states, num_actions, scale, 0)
    }

    /// Creates a table initialized to a constant scaled value.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(num_states: usize, num_actions: usize, scale: FixedScale, value: i32) -> Self {
        assert!(num_states > 0 && num_actions > 0, "empty Q-table");
        Self {
            num_states,
            num_actions,
            scale,
            values: vec![value; num_states * num_actions],
        }
    }

    /// Number of states (rows).
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of actions (columns).
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// The fixed-point format.
    pub fn scale(&self) -> FixedScale {
        self.scale
    }

    #[inline]
    fn idx(&self, s: State, a: Action) -> usize {
        debug_assert!(s.index() < self.num_states && a.index() < self.num_actions);
        s.index() * self.num_actions + a.index()
    }

    /// Scaled Q-value of `(s, a)`.
    #[inline]
    pub fn get(&self, s: State, a: Action) -> i32 {
        self.values[self.idx(s, a)]
    }

    /// Sets the scaled Q-value of `(s, a)`.
    #[inline]
    pub fn set(&mut self, s: State, a: Action, v: i32) {
        let i = self.idx(s, a);
        self.values[i] = v;
    }

    /// The action row for `s`.
    pub fn row(&self, s: State) -> &[i32] {
        let start = s.index() * self.num_actions;
        &self.values[start..start + self.num_actions]
    }

    /// Maximum scaled Q-value over actions in `s`. Rows are non-empty by
    /// construction; an empty row would yield `i32::MIN`.
    pub fn max_value(&self, s: State) -> i32 {
        self.row(s).iter().copied().fold(i32::MIN, i32::max)
    }

    /// Greedy action in `s` (first maximum wins ties).
    pub fn greedy_action(&self, s: State) -> Action {
        let row = self.row(s);
        let mut best = 0usize;
        for (i, &v) in row.iter().enumerate().skip(1) {
            if v > row[best] {
                best = i;
            }
        }
        Action(best as u32)
    }

    /// Serializes as little-endian i32 (the MRAM layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.values.len() * 4);
        for v in &self.values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserializes from the MRAM layout.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() != num_states * num_actions * 4`.
    pub fn from_bytes(
        num_states: usize,
        num_actions: usize,
        scale: FixedScale,
        bytes: &[u8],
    ) -> Self {
        assert_eq!(bytes.len(), num_states * num_actions * 4, "bad Q-table size");
        let values = bytes
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Self {
            num_states,
            num_actions,
            scale,
            values,
        }
    }

    /// Element-wise mean (computed in i64 to avoid overflow).
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty or shapes/scales differ.
    pub fn mean_of(tables: &[FixedQTable]) -> FixedQTable {
        assert!(!tables.is_empty(), "cannot average zero Q-tables");
        let (ns, na, sc) = (
            tables[0].num_states,
            tables[0].num_actions,
            tables[0].scale,
        );
        let mut sums = vec![0i64; ns * na];
        for t in tables {
            assert_eq!((t.num_states, t.num_actions), (ns, na), "shape mismatch");
            assert_eq!(t.scale, sc, "scale mismatch");
            for (o, v) in sums.iter_mut().zip(&t.values) {
                *o += *v as i64;
            }
        }
        let n = tables.len() as i64;
        FixedQTable {
            num_states: ns,
            num_actions: na,
            scale: sc,
            values: sums.iter().map(|&s| (s / n) as i32).collect(),
        }
    }

    /// Converts back to FP32 (the descaling done before PIM→CPU transfer).
    pub fn to_float(&self) -> QTable {
        QTable {
            num_states: self.num_states,
            num_actions: self.num_actions,
            values: self.values.iter().map(|&v| self.scale.to_float(v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> State {
        State(i)
    }
    fn a(i: u32) -> Action {
        Action(i)
    }

    #[test]
    fn zeros_and_get_set() {
        let mut q = QTable::zeros(16, 4);
        assert_eq!(q.get(s(3), a(2)), 0.0);
        q.set(s(3), a(2), 1.5);
        assert_eq!(q.get(s(3), a(2)), 1.5);
        assert_eq!(q.get(s(3), a(1)), 0.0);
        assert_eq!(q.values().len(), 64);
    }

    #[test]
    fn greedy_and_max_with_ties() {
        let mut q = QTable::zeros(2, 3);
        q.set(s(0), a(1), 2.0);
        q.set(s(0), a(2), 2.0);
        assert_eq!(q.greedy_action(s(0)), a(1), "first max wins");
        assert_eq!(q.max_value(s(0)), 2.0);
        // All-zero row: action 0.
        assert_eq!(q.greedy_action(s(1)), a(0));
    }

    #[test]
    fn bytes_round_trip() {
        let mut q = QTable::zeros(4, 2);
        q.set(s(1), a(0), -0.25);
        q.set(s(3), a(1), 7.0);
        let q2 = QTable::from_bytes(4, 2, &q.to_bytes());
        assert_eq!(q, q2);
    }

    #[test]
    fn mean_of_averages() {
        let mut q1 = QTable::zeros(2, 2);
        let mut q2 = QTable::zeros(2, 2);
        q1.set(s(0), a(0), 1.0);
        q2.set(s(0), a(0), 3.0);
        q2.set(s(1), a(1), 4.0);
        let m = QTable::mean_of(&[q1, q2]);
        assert_eq!(m.get(s(0), a(0)), 2.0);
        assert_eq!(m.get(s(1), a(1)), 2.0);
        assert_eq!(m.get(s(0), a(1)), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero Q-tables")]
    fn mean_of_empty_panics() {
        QTable::mean_of(&[]);
    }

    #[test]
    fn fixed_round_trip_via_float() {
        let scale = FixedScale::paper();
        let mut q = QTable::zeros(3, 2);
        q.set(s(0), a(1), 0.7312);
        q.set(s(2), a(0), -8.6);
        let f = q.to_fixed(scale);
        assert_eq!(f.get(s(0), a(1)), 7_312);
        let back = f.to_float();
        assert!(back.max_abs_diff(&q) <= scale.resolution());
    }

    #[test]
    fn fixed_bytes_round_trip() {
        let scale = FixedScale::paper();
        let mut q = FixedQTable::zeros(4, 3, scale);
        q.set(s(2), a(2), -12_345);
        let q2 = FixedQTable::from_bytes(4, 3, scale, &q.to_bytes());
        assert_eq!(q, q2);
    }

    #[test]
    fn fixed_mean_no_overflow() {
        let scale = FixedScale::paper();
        let mut q1 = FixedQTable::zeros(1, 1, scale);
        let mut q2 = FixedQTable::zeros(1, 1, scale);
        q1.set(s(0), a(0), i32::MAX);
        q2.set(s(0), a(0), i32::MAX - 1);
        let m = FixedQTable::mean_of(&[q1, q2]);
        assert_eq!(m.get(s(0), a(0)), i32::MAX - 1);
    }

    #[test]
    fn fixed_greedy_matches_float_greedy() {
        let mut q = QTable::zeros(4, 4);
        q.set(s(1), a(3), 0.9);
        q.set(s(1), a(0), 0.2);
        let f = q.to_fixed(FixedScale::paper());
        for st in 0..4 {
            assert_eq!(q.greedy_action(s(st)), f.greedy_action(s(st)));
        }
    }

    #[test]
    #[should_panic(expected = "empty Q-table")]
    fn empty_table_rejected() {
        QTable::zeros(0, 4);
    }
}
