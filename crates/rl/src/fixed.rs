//! Fixed-point scaling: the paper's INT32 optimization.
//!
//! Real PIM cores only support limited-precision arithmetic natively, so
//! SwiftRL replaces FP32 Q-value updates with 32-bit fixed point: reward,
//! learning rate and discount factor are scaled up by a constant factor
//! of 10,000 ("chosen to prevent overflow and underflow errors while
//! ensuring sufficient precision", §3.2.1), products are descaled after
//! each update, and values are converted back to FP32 only when the
//! partial results leave the PIM cores.

use serde::{Deserialize, Serialize};

/// The paper's constant scale factor.
pub const PAPER_SCALE: i32 = 10_000;

/// A fixed-point format: values are stored as `round(x * scale)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedScale {
    scale: i32,
}

impl Default for FixedScale {
    fn default() -> Self {
        Self::paper()
    }
}

impl FixedScale {
    /// The paper's scale factor, 10,000.
    pub fn paper() -> Self {
        Self { scale: PAPER_SCALE }
    }

    /// A custom positive scale factor.
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0`.
    pub fn new(scale: i32) -> Self {
        assert!(scale > 0, "scale factor must be positive");
        Self { scale }
    }

    /// The raw scale factor.
    #[inline]
    pub fn factor(self) -> i32 {
        self.scale
    }

    /// Encodes a float into fixed point (round to nearest).
    #[inline]
    pub fn to_fixed(self, x: f32) -> i32 {
        (x * self.scale as f32).round() as i32
    }

    /// Decodes fixed point back to a float.
    #[inline]
    pub fn to_float(self, v: i32) -> f32 {
        v as f32 / self.scale as f32
    }

    /// Fixed-point multiply with descaling: `(a * b) / scale`, computed in
    /// 64 bits exactly as the INT32 kernels do.
    #[inline]
    pub fn mul(self, a: i32, b: i32) -> i32 {
        ((a as i64 * b as i64) / self.scale as i64) as i32
    }

    /// Quantization step of this format (the largest representation error
    /// of a single value is half of this).
    pub fn resolution(self) -> f32 {
        1.0 / self.scale as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_is_ten_thousand() {
        assert_eq!(FixedScale::paper().factor(), 10_000);
        assert_eq!(PAPER_SCALE, 10_000);
    }

    #[test]
    fn round_trip_error_bounded_by_half_resolution() {
        let s = FixedScale::paper();
        for &x in &[0.0f32, 1.0, -1.0, 0.1, 0.95, 19.87, -123.456] {
            let err = (s.to_float(s.to_fixed(x)) - x).abs();
            assert!(err <= s.resolution() / 2.0 + 1e-6, "x={x} err={err}");
        }
    }

    #[test]
    fn paper_constants_encode_exactly() {
        let s = FixedScale::paper();
        assert_eq!(s.to_fixed(0.1), 1_000); // alpha
        assert_eq!(s.to_fixed(0.95), 9_500); // gamma
        assert_eq!(s.to_fixed(1.0), 10_000); // FrozenLake goal reward
        assert_eq!(s.to_fixed(-10.0), -100_000); // Taxi illegal action
        assert_eq!(s.to_fixed(20.0), 200_000); // Taxi drop-off
    }

    #[test]
    fn fixed_mul_descales() {
        let s = FixedScale::paper();
        // 0.95 * 2.0 = 1.9
        assert_eq!(s.mul(9_500, 20_000), 19_000);
        // Sign handling: -0.5 * 0.1 = -0.05
        assert_eq!(s.mul(-5_000, 1_000), -500);
    }

    #[test]
    fn mul_uses_wide_intermediate() {
        let s = FixedScale::paper();
        // 400.0 * 0.95 would overflow i32 in the raw product
        // (4_000_000 * 9_500 = 3.8e10) but must compute exactly.
        assert_eq!(s.mul(4_000_000, 9_500), 3_800_000);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_scale_rejected() {
        FixedScale::new(0);
    }
}
