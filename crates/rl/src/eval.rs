//! Policy evaluation: greedy rollouts and mean reward (§4.2's metric).
//!
//! The paper reports "average mean reward for 1,000 episodes" of the
//! trained (aggregated) Q-table, played greedily in the live environment.

use crate::qtable::{FixedQTable, QTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use swiftrl_env::DiscreteEnv;

/// Summary statistics of an evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalStats {
    /// Episodes played.
    pub episodes: u32,
    /// Mean episodic return.
    pub mean_reward: f64,
    /// Standard deviation of episodic returns.
    pub std_reward: f64,
    /// Minimum episodic return.
    pub min_reward: f64,
    /// Maximum episodic return.
    pub max_reward: f64,
    /// Mean episode length in steps.
    pub mean_length: f64,
}

/// Plays `episodes` greedy episodes with an FP32 Q-table.
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `episodes == 0` or the Q-table shape does not match the
/// environment's spaces.
pub fn evaluate_greedy<E: DiscreteEnv + ?Sized>(
    env: &mut E,
    q: &QTable,
    episodes: u32,
    seed: u64,
) -> EvalStats {
    assert_eq!(q.num_states(), env.num_states(), "Q-table/env state mismatch");
    assert_eq!(q.num_actions(), env.num_actions(), "Q-table/env action mismatch");
    evaluate_with(env, episodes, seed, |s| q.greedy_action(s))
}

/// Plays `episodes` greedy episodes with a fixed-point Q-table.
///
/// # Panics
///
/// Panics if `episodes == 0` or the Q-table shape does not match the
/// environment's spaces.
pub fn evaluate_greedy_fixed<E: DiscreteEnv + ?Sized>(
    env: &mut E,
    q: &FixedQTable,
    episodes: u32,
    seed: u64,
) -> EvalStats {
    assert_eq!(q.num_states(), env.num_states(), "Q-table/env state mismatch");
    assert_eq!(q.num_actions(), env.num_actions(), "Q-table/env action mismatch");
    evaluate_with(env, episodes, seed, |s| q.greedy_action(s))
}

/// Plays `episodes` episodes selecting actions with `policy(state)`.
///
/// # Panics
///
/// Panics if `episodes == 0`.
pub fn evaluate_with<E, F>(env: &mut E, episodes: u32, seed: u64, mut policy: F) -> EvalStats
where
    E: DiscreteEnv + ?Sized,
    F: FnMut(swiftrl_env::State) -> swiftrl_env::Action,
{
    assert!(episodes > 0, "need at least one evaluation episode");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut returns = Vec::with_capacity(episodes as usize);
    let mut total_len = 0u64;
    for _ in 0..episodes {
        let mut state = env.reset(&mut rng);
        let mut ret = 0.0f64;
        loop {
            let step = env.step(policy(state), &mut rng);
            ret += step.reward as f64;
            total_len += 1;
            if step.done {
                break;
            }
            state = step.next_state;
        }
        returns.push(ret);
    }
    let n = returns.len() as f64;
    let mean = returns.iter().sum::<f64>() / n;
    let var = returns.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / n;
    EvalStats {
        episodes,
        mean_reward: mean,
        std_reward: var.sqrt(),
        min_reward: returns.iter().copied().fold(f64::INFINITY, f64::min),
        max_reward: returns.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        mean_length: total_len as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftrl_env::cliff_walking::CliffWalking;
    use swiftrl_env::frozen_lake::FrozenLake;
    use swiftrl_env::{Action, State};

    /// Hand-built optimal deterministic FrozenLake policy table.
    fn good_table_for_deterministic_lake() -> QTable {
        let mut q = QTable::zeros(16, 4);
        // Route 0→4→8→9→10→14→15 avoiding holes (down/right moves).
        for (s, a) in [(0u32, 1u32), (4, 1), (8, 2), (9, 2), (10, 1), (14, 2)] {
            q.set(State(s), Action(a), 1.0);
        }
        q
    }

    #[test]
    fn optimal_policy_scores_one_on_deterministic_lake() {
        let mut env = FrozenLake::deterministic_4x4();
        let q = good_table_for_deterministic_lake();
        let stats = evaluate_greedy(&mut env, &q, 50, 1);
        assert_eq!(stats.mean_reward, 1.0);
        assert_eq!(stats.min_reward, 1.0);
        assert_eq!(stats.mean_length, 6.0);
        assert_eq!(stats.std_reward, 0.0);
    }

    #[test]
    fn zero_table_fails_on_cliff_walking_within_cap() {
        // All-zero table always picks action 0 (up); the agent wanders and
        // hits the step cap with a very negative return.
        let mut env = CliffWalking::with_step_cap(50);
        let q = QTable::zeros(48, 4);
        let stats = evaluate_greedy(&mut env, &q, 5, 2);
        assert!(stats.mean_reward <= -50.0);
    }

    #[test]
    fn fixed_and_float_evaluate_identically_for_equivalent_tables() {
        let mut env = FrozenLake::deterministic_4x4();
        let q = good_table_for_deterministic_lake();
        let f = q.to_fixed(crate::fixed::FixedScale::paper());
        let a = evaluate_greedy(&mut env, &q, 20, 3);
        let b = evaluate_greedy_fixed(&mut env, &f, 20, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_in_seed() {
        let mut env = FrozenLake::slippery_4x4();
        let q = good_table_for_deterministic_lake();
        let a = evaluate_greedy(&mut env, &q, 100, 5);
        let b = evaluate_greedy(&mut env, &q, 100, 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "state mismatch")]
    fn shape_mismatch_rejected() {
        let mut env = FrozenLake::slippery_4x4();
        let q = QTable::zeros(48, 4);
        evaluate_greedy(&mut env, &q, 1, 0);
    }
}
