//! Tabular Q-learning (Algorithm 1 of the paper).
//!
//! The update for one experience `(s, a, r, s')` is
//!
//! ```text
//! target = r + γ · max_a' Q(s', a')
//! Q(s, a) ← Q(s, a) + α · (target − Q(s, a))
//! ```
//!
//! [`q_update`] / [`q_update_fixed`] are the reference single-experience
//! updates (the latter in the paper's INT32 fixed-point arithmetic, which
//! matches the PIM kernel bit for bit), and [`train_offline`] is the full
//! offline loop: for each episode, walk the dataset in the sampling
//! strategy's order and apply the update.

use crate::fixed::FixedScale;
use crate::qtable::{FixedQTable, QTable};
use crate::sampling::SamplingStrategy;
use serde::{Deserialize, Serialize};
use swiftrl_env::{ExperienceDataset, Transition};

/// Hyper-parameters of offline Q-learning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QLearningConfig {
    /// Learning rate α.
    pub alpha: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Training episodes (each walks the whole dataset once).
    pub episodes: u32,
}

impl QLearningConfig {
    /// The paper's hyper-parameters: α = 0.1, γ = 0.95, 2,000 episodes.
    pub fn paper_defaults() -> Self {
        Self {
            alpha: 0.1,
            gamma: 0.95,
            episodes: 2_000,
        }
    }

    /// Returns a copy with a different episode count.
    pub fn with_episodes(mut self, episodes: u32) -> Self {
        self.episodes = episodes;
        self
    }
}

/// Applies one FP32 Q-learning update in place. Terminal transitions do
/// not bootstrap (`target = r`).
#[inline]
pub fn q_update(q: &mut QTable, t: &Transition, alpha: f32, gamma: f32) {
    let target = if t.done {
        t.reward
    } else {
        t.reward + gamma * q.max_value(t.next_state)
    };
    let old = q.get(t.state, t.action);
    q.set(t.state, t.action, old + alpha * (target - old));
}

/// Applies one INT32 fixed-point Q-learning update in place, using the
/// paper's scaled arithmetic: `α`, `γ` and `r` are pre-scaled, products
/// are computed wide and descaled after each multiply.
#[inline]
pub fn q_update_fixed(
    q: &mut FixedQTable,
    t: &Transition,
    alpha_scaled: i32,
    gamma_scaled: i32,
    reward_scaled: i32,
    scale: FixedScale,
) {
    let target = if t.done {
        reward_scaled
    } else {
        reward_scaled + scale.mul(gamma_scaled, q.max_value(t.next_state))
    };
    let old = q.get(t.state, t.action);
    let delta = scale.mul(alpha_scaled, target - old);
    q.set(t.state, t.action, old + delta);
}

/// Trains an FP32 Q-table offline over `dataset` (the CPU reference used
/// for quality comparisons and baselines).
///
/// `seed` drives the RAN sampling strategy; SEQ/STR are deterministic.
pub fn train_offline(
    dataset: &ExperienceDataset,
    config: &QLearningConfig,
    sampling: SamplingStrategy,
    seed: u32,
) -> QTable {
    let mut q = QTable::zeros(dataset.num_states(), dataset.num_actions());
    train_offline_into(&mut q, dataset.transitions(), config, sampling, seed);
    q
}

/// Continues training an existing FP32 Q-table over a transition slice.
pub fn train_offline_into(
    q: &mut QTable,
    transitions: &[Transition],
    config: &QLearningConfig,
    sampling: SamplingStrategy,
    seed: u32,
) {
    for episode in 0..config.episodes {
        let ep_seed = seed.wrapping_add(episode).wrapping_mul(0x9E37_79B9);
        for i in sampling.indices(transitions.len(), ep_seed) {
            q_update(q, &transitions[i], config.alpha, config.gamma);
        }
    }
}

/// Trains an INT32 fixed-point Q-table offline with the scaling
/// optimization. Rewards are scaled at load time, as in the PIM kernels.
pub fn train_offline_fixed(
    dataset: &ExperienceDataset,
    config: &QLearningConfig,
    sampling: SamplingStrategy,
    scale: FixedScale,
    seed: u32,
) -> FixedQTable {
    let mut q = FixedQTable::zeros(dataset.num_states(), dataset.num_actions(), scale);
    let alpha_s = scale.to_fixed(config.alpha);
    let gamma_s = scale.to_fixed(config.gamma);
    let rewards: Vec<i32> = dataset.iter().map(|t| scale.to_fixed(t.reward)).collect();
    let transitions = dataset.transitions();
    for episode in 0..config.episodes {
        let ep_seed = seed.wrapping_add(episode).wrapping_mul(0x9E37_79B9);
        for i in sampling.indices(transitions.len(), ep_seed) {
            q_update_fixed(&mut q, &transitions[i], alpha_s, gamma_s, rewards[i], scale);
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftrl_env::{Action, State};

    fn t(s: u32, a: u32, r: f32, ns: u32) -> Transition {
        Transition {
            state: State(s),
            action: Action(a),
            reward: r,
            next_state: State(ns),
            done: false,
        }
    }

    #[test]
    fn single_update_matches_formula() {
        let mut q = QTable::zeros(4, 2);
        q.set(State(1), Action(0), 0.5); // max over next state
        q.set(State(0), Action(1), 0.2);
        q_update(&mut q, &t(0, 1, 1.0, 1), 0.1, 0.95);
        // target = 1 + 0.95*0.5 = 1.475; new = 0.2 + 0.1*(1.475-0.2)
        let expected = 0.2 + 0.1 * (1.0 + 0.95 * 0.5 - 0.2);
        assert!((q.get(State(0), Action(1)) - expected).abs() < 1e-6);
    }

    #[test]
    fn update_converges_on_two_state_chain() {
        // s0 --a0/r=0--> s1 (terminal-ish self loop with r=1 on a0).
        let mut q = QTable::zeros(2, 1);
        let data = [t(0, 0, 0.0, 1), t(1, 0, 1.0, 1)];
        for _ in 0..5_000 {
            for tr in &data {
                q_update(&mut q, tr, 0.1, 0.5);
            }
        }
        // Fixed point: Q(1) = 1 + 0.5 Q(1) => 2; Q(0) = 0 + 0.5 * 2 = 1.
        assert!((q.get(State(1), Action(0)) - 2.0).abs() < 1e-3);
        assert!((q.get(State(0), Action(0)) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn fixed_update_tracks_float_update() {
        let scale = FixedScale::paper();
        let mut qf = QTable::zeros(3, 2);
        let mut qi = FixedQTable::zeros(3, 2, scale);
        let data = [
            t(0, 0, 1.0, 1),
            t(1, 1, -1.0, 2),
            t(2, 0, 0.5, 0),
            t(0, 1, 0.0, 2),
        ];
        for _ in 0..200 {
            for tr in &data {
                q_update(&mut qf, tr, 0.1, 0.95);
                q_update_fixed(&mut qi, tr, 1_000, 9_500, scale.to_fixed(tr.reward), scale);
            }
        }
        let diff = qi.to_float().max_abs_diff(&qf);
        assert!(diff < 0.05, "fixed-point drift too large: {diff}");
    }

    #[test]
    fn paper_defaults() {
        let c = QLearningConfig::paper_defaults();
        assert_eq!(c.alpha, 0.1);
        assert_eq!(c.gamma, 0.95);
        assert_eq!(c.episodes, 2_000);
        assert_eq!(c.with_episodes(5).episodes, 5);
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let mut d = ExperienceDataset::new("chain", 3, 2);
        d.extend([t(0, 0, 0.0, 1), t(1, 0, 1.0, 2), t(2, 1, 0.0, 0)]);
        let c = QLearningConfig::paper_defaults().with_episodes(10);
        let a = train_offline(&d, &c, SamplingStrategy::Random, 5);
        let b = train_offline(&d, &c, SamplingStrategy::Random, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn sampling_strategies_reach_similar_fixed_points() {
        let mut d = ExperienceDataset::new("chain", 3, 2);
        d.extend([
            t(0, 0, 0.0, 1),
            t(1, 0, 1.0, 2),
            t(2, 0, 0.0, 2),
            t(0, 1, 0.0, 2),
            t(1, 1, 0.0, 0),
            t(2, 1, 0.0, 1),
        ]);
        let c = QLearningConfig::paper_defaults().with_episodes(3_000);
        let seq = train_offline(&d, &c, SamplingStrategy::Sequential, 1);
        let strd = train_offline(&d, &c, SamplingStrategy::paper_stride(), 1);
        let ran = train_offline(&d, &c, SamplingStrategy::Random, 1);
        assert!(seq.max_abs_diff(&strd) < 0.02);
        assert!(seq.max_abs_diff(&ran) < 0.1);
    }
}
