//! Online (environment-interactive) training and behaviour-policy
//! dataset collection.
//!
//! The paper's datasets are not purely random: "to obtain a partially
//! trained policy, we train a random behavior policy online and log the
//! experiences until the policy performance achieves a performance
//! threshold" (§4.1). This module provides that pipeline: online
//! ε-greedy Q-learning/SARSA to a target mean reward, then experience
//! logging under the (frozen) partially-trained policy.

use crate::eval::{evaluate_greedy, EvalStats};
use crate::policy::epsilon_greedy;
use crate::qtable::QTable;
use crate::rng::Lcg32;
use serde::{Deserialize, Serialize};
use swiftrl_env::dataset::{ExperienceDataset, Transition};
use swiftrl_env::DiscreteEnv;

/// Hyper-parameters of online training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Learning rate α.
    pub alpha: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Exploration rate of the ε-greedy behaviour.
    pub epsilon: f32,
    /// Hard cap on training episodes.
    pub max_episodes: u32,
    /// Evaluate (and check the threshold) every this many episodes.
    pub eval_every: u32,
    /// Episodes per evaluation.
    pub eval_episodes: u32,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            alpha: 0.1,
            gamma: 0.95,
            epsilon: 0.1,
            max_episodes: 20_000,
            eval_every: 500,
            eval_episodes: 200,
        }
    }
}

/// Outcome of an online training run.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// The (partially) trained Q-table.
    pub q_table: QTable,
    /// Episodes actually trained.
    pub episodes: u32,
    /// Evaluation at the stopping point.
    pub final_eval: EvalStats,
    /// Whether the threshold was reached (false = episode cap hit).
    pub reached_threshold: bool,
}

/// Trains Q-learning online with ε-greedy exploration until the greedy
/// policy's mean evaluation reward reaches `threshold` (or the episode
/// cap).
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `eval_every` or `eval_episodes` is zero.
pub fn train_online_q<E: DiscreteEnv + ?Sized>(
    env: &mut E,
    cfg: &OnlineConfig,
    threshold: f64,
    seed: u32,
) -> OnlineOutcome {
    assert!(cfg.eval_every > 0 && cfg.eval_episodes > 0, "evaluation disabled");
    let mut q = QTable::zeros(env.num_states(), env.num_actions());
    let mut rng = Lcg32::new(seed);
    let mut episodes = 0;
    loop {
        for _ in 0..cfg.eval_every {
            run_q_episode(env, &mut q, cfg, &mut rng);
            episodes += 1;
            if episodes >= cfg.max_episodes {
                break;
            }
        }
        let eval = evaluate_greedy(env, &q, cfg.eval_episodes, seed as u64 ^ 0xE7A1);
        let reached = eval.mean_reward >= threshold;
        if reached || episodes >= cfg.max_episodes {
            return OnlineOutcome {
                q_table: q,
                episodes,
                final_eval: eval,
                reached_threshold: reached,
            };
        }
    }
}

/// Trains SARSA online (on-policy: the update bootstraps from the action
/// the ε-greedy behaviour actually takes next) until the greedy policy's
/// mean evaluation reward reaches `threshold`.
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `eval_every` or `eval_episodes` is zero.
pub fn train_online_sarsa<E: DiscreteEnv + ?Sized>(
    env: &mut E,
    cfg: &OnlineConfig,
    threshold: f64,
    seed: u32,
) -> OnlineOutcome {
    assert!(cfg.eval_every > 0 && cfg.eval_episodes > 0, "evaluation disabled");
    let mut q = QTable::zeros(env.num_states(), env.num_actions());
    let mut rng = Lcg32::new(seed);
    let mut episodes = 0;
    loop {
        for _ in 0..cfg.eval_every {
            run_sarsa_episode(env, &mut q, cfg, &mut rng);
            episodes += 1;
            if episodes >= cfg.max_episodes {
                break;
            }
        }
        let eval = evaluate_greedy(env, &q, cfg.eval_episodes, seed as u64 ^ 0xE7A1);
        let reached = eval.mean_reward >= threshold;
        if reached || episodes >= cfg.max_episodes {
            return OnlineOutcome {
                q_table: q,
                episodes,
                final_eval: eval,
                reached_threshold: reached,
            };
        }
    }
}

fn run_sarsa_episode<E: DiscreteEnv + ?Sized>(
    env: &mut E,
    q: &mut QTable,
    cfg: &OnlineConfig,
    rng: &mut Lcg32,
) {
    let mut state = env.reset(rng);
    let mut action = epsilon_greedy(q, state, cfg.epsilon, rng);
    loop {
        let step = env.step(action, rng);
        let old = q.get(state, action);
        if step.done {
            q.set(state, action, old + cfg.alpha * (step.reward - old));
            return;
        }
        // On-policy: commit to the next action before updating.
        let next_action = epsilon_greedy(q, step.next_state, cfg.epsilon, rng);
        let target = step.reward + cfg.gamma * q.get(step.next_state, next_action);
        q.set(state, action, old + cfg.alpha * (target - old));
        state = step.next_state;
        action = next_action;
    }
}

fn run_q_episode<E: DiscreteEnv + ?Sized>(
    env: &mut E,
    q: &mut QTable,
    cfg: &OnlineConfig,
    rng: &mut Lcg32,
) {
    let mut state = env.reset(rng);
    loop {
        let action = epsilon_greedy(q, state, cfg.epsilon, rng);
        let step = env.step(action, rng);
        let t = Transition {
            state,
            action,
            reward: step.reward,
            next_state: step.next_state,
            done: step.done,
        };
        crate::qlearning::q_update(q, &t, cfg.alpha, cfg.gamma);
        if step.done {
            return;
        }
        state = step.next_state;
    }
}

/// Logs `n` transitions under the frozen ε-greedy behaviour policy of a
/// trained Q-table — the paper's dataset-collection step once the
/// threshold is reached.
///
/// Deterministic in `seed`.
pub fn collect_behavior<E: DiscreteEnv + ?Sized>(
    env: &mut E,
    q: &QTable,
    epsilon: f32,
    n: usize,
    seed: u32,
) -> ExperienceDataset {
    let mut rng = Lcg32::new(seed ^ 0xBEAF_0001);
    let mut dataset = ExperienceDataset::new(env.name(), env.num_states(), env.num_actions());
    let mut state = env.reset(&mut rng);
    for _ in 0..n {
        let action = epsilon_greedy(q, state, epsilon, &mut rng);
        let step = env.step(action, &mut rng);
        dataset.push(Transition {
            state,
            action,
            reward: step.reward,
            next_state: step.next_state,
            done: step.done,
        });
        state = if step.done {
            env.reset(&mut rng)
        } else {
            step.next_state
        };
    }
    dataset
}

/// The full §4.1 pipeline: train a behaviour policy online to
/// `threshold`, then log `n` experiences under it.
pub fn collect_partially_trained<E: DiscreteEnv + ?Sized>(
    env: &mut E,
    cfg: &OnlineConfig,
    threshold: f64,
    n: usize,
    seed: u32,
) -> (ExperienceDataset, OnlineOutcome) {
    let outcome = train_online_q(env, cfg, threshold, seed);
    let dataset = collect_behavior(env, &outcome.q_table, cfg.epsilon, n, seed);
    (dataset, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftrl_env::frozen_lake::FrozenLake;

    fn cfg() -> OnlineConfig {
        OnlineConfig {
            // Generous exploration: from a zero-initialized table the
            // greedy default (action 0) walks straight into a hole, so
            // low ε can fail to ever see the goal.
            epsilon: 0.5,
            max_episodes: 8_000,
            eval_every: 400,
            eval_episodes: 150,
            ..OnlineConfig::default()
        }
    }

    #[test]
    fn online_q_reaches_threshold_on_frozen_lake() {
        let mut env = FrozenLake::slippery_4x4();
        let out = train_online_q(&mut env, &cfg(), 0.4, 3);
        assert!(out.reached_threshold, "eval {:?}", out.final_eval);
        assert!(out.final_eval.mean_reward >= 0.4);
        assert!(out.episodes <= 8_000);
    }

    #[test]
    fn unreachable_threshold_hits_cap() {
        let mut env = FrozenLake::slippery_4x4();
        let small = OnlineConfig {
            max_episodes: 800,
            eval_every: 400,
            eval_episodes: 50,
            ..OnlineConfig::default()
        };
        let out = train_online_q(&mut env, &small, 2.0, 1); // impossible: max is 1.0
        assert!(!out.reached_threshold);
        assert_eq!(out.episodes, 800);
    }

    #[test]
    fn behavior_dataset_is_better_than_random_at_reaching_goal() {
        let mut env = FrozenLake::slippery_4x4();
        let out = train_online_q(&mut env, &cfg(), 0.4, 7);
        let behavior = collect_behavior(&mut env, &out.q_table, 0.1, 20_000, 7);
        let random = swiftrl_env::collect::collect_random(&mut env, 20_000, 7);
        let hits = |d: &ExperienceDataset| d.iter().filter(|t| t.reward > 0.0).count();
        assert!(
            hits(&behavior) > 3 * hits(&random),
            "behavior {} vs random {}",
            hits(&behavior),
            hits(&random)
        );
    }

    #[test]
    fn online_sarsa_reaches_threshold_on_frozen_lake() {
        let mut env = FrozenLake::slippery_4x4();
        let out = train_online_sarsa(&mut env, &cfg(), 0.3, 3);
        assert!(out.reached_threshold, "eval {:?}", out.final_eval);
    }

    #[test]
    fn online_sarsa_learns_safer_cliff_policy_than_greedy_target() {
        // The classic Sutton & Barto result: on CliffWalking, on-policy
        // SARSA (which accounts for its own exploration) prefers a safer
        // path than Q-learning's cliff-hugging optimum, so its *training*
        // returns are better under ε-greedy execution.
        use swiftrl_env::cliff_walking::CliffWalking;
        let cfg = OnlineConfig {
            epsilon: 0.2,
            max_episodes: 4_000,
            eval_every: 4_000,
            eval_episodes: 100,
            ..OnlineConfig::default()
        };
        let mut env = CliffWalking::with_step_cap(300);
        let sarsa = train_online_sarsa(&mut env, &cfg, 1.0, 5); // cap-limited
        let q = train_online_q(&mut env, &cfg, 1.0, 5);
        // Both learn to finish; evaluate greedily.
        assert!(sarsa.final_eval.mean_reward > -60.0, "{:?}", sarsa.final_eval);
        assert!(q.final_eval.mean_reward > -60.0, "{:?}", q.final_eval);
    }

    #[test]
    fn pipeline_is_deterministic() {
        let mut env = FrozenLake::slippery_4x4();
        let (d1, o1) = collect_partially_trained(&mut env, &cfg(), 0.3, 2_000, 5);
        let (d2, o2) = collect_partially_trained(&mut env, &cfg(), 0.3, 2_000, 5);
        assert_eq!(d1, d2);
        assert_eq!(o1.episodes, o2.episodes);
        assert_eq!(o1.q_table, o2.q_table);
    }
}
