//! Experience-sampling strategies: SEQ, STR, RAN (SwiftRL §3.2.1).
//!
//! Each training episode walks the dataset chunk in an order determined
//! by the sampling strategy:
//!
//! * **SEQ** — sequential: indices `0, 1, 2, …` (streaming locality);
//! * **STR** — stride-based: indices at regular intervals
//!   (`0, k, 2k, …, 1, k+1, …`), the paper uses stride 4;
//! * **RAN** — random: uniform draws with replacement from the chunk,
//!   modelling the exploratory sampling of complex environments (the
//!   source of irregular memory access patterns, §3.1).
//!
//! The iterator always yields exactly `n` indices per episode so all
//! strategies perform the same number of updates.

use crate::rng::Lcg32;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's stride value for the STR experiments (Figs. 5–6).
pub const PAPER_STRIDE: usize = 4;

/// How experiences are sampled from a dataset chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SamplingStrategy {
    /// Sequential walk (SEQ).
    Sequential,
    /// Stride-based walk with the given stride (STR).
    Stride(usize),
    /// Uniform random draws with replacement (RAN).
    Random,
}

impl SamplingStrategy {
    /// The paper's STR configuration (stride 4).
    pub fn paper_stride() -> Self {
        SamplingStrategy::Stride(PAPER_STRIDE)
    }

    /// Short uppercase tag used in workload names (SEQ/STR/RAN).
    pub fn tag(&self) -> &'static str {
        match self {
            SamplingStrategy::Sequential => "SEQ",
            SamplingStrategy::Stride(_) => "STR",
            SamplingStrategy::Random => "RAN",
        }
    }

    /// Iterator over the `n` sample indices of one episode.
    ///
    /// `seed` only matters for [`SamplingStrategy::Random`]; pass a
    /// per-episode seed so episodes draw different samples.
    ///
    /// # Panics
    ///
    /// Panics if a stride of 0 is used with a non-empty chunk.
    pub fn indices(&self, n: usize, seed: u32) -> SampleIndices {
        if let SamplingStrategy::Stride(0) = self {
            assert!(n == 0, "stride must be positive");
        }
        SampleIndices {
            strategy: *self,
            n,
            produced: 0,
            cursor: 0,
            offset: 0,
            rng: Lcg32::new(seed),
        }
    }
}

impl fmt::Display for SamplingStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingStrategy::Stride(k) => write!(f, "STR(stride={k})"),
            other => write!(f, "{}", other.tag()),
        }
    }
}

/// Iterator produced by [`SamplingStrategy::indices`].
#[derive(Debug, Clone)]
pub struct SampleIndices {
    strategy: SamplingStrategy,
    n: usize,
    produced: usize,
    cursor: usize,
    offset: usize,
    rng: Lcg32,
}

impl Iterator for SampleIndices {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.produced >= self.n {
            return None;
        }
        self.produced += 1;
        Some(match self.strategy {
            SamplingStrategy::Sequential => self.produced - 1,
            SamplingStrategy::Stride(k) => {
                let idx = self.cursor;
                self.cursor += k;
                if self.cursor >= self.n {
                    // Wrap to the next interleaving offset.
                    self.offset += 1;
                    self.cursor = self.offset;
                }
                idx
            }
            SamplingStrategy::Random => self.rng.below(self.n as u32) as usize,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.n - self.produced;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for SampleIndices {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_identity() {
        let idx: Vec<_> = SamplingStrategy::Sequential.indices(5, 0).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn stride_visits_regular_intervals_then_interleaves() {
        let idx: Vec<_> = SamplingStrategy::Stride(4).indices(10, 0).collect();
        assert_eq!(idx, vec![0, 4, 8, 1, 5, 9, 2, 6, 3, 7]);
    }

    #[test]
    fn stride_is_a_permutation() {
        for n in [1usize, 7, 16, 100, 101] {
            for k in [1usize, 2, 3, 4, 7] {
                let mut idx: Vec<_> = SamplingStrategy::Stride(k).indices(n, 0).collect();
                idx.sort_unstable();
                let expect: Vec<_> = (0..n).collect();
                assert_eq!(idx, expect, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn stride_one_equals_sequential() {
        let a: Vec<_> = SamplingStrategy::Stride(1).indices(9, 0).collect();
        let b: Vec<_> = SamplingStrategy::Sequential.indices(9, 0).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn random_yields_n_in_range_and_is_seeded() {
        let a: Vec<_> = SamplingStrategy::Random.indices(50, 123).collect();
        let b: Vec<_> = SamplingStrategy::Random.indices(50, 123).collect();
        let c: Vec<_> = SamplingStrategy::Random.indices(50, 124).collect();
        assert_eq!(a.len(), 50);
        assert!(a.iter().all(|&i| i < 50));
        assert_eq!(a, b, "deterministic in seed");
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn empty_chunk_yields_nothing() {
        for s in [
            SamplingStrategy::Sequential,
            SamplingStrategy::Stride(4),
            SamplingStrategy::Random,
        ] {
            assert_eq!(s.indices(0, 0).count(), 0);
        }
    }

    #[test]
    fn tags_and_display() {
        assert_eq!(SamplingStrategy::Sequential.tag(), "SEQ");
        assert_eq!(SamplingStrategy::paper_stride().tag(), "STR");
        assert_eq!(SamplingStrategy::Random.tag(), "RAN");
        assert_eq!(SamplingStrategy::Stride(4).to_string(), "STR(stride=4)");
    }

    #[test]
    fn exact_size_iterator() {
        let mut it = SamplingStrategy::Sequential.indices(3, 0);
        assert_eq!(it.len(), 3);
        it.next();
        assert_eq!(it.len(), 2);
    }
}
