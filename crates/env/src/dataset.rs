//! Offline experience datasets and their PIM byte layout.
//!
//! A [`Transition`] is the experience tuple `(s, a, r, s')` of SwiftRL
//! §3.2.1. Datasets are collected once by a behaviour policy and then
//! partitioned into per-DPU chunks; each transition is serialized as a
//! 16-byte little-endian record so kernels can stream it from MRAM.
//!
//! The INT32 encodings scale the reward by the paper's constant scale
//! factor at *load* time ("we scale up the reward r for each experience"),
//! so the fixed-point kernels never touch floating point.

use crate::env::{Action, State};
use serde::{Deserialize, Serialize};

/// One experience tuple `(s, a, r, s', done)`.
///
/// `done` marks `next_state` as terminal, so update rules do not
/// bootstrap from it. (With zero-initialized Q-tables, masking is
/// equivalent to bootstrapping from the never-updated terminal row — but
/// arbitrary initial values require the explicit flag.)
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// State the action was taken in.
    pub state: State,
    /// Action taken.
    pub action: Action,
    /// Immediate reward.
    pub reward: f32,
    /// Resulting state.
    pub next_state: State,
    /// True if the transition ended its episode.
    pub done: bool,
}

impl Transition {
    /// Bytes per serialized transition record (both encodings).
    pub const RECORD_BYTES: usize = 16;
    /// Bit of the action word carrying the terminal flag.
    pub const DONE_BIT: u32 = 1 << 31;

    fn action_word(&self) -> u32 {
        debug_assert!(self.action.0 < Self::DONE_BIT, "action index too large");
        self.action.0 | if self.done { Self::DONE_BIT } else { 0 }
    }

    /// Serializes as `[state, done|action, reward_f32_bits, next_state]`,
    /// little-endian, for the FP32 kernels.
    pub fn encode_fp32(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.state.0.to_le_bytes());
        out.extend_from_slice(&self.action_word().to_le_bytes());
        out.extend_from_slice(&self.reward.to_bits().to_le_bytes());
        out.extend_from_slice(&self.next_state.0.to_le_bytes());
    }

    /// Serializes as `[state, done|action, reward_scaled_i32, next_state]`
    /// for the INT32 kernels, with the reward pre-scaled by `scale`.
    pub fn encode_int32(&self, scale: i32, out: &mut Vec<u8>) {
        let scaled = (self.reward * scale as f32).round() as i32;
        out.extend_from_slice(&self.state.0.to_le_bytes());
        out.extend_from_slice(&self.action_word().to_le_bytes());
        out.extend_from_slice(&scaled.to_le_bytes());
        out.extend_from_slice(&self.next_state.0.to_le_bytes());
    }

    /// Decodes a 16-byte FP32 record.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() != 16`.
    pub fn decode_fp32(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), Self::RECORD_BYTES);
        let word = |i: usize| {
            u32::from_le_bytes([bytes[4 * i], bytes[4 * i + 1], bytes[4 * i + 2], bytes[4 * i + 3]])
        };
        let action_word = word(1);
        Transition {
            state: State(word(0)),
            action: Action(action_word & !Self::DONE_BIT),
            reward: f32::from_bits(word(2)),
            next_state: State(word(3)),
            done: action_word & Self::DONE_BIT != 0,
        }
    }
}

/// A dataset of experiences collected from one environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperienceDataset {
    env_name: String,
    num_states: usize,
    num_actions: usize,
    transitions: Vec<Transition>,
}

impl ExperienceDataset {
    /// Creates an empty dataset tagged with its environment's spaces.
    pub fn new(env_name: impl Into<String>, num_states: usize, num_actions: usize) -> Self {
        Self {
            env_name: env_name.into(),
            num_states,
            num_actions,
            transitions: Vec::new(),
        }
    }

    /// Environment this dataset was collected from.
    pub fn env_name(&self) -> &str {
        &self.env_name
    }

    /// Size of the source observation space.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Size of the source action space.
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// Number of transitions.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// True if the dataset holds no transitions.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Appends a transition.
    ///
    /// # Panics
    ///
    /// Panics if the transition's indices fall outside the declared
    /// state/action spaces (a collection bug).
    pub fn push(&mut self, t: Transition) {
        assert!(t.state.index() < self.num_states, "state out of space");
        assert!(t.next_state.index() < self.num_states, "next state out of space");
        assert!(t.action.index() < self.num_actions, "action out of space");
        self.transitions.push(t);
    }

    /// The transitions as a slice.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Iterates over the transitions.
    pub fn iter(&self) -> std::slice::Iter<'_, Transition> {
        self.transitions.iter()
    }

    /// Serializes `range` of transitions in the FP32 record layout.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn encode_range_fp32(&self, range: std::ops::Range<usize>) -> Vec<u8> {
        let mut out = Vec::with_capacity(range.len() * Transition::RECORD_BYTES);
        for t in &self.transitions[range] {
            t.encode_fp32(&mut out);
        }
        out
    }

    /// Serializes `range` of transitions in the INT32 record layout with
    /// rewards pre-scaled by `scale`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn encode_range_int32(&self, range: std::ops::Range<usize>, scale: i32) -> Vec<u8> {
        let mut out = Vec::with_capacity(range.len() * Transition::RECORD_BYTES);
        for t in &self.transitions[range] {
            t.encode_int32(scale, &mut out);
        }
        out
    }
}

impl Extend<Transition> for ExperienceDataset {
    fn extend<I: IntoIterator<Item = Transition>>(&mut self, iter: I) {
        for t in iter {
            self.push(t);
        }
    }
}

impl<'a> IntoIterator for &'a ExperienceDataset {
    type Item = &'a Transition;
    type IntoIter = std::slice::Iter<'a, Transition>;
    fn into_iter(self) -> Self::IntoIter {
        self.transitions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, a: u32, r: f32, ns: u32) -> Transition {
        Transition {
            state: State(s),
            action: Action(a),
            reward: r,
            next_state: State(ns),
            done: false,
        }
    }

    #[test]
    fn fp32_record_round_trips() {
        let tr = t(3, 1, -10.0, 14);
        let mut buf = Vec::new();
        tr.encode_fp32(&mut buf);
        assert_eq!(buf.len(), Transition::RECORD_BYTES);
        assert_eq!(Transition::decode_fp32(&buf), tr);
    }

    #[test]
    fn int32_record_scales_reward() {
        let tr = t(0, 2, 1.0, 5);
        let mut buf = Vec::new();
        tr.encode_int32(10_000, &mut buf);
        let reward = i32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
        assert_eq!(reward, 10_000);
        let tr2 = t(0, 2, -0.5, 5);
        buf.clear();
        tr2.encode_int32(10_000, &mut buf);
        let reward = i32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
        assert_eq!(reward, -5_000);
    }

    #[test]
    fn dataset_validates_spaces() {
        let mut d = ExperienceDataset::new("test", 16, 4);
        d.push(t(15, 3, 0.0, 0));
        assert_eq!(d.len(), 1);
        let bad = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut d2 = d.clone();
            d2.push(t(16, 0, 0.0, 0));
        }));
        assert!(bad.is_err());
    }

    #[test]
    fn encode_range_concatenates_records() {
        let mut d = ExperienceDataset::new("test", 16, 4);
        for i in 0..4 {
            d.push(t(i, 0, i as f32, i));
        }
        let bytes = d.encode_range_fp32(1..3);
        assert_eq!(bytes.len(), 2 * Transition::RECORD_BYTES);
        let first = Transition::decode_fp32(&bytes[..16]);
        assert_eq!(first.state, State(1));
    }

    #[test]
    fn extend_and_iter() {
        let mut d = ExperienceDataset::new("test", 4, 2);
        d.extend([t(0, 0, 0.0, 1), t(1, 1, 1.0, 2)]);
        assert_eq!(d.iter().count(), 2);
        assert_eq!((&d).into_iter().count(), 2);
        assert!(!d.is_empty());
    }
}
