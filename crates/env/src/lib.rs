//! # swiftrl-env
//!
//! Discrete reinforcement-learning environments reimplemented faithfully
//! from OpenAI Gym, plus offline experience-dataset collection — the
//! environment substrate of the SwiftRL reproduction.
//!
//! The SwiftRL paper evaluates on two Gym environments:
//!
//! * [`FrozenLake`](frozen_lake::FrozenLake) — 4×4 slippery grid,
//!   `Discrete(16)` states × `Discrete(4)` actions (8×8 also supported);
//! * [`Taxi`](taxi::Taxi) — the 5×5 taxi grid, `Discrete(500)` states ×
//!   `Discrete(6)` actions.
//!
//! [`CliffWalking`](cliff_walking::CliffWalking) is included as a third
//! environment for examples and extension experiments.
//!
//! All environments implement [`DiscreteEnv`] with tabular state/action
//! spaces, deterministic seeding, and transition semantics matching the
//! Gym reference implementations (verified in each module's tests).
//!
//! [`collect`] gathers offline datasets by logging a behaviour policy, the
//! collection procedure of SwiftRL §3.2.1 (random action selection).
//!
//! ## Example
//!
//! ```rust
//! use swiftrl_env::frozen_lake::FrozenLake;
//! use swiftrl_env::{DiscreteEnv, collect};
//!
//! let mut env = FrozenLake::slippery_4x4();
//! let dataset = collect::collect_random(&mut env, 1_000, 7);
//! assert_eq!(dataset.len(), 1_000);
//! assert_eq!(dataset.num_states(), 16);
//! assert_eq!(dataset.num_actions(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cliff_walking;
pub mod collect;
pub mod dataset;
pub mod env;
pub mod frozen_lake;
pub mod taxi;

pub use dataset::{ExperienceDataset, Transition};
pub use env::{Action, DiscreteEnv, State, Step};
