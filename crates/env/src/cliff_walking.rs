//! The CliffWalking environment (Gym `CliffWalking-v0`).
//!
//! A 4×12 grid: the agent starts at the bottom-left corner (state 36) and
//! must reach the bottom-right corner (state 47). Stepping onto the cliff
//! (states 37–46) yields −100 and teleports the agent back to the start;
//! every other move costs −1. The episode ends only at the goal (Gym puts
//! no step limit on this environment; we add a configurable safety cap
//! for offline collection).
//!
//! Actions: 0 = up, 1 = right, 2 = down, 3 = left (Gym encoding).
//!
//! Not part of the SwiftRL evaluation — included as the third runnable
//! environment for examples and extension experiments.

use crate::env::{Action, DiscreteEnv, State, Step};

const ROWS: u32 = 4;
const COLS: u32 = 12;
const START: u32 = 36;
const GOAL: u32 = 47;

/// The CliffWalking grid world.
///
/// ```rust
/// use swiftrl_env::cliff_walking::CliffWalking;
/// use swiftrl_env::DiscreteEnv;
///
/// let env = CliffWalking::new();
/// assert_eq!(env.num_states(), 48);
/// assert_eq!(env.num_actions(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct CliffWalking {
    state: State,
    steps: u32,
    max_steps: u32,
    done: bool,
    started: bool,
}

impl Default for CliffWalking {
    fn default() -> Self {
        Self::new()
    }
}

impl CliffWalking {
    /// Creates the environment with a 1,000-step safety cap.
    pub fn new() -> Self {
        Self::with_step_cap(1_000)
    }

    /// Creates the environment with a custom step cap (0 disables it).
    pub fn with_step_cap(max_steps: u32) -> Self {
        Self {
            state: State(START),
            steps: 0,
            max_steps,
            done: true,
            started: false,
        }
    }

    fn is_cliff(state: u32) -> bool {
        (START + 1..GOAL).contains(&state)
    }
}

impl DiscreteEnv for CliffWalking {
    fn name(&self) -> &str {
        "cliff_walking"
    }

    fn num_states(&self) -> usize {
        (ROWS * COLS) as usize
    }

    fn num_actions(&self) -> usize {
        4
    }

    fn reset(&mut self, _rng: &mut dyn rand::RngCore) -> State {
        self.state = State(START);
        self.steps = 0;
        self.done = false;
        self.started = true;
        self.state
    }

    fn step(&mut self, action: Action, _rng: &mut dyn rand::RngCore) -> Step {
        assert!(self.started && !self.done, "step called on finished episode");
        let s = self.state.0;
        let (row, col) = (s / COLS, s % COLS);
        let (row, col) = match action.0 {
            0 => (row.saturating_sub(1), col),          // up
            1 => (row, (col + 1).min(COLS - 1)),        // right
            2 => ((row + 1).min(ROWS - 1), col),        // down
            3 => (row, col.saturating_sub(1)),          // left
            other => panic!("invalid CliffWalking action {other}"),
        };
        let next = row * COLS + col;
        self.steps += 1;
        let (next, reward, mut done) = if Self::is_cliff(next) {
            (START, -100.0, false)
        } else if next == GOAL {
            (GOAL, -1.0, true)
        } else {
            (next, -1.0, false)
        };
        if self.max_steps > 0 && self.steps >= self.max_steps {
            done = true;
        }
        self.state = State(next);
        self.done = done;
        Step {
            next_state: self.state,
            reward,
            done,
        }
    }

    fn state(&self) -> State {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn starts_bottom_left() {
        let mut env = CliffWalking::new();
        assert_eq!(env.reset(&mut rng()), State(36));
    }

    #[test]
    fn cliff_resets_to_start_with_minus_100() {
        let mut env = CliffWalking::new();
        let mut r = rng();
        env.reset(&mut r);
        let s = env.step(Action(1), &mut r); // right into the cliff
        assert_eq!(s.reward, -100.0);
        assert_eq!(s.next_state, State(36));
        assert!(!s.done);
    }

    #[test]
    fn optimal_path_reaches_goal() {
        let mut env = CliffWalking::new();
        let mut r = rng();
        env.reset(&mut r);
        let mut total = 0.0;
        env.step(Action(0), &mut r); // up
        for _ in 0..11 {
            let s = env.step(Action(1), &mut r); // right along row 2
            total += s.reward;
        }
        let s = env.step(Action(2), &mut r); // down into the goal
        total += s.reward;
        assert!(s.done);
        assert_eq!(s.next_state, State(47));
        assert_eq!(total, -12.0);
    }

    #[test]
    fn walls_clamp() {
        let mut env = CliffWalking::new();
        let mut r = rng();
        env.reset(&mut r);
        assert_eq!(env.step(Action(3), &mut r).next_state, State(36)); // left
        assert_eq!(env.step(Action(2), &mut r).next_state, State(36)); // down
    }

    #[test]
    fn step_cap_terminates() {
        let mut env = CliffWalking::with_step_cap(5);
        let mut r = rng();
        env.reset(&mut r);
        for i in 0..5 {
            let s = env.step(Action(3), &mut r);
            assert_eq!(s.done, i == 4);
        }
    }
}
