//! The FrozenLake environment (Gym `FrozenLake-v1`).
//!
//! The agent crosses a frozen lake from the start tile `S` to the goal
//! `G` without falling into holes `H`. On slippery ice the agent moves in
//! the intended direction with probability 1/3 and in each perpendicular
//! direction with probability 1/3. Reaching `G` yields reward 1; all other
//! transitions yield 0; stepping on `H` or `G` ends the episode, as does
//! the step limit (100 for the 4×4 map, 200 for 8×8 — Gym's `TimeLimit`).
//!
//! Actions follow the Gym encoding: 0 = left, 1 = down, 2 = right, 3 = up.

use crate::env::{uniform_below, Action, DiscreteEnv, State, Step};

const MAP_4X4: [&str; 4] = ["SFFF", "FHFH", "FFFH", "HFFG"];
const MAP_8X8: [&str; 8] = [
    "SFFFFFFF", "FFFFFFFF", "FFFHFFFF", "FFFFFHFF", "FFFHFFFF", "FHHFFFHF", "FHFFHFHF", "FFFHFFFG",
];

/// Tile classes of the lake map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tile {
    Start,
    Frozen,
    Hole,
    Goal,
}

/// The FrozenLake grid world.
///
/// ```rust
/// use swiftrl_env::frozen_lake::FrozenLake;
/// use swiftrl_env::DiscreteEnv;
///
/// let env = FrozenLake::slippery_4x4();
/// assert_eq!(env.num_states(), 16);  // Discrete(16), as in the paper
/// assert_eq!(env.num_actions(), 4);  // Discrete(4)
/// ```
#[derive(Debug, Clone)]
pub struct FrozenLake {
    tiles: Vec<Tile>,
    size: usize,
    slippery: bool,
    max_steps: u32,
    state: State,
    steps: u32,
    done: bool,
    started: bool,
}

impl FrozenLake {
    /// The paper's configuration: the 4×4 map with slippery ice.
    pub fn slippery_4x4() -> Self {
        Self::from_map(&MAP_4X4, true, 100)
    }

    /// The 4×4 map without slipping (deterministic transitions).
    pub fn deterministic_4x4() -> Self {
        Self::from_map(&MAP_4X4, false, 100)
    }

    /// The 8×8 map with slippery ice.
    pub fn slippery_8x8() -> Self {
        Self::from_map(&MAP_8X8, true, 200)
    }

    /// Builds a lake from map rows of `S`/`F`/`H`/`G` characters.
    ///
    /// # Panics
    ///
    /// Panics if the map is not square or contains other characters —
    /// maps are compile-time constants, so this is a programming error.
    pub fn from_map(rows: &[&str], slippery: bool, max_steps: u32) -> Self {
        let size = rows.len();
        assert!(size > 0, "empty map");
        let mut tiles = Vec::with_capacity(size * size);
        for row in rows {
            assert_eq!(row.len(), size, "map must be square");
            for c in row.chars() {
                tiles.push(match c {
                    'S' => Tile::Start,
                    'F' => Tile::Frozen,
                    'H' => Tile::Hole,
                    'G' => Tile::Goal,
                    other => panic!("invalid map tile {other:?}"),
                });
            }
        }
        assert!(
            tiles.iter().filter(|t| **t == Tile::Start).count() == 1,
            "map must have exactly one start tile"
        );
        Self {
            tiles,
            size,
            slippery,
            max_steps,
            state: State(0),
            steps: 0,
            done: true,
            started: false,
        }
    }

    /// Side length of the (square) map.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Renders a greedy policy over the map: one arrow per frozen tile
    /// (`←↓→↑` for actions 0–3), `H` for holes, `G` for the goal, `S`
    /// kept for the start tile's arrow row context.
    ///
    /// `greedy` maps a state index to its greedy action index.
    ///
    /// # Panics
    ///
    /// Panics if `greedy` returns an action outside `0..4`.
    pub fn render_policy<F: Fn(u32) -> u32>(&self, greedy: F) -> String {
        const ARROWS: [char; 4] = ['←', '↓', '→', '↑'];
        let mut out = String::new();
        for row in 0..self.size {
            for col in 0..self.size {
                let idx = row * self.size + col;
                let c = match self.tiles[idx] {
                    Tile::Hole => 'H',
                    Tile::Goal => 'G',
                    Tile::Start | Tile::Frozen => {
                        let a = greedy(idx as u32);
                        assert!(a < 4, "invalid action {a}");
                        ARROWS[a as usize]
                    }
                };
                out.push(c);
            }
            out.push('\n');
        }
        out
    }

    fn start_state(&self) -> State {
        let idx = match self.tiles.iter().position(|t| *t == Tile::Start) {
            Some(i) => i,
            // Constructors reject grids without a start tile.
            None => panic!("grid has no start tile"),
        };
        State(idx as u32)
    }

    fn move_from(&self, state: u32, action: u32) -> u32 {
        let size = self.size as u32;
        let (row, col) = (state / size, state % size);
        let (row, col) = match action {
            0 => (row, col.saturating_sub(1)),          // left
            1 => ((row + 1).min(size - 1), col),        // down
            2 => (row, (col + 1).min(size - 1)),        // right
            3 => (row.saturating_sub(1), col),          // up
            other => panic!("invalid FrozenLake action {other}"),
        };
        row * size + col
    }
}

impl DiscreteEnv for FrozenLake {
    fn name(&self) -> &str {
        "frozen_lake"
    }

    fn num_states(&self) -> usize {
        self.size * self.size
    }

    fn num_actions(&self) -> usize {
        4
    }

    fn reset(&mut self, _rng: &mut dyn rand::RngCore) -> State {
        self.state = self.start_state();
        self.steps = 0;
        self.done = false;
        self.started = true;
        self.state
    }

    fn step(&mut self, action: Action, rng: &mut dyn rand::RngCore) -> Step {
        assert!(self.started && !self.done, "step called on finished episode");
        let a = action.0;
        assert!(a < 4, "invalid action {a}");
        // Slippery ice: intended direction or either perpendicular, 1/3
        // each (Gym uses [(a-1)%4, a, (a+1)%4]).
        let executed = if self.slippery {
            let slip = uniform_below(rng, 3);
            (a + 3 + slip) % 4
        } else {
            a
        };
        let next = self.move_from(self.state.0, executed);
        let tile = self.tiles[next as usize];
        self.steps += 1;
        let reward = if tile == Tile::Goal { 1.0 } else { 0.0 };
        let done = matches!(tile, Tile::Goal | Tile::Hole) || self.steps >= self.max_steps;
        self.state = State(next);
        self.done = done;
        Step {
            next_state: self.state,
            reward,
            done,
        }
    }

    fn state(&self) -> State {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn spaces_match_paper() {
        let env = FrozenLake::slippery_4x4();
        assert_eq!(env.num_states(), 16);
        assert_eq!(env.num_actions(), 4);
        let env8 = FrozenLake::slippery_8x8();
        assert_eq!(env8.num_states(), 64);
    }

    #[test]
    fn reset_starts_at_s() {
        let mut env = FrozenLake::slippery_4x4();
        assert_eq!(env.reset(&mut rng()), State(0));
    }

    #[test]
    fn deterministic_moves_follow_gym_encoding() {
        let mut env = FrozenLake::deterministic_4x4();
        let mut r = rng();
        env.reset(&mut r);
        // Right from 0 -> 1.
        assert_eq!(env.step(Action(2), &mut r).next_state, State(1));
        // Down from 1 -> 5 (a hole: episode ends, reward 0).
        let step = env.step(Action(1), &mut r);
        assert_eq!(step.next_state, State(5));
        assert!(step.done);
        assert_eq!(step.reward, 0.0);
    }

    #[test]
    fn borders_clamp() {
        let mut env = FrozenLake::deterministic_4x4();
        let mut r = rng();
        env.reset(&mut r);
        assert_eq!(env.step(Action(0), &mut r).next_state, State(0)); // left at col 0
        assert_eq!(env.step(Action(3), &mut r).next_state, State(0)); // up at row 0
    }

    #[test]
    fn goal_gives_reward_one_and_ends() {
        let mut env = FrozenLake::deterministic_4x4();
        let mut r = rng();
        env.reset(&mut r);
        // Path avoiding holes: down, down, right, right, down, right = goal 15.
        for a in [1u32, 1, 2, 2, 1] {
            let s = env.step(Action(a), &mut r);
            assert!(!s.done, "early termination at {s:?}");
        }
        let last = env.step(Action(2), &mut r);
        assert_eq!(last.next_state, State(15));
        assert_eq!(last.reward, 1.0);
        assert!(last.done);
    }

    #[test]
    fn slippery_moves_stay_on_intended_or_perpendicular_axis() {
        // From the start, intending RIGHT can slip to UP or DOWN but never
        // LEFT (the opposite direction is excluded in Gym).
        let mut env = FrozenLake::slippery_4x4();
        let mut r = rng();
        for _ in 0..500 {
            env.reset(&mut r);
            let next = env.step(Action(2), &mut r).next_state.0;
            // From 0: right->1, down->4, up->0 (clamped). Left (0 clamped)
            // coincides with up's clamp, so allowed set is {0, 1, 4}.
            assert!([0, 1, 4].contains(&next), "unexpected slip to {next}");
        }
    }

    #[test]
    fn slippery_distribution_is_roughly_uniform_thirds() {
        let mut env = FrozenLake::slippery_4x4();
        let mut r = rng();
        // From state 9 (interior-ish), intend RIGHT: slip set is
        // up (5), right (10), down (13).
        let mut counts = std::collections::HashMap::new();
        for _ in 0..3_000 {
            env.reset(&mut r);
            env.state = State(9);
            let next = env.step(Action(2), &mut r).next_state.0;
            *counts.entry(next).or_insert(0u32) += 1;
        }
        for s in [5u32, 10, 13] {
            let c = counts.get(&s).copied().unwrap_or(0);
            assert!((700..1_300).contains(&c), "state {s} count {c}");
        }
    }

    #[test]
    fn step_limit_terminates() {
        let mut env = FrozenLake::deterministic_4x4();
        let mut r = rng();
        env.reset(&mut r);
        // Bounce left against the wall forever; at step 100 it must end.
        let mut steps = 0;
        loop {
            let s = env.step(Action(0), &mut r);
            steps += 1;
            if s.done {
                break;
            }
            assert!(steps < 200, "no termination");
        }
        assert_eq!(steps, 100);
    }

    #[test]
    #[should_panic(expected = "finished episode")]
    fn stepping_after_done_panics() {
        let mut env = FrozenLake::deterministic_4x4();
        let mut r = rng();
        env.reset(&mut r);
        env.step(Action(1), &mut r); // down to 4
        env.step(Action(1), &mut r); // down to 8
        env.step(Action(1), &mut r); // down to 12: hole, done
        env.step(Action(1), &mut r);
    }

    #[test]
    #[should_panic(expected = "map must be square")]
    fn non_square_map_rejected() {
        FrozenLake::from_map(&["SF", "FFF"], false, 10);
    }

    #[test]
    fn policy_rendering_marks_tiles() {
        let env = FrozenLake::slippery_4x4();
        let text = env.render_policy(|_s| 2); // always →
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "→→→→");
        assert_eq!(lines[1], "→H→H");
        assert_eq!(lines[3], "H→→G");
    }
}
