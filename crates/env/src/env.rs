//! The tabular environment interface.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A state index in a discrete observation space.
///
/// Newtype over the raw index so states and actions cannot be confused at
/// compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct State(pub u32);

impl State {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u32> for State {
    fn from(v: u32) -> Self {
        State(v)
    }
}

/// An action index in a discrete action space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Action(pub u32);

impl Action {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl From<u32> for Action {
    fn from(v: u32) -> Self {
        Action(v)
    }
}

/// The outcome of one environment step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Step {
    /// State after the transition.
    pub next_state: State,
    /// Immediate reward.
    pub reward: f32,
    /// Whether the episode terminated (goal, hazard, or step limit).
    pub done: bool,
}

/// A discrete-state, discrete-action environment with Gym semantics.
///
/// Implementations are deterministic given the `rand::Rng` stream passed
/// to [`DiscreteEnv::reset`] and [`DiscreteEnv::step`], which makes
/// dataset collection reproducible.
pub trait DiscreteEnv {
    /// Environment name (for reports).
    fn name(&self) -> &str;

    /// Size of the observation space (`Discrete(n)`).
    fn num_states(&self) -> usize;

    /// Size of the action space (`Discrete(n)`).
    fn num_actions(&self) -> usize;

    /// Starts a new episode and returns the initial state.
    fn reset(&mut self, rng: &mut dyn rand::RngCore) -> State;

    /// Takes `action` in the current state.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before [`DiscreteEnv::reset`] or
    /// with an out-of-range action, both of which are programming errors.
    fn step(&mut self, action: Action, rng: &mut dyn rand::RngCore) -> Step;

    /// The current state (between steps).
    fn state(&self) -> State;
}

/// Uniformly samples one of `n` values from `rng`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub(crate) fn uniform_below(rng: &mut dyn rand::RngCore, n: u32) -> u32 {
    assert!(n > 0, "uniform_below requires n > 0");
    // Multiply-shift reduction over the full 32-bit draw; bias is
    // negligible for the tiny ranges used by tabular environments.
    ((rng.next_u32() as u64 * n as u64) >> 32) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn newtypes_round_trip() {
        let s = State::from(5u32);
        assert_eq!(s.index(), 5);
        assert_eq!(s.to_string(), "s5");
        let a = Action::from(2u32);
        assert_eq!(a.index(), 2);
        assert_eq!(a.to_string(), "a2");
        assert_ne!(format!("{s}"), format!("{a}"));
    }

    #[test]
    fn uniform_below_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(uniform_below(&mut rng, 6) < 6);
        }
    }

    #[test]
    fn uniform_below_covers_all_values() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[uniform_below(&mut rng, 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn uniform_below_zero_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        uniform_below(&mut rng, 0);
    }
}
