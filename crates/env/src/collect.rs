//! Offline dataset collection with a behaviour policy.
//!
//! SwiftRL trains offline: a behaviour policy (random action selection in
//! the paper) interacts with the environment *once* to log experiences,
//! and all training then happens from the logged dataset (§2.1, §3.2.1).

use crate::dataset::{ExperienceDataset, Transition};
use crate::env::{uniform_below, Action, DiscreteEnv, State};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Collects `n` transitions by running the uniform-random behaviour
/// policy, resetting the environment whenever an episode ends.
///
/// Deterministic in `seed`.
///
/// ```rust
/// use swiftrl_env::frozen_lake::FrozenLake;
/// use swiftrl_env::collect::collect_random;
///
/// let mut env = FrozenLake::slippery_4x4();
/// let d = collect_random(&mut env, 100, 1);
/// assert_eq!(d.len(), 100);
/// ```
pub fn collect_random<E: DiscreteEnv + ?Sized>(
    env: &mut E,
    n: usize,
    seed: u64,
) -> ExperienceDataset {
    let actions = env.num_actions() as u32;
    collect_with(env, n, seed, |rng, _s| Action(uniform_below(rng, actions)))
}

/// Collects `n` transitions using a custom behaviour policy
/// `policy(rng, state) -> action`.
///
/// Deterministic in `seed` for a deterministic policy.
pub fn collect_with<E, F>(env: &mut E, n: usize, seed: u64, mut policy: F) -> ExperienceDataset
where
    E: DiscreteEnv + ?Sized,
    F: FnMut(&mut dyn rand::RngCore, State) -> Action,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dataset = ExperienceDataset::new(env.name(), env.num_states(), env.num_actions());
    let mut state = env.reset(&mut rng);
    for _ in 0..n {
        let action = policy(&mut rng, state);
        let step = env.step(action, &mut rng);
        dataset.push(Transition {
            state,
            action,
            reward: step.reward,
            next_state: step.next_state,
            done: step.done,
        });
        state = if step.done {
            env.reset(&mut rng)
        } else {
            step.next_state
        };
    }
    dataset
}

/// Collects one dataset per agent for multi-agent training, with
/// decorrelated seeds (§3.2.1, multi-agent Q-learning: "each agent
/// maintains its own experience dataset").
pub fn collect_per_agent<E: DiscreteEnv + ?Sized>(
    env: &mut E,
    agents: usize,
    transitions_per_agent: usize,
    seed: u64,
) -> Vec<ExperienceDataset> {
    (0..agents)
        .map(|agent| {
            collect_random(
                env,
                transitions_per_agent,
                seed.wrapping_add(agent as u64).wrapping_mul(0x9E37_79B9),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frozen_lake::FrozenLake;
    use crate::taxi::Taxi;

    #[test]
    fn collection_is_deterministic_in_seed() {
        let mut env = FrozenLake::slippery_4x4();
        let a = collect_random(&mut env, 500, 9);
        let b = collect_random(&mut env, 500, 9);
        assert_eq!(a, b);
        let c = collect_random(&mut env, 500, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn transitions_chain_within_episodes() {
        let mut env = FrozenLake::slippery_4x4();
        let d = collect_random(&mut env, 1_000, 4);
        // Wherever an episode did not end, s' of record i equals s of
        // record i+1; the start state 0 follows terminal transitions.
        let ts = d.transitions();
        for w in ts.windows(2) {
            let cont = w[0].next_state == w[1].state;
            let restarted = w[1].state == State(0);
            assert!(cont || restarted, "broken chain: {w:?}");
        }
    }

    #[test]
    fn taxi_collection_covers_reward_values() {
        let mut env = Taxi::new();
        let d = collect_random(&mut env, 20_000, 11);
        let mut seen_minus1 = false;
        let mut seen_minus10 = false;
        for t in &d {
            if t.reward == -1.0 {
                seen_minus1 = true;
            }
            if t.reward == -10.0 {
                seen_minus10 = true;
            }
        }
        assert!(seen_minus1 && seen_minus10);
    }

    #[test]
    fn custom_policy_is_used() {
        let mut env = FrozenLake::deterministic_4x4();
        // Always move right.
        let d = collect_with(&mut env, 50, 1, |_rng, _s| Action(2));
        assert!(d.iter().all(|t| t.action == Action(2)));
    }

    #[test]
    fn per_agent_datasets_differ() {
        let mut env = FrozenLake::slippery_4x4();
        let ds = collect_per_agent(&mut env, 4, 100, 5);
        assert_eq!(ds.len(), 4);
        assert!(ds.iter().all(|d| d.len() == 100));
        assert_ne!(ds[0], ds[1]);
        assert_ne!(ds[1], ds[2]);
    }
}
