//! The Taxi environment (Gym `Taxi-v3`).
//!
//! A taxi navigates a 5×5 grid with interior walls, picks up a passenger
//! at one of four depots (R, G, Y, B) and drops them at a destination
//! depot. The paper uses this environment for its larger state space:
//! `Discrete(500)` = 25 taxi positions × 5 passenger locations (4 depots +
//! in-taxi) × 4 destinations, with `Discrete(6)` actions.
//!
//! Semantics match Gym: −1 per step, +20 for a successful drop-off, −10
//! for illegal pickup/drop-off; moving into a wall leaves the position
//! unchanged (and still costs −1); episodes are capped at 200 steps.
//!
//! Actions: 0 = south, 1 = north, 2 = east, 3 = west, 4 = pickup,
//! 5 = drop-off.

use crate::env::{uniform_below, Action, DiscreteEnv, State, Step};

/// Interior rows of the Gym map; `':'` between cells means passable,
/// `'|'` means wall.
const MAP: [&str; 5] = [
    "|R: | : :G|",
    "| : | : : |",
    "| : : : : |",
    "| | : | : |",
    "|Y| : |B: |",
];

/// Depot coordinates (row, col) for R, G, Y, B.
const DEPOTS: [(u32, u32); 4] = [(0, 0), (0, 4), (4, 0), (4, 3)];

const GRID: u32 = 5;
const MAX_STEPS: u32 = 200;

/// Passenger location: depot index 0–3, or 4 = in the taxi.
const IN_TAXI: u32 = 4;

/// The Taxi grid world.
///
/// ```rust
/// use swiftrl_env::taxi::Taxi;
/// use swiftrl_env::DiscreteEnv;
///
/// let env = Taxi::new();
/// assert_eq!(env.num_states(), 500); // Discrete(500), as in the paper
/// assert_eq!(env.num_actions(), 6);  // Discrete(6)
/// ```
#[derive(Debug, Clone, Default)]
pub struct Taxi {
    row: u32,
    col: u32,
    pass_loc: u32,
    dest: u32,
    steps: u32,
    done: bool,
    started: bool,
}

impl Taxi {
    /// Creates the environment (episode must be started with `reset`).
    pub fn new() -> Self {
        Self {
            done: true,
            ..Self::default()
        }
    }

    /// Encodes (taxi_row, taxi_col, pass_loc, dest) into a state index,
    /// exactly as Gym's `Taxi.encode`.
    pub fn encode(row: u32, col: u32, pass_loc: u32, dest: u32) -> State {
        debug_assert!(row < GRID && col < GRID && pass_loc <= IN_TAXI && dest < 4);
        State(((row * GRID + col) * 5 + pass_loc) * 4 + dest)
    }

    /// Decodes a state index into (taxi_row, taxi_col, pass_loc, dest).
    pub fn decode(state: State) -> (u32, u32, u32, u32) {
        let mut v = state.0;
        let dest = v % 4;
        v /= 4;
        let pass_loc = v % 5;
        v /= 5;
        let col = v % GRID;
        let row = v / GRID;
        (row, col, pass_loc, dest)
    }

    /// True if the taxi can move east from `(row, col)` (no wall).
    fn passable_east(row: u32, col: u32) -> bool {
        debug_assert!(col < GRID - 1);
        MAP[row as usize].as_bytes()[(2 * col + 2) as usize] == b':'
    }

    fn sync_state(&self) -> State {
        Self::encode(self.row, self.col, self.pass_loc, self.dest)
    }
}

impl DiscreteEnv for Taxi {
    fn name(&self) -> &str {
        "taxi"
    }

    fn num_states(&self) -> usize {
        500
    }

    fn num_actions(&self) -> usize {
        6
    }

    fn reset(&mut self, rng: &mut dyn rand::RngCore) -> State {
        self.row = uniform_below(rng, GRID);
        self.col = uniform_below(rng, GRID);
        self.pass_loc = uniform_below(rng, 4);
        // Destination differs from the passenger's start depot.
        loop {
            self.dest = uniform_below(rng, 4);
            if self.dest != self.pass_loc {
                break;
            }
        }
        self.steps = 0;
        self.done = false;
        self.started = true;
        self.sync_state()
    }

    fn step(&mut self, action: Action, _rng: &mut dyn rand::RngCore) -> Step {
        assert!(self.started && !self.done, "step called on finished episode");
        let mut reward = -1.0f32;
        let mut done = false;
        match action.0 {
            0 => self.row = (self.row + 1).min(GRID - 1), // south
            1 => self.row = self.row.saturating_sub(1),   // north
            2 => {
                // east
                if self.col < GRID - 1 && Self::passable_east(self.row, self.col) {
                    self.col += 1;
                }
            }
            3 => {
                // west
                if self.col > 0 && Self::passable_east(self.row, self.col - 1) {
                    self.col -= 1;
                }
            }
            4 => {
                // pickup
                let here = (self.row, self.col);
                if self.pass_loc < IN_TAXI && DEPOTS[self.pass_loc as usize] == here {
                    self.pass_loc = IN_TAXI;
                } else {
                    reward = -10.0;
                }
            }
            5 => {
                // drop-off
                let here = (self.row, self.col);
                if self.pass_loc == IN_TAXI && DEPOTS[self.dest as usize] == here {
                    reward = 20.0;
                    self.pass_loc = self.dest;
                    done = true;
                } else if self.pass_loc == IN_TAXI {
                    if let Some(depot) = DEPOTS.iter().position(|&d| d == here) {
                        // Legal drop at the wrong depot: passenger gets out.
                        self.pass_loc = depot as u32;
                    } else {
                        reward = -10.0;
                    }
                } else {
                    reward = -10.0;
                }
            }
            other => panic!("invalid Taxi action {other}"),
        }
        self.steps += 1;
        if self.steps >= MAX_STEPS {
            done = true;
        }
        self.done = done;
        Step {
            next_state: self.sync_state(),
            reward,
            done,
        }
    }

    fn state(&self) -> State {
        self.sync_state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn spaces_match_paper() {
        let env = Taxi::new();
        assert_eq!(env.num_states(), 500);
        assert_eq!(env.num_actions(), 6);
    }

    #[test]
    fn encode_decode_round_trip_all_states() {
        for row in 0..5 {
            for col in 0..5 {
                for pass in 0..5 {
                    for dest in 0..4 {
                        let s = Taxi::encode(row, col, pass, dest);
                        assert!(s.0 < 500);
                        assert_eq!(Taxi::decode(s), (row, col, pass, dest));
                    }
                }
            }
        }
    }

    #[test]
    fn reset_produces_valid_initial_states() {
        let mut env = Taxi::new();
        let mut r = rng();
        for _ in 0..1_000 {
            let s = env.reset(&mut r);
            let (_, _, pass, dest) = Taxi::decode(s);
            assert!(pass < 4, "passenger starts at a depot");
            assert_ne!(pass, dest, "destination differs from start depot");
        }
    }

    #[test]
    fn walls_block_east_west() {
        let mut env = Taxi::new();
        let mut r = rng();
        env.reset(&mut r);
        // Wall between (0,1) and (0,2) in the Gym map.
        env.row = 0;
        env.col = 1;
        let before = env.col;
        env.step(Action(2), &mut r); // east into wall
        assert_eq!(env.col, before);
        // Passage between (0,0) and (0,1).
        env.col = 0;
        env.done = false;
        env.step(Action(2), &mut r);
        assert_eq!(env.col, 1);
    }

    #[test]
    fn movement_encoding_is_gym_order() {
        let mut env = Taxi::new();
        let mut r = rng();
        env.reset(&mut r);
        env.row = 2;
        env.col = 2;
        env.step(Action(0), &mut r);
        assert_eq!((env.row, env.col), (3, 2), "0 = south");
        env.step(Action(1), &mut r);
        assert_eq!((env.row, env.col), (2, 2), "1 = north");
        env.step(Action(2), &mut r);
        assert_eq!((env.row, env.col), (2, 3), "2 = east");
        env.step(Action(3), &mut r);
        assert_eq!((env.row, env.col), (2, 2), "3 = west");
    }

    #[test]
    fn illegal_pickup_costs_ten() {
        let mut env = Taxi::new();
        let mut r = rng();
        env.reset(&mut r);
        env.row = 2;
        env.col = 2; // not a depot
        let s = env.step(Action(4), &mut r);
        assert_eq!(s.reward, -10.0);
    }

    #[test]
    fn full_trip_ends_with_plus_twenty() {
        let mut env = Taxi::new();
        let mut r = rng();
        env.reset(&mut r);
        // Put the taxi at the passenger's depot, pick up, teleport to the
        // destination depot (manipulating internals, which the test module
        // may), and drop off.
        let (pr, pc) = DEPOTS[env.pass_loc as usize];
        env.row = pr;
        env.col = pc;
        let s = env.step(Action(4), &mut r);
        assert_eq!(s.reward, -1.0);
        let (_, _, pass, _) = Taxi::decode(env.state());
        assert_eq!(pass, IN_TAXI);
        let (dr, dc) = DEPOTS[env.dest as usize];
        env.row = dr;
        env.col = dc;
        let s = env.step(Action(5), &mut r);
        assert_eq!(s.reward, 20.0);
        assert!(s.done);
    }

    #[test]
    fn wrong_depot_dropoff_releases_passenger() {
        let mut env = Taxi::new();
        let mut r = rng();
        env.reset(&mut r);
        let (pr, pc) = DEPOTS[env.pass_loc as usize];
        let origin = env.pass_loc;
        env.row = pr;
        env.col = pc;
        env.step(Action(4), &mut r); // pickup
        let s = env.step(Action(5), &mut r); // drop at the same (wrong) depot
        assert_eq!(s.reward, -1.0);
        assert!(!s.done);
        let (_, _, pass, _) = Taxi::decode(env.state());
        assert_eq!(pass, origin);
    }

    #[test]
    fn dropoff_without_passenger_costs_ten() {
        let mut env = Taxi::new();
        let mut r = rng();
        env.reset(&mut r);
        let s = env.step(Action(5), &mut r);
        assert_eq!(s.reward, -10.0);
    }

    #[test]
    fn episode_caps_at_200_steps() {
        let mut env = Taxi::new();
        let mut r = rng();
        env.reset(&mut r);
        let mut steps = 0;
        loop {
            let s = env.step(Action(1), &mut r); // bump north forever
            steps += 1;
            if s.done {
                break;
            }
            assert!(steps < 400);
        }
        assert_eq!(steps, 200);
    }

    #[test]
    fn states_stay_in_space_under_random_play() {
        let mut env = Taxi::new();
        let mut r = rng();
        for _ in 0..50 {
            env.reset(&mut r);
            loop {
                let a = Action(crate::env::uniform_below(&mut r, 6));
                let s = env.step(a, &mut r);
                assert!(s.next_state.0 < 500);
                assert!([-1.0, -10.0, 20.0].contains(&s.reward));
                if s.done {
                    break;
                }
            }
        }
    }
}
