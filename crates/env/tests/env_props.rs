//! Property tests: environment invariants under arbitrary play.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use swiftrl_env::cliff_walking::CliffWalking;
use swiftrl_env::frozen_lake::FrozenLake;
use swiftrl_env::taxi::Taxi;
use swiftrl_env::{Action, DiscreteEnv, State};

/// Plays `steps` random actions (resetting on done) and checks the
/// universal invariants: states stay in the space, rewards come from the
/// environment's finite reward set, and `state()` tracks the last
/// transition.
fn check_invariants<E: DiscreteEnv>(
    env: &mut E,
    seed: u64,
    steps: usize,
    rewards: &[f32],
) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = env.reset(&mut rng);
    prop_assert!(state.index() < env.num_states());
    for _ in 0..steps {
        let a = Action(rng.next_u32() % env.num_actions() as u32);
        let step = env.step(a, &mut rng);
        prop_assert!(step.next_state.index() < env.num_states());
        prop_assert!(
            rewards.contains(&step.reward),
            "unexpected reward {}",
            step.reward
        );
        prop_assert_eq!(env.state(), step.next_state);
        state = if step.done {
            env.reset(&mut rng)
        } else {
            step.next_state
        };
        prop_assert!(state.index() < env.num_states());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn frozen_lake_invariants(seed in any::<u64>()) {
        let mut env = FrozenLake::slippery_4x4();
        check_invariants(&mut env, seed, 300, &[0.0, 1.0])?;
    }

    #[test]
    fn frozen_lake_8x8_invariants(seed in any::<u64>()) {
        let mut env = FrozenLake::slippery_8x8();
        check_invariants(&mut env, seed, 300, &[0.0, 1.0])?;
    }

    #[test]
    fn taxi_invariants(seed in any::<u64>()) {
        let mut env = Taxi::new();
        check_invariants(&mut env, seed, 300, &[-1.0, -10.0, 20.0])?;
    }

    #[test]
    fn cliff_walking_invariants(seed in any::<u64>()) {
        let mut env = CliffWalking::new();
        check_invariants(&mut env, seed, 300, &[-1.0, -100.0])?;
    }

    #[test]
    fn taxi_encode_decode_bijection(row in 0u32..5, col in 0u32..5, pass in 0u32..5, dest in 0u32..4) {
        let s = Taxi::encode(row, col, pass, dest);
        prop_assert!(s.0 < 500);
        prop_assert_eq!(Taxi::decode(s), (row, col, pass, dest));
    }

    #[test]
    fn taxi_decode_is_total_over_the_space(idx in 0u32..500) {
        let (row, col, pass, dest) = Taxi::decode(State(idx));
        prop_assert!(row < 5 && col < 5 && pass < 5 && dest < 4);
        prop_assert_eq!(Taxi::encode(row, col, pass, dest), State(idx));
    }

    #[test]
    fn frozen_lake_episode_terminates(seed in any::<u64>()) {
        // Every FrozenLake episode ends within the step limit.
        let mut env = FrozenLake::slippery_4x4();
        let mut rng = StdRng::seed_from_u64(seed);
        env.reset(&mut rng);
        let mut steps = 0;
        loop {
            let a = Action(rng.next_u32() % 4);
            steps += 1;
            prop_assert!(steps <= 100, "episode exceeded the limit");
            if env.step(a, &mut rng).done {
                break;
            }
        }
    }

    #[test]
    fn terminal_flags_match_episode_boundaries(seed in any::<u64>(), n in 100usize..1_000) {
        // In a collected dataset, every `done` is followed by a start
        // state and every non-`done` chains to the next record.
        let mut env = FrozenLake::slippery_4x4();
        let d = swiftrl_env::collect::collect_random(&mut env, n, seed);
        let ts = d.transitions();
        for w in ts.windows(2) {
            if w[0].done {
                prop_assert_eq!(w[1].state, State(0), "restart after terminal");
            } else {
                prop_assert_eq!(w[0].next_state, w[1].state, "chain within episode");
            }
        }
    }
}
