//! Property tests for the integer runtime-library emulation.

use proptest::prelude::*;
use swiftrl_pim::cost::OpTally;
use swiftrl_pim::emul;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn umul_wide_exact(a in any::<u32>(), b in any::<u32>()) {
        let mut t = OpTally::new();
        prop_assert_eq!(emul::umul32_wide(a, b, &mut t), a as u64 * b as u64);
    }

    #[test]
    fn imul_wide_exact(a in any::<i32>(), b in any::<i32>()) {
        let mut t = OpTally::new();
        prop_assert_eq!(emul::imul32_wide(a, b, &mut t), a as i64 * b as i64);
    }

    #[test]
    fn imul_wraps_like_c(a in any::<i32>(), b in any::<i32>()) {
        let mut t = OpTally::new();
        prop_assert_eq!(emul::imul32(a, b, &mut t), a.wrapping_mul(b));
    }

    #[test]
    fn udiv_exact(n in any::<u32>(), d in 1u32..) {
        let mut t = OpTally::new();
        prop_assert_eq!(emul::udiv32(n, d, &mut t), (n / d, n % d));
    }

    #[test]
    fn idiv_exact(n in any::<i32>(), d in any::<i32>()) {
        prop_assume!(d != 0);
        prop_assume!(!(n == i32::MIN && d == -1)); // UB in C, overflow here
        let mut t = OpTally::new();
        prop_assert_eq!(emul::idiv32(n, d, &mut t), (n / d, n % d));
    }

    #[test]
    fn udiv64_exact(n in any::<u64>(), d in 1u32..) {
        let mut t = OpTally::new();
        prop_assert_eq!(emul::udiv64(n, d, &mut t), (n / d as u64, (n % d as u64) as u32));
    }

    #[test]
    fn idiv64_exact(n in any::<i64>(), d in any::<i32>()) {
        prop_assume!(d != 0);
        prop_assume!(n != i64::MIN);
        let mut t = OpTally::new();
        prop_assert_eq!(emul::idiv64(n, d, &mut t), n / d as i64);
    }

    #[test]
    fn lcg_below_uniform_bound(seed in any::<u32>(), bound in 1u32..) {
        let mut rng = emul::Lcg32::new(seed);
        for _ in 0..16 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    #[test]
    fn mul_cost_monotone_in_smaller_operand_bits(a in 1u32.., shift in 0u32..31) {
        // Cost of multiplying by a k-bit operand grows with k.
        let small = a >> shift.max(16);
        prop_assume!(small > 0);
        let mut t_small = OpTally::new();
        emul::umul32_wide(small, u32::MAX, &mut t_small);
        let mut t_big = OpTally::new();
        emul::umul32_wide(u32::MAX, u32::MAX, &mut t_big);
        prop_assert!(t_small.count() <= t_big.count());
    }
}
