//! Property tests: the emulated IEEE-754 binary32 arithmetic must agree
//! bit-for-bit with the host FPU (which implements round-to-nearest-even)
//! over the full bit-pattern space, including subnormals, infinities and
//! NaNs (NaNs compare as "both NaN").

use proptest::prelude::*;
use swiftrl_pim::cost::OpTally;
use swiftrl_pim::softfloat as sf;

/// Any f32 bit pattern, biased toward special values.
fn any_bits() -> impl Strategy<Value = u32> {
    prop_oneof![
        8 => any::<u32>(),
        1 => prop_oneof![
            Just(0u32),                    // +0
            Just(0x8000_0000),             // -0
            Just(0x7F80_0000),             // +inf
            Just(0xFF80_0000),             // -inf
            Just(0x7FC0_0000),             // qNaN
            Just(0x7F80_0001),             // sNaN
            Just(0x0000_0001),             // min subnormal
            Just(0x007F_FFFF),             // max subnormal
            Just(0x0080_0000),             // min normal
            Just(0x7F7F_FFFF),             // max finite
            Just(0x3F80_0000),             // 1.0
        ],
        // Exponents close together stress the add alignment/cancellation
        // paths; construct pairs elsewhere.
        2 => (0u32..255).prop_flat_map(|e| {
            (any::<u32>(), any::<bool>()).prop_map(move |(frac, sign)| {
                (u32::from(sign) << 31) | (e << 23) | (frac & 0x007F_FFFF)
            })
        }),
    ]
}

fn agree(ours: u32, host: f32) -> bool {
    if host.is_nan() {
        sf::is_nan(ours)
    } else {
        ours == host.to_bits()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn add_matches_host(a in any_bits(), b in any_bits()) {
        let mut t = OpTally::new();
        let ours = sf::f32_add(a, b, &mut t);
        let host = f32::from_bits(a) + f32::from_bits(b);
        prop_assert!(agree(ours, host),
            "add({a:#010x}, {b:#010x}) = {ours:#010x}, host {:#010x}", host.to_bits());
    }

    #[test]
    fn sub_matches_host(a in any_bits(), b in any_bits()) {
        let mut t = OpTally::new();
        let ours = sf::f32_sub(a, b, &mut t);
        let host = f32::from_bits(a) - f32::from_bits(b);
        prop_assert!(agree(ours, host),
            "sub({a:#010x}, {b:#010x}) = {ours:#010x}, host {:#010x}", host.to_bits());
    }

    #[test]
    fn mul_matches_host(a in any_bits(), b in any_bits()) {
        let mut t = OpTally::new();
        let ours = sf::f32_mul(a, b, &mut t);
        let host = f32::from_bits(a) * f32::from_bits(b);
        prop_assert!(agree(ours, host),
            "mul({a:#010x}, {b:#010x}) = {ours:#010x}, host {:#010x}", host.to_bits());
    }

    #[test]
    fn div_matches_host(a in any_bits(), b in any_bits()) {
        let mut t = OpTally::new();
        let ours = sf::f32_div(a, b, &mut t);
        let host = f32::from_bits(a) / f32::from_bits(b);
        prop_assert!(agree(ours, host),
            "div({a:#010x}, {b:#010x}) = {ours:#010x}, host {:#010x}", host.to_bits());
    }

    #[test]
    fn cmp_matches_host(a in any_bits(), b in any_bits()) {
        let mut t = OpTally::new();
        let ours = sf::f32_cmp(a, b, &mut t);
        let host = f32::from_bits(a).partial_cmp(&f32::from_bits(b));
        prop_assert_eq!(ours, host);
    }

    #[test]
    fn add_near_exponents_cancellation(e in 1u32..254, da in 0u32..2, fa in 0u32..(1<<23), fb in 0u32..(1<<23), sb in any::<bool>()) {
        // a positive, b of either sign, exponents within 1: the hardest
        // rounding/cancellation corner of addition.
        let a = (e << 23) | fa;
        let b = (u32::from(sb) << 31) | ((e + da).min(254) << 23) | fb;
        let mut t = OpTally::new();
        let ours = sf::f32_add(a, b, &mut t);
        let host = f32::from_bits(a) + f32::from_bits(b);
        prop_assert!(agree(ours, host),
            "add({a:#010x}, {b:#010x}) = {ours:#010x}, host {:#010x}", host.to_bits());
    }

    #[test]
    fn subnormal_products(fa in 1u32..(1<<23), fb in 1u32..(1<<23), ea in 0u32..40, eb in 0u32..40) {
        // Products that straddle the subnormal boundary.
        let a = (ea << 23) | fa;
        let b = (eb << 23) | fb;
        let mut t = OpTally::new();
        let ours = sf::f32_mul(a, b, &mut t);
        let host = f32::from_bits(a) * f32::from_bits(b);
        prop_assert!(agree(ours, host),
            "mul({a:#010x}, {b:#010x}) = {ours:#010x}, host {:#010x}", host.to_bits());
    }

    #[test]
    fn i32_to_f32_matches_host(v in any::<i32>()) {
        let mut t = OpTally::new();
        let ours = sf::i32_to_f32(v, &mut t);
        prop_assert_eq!(ours, (v as f32).to_bits());
    }

    #[test]
    fn f32_to_i32_matches_host(bits in any_bits()) {
        let mut t = OpTally::new();
        let ours = sf::f32_to_i32(bits, &mut t);
        // Rust's `as` conversion saturates and maps NaN to 0 — the same
        // semantics our emulation implements.
        let host = f32::from_bits(bits) as i32;
        prop_assert_eq!(ours, host, "conv({:#010x})", bits);
    }

    #[test]
    fn max_matches_ieee_maxnum(a in any_bits(), b in any_bits()) {
        let mut t = OpTally::new();
        let ours = sf::f32_max(a, b, &mut t);
        let (fa, fb) = (f32::from_bits(a), f32::from_bits(b));
        if fa.is_nan() && fb.is_nan() {
            prop_assert!(sf::is_nan(ours));
        } else if fa.is_nan() {
            prop_assert_eq!(ours, b);
        } else if fb.is_nan() {
            prop_assert_eq!(ours, a);
        } else if fa == fb {
            // Equal values (including ±0): the emulation prefers the
            // positive-signed operand; the host's sign choice here is
            // unspecified, so check value equality and sign preference.
            prop_assert_eq!(f32::from_bits(ours), fa);
            if a != b {
                // One +0 and one -0: maxNum prefers +0.
                prop_assert_eq!(ours & 0x8000_0000, 0);
            }
        } else {
            prop_assert_eq!(ours, fa.max(fb).to_bits());
        }
    }

    #[test]
    fn emulation_cost_is_positive_and_bounded(a in any_bits(), b in any_bits()) {
        // Sanity on the tally: every op does real work and terminates in a
        // bounded number of primitive steps.
        let mut t = OpTally::new();
        sf::f32_add(a, b, &mut t);
        prop_assert!(t.count() >= 10 && t.count() < 2_000);
        let mut t = OpTally::new();
        sf::f32_mul(a, b, &mut t);
        prop_assert!(t.count() >= 10 && t.count() < 2_000);
        let mut t = OpTally::new();
        sf::f32_div(a, b, &mut t);
        prop_assert!(t.count() >= 10 && t.count() < 2_000);
    }
}
