//! Cycle accounting for a simulated DPU tasklet.
//!
//! Every intrinsic on [`crate::kernel::DpuContext`] reports the number of
//! *instruction slots* it occupies; the [`CycleCounter`] converts slots to
//! cycles using the tasklet issue interval (11 cycles for a lone tasklet on
//! UPMEM) and tracks DMA cycles separately, since the DMA engine stalls the
//! issuing tasklet for the full transfer duration.
//!
//! Charging does not have to happen one intrinsic at a time: the batched
//! execution tier (DESIGN.md §14) accumulates loop-trip counts for a whole
//! fused sweep and charges the closed-form aggregate — the same slot and
//! DMA totals, delivered in bulk — into the same counters, which is why
//! per-launch cycle statistics cannot distinguish the tiers.

use serde::{Deserialize, Serialize};

/// Classes of charged work, used for per-kernel breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Native single-slot ALU instruction (add/sub/logic/shift/compare/move).
    Alu,
    /// WRAM load or store.
    WramAccess,
    /// Control-flow instruction (branch/jump/call/return).
    Control,
    /// Slot executed inside the 32-bit integer multiply/divide emulation.
    IntEmul,
    /// Slot executed inside the soft-float runtime library.
    FloatEmul,
    /// MRAM↔WRAM DMA (charged in cycles, not slots).
    Dma,
}

/// Per-tasklet instruction/cycle accounting.
///
/// `slots` are native instruction dispatch slots; the conversion to cycles
/// multiplies by the issue interval of the tasklet configuration. DMA
/// cycles are added verbatim.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleCounter {
    /// Native instruction slots charged, by class.
    pub alu_slots: u64,
    /// WRAM access slots charged.
    pub wram_slots: u64,
    /// Control-flow slots charged.
    pub control_slots: u64,
    /// Slots executed by the integer multiply/divide emulation routines.
    pub int_emul_slots: u64,
    /// Slots executed by the soft-float runtime library.
    pub float_emul_slots: u64,
    /// Cycles spent in MRAM↔WRAM DMA transfers.
    pub dma_cycles: u64,
    /// Bytes moved over the MRAM↔WRAM DMA engine.
    pub dma_bytes: u64,
}

impl CycleCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `n` instruction slots of the given class.
    #[inline]
    pub fn charge(&mut self, class: OpClass, n: u64) {
        match class {
            OpClass::Alu => self.alu_slots += n,
            OpClass::WramAccess => self.wram_slots += n,
            OpClass::Control => self.control_slots += n,
            OpClass::IntEmul => self.int_emul_slots += n,
            OpClass::FloatEmul => self.float_emul_slots += n,
            OpClass::Dma => self.dma_cycles += n,
        }
    }

    /// Charges a DMA transfer of `bytes` costing `cycles`.
    #[inline]
    pub fn charge_dma(&mut self, bytes: u64, cycles: u64) {
        self.dma_bytes += bytes;
        self.dma_cycles += cycles;
    }

    /// Total instruction slots charged (everything except DMA).
    pub fn total_slots(&self) -> u64 {
        self.alu_slots
            + self.wram_slots
            + self.control_slots
            + self.int_emul_slots
            + self.float_emul_slots
    }

    /// Converts the counter to cycles given the per-tasklet issue interval.
    ///
    /// With a single tasklet the interval is 11: one instruction slot
    /// occupies 11 pipeline cycles from the tasklet's point of view.
    pub fn cycles(&self, issue_interval: u64) -> u64 {
        self.total_slots() * issue_interval + self.dma_cycles
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &CycleCounter) {
        self.alu_slots += other.alu_slots;
        self.wram_slots += other.wram_slots;
        self.control_slots += other.control_slots;
        self.int_emul_slots += other.int_emul_slots;
        self.float_emul_slots += other.float_emul_slots;
        self.dma_cycles += other.dma_cycles;
        self.dma_bytes += other.dma_bytes;
    }

    /// Fraction of instruction slots spent in arithmetic emulation
    /// (integer + float runtime-library routines).
    pub fn emulation_fraction(&self) -> f64 {
        let total = self.total_slots();
        if total == 0 {
            return 0.0;
        }
        (self.int_emul_slots + self.float_emul_slots) as f64 / total as f64
    }
}

/// A lightweight running tally used by the emulation libraries, which do
/// not have access to the full context. Counts primitive integer
/// operations; the caller transfers the tally into a [`CycleCounter`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpTally(pub u64);

impl OpTally {
    /// Creates a zeroed tally.
    #[inline]
    pub fn new() -> Self {
        Self(0)
    }

    /// Adds `n` primitive operations.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Number of operations tallied.
    #[inline]
    pub fn count(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_routes_to_class() {
        let mut c = CycleCounter::new();
        c.charge(OpClass::Alu, 3);
        c.charge(OpClass::WramAccess, 2);
        c.charge(OpClass::Control, 1);
        c.charge(OpClass::IntEmul, 10);
        c.charge(OpClass::FloatEmul, 20);
        assert_eq!(c.alu_slots, 3);
        assert_eq!(c.wram_slots, 2);
        assert_eq!(c.control_slots, 1);
        assert_eq!(c.int_emul_slots, 10);
        assert_eq!(c.float_emul_slots, 20);
        assert_eq!(c.total_slots(), 36);
    }

    #[test]
    fn cycles_scale_with_issue_interval() {
        let mut c = CycleCounter::new();
        c.charge(OpClass::Alu, 10);
        c.charge_dma(64, 100);
        assert_eq!(c.cycles(11), 10 * 11 + 100);
        assert_eq!(c.cycles(24), 10 * 24 + 100);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CycleCounter::new();
        a.charge(OpClass::Alu, 5);
        let mut b = CycleCounter::new();
        b.charge(OpClass::FloatEmul, 7);
        b.charge_dma(8, 81);
        a.merge(&b);
        assert_eq!(a.alu_slots, 5);
        assert_eq!(a.float_emul_slots, 7);
        assert_eq!(a.dma_bytes, 8);
        assert_eq!(a.dma_cycles, 81);
    }

    #[test]
    fn emulation_fraction_bounds() {
        let mut c = CycleCounter::new();
        assert_eq!(c.emulation_fraction(), 0.0);
        c.charge(OpClass::Alu, 1);
        c.charge(OpClass::FloatEmul, 3);
        assert!((c.emulation_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn tally_counts() {
        let mut t = OpTally::new();
        t.add(4);
        t.add(1);
        assert_eq!(t.count(), 5);
    }
}
