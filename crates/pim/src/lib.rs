//! # swiftrl-pim
//!
//! A functional, cycle-approximate simulator of an UPMEM-class
//! Processing-In-Memory (PIM) system, built as the hardware substrate for
//! the SwiftRL reproduction (Gogineni et al., ISPASS 2024).
//!
//! The real SwiftRL evaluation runs on a 2,524-DPU UPMEM server. This crate
//! reproduces the *performance-relevant* behaviour of that platform in
//! software:
//!
//! * **DPU cores** ([`dpu::Dpu`]) — in-order, fine-grained multithreaded
//!   cores attached to DRAM banks. A single tasklet issues at most one
//!   instruction every [`config::CostModel::issue_period`] cycles, exactly
//!   the property that makes single-tasklet kernels (as used by SwiftRL)
//!   latency-bound.
//! * **Memory hierarchy** ([`memory`]) — a 64-MB MRAM bank and a 64-KB WRAM
//!   scratchpad per DPU, connected by an explicit DMA engine with a
//!   latency + per-byte cost model.
//! * **Runtime-library arithmetic emulation** ([`softfloat`], [`emul`]) —
//!   UPMEM DPUs only support native 32-bit integer add/sub and 8-bit
//!   multiply steps; 32-bit multiplies and *all* floating-point operations
//!   are emulated by the runtime library. This crate runs a bit-accurate
//!   IEEE-754 binary32 soft-float library and a shift-add integer multiply
//!   whose *executed* primitive-operation counts are charged as DPU cycles,
//!   reproducing both the results and the data-dependent cost of emulation.
//! * **Host interface** ([`host`], [`xfer`]) — CPU→PIM scatter/broadcast,
//!   PIM→CPU gather, and kernel launch, with a rank-parallel bandwidth
//!   model for transfer time. Inter-DPU communication is only possible
//!   through the host, as on the real platform.
//!
//! Kernels are written against the intrinsics API of
//! [`kernel::DpuContext`]: arithmetic goes through charging methods
//! (`add32`, `mul32`, `fadd`, `fmul`, ...), data moves via explicit
//! MRAM↔WRAM DMA, and every charged instruction advances the DPU cycle
//! counter. Execution time of a launch is `max_over_dpus(cycles) / f_clk`.
//!
//! ## Example
//!
//! ```rust
//! use swiftrl_pim::config::PimConfig;
//! use swiftrl_pim::host::PimSystem;
//! use swiftrl_pim::kernel::{DpuContext, Kernel, KernelError};
//!
//! /// Sums the u32 words previously copied into MRAM and writes the sum
//! /// back at offset 0.
//! struct SumKernel {
//!     words: usize,
//! }
//!
//! impl Kernel for SumKernel {
//!     fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
//!         let mut buf = vec![0u8; 4 * self.words];
//!         ctx.mram_read(0, &mut buf)?;
//!         let mut sum = 0u32;
//!         for w in buf.chunks_exact(4) {
//!             let v = u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
//!             sum = ctx.add32(sum, v);
//!         }
//!         // MRAM DMA is 8-byte granular: widen the result word.
//!         ctx.mram_write(0, &(sum as u64).to_le_bytes())?;
//!         Ok(())
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut system = PimSystem::new(PimConfig::default());
//! let mut set = system.alloc(4)?;
//! for dpu in 0..4 {
//!     let data: Vec<u8> = (0..16u32).flat_map(|v| v.to_le_bytes()).collect();
//!     set.copy_to(dpu, 0, &data)?;
//! }
//! set.launch(&SumKernel { words: 16 })?;
//! let out = set.copy_from(0, 0, 8)?;
//! assert_eq!(u64::from_le_bytes(out.try_into().unwrap()), 120);
//! assert!(set.stats().last_kernel_seconds > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod batch;
pub mod config;
pub mod cost;
pub mod dpu;
pub mod emul;
pub mod engine;
pub mod fastpath;
pub mod faults;
pub mod host;
pub mod kernel;
pub mod memory;
pub mod report;
pub mod sanitize;
pub mod softfloat;
pub mod stats;
pub mod xfer;

pub use arena::{FleetArena, MemoryStats};
pub use batch::{BatchContext, BatchKernel};
pub use config::{ArithTier, CostModel, ExecTier, PimConfig};
pub use engine::ExecutionEngine;
pub use faults::{FaultPlan, MramRegion};
pub use host::{DpuSet, PimError, PimSystem};
pub use kernel::{DpuContext, Kernel, KernelError};
pub use report::SanitizerReport;
pub use sanitize::{FindingKind, SanitizeLevel, SanitizerFinding};
pub use stats::{LaunchStats, SystemStats};
