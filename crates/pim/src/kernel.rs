//! Kernel programming interface: the DPU intrinsics API.
//!
//! A [`Kernel`] is the simulator's equivalent of a UPMEM DPU program. Its
//! `run` method executes once per tasklet and receives a [`DpuContext`],
//! through which *all* charged work must flow:
//!
//! * arithmetic intrinsics (`add32`, `mul32`, `fadd`, ...) compute exact
//!   results and charge instruction slots per the platform
//!   cost model ([`crate::config::CostModel`]);
//! * WRAM loads/stores go through `wram_read_*`/`wram_write_*`;
//! * MRAM is only reachable via explicit DMA (`mram_read`, `mram_write`,
//!   `mram_to_wram`, `wram_to_mram`), like on the real hardware.
//!
//! Plain Rust control flow in kernel code is free; charge it explicitly
//! with [`DpuContext::charge_control`] where a real program would execute
//! branches. The RL kernels in `swiftrl-core` follow this discipline.

use crate::config::{ArithTier, CostModel, EmulationCharging};
use crate::cost::{CycleCounter, OpClass, OpTally};
use crate::emul;
use crate::fastpath;
use crate::memory::{DpuMemory, MemoryError, MemoryKind};
use crate::sanitize::DpuSanitizer;
use crate::softfloat;
use std::fmt;

/// An emulated IEEE-754 binary32 value as raw bits.
///
/// Kernels manipulate floats exclusively through this newtype, which makes
/// it impossible to silently use host floating point inside a kernel.
///
/// ```rust
/// use swiftrl_pim::kernel::F32;
///
/// let x = F32::from_f32(1.5);
/// assert_eq!(x.to_f32(), 1.5);
/// assert_eq!(F32::ZERO.to_f32(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct F32(pub u32);

impl F32 {
    /// Positive zero.
    pub const ZERO: F32 = F32(0);
    /// One.
    pub const ONE: F32 = F32(0x3F80_0000);

    /// Converts from a host float (host-side boundary operation; free).
    #[inline]
    pub fn from_f32(v: f32) -> Self {
        F32(v.to_bits())
    }

    /// Converts to a host float (host-side boundary operation; free).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits(self.0)
    }

    /// Raw bit pattern.
    #[inline]
    pub fn bits(self) -> u32 {
        self.0
    }

    /// True if the value is a NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        softfloat::is_nan(self.0)
    }
}

impl fmt::Display for F32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Error returned by kernel execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// A memory access failed (out of range).
    Memory(MemoryError),
    /// Kernel-specific failure with a message.
    Fault(String),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Memory(e) => write!(f, "memory fault: {e}"),
            KernelError::Fault(msg) => write!(f, "kernel fault: {msg}"),
        }
    }
}

impl std::error::Error for KernelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KernelError::Memory(e) => Some(e),
            KernelError::Fault(_) => None,
        }
    }
}

impl From<MemoryError> for KernelError {
    fn from(e: MemoryError) -> Self {
        KernelError::Memory(e)
    }
}

/// A DPU program.
///
/// `run` is invoked once per launched tasklet. SwiftRL kernels use a
/// single tasklet per DPU (the paper's configuration), the default of
/// [`Kernel::tasklets`].
pub trait Kernel: Sync {
    /// Number of tasklets this kernel launches per DPU.
    fn tasklets(&self) -> usize {
        1
    }

    /// Executes the kernel body for one tasklet.
    ///
    /// # Errors
    ///
    /// Returns a [`KernelError`] on memory faults or kernel-defined
    /// failures; the launch reports it to the host.
    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError>;

    /// The fused batched form of this kernel, if it has one and the
    /// current configuration makes it eligible.
    ///
    /// Under [`ExecTier::Batched`](crate::config::ExecTier::Batched) the
    /// DPU executor asks for this before falling back to the
    /// per-intrinsic `run` loop; `None` (the default) means the kernel
    /// always executes per-intrinsic, which is correct for every kernel.
    fn batch(&self) -> Option<&dyn crate::batch::BatchKernel> {
        None
    }
}

/// Pre-resolved arithmetic dispatch mode: the cross product of
/// [`ArithTier`] and [`EmulationCharging`] that matters per op, computed
/// once per context so the per-intrinsic hot path is one enum match.
#[derive(Debug, Clone, Copy)]
enum ArithMode {
    /// Instrumented reference loops; charging per [`EmulationCharging`].
    Reference,
    /// Fast tier under calibrated charging: native result, constant
    /// charge, no tally computed at all.
    FastCalibrated,
    /// Fast tier under tally charging: native result, closed-form tally.
    FastTally,
}

/// Execution context handed to a kernel tasklet: the gateway to the DPU's
/// memories, arithmetic units, and cycle accounting.
#[derive(Debug)]
pub struct DpuContext<'a> {
    dpu_id: usize,
    tasklet_id: usize,
    mem: &'a mut DpuMemory,
    cost: &'a CostModel,
    arith: ArithMode,
    counter: CycleCounter,
    /// Runtime sanitizer hook; `None` when sanitization is off. Strictly
    /// observation-only — it never alters memory contents or charges.
    san: Option<&'a mut DpuSanitizer>,
}

impl<'a> DpuContext<'a> {
    /// Creates a context (used by the DPU executor).
    pub(crate) fn new(
        dpu_id: usize,
        tasklet_id: usize,
        mem: &'a mut DpuMemory,
        cost: &'a CostModel,
    ) -> Self {
        // Under the batched tier, any launch that does not (or cannot)
        // take the fused path — ineligible kernel, sanitizer on, fault
        // plan touching the launch, or a declined batch — executes
        // per-intrinsic on the fast modes, which are proven bit- and
        // cycle-identical to the reference.
        let arith = match (cost.arith_tier, cost.emulation_charging) {
            (ArithTier::Reference, _) => ArithMode::Reference,
            (ArithTier::Fast | ArithTier::Batched, EmulationCharging::Calibrated) => {
                ArithMode::FastCalibrated
            }
            (ArithTier::Fast | ArithTier::Batched, EmulationCharging::Tally) => {
                ArithMode::FastTally
            }
        };
        Self {
            dpu_id,
            tasklet_id,
            mem,
            cost,
            arith,
            counter: CycleCounter::new(),
            san: None,
        }
    }

    /// Attaches a runtime sanitizer to this context (builder-style; used by
    /// the DPU executor when the configured [`crate::sanitize::SanitizeLevel`]
    /// enables checking).
    pub(crate) fn with_sanitizer(mut self, san: &'a mut DpuSanitizer) -> Self {
        self.san = Some(san);
        self
    }

    /// Index of this DPU within its set.
    pub fn dpu_id(&self) -> usize {
        self.dpu_id
    }

    /// Index of this tasklet within the DPU.
    pub fn tasklet_id(&self) -> usize {
        self.tasklet_id
    }

    /// The platform cost model (read-only).
    pub fn cost_model(&self) -> &CostModel {
        self.cost
    }

    /// Cycle counter accumulated so far by this tasklet.
    pub fn counter(&self) -> &CycleCounter {
        &self.counter
    }

    pub(crate) fn into_counter(self) -> CycleCounter {
        self.counter
    }

    // ---- explicit charging -------------------------------------------------

    /// Charges `n` native ALU instruction slots.
    #[inline]
    pub fn charge_alu(&mut self, n: u64) {
        self.counter.charge(OpClass::Alu, n);
    }

    /// Charges `n` control-flow instruction slots (branches, calls).
    #[inline]
    pub fn charge_control(&mut self, n: u64) {
        self.counter.charge(OpClass::Control, n);
    }

    #[inline]
    fn charge_int_emul(&mut self, calibrated: u64, tally: &OpTally) {
        let n = match self.cost.emulation_charging {
            EmulationCharging::Calibrated => calibrated,
            EmulationCharging::Tally => tally.count(),
        };
        self.counter.charge(OpClass::IntEmul, n);
    }

    #[inline]
    fn charge_float_emul(&mut self, calibrated: u64, tally: &OpTally) {
        let n = match self.cost.emulation_charging {
            EmulationCharging::Calibrated => calibrated,
            EmulationCharging::Tally => tally.count() + self.cost.ops.fp_call_overhead_slots,
        };
        self.counter.charge(OpClass::FloatEmul, n);
    }

    /// Fast-tier integer charge: the slot count is already fully resolved
    /// (calibrated constant or closed-form tally).
    #[inline]
    fn charge_int_slots(&mut self, n: u64) {
        self.counter.charge(OpClass::IntEmul, n);
    }

    /// Fast-tier float charge; callers in tally mode have already added
    /// [`crate::config::OpCosts::fp_call_overhead_slots`].
    #[inline]
    fn charge_float_slots(&mut self, n: u64) {
        self.counter.charge(OpClass::FloatEmul, n);
    }

    // ---- native integer ops ------------------------------------------------

    /// Native wrapping 32-bit add (1 slot).
    #[inline]
    pub fn add32(&mut self, a: u32, b: u32) -> u32 {
        self.charge_alu(1);
        a.wrapping_add(b)
    }

    /// Native wrapping 32-bit subtract (1 slot).
    #[inline]
    pub fn sub32(&mut self, a: u32, b: u32) -> u32 {
        self.charge_alu(1);
        a.wrapping_sub(b)
    }

    /// Native signed wrapping add (1 slot).
    #[inline]
    pub fn iadd(&mut self, a: i32, b: i32) -> i32 {
        self.charge_alu(1);
        a.wrapping_add(b)
    }

    /// Native signed wrapping subtract (1 slot).
    #[inline]
    pub fn isub(&mut self, a: i32, b: i32) -> i32 {
        self.charge_alu(1);
        a.wrapping_sub(b)
    }

    /// Native shift left (1 slot).
    #[inline]
    pub fn shl(&mut self, a: u32, n: u32) -> u32 {
        self.charge_alu(1);
        a.wrapping_shl(n)
    }

    /// Native logical shift right (1 slot).
    #[inline]
    pub fn shr(&mut self, a: u32, n: u32) -> u32 {
        self.charge_alu(1);
        a.wrapping_shr(n)
    }

    /// Native signed compare `a < b` (1 slot).
    #[inline]
    pub fn ilt(&mut self, a: i32, b: i32) -> bool {
        self.charge_alu(1);
        a < b
    }

    /// Native signed compare `a > b` (1 slot).
    #[inline]
    pub fn igt(&mut self, a: i32, b: i32) -> bool {
        self.charge_alu(1);
        a > b
    }

    // ---- emulated integer ops ----------------------------------------------

    /// Emulated signed 32×32→32 multiply (runtime-library shift-and-add).
    #[inline]
    pub fn mul32(&mut self, a: i32, b: i32) -> i32 {
        match self.arith {
            ArithMode::Reference => {
                let mut t = OpTally::new();
                let r = emul::imul32(a, b, &mut t);
                self.charge_int_emul(self.cost.ops.mul32_slots, &t);
                r
            }
            ArithMode::FastCalibrated => {
                self.charge_int_slots(self.cost.ops.mul32_slots);
                fastpath::imul32(a, b)
            }
            ArithMode::FastTally => {
                self.charge_int_slots(fastpath::imul32_tally(a, b));
                fastpath::imul32(a, b)
            }
        }
    }

    /// Emulated signed 32×32→64 multiply.
    #[inline]
    pub fn mul_wide(&mut self, a: i32, b: i32) -> i64 {
        match self.arith {
            ArithMode::Reference => {
                let mut t = OpTally::new();
                let r = emul::imul32_wide(a, b, &mut t);
                self.charge_int_emul(self.cost.ops.mul64_slots, &t);
                r
            }
            ArithMode::FastCalibrated => {
                self.charge_int_slots(self.cost.ops.mul64_slots);
                fastpath::imul32_wide(a, b)
            }
            ArithMode::FastTally => {
                self.charge_int_slots(fastpath::imul32_wide_tally(a, b));
                fastpath::imul32_wide(a, b)
            }
        }
    }

    /// Emulated signed 32-bit divide (truncating).
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`, mirroring the hardware trap.
    #[inline]
    pub fn div32(&mut self, n: i32, d: i32) -> i32 {
        match self.arith {
            ArithMode::Reference => {
                let mut t = OpTally::new();
                let (q, _) = emul::idiv32(n, d, &mut t);
                self.charge_int_emul(self.cost.ops.div32_slots, &t);
                q
            }
            ArithMode::FastCalibrated => {
                let (q, _) = fastpath::idiv32(n, d);
                self.charge_int_slots(self.cost.ops.div32_slots);
                q
            }
            ArithMode::FastTally => {
                let (q, _) = fastpath::idiv32(n, d);
                self.charge_int_slots(fastpath::idiv32_tally(n, d));
                q
            }
        }
    }

    /// Emulated signed 64-by-32 divide (truncating), used to descale wide
    /// fixed-point products.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[inline]
    pub fn div_wide(&mut self, n: i64, d: i32) -> i64 {
        match self.arith {
            ArithMode::Reference => {
                let mut t = OpTally::new();
                let q = emul::idiv64(n, d, &mut t);
                self.charge_int_emul(self.cost.ops.div64_slots, &t);
                q
            }
            ArithMode::FastCalibrated => {
                let q = fastpath::idiv64(n, d);
                self.charge_int_slots(self.cost.ops.div64_slots);
                q
            }
            ArithMode::FastTally => {
                let q = fastpath::idiv64(n, d);
                self.charge_int_slots(fastpath::idiv64_tally(n, d));
                q
            }
        }
    }

    // ---- emulated floating point -------------------------------------------

    /// Emulated FP32 add.
    #[inline]
    pub fn fadd(&mut self, a: F32, b: F32) -> F32 {
        match self.arith {
            ArithMode::Reference => {
                let mut t = OpTally::new();
                let r = softfloat::f32_add(a.0, b.0, &mut t);
                self.charge_float_emul(self.cost.ops.fadd_slots, &t);
                F32(r)
            }
            ArithMode::FastCalibrated => {
                self.charge_float_slots(self.cost.ops.fadd_slots);
                F32(fastpath::f32_add(a.0, b.0))
            }
            ArithMode::FastTally => {
                let slots =
                    fastpath::f32_add_tally(a.0, b.0) + self.cost.ops.fp_call_overhead_slots;
                self.charge_float_slots(slots);
                F32(fastpath::f32_add(a.0, b.0))
            }
        }
    }

    /// Emulated FP32 subtract.
    #[inline]
    pub fn fsub(&mut self, a: F32, b: F32) -> F32 {
        match self.arith {
            ArithMode::Reference => {
                let mut t = OpTally::new();
                let r = softfloat::f32_sub(a.0, b.0, &mut t);
                self.charge_float_emul(self.cost.ops.fadd_slots, &t);
                F32(r)
            }
            ArithMode::FastCalibrated => {
                self.charge_float_slots(self.cost.ops.fadd_slots);
                F32(fastpath::f32_sub(a.0, b.0))
            }
            ArithMode::FastTally => {
                let slots =
                    fastpath::f32_sub_tally(a.0, b.0) + self.cost.ops.fp_call_overhead_slots;
                self.charge_float_slots(slots);
                F32(fastpath::f32_sub(a.0, b.0))
            }
        }
    }

    /// Emulated FP32 multiply.
    #[inline]
    pub fn fmul(&mut self, a: F32, b: F32) -> F32 {
        match self.arith {
            ArithMode::Reference => {
                let mut t = OpTally::new();
                let r = softfloat::f32_mul(a.0, b.0, &mut t);
                self.charge_float_emul(self.cost.ops.fmul_slots, &t);
                F32(r)
            }
            ArithMode::FastCalibrated => {
                self.charge_float_slots(self.cost.ops.fmul_slots);
                F32(fastpath::f32_mul(a.0, b.0))
            }
            ArithMode::FastTally => {
                let slots =
                    fastpath::f32_mul_tally(a.0, b.0) + self.cost.ops.fp_call_overhead_slots;
                self.charge_float_slots(slots);
                F32(fastpath::f32_mul(a.0, b.0))
            }
        }
    }

    /// Emulated FP32 divide.
    #[inline]
    pub fn fdiv(&mut self, a: F32, b: F32) -> F32 {
        match self.arith {
            ArithMode::Reference => {
                let mut t = OpTally::new();
                let r = softfloat::f32_div(a.0, b.0, &mut t);
                self.charge_float_emul(self.cost.ops.fdiv_slots, &t);
                F32(r)
            }
            ArithMode::FastCalibrated => {
                self.charge_float_slots(self.cost.ops.fdiv_slots);
                F32(fastpath::f32_div(a.0, b.0))
            }
            ArithMode::FastTally => {
                let slots =
                    fastpath::f32_div_tally(a.0, b.0) + self.cost.ops.fp_call_overhead_slots;
                self.charge_float_slots(slots);
                F32(fastpath::f32_div(a.0, b.0))
            }
        }
    }

    /// Emulated FP32 `a > b` (false on NaN).
    #[inline]
    pub fn fgt(&mut self, a: F32, b: F32) -> bool {
        match self.arith {
            ArithMode::Reference => {
                let mut t = OpTally::new();
                let r = softfloat::f32_gt(a.0, b.0, &mut t);
                self.charge_float_emul(self.cost.ops.fcmp_slots, &t);
                r
            }
            ArithMode::FastCalibrated => {
                self.charge_float_slots(self.cost.ops.fcmp_slots);
                fastpath::f32_gt(a.0, b.0)
            }
            ArithMode::FastTally => {
                let slots =
                    fastpath::f32_cmp_tally(a.0, b.0) + self.cost.ops.fp_call_overhead_slots;
                self.charge_float_slots(slots);
                fastpath::f32_gt(a.0, b.0)
            }
        }
    }

    /// Emulated FP32 `maxNum(a, b)`.
    #[inline]
    pub fn fmax(&mut self, a: F32, b: F32) -> F32 {
        match self.arith {
            ArithMode::Reference => {
                let mut t = OpTally::new();
                let r = softfloat::f32_max(a.0, b.0, &mut t);
                self.charge_float_emul(self.cost.ops.fcmp_slots, &t);
                F32(r)
            }
            ArithMode::FastCalibrated => {
                self.charge_float_slots(self.cost.ops.fcmp_slots);
                F32(fastpath::f32_max(a.0, b.0))
            }
            ArithMode::FastTally => {
                let slots =
                    fastpath::f32_max_tally(a.0, b.0) + self.cost.ops.fp_call_overhead_slots;
                self.charge_float_slots(slots);
                F32(fastpath::f32_max(a.0, b.0))
            }
        }
    }

    /// Emulated i32 → FP32 conversion.
    #[inline]
    pub fn i32_to_f32(&mut self, v: i32) -> F32 {
        match self.arith {
            ArithMode::Reference => {
                let mut t = OpTally::new();
                let r = softfloat::i32_to_f32(v, &mut t);
                self.charge_float_emul(self.cost.ops.fconv_slots, &t);
                F32(r)
            }
            ArithMode::FastCalibrated => {
                self.charge_float_slots(self.cost.ops.fconv_slots);
                F32(fastpath::i32_to_f32(v))
            }
            ArithMode::FastTally => {
                let slots = fastpath::i32_to_f32_tally(v) + self.cost.ops.fp_call_overhead_slots;
                self.charge_float_slots(slots);
                F32(fastpath::i32_to_f32(v))
            }
        }
    }

    /// Emulated FP32 → i32 conversion (truncating; 0 on NaN, saturating).
    #[inline]
    pub fn f32_to_i32(&mut self, v: F32) -> i32 {
        match self.arith {
            ArithMode::Reference => {
                let mut t = OpTally::new();
                let r = softfloat::f32_to_i32(v.0, &mut t);
                self.charge_float_emul(self.cost.ops.fconv_slots, &t);
                r
            }
            ArithMode::FastCalibrated => {
                self.charge_float_slots(self.cost.ops.fconv_slots);
                fastpath::f32_to_i32(v.0)
            }
            ArithMode::FastTally => {
                let slots = fastpath::f32_to_i32_tally(v.0) + self.cost.ops.fp_call_overhead_slots;
                self.charge_float_slots(slots);
                fastpath::f32_to_i32(v.0)
            }
        }
    }

    // ---- random numbers ----------------------------------------------------

    /// Advances an LCG state in-register: one emulated multiply + one add,
    /// exactly the custom `rand()` replacement SwiftRL implements (§3.2.1).
    #[inline]
    pub fn lcg_next(&mut self, state: &mut u32) -> u32 {
        let m = match self.arith {
            ArithMode::Reference => {
                let mut t = OpTally::new();
                let m = emul::umul32_wide(*state, emul::Lcg32::MULTIPLIER, &mut t) as u32;
                self.charge_int_emul(self.cost.ops.mul32_slots, &t);
                m
            }
            ArithMode::FastCalibrated => {
                self.charge_int_slots(self.cost.ops.mul32_slots);
                fastpath::umul32_wide(*state, emul::Lcg32::MULTIPLIER) as u32
            }
            ArithMode::FastTally => {
                let slots = fastpath::umul32_wide_tally(*state, emul::Lcg32::MULTIPLIER);
                self.charge_int_slots(slots);
                fastpath::umul32_wide(*state, emul::Lcg32::MULTIPLIER) as u32
            }
        };
        self.charge_alu(1);
        *state = m.wrapping_add(emul::Lcg32::INCREMENT);
        *state
    }

    /// Uniform value in `[0, bound)` from an LCG state (multiply-shift
    /// reduction: one extra emulated wide multiply plus a shift).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn lcg_below(&mut self, state: &mut u32, bound: u32) -> u32 {
        assert!(bound > 0, "lcg_below bound must be positive");
        let raw = self.lcg_next(state);
        let wide = match self.arith {
            ArithMode::Reference => {
                let mut t = OpTally::new();
                let wide = emul::umul32_wide(raw, bound, &mut t);
                self.charge_int_emul(self.cost.ops.mul64_slots, &t);
                wide
            }
            ArithMode::FastCalibrated => {
                self.charge_int_slots(self.cost.ops.mul64_slots);
                fastpath::umul32_wide(raw, bound)
            }
            ArithMode::FastTally => {
                let slots = fastpath::umul32_wide_tally(raw, bound);
                self.charge_int_slots(slots);
                fastpath::umul32_wide(raw, bound)
            }
        };
        self.charge_alu(1);
        (wide >> 32) as u32
    }

    // ---- WRAM access ---------------------------------------------------

    /// Loads a `u32` from WRAM (1 slot).
    ///
    /// # Errors
    ///
    /// Returns a memory fault if the access exceeds WRAM capacity.
    #[inline]
    pub fn wram_read_u32(&mut self, offset: usize) -> Result<u32, KernelError> {
        self.counter.charge(OpClass::WramAccess, 1);
        if let Some(san) = self.san.as_mut() {
            san.note_wram_read(self.tasklet_id, offset, 4);
        }
        Ok(self.mem.wram.read_u32(offset)?)
    }

    /// Stores a `u32` to WRAM (1 slot).
    ///
    /// # Errors
    ///
    /// Returns a memory fault if the access exceeds WRAM capacity.
    #[inline]
    pub fn wram_write_u32(&mut self, offset: usize, value: u32) -> Result<(), KernelError> {
        self.counter.charge(OpClass::WramAccess, 1);
        if let Some(san) = self.san.as_mut() {
            san.note_wram_write(self.tasklet_id, offset, 4);
        }
        Ok(self.mem.wram.write_u32(offset, value)?)
    }

    /// Loads an `i32` from WRAM (1 slot).
    ///
    /// # Errors
    ///
    /// Returns a memory fault if the access exceeds WRAM capacity.
    #[inline]
    pub fn wram_read_i32(&mut self, offset: usize) -> Result<i32, KernelError> {
        Ok(self.wram_read_u32(offset)? as i32)
    }

    /// Stores an `i32` to WRAM (1 slot).
    ///
    /// # Errors
    ///
    /// Returns a memory fault if the access exceeds WRAM capacity.
    #[inline]
    pub fn wram_write_i32(&mut self, offset: usize, value: i32) -> Result<(), KernelError> {
        self.wram_write_u32(offset, value as u32)
    }

    /// Loads an emulated float from WRAM (1 slot).
    ///
    /// # Errors
    ///
    /// Returns a memory fault if the access exceeds WRAM capacity.
    #[inline]
    pub fn wram_read_f32(&mut self, offset: usize) -> Result<F32, KernelError> {
        Ok(F32(self.wram_read_u32(offset)?))
    }

    /// Stores an emulated float to WRAM (1 slot).
    ///
    /// # Errors
    ///
    /// Returns a memory fault if the access exceeds WRAM capacity.
    #[inline]
    pub fn wram_write_f32(&mut self, offset: usize, value: F32) -> Result<(), KernelError> {
        self.wram_write_u32(offset, value.0)
    }

    // ---- MRAM DMA ------------------------------------------------------

    /// Enforces the DMA engine's alignment contract: offset and length must
    /// be multiples of the configured granule (8 bytes on UPMEM), exactly
    /// as on real hardware. Also reports the attempt to the sanitizer.
    fn check_dma_align(
        &mut self,
        kind: MemoryKind,
        offset: usize,
        len: usize,
    ) -> Result<(), KernelError> {
        let granule = self.cost.dma_granule_bytes.max(1);
        // Mask test for the (default) power-of-two granule; the modulo
        // pair below is the same predicate for arbitrary granules.
        let misaligned = if granule.is_power_of_two() {
            (offset | len) & (granule - 1) != 0
        } else {
            !offset.is_multiple_of(granule) || !len.is_multiple_of(granule)
        };
        if misaligned {
            if let Some(san) = self.san.as_mut() {
                san.note_misaligned(self.tasklet_id, kind, offset, len);
            }
            return Err(KernelError::Memory(MemoryError::Misaligned {
                offset,
                len,
                granule,
                kind,
            }));
        }
        Ok(())
    }

    /// DMA-reads `dst.len()` bytes from MRAM into a host buffer standing in
    /// for registers/WRAM temporaries. Charged as one DMA transfer.
    ///
    /// # Errors
    ///
    /// Returns a memory fault if the access exceeds MRAM capacity or is not
    /// aligned to the DMA granule.
    pub fn mram_read(&mut self, offset: usize, dst: &mut [u8]) -> Result<(), KernelError> {
        self.check_dma_align(MemoryKind::Mram, offset, dst.len())?;
        let cycles = self.cost.dma_cycles(dst.len());
        self.counter.charge_dma(dst.len() as u64, cycles);
        if let Some(san) = self.san.as_mut() {
            san.note_mram_read(self.tasklet_id, offset, dst.len());
        }
        Ok(self.mem.mram.read(offset, dst)?)
    }

    /// DMA-writes a buffer to MRAM. Charged as one DMA transfer.
    ///
    /// # Errors
    ///
    /// Returns a memory fault if the access exceeds MRAM capacity or is not
    /// aligned to the DMA granule.
    pub fn mram_write(&mut self, offset: usize, src: &[u8]) -> Result<(), KernelError> {
        self.check_dma_align(MemoryKind::Mram, offset, src.len())?;
        let cycles = self.cost.dma_cycles(src.len());
        self.counter.charge_dma(src.len() as u64, cycles);
        if let Some(san) = self.san.as_mut() {
            san.note_mram_write(self.tasklet_id, offset, src.len());
        }
        Ok(self.mem.mram.write(offset, src)?)
    }

    /// DMA transfer MRAM → WRAM of `len` bytes.
    ///
    /// # Errors
    ///
    /// Returns a memory fault if either range exceeds its bank capacity or
    /// either offset (or the length) is not aligned to the DMA granule.
    pub fn mram_to_wram(
        &mut self,
        mram_offset: usize,
        wram_offset: usize,
        len: usize,
    ) -> Result<(), KernelError> {
        self.check_dma_align(MemoryKind::Mram, mram_offset, len)?;
        self.check_dma_align(MemoryKind::Wram, wram_offset, len)?;
        self.mem.copy_mram_to_wram(mram_offset, wram_offset, len)?;
        let cycles = self.cost.dma_cycles(len);
        self.counter.charge_dma(len as u64, cycles);
        if let Some(san) = self.san.as_mut() {
            san.note_mram_read(self.tasklet_id, mram_offset, len);
            san.note_wram_write(self.tasklet_id, wram_offset, len);
        }
        Ok(())
    }

    /// DMA transfer WRAM → MRAM of `len` bytes.
    ///
    /// # Errors
    ///
    /// Returns a memory fault if either range exceeds its bank capacity or
    /// either offset (or the length) is not aligned to the DMA granule.
    pub fn wram_to_mram(
        &mut self,
        wram_offset: usize,
        mram_offset: usize,
        len: usize,
    ) -> Result<(), KernelError> {
        self.check_dma_align(MemoryKind::Wram, wram_offset, len)?;
        self.check_dma_align(MemoryKind::Mram, mram_offset, len)?;
        self.mem.copy_wram_to_mram(wram_offset, mram_offset, len)?;
        let cycles = self.cost.dma_cycles(len);
        self.counter.charge_dma(len as u64, cycles);
        if let Some(san) = self.san.as_mut() {
            san.note_wram_read(self.tasklet_id, wram_offset, len);
            san.note_mram_write(self.tasklet_id, mram_offset, len);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PimConfig;

    fn ctx_fixture() -> (DpuMemory, CostModel) {
        let cfg = PimConfig::default();
        (DpuMemory::new(1 << 20, 64 << 10), cfg.cost)
    }

    #[test]
    fn native_ops_charge_one_slot() {
        let (mut mem, cost) = ctx_fixture();
        let mut ctx = DpuContext::new(0, 0, &mut mem, &cost);
        assert_eq!(ctx.add32(2, 3), 5);
        assert_eq!(ctx.isub(2, 5), -3);
        assert_eq!(ctx.counter().alu_slots, 2);
    }

    #[test]
    fn emulated_mul_charges_calibrated_slots() {
        let (mut mem, cost) = ctx_fixture();
        let mut ctx = DpuContext::new(0, 0, &mut mem, &cost);
        assert_eq!(ctx.mul32(9_500, 2_000), 19_000_000);
        assert_eq!(ctx.counter().int_emul_slots, cost.ops.mul32_slots);
    }

    #[test]
    fn tally_mode_charges_data_dependent_slots() {
        let (mut mem, mut cost) = ctx_fixture();
        cost.emulation_charging = EmulationCharging::Tally;
        let mut ctx = DpuContext::new(0, 0, &mut mem, &cost);
        ctx.mul32(3, 0x7FFF_FFFF);
        let small = ctx.counter().int_emul_slots;
        ctx.mul32(0x7FFF_FFF1, 0x7FFF_FFFF);
        let big = ctx.counter().int_emul_slots - small;
        assert!(small < big, "tally mode should be data dependent");
    }

    #[test]
    fn float_ops_compute_ieee_results_and_charge() {
        let (mut mem, cost) = ctx_fixture();
        let mut ctx = DpuContext::new(0, 0, &mut mem, &cost);
        let r = ctx.fmul(F32::from_f32(0.1), F32::from_f32(0.95));
        assert_eq!(r.to_f32(), 0.1f32 * 0.95f32);
        let r = ctx.fadd(r, F32::from_f32(1.0));
        assert_eq!(r.to_f32(), 0.1f32 * 0.95f32 + 1.0f32);
        assert_eq!(
            ctx.counter().float_emul_slots,
            cost.ops.fmul_slots + cost.ops.fadd_slots
        );
    }

    #[test]
    fn fp32_update_costs_several_times_int32_update() {
        // The microcosm of the paper's FP32-vs-INT32 result: one Q-value
        // update in each representation, same context.
        let (mut mem, cost) = ctx_fixture();
        let mut ctx = DpuContext::new(0, 0, &mut mem, &cost);

        // FP32: q += alpha * (r + gamma * maxq - q)
        let (q, r, maxq) = (
            F32::from_f32(0.5),
            F32::from_f32(1.0),
            F32::from_f32(0.8),
        );
        let (alpha, gamma) = (F32::from_f32(0.1), F32::from_f32(0.95));
        let discounted = ctx.fmul(gamma, maxq);
        let target = ctx.fadd(r, discounted);
        let delta = ctx.fsub(target, q);
        let scaled = ctx.fmul(alpha, delta);
        let _ = ctx.fadd(q, scaled);
        let fp_slots = ctx.counter().total_slots();

        let mut ctx2 = DpuContext::new(0, 0, &mut mem, &cost);
        // INT32 fixed point, scale 10_000.
        let (qs, rs, maxqs) = (5_000i32, 10_000i32, 8_000i32);
        let (alphas, gammas, scale) = (1_000i32, 9_500i32, 10_000i32);
        let t1 = ctx2.mul_wide(gammas, maxqs);
        let t1 = ctx2.div_wide(t1, scale) as i32;
        let target = ctx2.iadd(rs, t1);
        let delta = ctx2.isub(target, qs);
        let t2 = ctx2.mul_wide(alphas, delta);
        let t2 = ctx2.div_wide(t2, scale) as i32;
        let _ = ctx2.iadd(qs, t2);
        let int_slots = ctx2.counter().total_slots();

        let ratio = fp_slots as f64 / int_slots as f64;
        assert!(
            ratio > 2.5,
            "FP32 update should far out-cost INT32: fp={fp_slots} int={int_slots} ratio={ratio:.2}"
        );
    }

    #[test]
    fn wram_round_trip_and_charges() {
        let (mut mem, cost) = ctx_fixture();
        let mut ctx = DpuContext::new(0, 0, &mut mem, &cost);
        ctx.wram_write_f32(0, F32::from_f32(3.5)).unwrap();
        assert_eq!(ctx.wram_read_f32(0).unwrap().to_f32(), 3.5);
        assert_eq!(ctx.counter().wram_slots, 2);
    }

    #[test]
    fn wram_capacity_enforced() {
        let (mut mem, cost) = ctx_fixture();
        let mut ctx = DpuContext::new(0, 0, &mut mem, &cost);
        let cap = 64 << 10;
        assert!(ctx.wram_write_u32(cap - 4, 7).is_ok());
        assert!(matches!(
            ctx.wram_write_u32(cap - 3, 7),
            Err(KernelError::Memory(_))
        ));
    }

    #[test]
    fn dma_moves_data_and_charges_cycles() {
        let (mut mem, cost) = ctx_fixture();
        mem.mram.write(64, &[9, 8, 7, 6, 5, 4, 3, 2]).unwrap();
        let mut ctx = DpuContext::new(0, 0, &mut mem, &cost);
        ctx.mram_to_wram(64, 0, 8).unwrap();
        assert_eq!(ctx.wram_read_u32(0).unwrap(), u32::from_le_bytes([9, 8, 7, 6]));
        // One DMA of 8 bytes + one WRAM load.
        assert_eq!(ctx.counter().dma_bytes, 8);
        assert_eq!(ctx.counter().dma_cycles, cost.dma_cycles(8));
    }

    #[test]
    fn lcg_matches_host_generator() {
        let (mut mem, cost) = ctx_fixture();
        let mut ctx = DpuContext::new(0, 0, &mut mem, &cost);
        let mut dev_state = 42u32;
        let mut host = emul::Lcg32::new(42);
        for _ in 0..100 {
            assert_eq!(ctx.lcg_next(&mut dev_state), host.next_u32());
        }
    }

    #[test]
    fn lcg_below_stays_in_bounds() {
        let (mut mem, cost) = ctx_fixture();
        let mut ctx = DpuContext::new(0, 0, &mut mem, &cost);
        let mut s = 7u32;
        for _ in 0..1000 {
            assert!(ctx.lcg_below(&mut s, 6) < 6);
        }
    }

    #[test]
    fn misaligned_dma_is_rejected_before_charging() {
        let (mut mem, cost) = ctx_fixture();
        let mut ctx = DpuContext::new(0, 0, &mut mem, &cost);
        // Misaligned offset.
        assert!(matches!(
            ctx.mram_write(3, &[0u8; 8]),
            Err(KernelError::Memory(MemoryError::Misaligned { .. }))
        ));
        // Misaligned length.
        let mut buf = [0u8; 4];
        assert!(matches!(
            ctx.mram_read(0, &mut buf),
            Err(KernelError::Memory(MemoryError::Misaligned { .. }))
        ));
        // Misaligned WRAM side of a bank-to-bank transfer.
        assert!(matches!(
            ctx.mram_to_wram(0, 4, 8),
            Err(KernelError::Memory(MemoryError::Misaligned {
                kind: MemoryKind::Wram,
                ..
            }))
        ));
        assert!(matches!(
            ctx.wram_to_mram(0, 4, 8),
            Err(KernelError::Memory(MemoryError::Misaligned {
                kind: MemoryKind::Mram,
                ..
            }))
        ));
        // Rejected transfers charge nothing.
        assert_eq!(ctx.counter().dma_bytes, 0);
        assert_eq!(ctx.counter().dma_cycles, 0);
    }

    #[test]
    fn sanitizer_hook_observes_accesses_without_changing_results() {
        let (mut mem, cost) = ctx_fixture();
        let mut san = DpuSanitizer::new(0);
        san.begin_launch(crate::sanitize::SanitizeLevel::Memory, 1);
        {
            let mut ctx = DpuContext::new(0, 0, &mut mem, &cost).with_sanitizer(&mut san);
            // Read-before-write: flagged, but still returns the
            // simulator's deterministic zero-fill.
            assert_eq!(ctx.wram_read_u32(16).unwrap(), 0);
            ctx.wram_write_u32(16, 7).unwrap();
            assert_eq!(ctx.wram_read_u32(16).unwrap(), 7);
            // A misaligned DMA is both a finding and a hard error.
            assert!(ctx.mram_write(1, &[0u8; 8]).is_err());
            assert_eq!(ctx.counter().wram_slots, 3);
        }
        san.finish_launch();
        let (findings, dropped) = san.drain();
        assert_eq!(dropped, 0);
        assert_eq!(findings.len(), 2);
        assert!(matches!(
            findings[0].kind,
            crate::sanitize::FindingKind::UninitWramRead { offset: 16, len: 4 }
        ));
        assert!(matches!(
            findings[1].kind,
            crate::sanitize::FindingKind::MisalignedDma {
                kind: MemoryKind::Mram,
                offset: 1,
                len: 8
            }
        ));
        assert_eq!(san.wram_initialized_bytes(), 4);
    }
}
