//! Batched kernel execution: the third tier of
//! [`ExecTier`](crate::config::ExecTier).
//!
//! The reference and fast tiers interpret a kernel one charged intrinsic
//! at a time per tasklet. At paper scale (2,524 DPUs) that per-op
//! dispatch — not the simulated cycles — dominates host wall-clock. The
//! batched tier exploits that every DPU of a SwiftRL launch runs the
//! *same* tiny program over its own replay chunk: a kernel that
//! implements [`BatchKernel`] fuses its whole per-launch update loop into
//! one host-native sweep per DPU, computing values with
//! [`crate::fastpath`] and charging **closed-form aggregate cycle
//! tallies** — per-tasklet loop-trip counts multiplied by the same
//! per-intrinsic costs [`DpuContext`](crate::kernel::DpuContext) would
//! have charged one by one.
//!
//! The contract mirrors the fast tier's, one level up: a batched launch
//! must leave *identical observables* to the per-intrinsic execution —
//! bit-identical MRAM (Q-tables, advanced header) and cycle-identical
//! per-class [`CycleCounter`]s per tasklet — in both
//! [`EmulationCharging`](crate::config::EmulationCharging) modes. It is
//! proven differentially by `tests/fastpath_parity.rs` and
//! `tests/engine_determinism.rs`; the reference tier stays the oracle.
//!
//! Batching is strictly opportunistic. [`Dpu::execute`](crate::dpu::Dpu)
//! attempts it only when the tier is `Batched`, the sanitizer is off,
//! the fault plan does not touch this `(dpu, launch)`
//! ([`FaultPlan::touches_execution`](crate::faults::FaultPlan::touches_execution)),
//! and the kernel opts in via
//! [`Kernel::batch`](crate::kernel::Kernel::batch). A [`BatchKernel`]
//! may additionally *decline* any launch (`Ok(false)`) — e.g. on a
//! malformed header or an out-of-range record — so every error path runs
//! through the per-intrinsic interpreter and reproduces its exact error
//! message and partial charges.

use crate::config::CostModel;
use crate::cost::CycleCounter;
use crate::kernel::KernelError;
use crate::memory::{Bank, DpuMemory};

/// A kernel that can execute a whole launch as one fused host-native
/// sweep under [`ExecTier::Batched`](crate::config::ExecTier::Batched).
pub trait BatchKernel {
    /// Executes one launch in batched form, or declines.
    ///
    /// Returns `Ok(true)` when the launch was executed: MRAM holds
    /// exactly the bytes the per-intrinsic path would have left, and the
    /// per-tasklet counters in `ctx` hold exactly the charges it would
    /// have accumulated. Returns `Ok(false)` to decline — the caller
    /// falls back to the per-intrinsic path, so a declining
    /// implementation must not have written MRAM or charged anything.
    ///
    /// # Errors
    ///
    /// A returned [`KernelError`] must be byte-identical to the one the
    /// per-intrinsic path would raise; implementations should prefer
    /// declining (`Ok(false)`) on any anomaly, which is always safe.
    fn run_batched(&self, ctx: &mut BatchContext<'_>) -> Result<bool, KernelError>;
}

/// Execution context handed to [`BatchKernel::run_batched`]: raw
/// (uncharged) access to the DPU's MRAM bank, the cost model, and one
/// [`CycleCounter`] per tasklet for the aggregate charges.
///
/// Unlike [`DpuContext`](crate::kernel::DpuContext) there are no charged
/// intrinsics here — the batch kernel computes closed-form charge totals
/// itself and deposits them in the per-tasklet counters. The WRAM bank is
/// deliberately *not* exposed: a batched launch models the WRAM working
/// set arithmetically (trip counts × access costs) without materializing
/// bank segments, which is part of where its speedup comes from. Memory
/// ceilings are therefore pinned across engines, never across tiers.
#[derive(Debug)]
pub struct BatchContext<'a> {
    dpu_id: usize,
    tasklets: usize,
    memory: &'a mut DpuMemory,
    cost: &'a CostModel,
    counters: Vec<CycleCounter>,
}

impl<'a> BatchContext<'a> {
    /// Builds the context for one launch of `tasklets` tasklets on DPU
    /// `dpu_id`.
    pub fn new(
        dpu_id: usize,
        tasklets: usize,
        memory: &'a mut DpuMemory,
        cost: &'a CostModel,
    ) -> Self {
        let counters = vec![CycleCounter::new(); tasklets.max(1)];
        Self {
            dpu_id,
            tasklets: tasklets.max(1),
            memory,
            cost,
            counters,
        }
    }

    /// Index of the DPU within its set.
    pub fn dpu_id(&self) -> usize {
        self.dpu_id
    }

    /// Number of tasklets this launch runs with (already clamped to the
    /// platform's per-DPU tasklet capacity).
    pub fn tasklets(&self) -> usize {
        self.tasklets
    }

    /// The platform cost model (op costs, DMA parameters, charging
    /// mode).
    pub fn cost(&self) -> &CostModel {
        self.cost
    }

    /// WRAM capacity in bytes of this DPU — batched kernels preflight
    /// their modelled WRAM working set against it instead of
    /// materializing scratchpad segments.
    pub fn wram_capacity(&self) -> usize {
        self.memory.wram.capacity()
    }

    /// Raw read access to the MRAM bank. Uncharged: DMA charges are the
    /// batch kernel's responsibility, folded into the aggregate tallies.
    pub fn mram(&self) -> &Bank {
        &self.memory.mram
    }

    /// Raw write access to the MRAM bank (see [`Self::mram`]).
    pub fn mram_mut(&mut self) -> &mut Bank {
        &mut self.memory.mram
    }

    /// The charge accumulator for one tasklet's aggregate tallies.
    pub fn counter_mut(&mut self, tasklet: usize) -> &mut CycleCounter {
        &mut self.counters[tasklet]
    }

    /// Folds the per-tasklet counters exactly like the per-intrinsic
    /// tasklet loop in [`Dpu::execute`](crate::dpu::Dpu): the DPU's
    /// launch-wide counter is the merge over tasklets, its wall cycles
    /// the per-tasklet maximum at the given issue `interval`.
    pub fn finish(self, interval: u64) -> (CycleCounter, u64) {
        let mut merged = CycleCounter::new();
        let mut max_cycles = 0u64;
        for counter in &self.counters {
            max_cycles = max_cycles.max(counter.cycles(interval));
            merged.merge(counter);
        }
        (merged, max_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PimConfig;

    #[test]
    fn finish_merges_counters_and_takes_the_slowest_tasklet() {
        let cfg = PimConfig::builder().mram_bytes(1 << 20).build();
        let mut memory = DpuMemory::new(cfg.mram_bytes, cfg.wram_bytes);
        let mut ctx = BatchContext::new(3, 2, &mut memory, &cfg.cost);
        assert_eq!(ctx.dpu_id(), 3);
        assert_eq!(ctx.tasklets(), 2);
        ctx.counter_mut(0).alu_slots += 10;
        ctx.counter_mut(1).alu_slots += 25;
        ctx.counter_mut(1).charge_dma(16, 85);
        let (merged, max_cycles) = ctx.finish(11);
        assert_eq!(merged.alu_slots, 35);
        assert_eq!(merged.dma_bytes, 16);
        // Tasklet 1 is the slowest: 25 slots × interval 11 + 85 DMA cycles.
        assert_eq!(max_cycles, 25 * 11 + 85);
    }

    #[test]
    fn mram_access_is_raw_and_uncharged() {
        let cfg = PimConfig::builder().mram_bytes(1 << 20).build();
        let mut memory = DpuMemory::new(cfg.mram_bytes, cfg.wram_bytes);
        let mut ctx = BatchContext::new(0, 1, &mut memory, &cfg.cost);
        ctx.mram_mut().write(8, &[7u8; 4]).expect("write");
        let mut back = [0u8; 4];
        ctx.mram().read(8, &mut back).expect("read");
        assert_eq!(back, [7u8; 4]);
        let (merged, cycles) = ctx.finish(11);
        assert_eq!(merged.total_slots(), 0);
        assert_eq!(cycles, 0);
    }
}
