//! Execution engines: how the simulator schedules DPU execution on the
//! host machine.
//!
//! The paper's platform runs 2,524 DPUs *concurrently*; simulating them
//! one after another on the host thread taxes a `--paper-scale` run with
//! a ~2,000× serialization factor in wall-clock. The
//! [`ExecutionEngine`] selected through
//! [`PimConfig::engine`](crate::config::PimConfig) removes that tax by
//! fanning DPU execution out over OS threads — without changing a single
//! simulated bit:
//!
//! * every [`Dpu`] is self-contained (private MRAM/WRAM, cycle counter,
//!   sanitizer), so concurrent execution shares no mutable state;
//! * the engine returns per-DPU results **in DPU-index order**, and the
//!   caller merges cycle statistics, counters, and sanitizer findings in
//!   that same order — so Q-tables, `max/min/mean_cycles`, fault
//!   attribution, and report ordering are bit-identical to
//!   [`ExecutionEngine::Serial`].
//!
//! Wall-clock is the only observable difference between engines. The
//! guarantee is orthogonal to the execution *tier*
//! ([`ArithTier`](crate::config::ArithTier)): whether a DPU interprets
//! its kernel per-intrinsic (reference/fast) or runs the fused batched
//! sweep inside [`Dpu::execute`], the engine only ever sees the finished
//! per-DPU result, so every (tier, engine) pairing produces the same
//! bits and cycles — `tests/engine_determinism.rs` pins the full matrix.

use crate::config::PimConfig;
use crate::dpu::Dpu;
use crate::kernel::{Kernel, KernelError};
use serde::{Deserialize, Serialize};

/// How DPU execution is scheduled on the host simulating it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionEngine {
    /// Execute DPUs one at a time on the calling thread. The reference
    /// engine: simplest possible schedule, no threads involved.
    Serial,
    /// Fan DPU execution out over `workers` OS threads (crossbeam scoped
    /// threads over disjoint DPU chunks). `workers == 0` means "use the
    /// host's available parallelism". Bit-identical to `Serial` by the
    /// ordered-merge construction described in the module docs.
    Threaded {
        /// Worker threads; `0` = available host parallelism.
        workers: usize,
    },
    /// Fan DPU execution out over `workers` OS threads scheduled through
    /// work-stealing deques (`crossbeam::deque`) over many small DPU
    /// chunks. Built for paper-scale fleets: with thousands of DPUs
    /// running tiny kernels, `Threaded`'s one-contiguous-chunk-per-worker
    /// split leaves the fast workers idle behind the slowest chunk, while
    /// stealing rebalances at chunk granularity. Every result still lands
    /// in its DPU-indexed slot, so the caller's ordered merge — and the
    /// bit-identity guarantee — is unchanged.
    WorkStealing {
        /// Worker threads; `0` = available host parallelism.
        workers: usize,
    },
}

impl Default for ExecutionEngine {
    /// Threaded over the host's available parallelism.
    fn default() -> Self {
        ExecutionEngine::Threaded { workers: 0 }
    }
}

impl ExecutionEngine {
    /// The number of worker threads this engine would use for `dpus`
    /// DPUs: 1 for `Serial`, otherwise the configured worker count
    /// (defaulting to the host's available parallelism) clamped to the
    /// DPU count.
    pub fn workers_for(&self, dpus: usize) -> usize {
        match *self {
            ExecutionEngine::Serial => 1,
            ExecutionEngine::Threaded { workers } | ExecutionEngine::WorkStealing { workers } => {
                let requested = if workers == 0 {
                    std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1)
                } else {
                    workers
                };
                requested.clamp(1, dpus.max(1))
            }
        }
    }

    /// Executes `kernel` on every DPU and returns the per-DPU results in
    /// DPU-index order. Threaded engines split the DPU slice into
    /// contiguous chunks, one per worker; each worker owns its chunk
    /// exclusively, so no simulated state is shared across threads.
    ///
    /// Operates directly on the owned `Dpu` slice — full-set launches
    /// never materialise a per-launch selection vector.
    pub(crate) fn execute_all(
        &self,
        config: &PimConfig,
        dpus: &mut [Dpu],
        kernel: &dyn Kernel,
    ) -> Vec<Result<u64, KernelError>> {
        self.execute_chunks(dpus, |dpu| dpu.execute(kernel, config))
    }

    /// Executes `kernel` on an arbitrary selection of DPUs (given as
    /// mutable references) and returns results in selection order. This
    /// is the primitive behind the host's subset relaunches of faulted
    /// DPUs; the scheduling construction is identical to
    /// [`execute_all`](Self::execute_all), so subset launches keep the
    /// engine's bit-identity guarantee.
    pub(crate) fn execute_refs(
        &self,
        config: &PimConfig,
        dpus: &mut [&mut Dpu],
        kernel: &dyn Kernel,
    ) -> Vec<Result<u64, KernelError>> {
        self.execute_chunks(dpus, |dpu| dpu.execute(kernel, config))
    }

    /// Shared scheduling core: runs `run` over every item of `items`
    /// (each item is one DPU's worth of work) and returns the results in
    /// item order. Serial engines (or degenerate worker/item counts) run
    /// inline on the calling thread; threaded engines split the slice
    /// into contiguous chunks, one per worker.
    fn execute_chunks<T: Send>(
        &self,
        items: &mut [T],
        run: impl Fn(&mut T) -> Result<u64, KernelError> + Sync,
    ) -> Vec<Result<u64, KernelError>> {
        let n = items.len();
        let workers = self.workers_for(n);
        if workers <= 1 || n <= 1 {
            return items.iter_mut().map(run).collect();
        }

        // Pre-filled sentinel slots; every slot is overwritten because the
        // result chunks are split with the same chunk size as the item
        // chunks, so the zipped pairs cover the whole slice.
        let mut results: Vec<Result<u64, KernelError>> =
            vec![Err(KernelError::Fault("engine: DPU not executed".into())); n];
        let run = &run;
        let scope_result = if matches!(self, ExecutionEngine::WorkStealing { .. }) {
            // Many small chunks (several per worker) flow through a global
            // injector into per-worker deques; idle workers steal. Each
            // chunk carries its own result slots, so scheduling order
            // never leaks into the output.
            let grain = n.div_ceil(workers * 8).max(1);
            let injector = crossbeam::deque::Injector::new();
            for pair in items.chunks_mut(grain).zip(results.chunks_mut(grain)) {
                injector.push(pair);
            }
            let locals: Vec<crossbeam::deque::Worker<ChunkTask<'_, T>>> =
                (0..workers).map(|_| crossbeam::deque::Worker::new_fifo()).collect();
            let stealers: Vec<_> = locals.iter().map(|w| w.stealer()).collect();
            let (injector, stealers) = (&injector, &stealers[..]);
            crossbeam::scope(|scope| {
                for local in locals {
                    scope.spawn(move |_| {
                        while let Some((item_chunk, out_chunk)) =
                            find_task(&local, injector, stealers)
                        {
                            for (item, slot) in item_chunk.iter_mut().zip(out_chunk.iter_mut()) {
                                *slot = run(item);
                            }
                        }
                    });
                }
            })
        } else {
            let chunk = n.div_ceil(workers);
            crossbeam::scope(|scope| {
                for (item_chunk, out_chunk) in
                    items.chunks_mut(chunk).zip(results.chunks_mut(chunk))
                {
                    scope.spawn(move |_| {
                        for (item, slot) in item_chunk.iter_mut().zip(out_chunk.iter_mut()) {
                            *slot = run(item);
                        }
                    });
                }
            })
        };
        if let Err(payload) = scope_result {
            // A worker panicked (kernel bug): surface it on the caller.
            std::panic::resume_unwind(payload);
        }
        results
    }
}

/// One stealable unit of work: a chunk of DPUs (or DPU refs) paired with
/// the result slots they write.
type ChunkTask<'a, T> = (&'a mut [T], &'a mut [Result<u64, KernelError>]);

/// The classic crossbeam-deque scheduling loop: drain the local deque,
/// then refill it from the global injector, then steal from a sibling.
/// Returns `None` only once every queue reports empty — no task is ever
/// lost because chunks are created up front and never re-enqueued.
fn find_task<'a, T>(
    local: &crossbeam::deque::Worker<ChunkTask<'a, T>>,
    injector: &crossbeam::deque::Injector<ChunkTask<'a, T>>,
    stealers: &[crossbeam::deque::Stealer<ChunkTask<'a, T>>],
) -> Option<ChunkTask<'a, T>> {
    local.pop().or_else(|| {
        std::iter::repeat_with(|| {
            injector
                .steal_batch_and_pop(local)
                .or_else(|| stealers.iter().map(|s| s.steal()).collect())
        })
        .find(|s| !s.is_retry())
        .and_then(|s| s.success())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::DpuContext;

    struct SkewKernel;
    impl Kernel for SkewKernel {
        fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
            let id = ctx.dpu_id() as u64;
            ctx.charge_alu(5 * (id + 1));
            ctx.mram_write(0, &id.to_le_bytes())?;
            Ok(())
        }
    }

    fn fresh_dpus(config: &PimConfig, n: usize) -> Vec<Dpu> {
        (0..n).map(|id| Dpu::new(id, config)).collect()
    }

    #[test]
    fn serial_uses_one_worker() {
        assert_eq!(ExecutionEngine::Serial.workers_for(64), 1);
    }

    #[test]
    fn threaded_workers_clamp_to_dpu_count() {
        let e = ExecutionEngine::Threaded { workers: 16 };
        assert_eq!(e.workers_for(4), 4);
        assert_eq!(e.workers_for(64), 16);
        assert_eq!(e.workers_for(0), 1);
    }

    #[test]
    fn zero_workers_means_available_parallelism() {
        let e = ExecutionEngine::Threaded { workers: 0 };
        assert!(e.workers_for(1_000) >= 1);
    }

    #[test]
    fn default_engine_is_threaded_auto() {
        assert_eq!(
            ExecutionEngine::default(),
            ExecutionEngine::Threaded { workers: 0 }
        );
    }

    #[test]
    fn threaded_results_match_serial_in_index_order() {
        let config = PimConfig::builder().dpus(8).mram_bytes(1 << 16).build();
        let mut serial_dpus = fresh_dpus(&config, 7);
        let mut threaded_dpus = fresh_dpus(&config, 7);
        let serial = ExecutionEngine::Serial.execute_all(&config, &mut serial_dpus, &SkewKernel);
        let threaded = ExecutionEngine::Threaded { workers: 3 }.execute_all(
            &config,
            &mut threaded_dpus,
            &SkewKernel,
        );
        assert_eq!(serial, threaded);
        // Side effects (MRAM writes, counters) are also identical per DPU.
        for (s, t) in serial_dpus.iter().zip(threaded_dpus.iter()) {
            assert_eq!(s.mram().read_u32(0).ok(), t.mram().read_u32(0).ok());
            assert_eq!(s.last_counter(), t.last_counter());
        }
    }

    #[test]
    fn work_stealing_workers_resolve_like_threaded() {
        let e = ExecutionEngine::WorkStealing { workers: 16 };
        assert_eq!(e.workers_for(4), 4);
        assert_eq!(e.workers_for(64), 16);
        let auto = ExecutionEngine::WorkStealing { workers: 0 };
        assert!(auto.workers_for(1_000) >= 1);
    }

    #[test]
    fn work_stealing_results_match_serial_in_index_order() {
        // 37 DPUs over 4 workers: many chunks per worker, an uneven tail,
        // and per-DPU skew so stealing actually happens.
        let config = PimConfig::builder().dpus(64).mram_bytes(1 << 16).build();
        let mut serial_dpus = fresh_dpus(&config, 37);
        let mut stealing_dpus = fresh_dpus(&config, 37);
        let serial = ExecutionEngine::Serial.execute_all(&config, &mut serial_dpus, &SkewKernel);
        let stealing = ExecutionEngine::WorkStealing { workers: 4 }.execute_all(
            &config,
            &mut stealing_dpus,
            &SkewKernel,
        );
        assert_eq!(serial, stealing);
        for (s, t) in serial_dpus.iter().zip(stealing_dpus.iter()) {
            assert_eq!(s.mram().read_u32(0).ok(), t.mram().read_u32(0).ok());
            assert_eq!(s.last_counter(), t.last_counter());
        }
    }
}
