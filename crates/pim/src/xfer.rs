//! CPU↔PIM transfer bookkeeping.
//!
//! The cost formulas live in [`crate::config::TransferModel`]; this module
//! provides the direction type and a ledger that the host interface uses
//! to attribute time and bytes to the paper's breakdown categories
//! (CPU-PIM setup, PIM-CPU retrieval).

use serde::{Deserialize, Serialize};

/// Direction of a host transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Host main memory → PIM MRAM banks (dataset loading, broadcasts).
    CpuToPim,
    /// PIM MRAM banks → host main memory (result retrieval, gathers).
    PimToCpu,
}

/// A single recorded transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferRecord {
    /// Direction of the transfer.
    pub direction: Direction,
    /// Total bytes moved (summed over all DPUs involved).
    pub bytes: u64,
    /// Number of DPUs involved.
    pub dpus: usize,
    /// Number of hardware ranks the transfer actually touched (what the
    /// bandwidth model was charged for). Defaults to 0 in records
    /// deserialized from pre-rank artifacts.
    #[serde(default)]
    pub ranks: usize,
    /// Modelled duration in seconds.
    pub seconds: f64,
}

/// Accumulates transfer records for a DPU set.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TransferLedger {
    records: Vec<TransferRecord>,
}

impl TransferLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn record(&mut self, record: TransferRecord) {
        self.records.push(record);
    }

    /// All records, in order.
    pub fn records(&self) -> &[TransferRecord] {
        &self.records
    }

    /// Total seconds spent in the given direction.
    pub fn seconds(&self, direction: Direction) -> f64 {
        self.records
            .iter()
            .filter(|r| r.direction == direction)
            .map(|r| r.seconds)
            .sum()
    }

    /// Total bytes moved in the given direction.
    pub fn bytes(&self, direction: Direction) -> u64 {
        self.records
            .iter()
            .filter(|r| r.direction == direction)
            .map(|r| r.bytes)
            .sum()
    }

    /// Clears all records.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_sums_by_direction() {
        let mut ledger = TransferLedger::new();
        ledger.record(TransferRecord {
            direction: Direction::CpuToPim,
            bytes: 100,
            dpus: 4,
            ranks: 1,
            seconds: 0.5,
        });
        ledger.record(TransferRecord {
            direction: Direction::PimToCpu,
            bytes: 40,
            dpus: 4,
            ranks: 1,
            seconds: 0.2,
        });
        ledger.record(TransferRecord {
            direction: Direction::CpuToPim,
            bytes: 10,
            dpus: 1,
            ranks: 1,
            seconds: 0.1,
        });
        assert_eq!(ledger.bytes(Direction::CpuToPim), 110);
        assert_eq!(ledger.bytes(Direction::PimToCpu), 40);
        assert!((ledger.seconds(Direction::CpuToPim) - 0.6).abs() < 1e-12);
        assert_eq!(ledger.records().len(), 3);
        ledger.clear();
        assert!(ledger.records().is_empty());
    }
}
