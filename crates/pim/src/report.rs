//! Human-readable reports of launch statistics.
//!
//! The experiment binaries use these to show *why* a kernel costs what it
//! does: the instruction-slot mix (native ALU vs WRAM vs control vs
//! emulated integer vs emulated float) and the DMA traffic, per launch.

use crate::config::PimConfig;
use crate::stats::LaunchStats;
use std::fmt;

/// A formatted view of one launch's cost composition.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    stats: LaunchStats,
    frequency_mhz: u64,
}

impl LaunchReport {
    /// Builds a report from launch statistics and the platform clock.
    pub fn new(stats: &LaunchStats, config: &PimConfig) -> Self {
        Self {
            stats: stats.clone(),
            frequency_mhz: config.frequency_mhz,
        }
    }

    /// Slot-share of each instruction class, in the order
    /// (ALU, WRAM, control, int-emul, float-emul). Zero-work launches
    /// report all zeros.
    pub fn slot_shares(&self) -> [f64; 5] {
        let m = &self.stats.merged;
        let total = m.total_slots();
        if total == 0 {
            return [0.0; 5];
        }
        let t = total as f64;
        [
            m.alu_slots as f64 / t,
            m.wram_slots as f64 / t,
            m.control_slots as f64 / t,
            m.int_emul_slots as f64 / t,
            m.float_emul_slots as f64 / t,
        ]
    }

    /// Fraction of the slowest DPU's cycles spent waiting on DMA.
    pub fn dma_fraction(&self) -> f64 {
        if self.stats.max_cycles == 0 {
            return 0.0;
        }
        // DMA cycles are aggregated over DPUs; approximate the per-DPU
        // share using the mean.
        let per_dpu_dma = if self.stats.dpus == 0 {
            0.0
        } else {
            self.stats.merged.dma_cycles as f64 / self.stats.dpus as f64
        };
        (per_dpu_dma / self.stats.max_cycles as f64).min(1.0)
    }
}

impl fmt::Display for LaunchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = &self.stats;
        let [alu, wram, control, int_emul, float_emul] = self.slot_shares();
        writeln!(
            f,
            "launch over {} DPUs @ {} MHz: {:.6}s ({} cycles max, imbalance {:.2})",
            s.dpus,
            self.frequency_mhz,
            s.seconds,
            s.max_cycles,
            s.imbalance()
        )?;
        writeln!(
            f,
            "  slots: {:.1}% alu, {:.1}% wram, {:.1}% control, {:.1}% int-emul, {:.1}% float-emul",
            alu * 100.0,
            wram * 100.0,
            control * 100.0,
            int_emul * 100.0,
            float_emul * 100.0
        )?;
        write!(
            f,
            "  emulation fraction {:.1}%, DMA {:.1}% of critical path ({} bytes)",
            s.merged.emulation_fraction() * 100.0,
            self.dma_fraction() * 100.0,
            s.merged.dma_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CycleCounter;
    use crate::cost::OpClass;

    fn stats() -> LaunchStats {
        let mut merged = CycleCounter::new();
        merged.charge(OpClass::Alu, 50);
        merged.charge(OpClass::FloatEmul, 150);
        merged.charge_dma(1024, 500);
        LaunchStats {
            dpus: 2,
            max_cycles: 2_500,
            min_cycles: 2_000,
            mean_cycles: 2_250.0,
            seconds: 2_500.0 / 425.0e6,
            merged,
        }
    }

    #[test]
    fn shares_sum_to_one() {
        let report = LaunchReport::new(&stats(), &PimConfig::default());
        let shares = report.slot_shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((shares[4] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_launch_reports_zeros() {
        let report = LaunchReport::new(&LaunchStats::default(), &PimConfig::default());
        assert_eq!(report.slot_shares(), [0.0; 5]);
        assert_eq!(report.dma_fraction(), 0.0);
    }

    #[test]
    fn dma_fraction_bounded() {
        let report = LaunchReport::new(&stats(), &PimConfig::default());
        let f = report.dma_fraction();
        assert!((0.0..=1.0).contains(&f));
        assert!((f - 250.0 / 2_500.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_key_fields() {
        let report = LaunchReport::new(&stats(), &PimConfig::default());
        let text = report.to_string();
        assert!(text.contains("DPUs"));
        assert!(text.contains("float-emul"));
        assert!(text.contains("DMA"));
    }
}
