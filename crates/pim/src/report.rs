//! Human-readable reports of launch statistics.
//!
//! The experiment binaries use these to show *why* a kernel costs what it
//! does: the instruction-slot mix (native ALU vs WRAM vs control vs
//! emulated integer vs emulated float) and the DMA traffic, per launch.

use crate::config::PimConfig;
use crate::sanitize::{FindingKind, SanitizeLevel, SanitizerFinding};
use crate::stats::LaunchStats;
use std::fmt;

/// A formatted view of one launch's cost composition.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    stats: LaunchStats,
    frequency_mhz: u64,
}

impl LaunchReport {
    /// Builds a report from launch statistics and the platform clock.
    pub fn new(stats: &LaunchStats, config: &PimConfig) -> Self {
        Self {
            stats: stats.clone(),
            frequency_mhz: config.frequency_mhz,
        }
    }

    /// Slot-share of each instruction class, in the order
    /// (ALU, WRAM, control, int-emul, float-emul). Zero-work launches
    /// report all zeros.
    pub fn slot_shares(&self) -> [f64; 5] {
        let m = &self.stats.merged;
        let total = m.total_slots();
        if total == 0 {
            return [0.0; 5];
        }
        let t = total as f64;
        [
            m.alu_slots as f64 / t,
            m.wram_slots as f64 / t,
            m.control_slots as f64 / t,
            m.int_emul_slots as f64 / t,
            m.float_emul_slots as f64 / t,
        ]
    }

    /// Fraction of the slowest DPU's cycles spent waiting on DMA.
    pub fn dma_fraction(&self) -> f64 {
        if self.stats.max_cycles == 0 {
            return 0.0;
        }
        // DMA cycles are aggregated over DPUs; approximate the per-DPU
        // share using the mean.
        let per_dpu_dma = if self.stats.dpus == 0 {
            0.0
        } else {
            self.stats.merged.dma_cycles as f64 / self.stats.dpus as f64
        };
        (per_dpu_dma / self.stats.max_cycles as f64).min(1.0)
    }
}

impl fmt::Display for LaunchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = &self.stats;
        let [alu, wram, control, int_emul, float_emul] = self.slot_shares();
        writeln!(
            f,
            "launch over {} DPUs @ {} MHz: {:.6}s ({} cycles max, imbalance {:.2}{})",
            s.dpus,
            self.frequency_mhz,
            s.seconds,
            s.max_cycles,
            s.imbalance(),
            if s.is_faulted() {
                format!(", {} faulted", s.faulted_dpus.len())
            } else {
                String::new()
            }
        )?;
        writeln!(
            f,
            "  slots: {:.1}% alu, {:.1}% wram, {:.1}% control, {:.1}% int-emul, {:.1}% float-emul",
            alu * 100.0,
            wram * 100.0,
            control * 100.0,
            int_emul * 100.0,
            float_emul * 100.0
        )?;
        write!(
            f,
            "  emulation fraction {:.1}%, DMA {:.1}% of critical path ({} bytes)",
            s.merged.emulation_fraction() * 100.0,
            self.dma_fraction() * 100.0,
            s.merged.dma_bytes
        )
    }
}

/// Accumulated sanitizer diagnostics for a DPU set.
///
/// Populated by [`crate::host::DpuSet::launch`] from every DPU's
/// [`crate::sanitize::DpuSanitizer`]; inspect with
/// [`crate::host::DpuSet::sanitizer_report`].
#[derive(Debug, Clone, Default)]
pub struct SanitizerReport {
    /// Level the most recent launch ran at.
    pub level: SanitizeLevel,
    /// Launches observed while sanitization was enabled.
    pub sanitized_launches: u64,
    /// All retained findings, in (launch, DPU) order.
    pub findings: Vec<SanitizerFinding>,
    /// Findings dropped over the per-DPU retention cap.
    pub dropped: u64,
}

impl SanitizerReport {
    /// True if no findings were recorded (and none dropped).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.dropped == 0
    }

    /// Number of findings of each kind:
    /// (uninit-WRAM, misaligned-DMA, tasklet-race, host-during-launch).
    pub fn counts(&self) -> [usize; 4] {
        let mut c = [0usize; 4];
        for f in &self.findings {
            match f.kind {
                FindingKind::UninitWramRead { .. } => c[0] += 1,
                FindingKind::MisalignedDma { .. } => c[1] += 1,
                FindingKind::TaskletRace { .. } => c[2] += 1,
                FindingKind::HostAccessDuringLaunch { .. } => c[3] += 1,
            }
        }
        c
    }

    /// Clears all accumulated findings and counters.
    pub fn reset(&mut self) {
        *self = SanitizerReport {
            level: self.level,
            ..SanitizerReport::default()
        };
    }
}

impl fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [uninit, misaligned, races, host] = self.counts();
        writeln!(
            f,
            "sanitizer ({:?}): {} finding(s) over {} sanitized launch(es){}",
            self.level,
            self.findings.len(),
            self.sanitized_launches,
            if self.dropped > 0 {
                format!(" (+{} dropped)", self.dropped)
            } else {
                String::new()
            }
        )?;
        writeln!(
            f,
            "  {uninit} uninit-WRAM read(s), {misaligned} misaligned DMA(s), \
             {races} tasklet race(s), {host} host-during-launch access(es)"
        )?;
        for finding in self.findings.iter().take(16) {
            writeln!(f, "  - {finding}")?;
        }
        if self.findings.len() > 16 {
            writeln!(f, "  ... {} more", self.findings.len() - 16)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CycleCounter;
    use crate::cost::OpClass;

    fn stats() -> LaunchStats {
        let mut merged = CycleCounter::new();
        merged.charge(OpClass::Alu, 50);
        merged.charge(OpClass::FloatEmul, 150);
        merged.charge_dma(1024, 500);
        LaunchStats {
            dpus: 2,
            max_cycles: 2_500,
            min_cycles: 2_000,
            mean_cycles: 2_250.0,
            seconds: 2_500.0 / 425.0e6,
            merged,
            sanitizer_findings: 0,
            faulted_dpus: Vec::new(),
        }
    }

    #[test]
    fn shares_sum_to_one() {
        let report = LaunchReport::new(&stats(), &PimConfig::default());
        let shares = report.slot_shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((shares[4] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_launch_reports_zeros() {
        let report = LaunchReport::new(&LaunchStats::default(), &PimConfig::default());
        assert_eq!(report.slot_shares(), [0.0; 5]);
        assert_eq!(report.dma_fraction(), 0.0);
    }

    #[test]
    fn dma_fraction_bounded() {
        let report = LaunchReport::new(&stats(), &PimConfig::default());
        let f = report.dma_fraction();
        assert!((0.0..=1.0).contains(&f));
        assert!((f - 250.0 / 2_500.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_key_fields() {
        let report = LaunchReport::new(&stats(), &PimConfig::default());
        let text = report.to_string();
        assert!(text.contains("DPUs"));
        assert!(text.contains("float-emul"));
        assert!(text.contains("DMA"));
    }

    #[test]
    fn sanitizer_report_counts_and_display() {
        use crate::memory::MemoryKind;

        let mut r = SanitizerReport::default();
        assert!(r.is_clean());
        r.sanitized_launches = 2;
        r.findings.push(SanitizerFinding {
            dpu: 0,
            tasklet: Some(0),
            kind: FindingKind::UninitWramRead { offset: 8, len: 4 },
        });
        r.findings.push(SanitizerFinding {
            dpu: 1,
            tasklet: None,
            kind: FindingKind::TaskletRace {
                kind: MemoryKind::Wram,
                tasklet_a: 0,
                tasklet_b: 1,
                start: 0,
                end: 8,
                write_write: true,
            },
        });
        assert!(!r.is_clean());
        assert_eq!(r.counts(), [1, 0, 1, 0]);
        let text = r.to_string();
        assert!(text.contains("2 finding(s)"));
        assert!(text.contains("uninit-WRAM"));
        r.reset();
        assert!(r.is_clean());
    }
}
