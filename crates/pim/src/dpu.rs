//! A single simulated DPU (PIM core) and its kernel executor.

use crate::config::PimConfig;
use crate::cost::CycleCounter;
use crate::kernel::{DpuContext, Kernel, KernelError};
use crate::memory::DpuMemory;
use crate::sanitize::DpuSanitizer;

/// One DPU: a processing element with its private MRAM bank and WRAM
/// scratchpad.
///
/// DPUs cannot see each other's memories; all inter-DPU communication is
/// routed through the host, as on UPMEM hardware.
#[derive(Debug)]
pub struct Dpu {
    id: usize,
    memory: DpuMemory,
    last_counter: CycleCounter,
    sanitizer: DpuSanitizer,
    launches: u64,
}

impl Dpu {
    /// Creates a DPU with the platform's memory capacities, backed by a
    /// private arena (tests and standalone use).
    pub fn new(id: usize, config: &PimConfig) -> Self {
        Self::with_arena(id, config, &crate::arena::FleetArena::new())
    }

    /// Creates a DPU whose bank segments come from a fleet-owned arena,
    /// so per-DPU memory is accounted (and pooled) fleet-wide instead of
    /// living in per-DPU heap objects.
    pub fn with_arena(id: usize, config: &PimConfig, arena: &crate::arena::FleetArena) -> Self {
        Self {
            id,
            memory: DpuMemory::with_arena(config.mram_bytes, config.wram_bytes, arena),
            last_counter: CycleCounter::new(),
            sanitizer: DpuSanitizer::new(id),
            launches: 0,
        }
    }

    /// Index of this DPU within its set.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Host-side access to the MRAM bank (valid only between launches).
    pub fn mram(&self) -> &crate::memory::Bank {
        &self.memory.mram
    }

    /// Host-side mutable access to the MRAM bank.
    pub fn mram_mut(&mut self) -> &mut crate::memory::Bank {
        &mut self.memory.mram
    }

    /// Cycle accounting of the most recent kernel execution on this DPU.
    pub fn last_counter(&self) -> &CycleCounter {
        &self.last_counter
    }

    /// The runtime sanitizer attached to this DPU (drained by the host
    /// after every launch).
    pub fn sanitizer_mut(&mut self) -> &mut DpuSanitizer {
        &mut self.sanitizer
    }

    /// Number of kernel executions attempted on this DPU, including
    /// faulted ones. This is the per-DPU launch index the fault plan
    /// keys its decisions on; it advances identically under every
    /// execution engine.
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Executes `kernel` on this DPU and returns the cycles it took.
    ///
    /// Tasklets run sequentially (the simulator does not model preemption
    /// within a DPU); the cycle count uses the fine-grained multithreading
    /// model: each tasklet's instruction stream issues at an interval of
    /// `max(tasklets, issue_period)` cycles, and the DPU finishes when its
    /// slowest tasklet does.
    ///
    /// # Errors
    ///
    /// Propagates the first [`KernelError`] raised by any tasklet.
    pub fn execute(&mut self, kernel: &dyn Kernel, config: &PimConfig) -> Result<u64, KernelError> {
        let launch = self.launches;
        self.launches += 1;
        if !config.faults.is_none() {
            // All fault decisions key on (seed, dpu, launch) — pure data,
            // so injection is engine-invariant.
            if let Some((byte, mask)) = config.faults.bitflip(self.id, launch) {
                let mut cell = [0u8; 1];
                if self.memory.mram.read(byte, &mut cell).is_ok() {
                    cell[0] ^= mask;
                    let _ = self.memory.mram.write(byte, &cell);
                }
            }
            if config.faults.kernel_fault(self.id, launch) {
                // The abort happens before any kernel work: MRAM is left
                // untouched, so a host-side relaunch is sound.
                return Err(KernelError::Fault(format!(
                    "injected fault (dpu {}, launch {launch})",
                    self.id
                )));
            }
        }
        let tasklets = kernel.tasklets().clamp(1, config.tasklets_per_dpu);
        let interval = config.cost.tasklet_issue_interval(tasklets);
        let sanitize = config.sanitize;
        // Batched tier: try the fused whole-launch sweep first. It is
        // attempted only when nothing that the per-intrinsic path models
        // specially applies — the sanitizer is off and the fault plan
        // does not touch this (dpu, launch) — so falling through below
        // on a decline (or skipping here) reproduces identical
        // observables through the per-intrinsic fast path.
        if config.cost.arith_tier == crate::config::ExecTier::Batched
            && !sanitize.enabled()
            && !config.faults.touches_execution(self.id, launch)
        {
            if let Some(batched) = kernel.batch() {
                let mut ctx =
                    crate::batch::BatchContext::new(self.id, tasklets, &mut self.memory, &config.cost);
                match batched.run_batched(&mut ctx) {
                    Ok(true) => {
                        let (merged, max_cycles) = ctx.finish(interval);
                        self.last_counter = merged;
                        // No straggler fired on this launch (checked
                        // above), so the scale is an identity — applied
                        // anyway for uniformity with the path below.
                        return Ok(config.faults.scale_cycles(self.id, launch, max_cycles));
                    }
                    Ok(false) => {} // declined: interpret per-intrinsic
                    Err(e) => return Err(e),
                }
            }
        }
        self.sanitizer.begin_launch(sanitize, tasklets);
        let mut max_cycles = 0u64;
        let mut merged = CycleCounter::new();
        let mut result = Ok(());
        for tasklet in 0..tasklets {
            let mut ctx = DpuContext::new(self.id, tasklet, &mut self.memory, &config.cost);
            if sanitize.enabled() {
                ctx = ctx.with_sanitizer(&mut self.sanitizer);
            }
            result = kernel.run(&mut ctx);
            let counter = ctx.into_counter();
            if result.is_err() {
                break;
            }
            max_cycles = max_cycles.max(counter.cycles(interval));
            merged.merge(&counter);
        }
        // Run the race detector (and release per-launch logs) even when a
        // tasklet faulted: partial access sets still carry diagnostics.
        self.sanitizer.finish_launch();
        result?;
        self.last_counter = merged;
        // Stragglers stretch the modelled wall cycles of this launch only;
        // the per-class instruction accounting is the real work done.
        Ok(config.faults.scale_cycles(self.id, launch, max_cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PimConfig;

    struct NopKernel;
    impl Kernel for NopKernel {
        fn run(&self, _ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
            Ok(())
        }
    }

    struct AluKernel {
        n: u64,
        tasklets: usize,
    }
    impl Kernel for AluKernel {
        fn tasklets(&self) -> usize {
            self.tasklets
        }
        fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
            ctx.charge_alu(self.n);
            Ok(())
        }
    }

    fn small_config() -> PimConfig {
        PimConfig::builder().mram_bytes(1 << 20).build()
    }

    #[test]
    fn nop_kernel_takes_zero_cycles() {
        let cfg = small_config();
        let mut dpu = Dpu::new(0, &cfg);
        assert_eq!(dpu.execute(&NopKernel, &cfg).unwrap(), 0);
    }

    #[test]
    fn single_tasklet_pays_issue_period() {
        let cfg = small_config();
        let mut dpu = Dpu::new(0, &cfg);
        let cycles = dpu.execute(&AluKernel { n: 100, tasklets: 1 }, &cfg).unwrap();
        assert_eq!(cycles, 100 * 11);
    }

    #[test]
    fn eleven_tasklets_saturate_pipeline() {
        let cfg = small_config();
        let mut dpu = Dpu::new(0, &cfg);
        // Each of the 11 tasklets runs 100 slots; per-tasklet interval is
        // still 11, so the DPU finishes in 1100 cycles — the same wall
        // cycles as one tasklet, but 11× the work: full pipeline usage.
        let cycles = dpu
            .execute(&AluKernel { n: 100, tasklets: 11 }, &cfg)
            .unwrap();
        assert_eq!(cycles, 100 * 11);
        assert_eq!(dpu.last_counter().alu_slots, 100 * 11);
    }

    #[test]
    fn oversubscribed_tasklets_slow_each_stream() {
        let cfg = small_config();
        let mut dpu = Dpu::new(0, &cfg);
        let cycles = dpu
            .execute(&AluKernel { n: 100, tasklets: 22 }, &cfg)
            .unwrap();
        assert_eq!(cycles, 100 * 22);
    }

    #[test]
    fn injected_fault_aborts_before_kernel_work() {
        use crate::faults::FaultPlan;
        let cfg = PimConfig::builder()
            .mram_bytes(1 << 20)
            .faults(FaultPlan::seeded(1).with_dead_dpus(vec![0], 1))
            .build();
        let mut dpu = Dpu::new(0, &cfg);
        // Launch 0 is clean, launch 1+ faults (dead_from_launch = 1).
        assert!(dpu.execute(&AluKernel { n: 5, tasklets: 1 }, &cfg).is_ok());
        assert_eq!(dpu.launches(), 1);
        let err = dpu
            .execute(&AluKernel { n: 5, tasklets: 1 }, &cfg)
            .unwrap_err();
        assert!(err.to_string().contains("injected fault"));
        // The counter still advanced: retries see a fresh launch index.
        assert_eq!(dpu.launches(), 2);
    }

    #[test]
    fn straggler_scales_wall_cycles_not_accounting() {
        use crate::faults::FaultPlan;
        let cfg = PimConfig::builder()
            .mram_bytes(1 << 20)
            .faults(FaultPlan::seeded(3).with_stragglers(1.0, 4.0))
            .build();
        let mut dpu = Dpu::new(0, &cfg);
        // Find a (dpu, launch) pair that actually straggles.
        let mut saw_slowdown = false;
        for _ in 0..8 {
            let cycles = dpu.execute(&AluKernel { n: 100, tasklets: 1 }, &cfg).unwrap();
            assert!(cycles >= 100 * 11);
            assert_eq!(dpu.last_counter().alu_slots, 100);
            if cycles > 100 * 11 {
                saw_slowdown = true;
            }
        }
        assert!(saw_slowdown);
    }

    #[test]
    fn bitflip_lands_inside_the_configured_region() {
        use crate::faults::{FaultPlan, MramRegion};
        let region = MramRegion { offset: 64, len: 8 };
        let cfg = PimConfig::builder()
            .mram_bytes(1 << 20)
            .faults(FaultPlan::seeded(5).with_bitflips(1.0, region))
            .build();
        let mut dpu = Dpu::new(0, &cfg);
        dpu.mram_mut().write(64, &[0u8; 8]).unwrap();
        dpu.execute(&NopKernel, &cfg).unwrap();
        let mut after = [0u8; 8];
        dpu.mram().read(64, &mut after).unwrap();
        let flipped: u32 = after.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn tasklet_count_clamped_to_hardware() {
        let cfg = small_config();
        let mut dpu = Dpu::new(0, &cfg);
        let cycles = dpu
            .execute(&AluKernel { n: 10, tasklets: 1000 }, &cfg)
            .unwrap();
        // Clamped to 24 tasklets.
        assert_eq!(cycles, 10 * 24);
        assert_eq!(dpu.last_counter().alu_slots, 10 * 24);
    }
}
