//! Integer runtime-library emulation: wide multiplies, divides, and the
//! linear congruential generator.
//!
//! UPMEM DPUs natively support 32-bit integer add/sub and an 8-bit
//! multiply; 32-bit (and wider) multiplication and all division is
//! emulated by the runtime library with shift-and-add / restoring-division
//! loops (SwiftRL §2.2, PrIM §3.1.2). The routines here compute exact
//! results while tallying the primitive operations the emulation loop
//! executes, so callers can charge either the tally or the calibrated
//! per-op constants from [`crate::config::OpCosts`].
//!
//! [`Lcg32`] is the linear congruential generator SwiftRL implements as a
//! custom routine because `rand()` is unavailable inside PIM cores
//! (§3.2.1, citing L'Ecuyer & Blouin).

use crate::cost::OpTally;

/// Shift-and-add 32×32→64 unsigned multiply, iterating over the
/// lower-bit-length operand (the emulation's early-exit optimization).
///
/// Returns the exact 64-bit product; `t` receives the executed primitive
/// operation count (≈3 per iteration plus setup).
pub fn umul32_wide(a: u32, b: u32, t: &mut OpTally) -> u64 {
    // Iterate over the operand with fewer significant bits.
    t.add(4);
    let (big, mut small) = if a.leading_zeros() >= b.leading_zeros() {
        (b as u64, a)
    } else {
        (a as u64, b)
    };
    let mut acc: u64 = 0;
    let mut shifted = big;
    while small != 0 {
        if small & 1 != 0 {
            acc = acc.wrapping_add(shifted);
            t.add(2); // 64-bit add = two 32-bit adds
        }
        shifted <<= 1;
        small >>= 1;
        t.add(3); // shift, shift, branch
    }
    acc
}

/// Signed 32×32→64 multiply via [`umul32_wide`] on magnitudes.
pub fn imul32_wide(a: i32, b: i32, t: &mut OpTally) -> i64 {
    t.add(4);
    let neg = (a < 0) ^ (b < 0);
    let mag = umul32_wide(a.unsigned_abs(), b.unsigned_abs(), t);
    let mag = mag as i64;
    if neg {
        t.add(1);
        -mag
    } else {
        mag
    }
}

/// Signed 32×32→32 multiply (wrapping, like the C `int` multiply the
/// runtime library implements).
pub fn imul32(a: i32, b: i32, t: &mut OpTally) -> i32 {
    umul32_wide(a as u32, b as u32, t) as u32 as i32
}

/// Restoring unsigned division with early exit, returning `(quotient,
/// remainder)`.
///
/// # Panics
///
/// Panics if `d == 0`, like the runtime trap on the real hardware.
pub fn udiv32(n: u32, d: u32, t: &mut OpTally) -> (u32, u32) {
    assert!(d != 0, "division by zero in emulated udiv32");
    t.add(4);
    if n < d {
        return (0, n);
    }
    // Restoring loop over only the quotient bits actually produced
    // (early-exit: bit-length difference of the operands).
    let steps = d.leading_zeros() - n.leading_zeros() + 1;
    let mut rem: u32 = if steps >= 32 { 0 } else { n >> steps };
    let mut q: u32 = 0;
    for i in (0..steps).rev() {
        rem = (rem << 1) | ((n >> i) & 1);
        q <<= 1;
        if rem >= d {
            rem -= d;
            q |= 1;
            t.add(2);
        }
        t.add(4);
    }
    (q, rem)
}

/// Signed division truncating toward zero (C semantics), returning
/// `(quotient, remainder)`.
///
/// # Panics
///
/// Panics if `d == 0`.
pub fn idiv32(n: i32, d: i32, t: &mut OpTally) -> (i32, i32) {
    t.add(4);
    let (uq, ur) = udiv32(n.unsigned_abs(), d.unsigned_abs(), t);
    let q = if (n < 0) ^ (d < 0) {
        -(uq as i64)
    } else {
        uq as i64
    };
    let r = if n < 0 { -(ur as i64) } else { ur as i64 };
    (q as i32, r as i32)
}

/// Restoring 64-by-32 unsigned division (used to descale wide fixed-point
/// products), returning `(quotient, remainder)`.
///
/// # Panics
///
/// Panics if `d == 0` or the quotient overflows 64 bits (it cannot for a
/// 32-bit divisor).
pub fn udiv64(n: u64, d: u32, t: &mut OpTally) -> (u64, u32) {
    assert!(d != 0, "division by zero in emulated udiv64");
    t.add(6);
    if n < d as u64 {
        return (0, n as u32);
    }
    let steps = 64 - n.leading_zeros();
    let mut q: u64 = 0;
    let mut rem: u64 = 0;
    for i in (0..steps).rev() {
        rem = (rem << 1) | ((n >> i) & 1);
        q <<= 1;
        if rem >= d as u64 {
            rem -= d as u64;
            q |= 1;
            t.add(2);
        }
        t.add(5); // 64-bit shifts cost two slots each
    }
    (q, rem as u32)
}

/// Signed 64-by-32 division truncating toward zero.
///
/// # Panics
///
/// Panics if `d == 0`.
pub fn idiv64(n: i64, d: i32, t: &mut OpTally) -> i64 {
    t.add(4);
    let (uq, _) = udiv64(n.unsigned_abs(), d.unsigned_abs(), t);
    if (n < 0) ^ (d < 0) {
        -(uq as i64)
    } else {
        uq as i64
    }
}

/// The 32-bit linear congruential generator used in place of `rand()`
/// inside PIM kernels (Numerical Recipes constants; SwiftRL §3.2.1).
///
/// The same generator is deliberately available host-side (in
/// `swiftrl-rl`) so CPU baselines and PIM kernels can be driven by
/// identical random streams.
///
/// ```rust
/// use swiftrl_pim::emul::Lcg32;
///
/// let mut rng = Lcg32::new(42);
/// let a = rng.next_u32();
/// let b = rng.next_u32();
/// assert_ne!(a, b);
/// assert_eq!(Lcg32::new(42).next_u32(), a); // deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lcg32 {
    state: u32,
}

impl Lcg32 {
    /// Multiplier (Numerical Recipes).
    pub const MULTIPLIER: u32 = 1_664_525;
    /// Increment (Numerical Recipes).
    pub const INCREMENT: u32 = 1_013_904_223;

    /// Creates a generator from a seed.
    pub fn new(seed: u32) -> Self {
        Self { state: seed }
    }

    /// Advances the state and returns the next raw 32-bit value.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        self.state = self
            .state
            .wrapping_mul(Self::MULTIPLIER)
            .wrapping_add(Self::INCREMENT);
        self.state
    }

    /// Returns a value uniform in `[0, bound)` by multiply-shift reduction.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "next_below bound must be positive");
        ((self.next_u32() as u64 * bound as u64) >> 32) as u32
    }

    /// Current internal state (for checkpointing).
    pub fn state(&self) -> u32 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> OpTally {
        OpTally::new()
    }

    #[test]
    fn umul_matches_hardware() {
        let cases = [
            (0u32, 0u32),
            (1, 1),
            (0xFFFF_FFFF, 0xFFFF_FFFF),
            (9_500, 123_456),
            (1_000, 2_000_000),
            (3, 0x8000_0000),
        ];
        for (a, b) in cases {
            assert_eq!(umul32_wide(a, b, &mut t()), a as u64 * b as u64);
        }
    }

    #[test]
    fn imul_matches_hardware() {
        let cases = [(-5i32, 7i32), (9500, -20000), (-1, -1), (i32::MIN + 1, 2)];
        for (a, b) in cases {
            assert_eq!(imul32_wide(a, b, &mut t()), a as i64 * b as i64);
            assert_eq!(imul32(a, b, &mut t()), a.wrapping_mul(b));
        }
    }

    #[test]
    fn mul_early_exit_is_cheaper_for_small_operands() {
        let mut small = t();
        umul32_wide(3, 0xFFFF_FFFF, &mut small);
        let mut large = t();
        umul32_wide(0xFFFF_FFF1, 0xFFFF_FFFF, &mut large);
        assert!(small.count() < large.count());
    }

    #[test]
    fn udiv_matches_hardware() {
        let cases = [
            (0u32, 1u32),
            (100, 7),
            (0xFFFF_FFFF, 10_000),
            (0xFFFF_FFFF, 1),
            (10_000, 10_001),
            (123_456_789, 10_000),
        ];
        for (n, d) in cases {
            assert_eq!(udiv32(n, d, &mut t()), (n / d, n % d));
        }
    }

    #[test]
    fn idiv_truncates_toward_zero() {
        let cases = [(-7i32, 2i32), (7, -2), (-7, -2), (19_000_000, 10_000)];
        for (n, d) in cases {
            assert_eq!(idiv32(n, d, &mut t()), (n / d, n % d));
        }
    }

    #[test]
    fn udiv64_matches_hardware() {
        let cases = [
            (0u64, 1u32),
            (19_000_000_000, 10_000),
            (u64::MAX, 0xFFFF_FFFF),
            (9_999, 10_000),
        ];
        for (n, d) in cases {
            assert_eq!(udiv64(n, d, &mut t()), (n / d as u64, (n % d as u64) as u32));
        }
    }

    #[test]
    fn idiv64_signs() {
        assert_eq!(idiv64(-19_000_000_000, 10_000, &mut t()), -1_900_000);
        assert_eq!(idiv64(19_000_000_000, -10_000, &mut t()), -1_900_000);
        assert_eq!(idiv64(-5, -5, &mut t()), 1);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn udiv_by_zero_panics() {
        udiv32(1, 0, &mut t());
    }

    #[test]
    fn lcg_is_deterministic_and_full_period_sampled() {
        let mut a = Lcg32::new(7);
        let mut b = Lcg32::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        // Different seeds diverge.
        let mut c = Lcg32::new(8);
        assert_ne!(a.next_u32(), c.next_u32());
    }

    #[test]
    fn lcg_next_below_in_range_and_roughly_uniform() {
        let mut rng = Lcg32::new(123);
        let bound = 10u32;
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let v = rng.next_below(bound);
            assert!(v < bound);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            // Each bucket should hold roughly 10% ± 3%.
            assert!((7_000..13_000).contains(&c), "bucket count {c}");
        }
    }
}
