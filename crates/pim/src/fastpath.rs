//! Fast-tier arithmetic: host-native results + closed-form cycle tallies.
//!
//! The reference tier ([`crate::softfloat`], [`crate::emul`]) computes every
//! emulated operation with the instrumented bit-serial loops the UPMEM
//! runtime library would execute, tallying each primitive integer op. That
//! fidelity is the simulator's ground truth — but it makes simulated wall
//! clock, not modelled DPU time, dominate every run: a single `f32_div`
//! walks a 26-iteration restoring loop just to produce a quotient the host
//! FPU computes in one instruction.
//!
//! This module is the **fast tier** (selected via
//! [`ArithTier::Fast`](crate::config::ArithTier)). Each operation is split
//! into two functions:
//!
//! * a **value** function that computes the result with host-native
//!   arithmetic. IEEE-754 binary32 round-to-nearest-even is what both the
//!   host FPU and the soft-float library implement, so results are
//!   bit-identical by construction (NaNs are canonicalized to
//!   [`QNAN`](crate::softfloat::QNAN), as the reference tier does);
//! * a **tally** function that evaluates, in closed form, exactly the
//!   [`OpTally`](crate::cost::OpTally) count the reference routine would
//!   have accumulated: leading-zeros-driven iteration counts for the
//!   shift-add multiply and restoring divides, popcounts for their
//!   data-dependent conditional adds, and branch-structure formulas for
//!   the soft-float routines (including the subnormal pre-normalization
//!   and sticky-shift cases).
//!
//! The **batched tier** ([`ArithTier::Batched`](crate::config::ArithTier))
//! reuses the value functions of this module verbatim: the fused host
//! sweep in `swiftrl-core`'s kernels computes every Q-update through the
//! same host-native routines, so batched values are bit-identical to fast
//! (and hence reference) values by construction. What the batched tier
//! replaces is the *charging* — instead of tallying per intrinsic call,
//! it accumulates loop-trip counts and multiplies by the pinned
//! per-intrinsic slot costs at flush (DESIGN.md §14). The tally functions
//! here remain the per-call ground truth that charging is proven against.
//!
//! The contract is strict: **the fast path may never change a bit or a
//! cycle**. `tests/fastpath_parity.rs` proves it differentially —
//! exhaustively over the special-value lattice and by property testing
//! over random bit patterns — and end-to-end over all twelve paper
//! variants. Every tally formula below cites the loop structure in
//! `softfloat.rs` / `emul.rs` it summarizes; when editing either side,
//! keep them in lockstep or the parity suite will fail.

use crate::softfloat::{
    biased_exp, is_inf, is_nan, is_zero, sign, unpack_finite, IMPLICIT_BIT, QNAN, SIGN_MASK,
};

// ---------------------------------------------------------------------------
// Integer emulation (emul.rs)
// ---------------------------------------------------------------------------

/// Value of [`crate::emul::umul32_wide`]: the exact 64-bit product.
#[inline]
pub fn umul32_wide(a: u32, b: u32) -> u64 {
    a as u64 * b as u64
}

/// Tally of [`crate::emul::umul32_wide`]: 4 setup slots, then 3 per
/// iteration over the bit-length of the smaller operand plus 2 per set bit
/// in it (the conditional 64-bit accumulate).
#[inline]
pub fn umul32_wide_tally(a: u32, b: u32) -> u64 {
    // Same selection rule as the loop: on a leading-zeros tie, `a` is small.
    let small = if a.leading_zeros() >= b.leading_zeros() {
        a
    } else {
        b
    };
    4 + 3 * (32 - small.leading_zeros()) as u64 + 2 * small.count_ones() as u64
}

/// Value of [`crate::emul::imul32_wide`]: the exact signed 64-bit product.
#[inline]
pub fn imul32_wide(a: i32, b: i32) -> i64 {
    a as i64 * b as i64
}

/// Tally of [`crate::emul::imul32_wide`]: sign handling around the
/// magnitude multiply, plus 1 slot for the conditional negate.
#[inline]
pub fn imul32_wide_tally(a: i32, b: i32) -> u64 {
    let neg = (a < 0) ^ (b < 0);
    4 + umul32_wide_tally(a.unsigned_abs(), b.unsigned_abs()) + u64::from(neg)
}

/// Value of [`crate::emul::imul32`]: wrapping 32-bit product.
#[inline]
pub fn imul32(a: i32, b: i32) -> i32 {
    a.wrapping_mul(b)
}

/// Tally of [`crate::emul::imul32`]: the raw bit patterns go straight into
/// the unsigned wide multiply (no sign prologue).
#[inline]
pub fn imul32_tally(a: i32, b: i32) -> u64 {
    umul32_wide_tally(a as u32, b as u32)
}

/// Value of [`crate::emul::udiv32`]: `(n / d, n % d)`.
///
/// # Panics
///
/// Panics if `d == 0`, with the reference routine's message.
#[inline]
pub fn udiv32(n: u32, d: u32) -> (u32, u32) {
    assert!(d != 0, "division by zero in emulated udiv32");
    (n / d, n % d)
}

/// Tally of [`crate::emul::udiv32`]: 4 setup slots; if `n >= d`, the
/// restoring loop runs `lz(d) - lz(n) + 1` steps at 4 slots each plus 2
/// per quotient bit set (the early-exit cost the paper variants depend on).
///
/// # Panics
///
/// Panics if `d == 0`.
#[inline]
pub fn udiv32_tally(n: u32, d: u32) -> u64 {
    assert!(d != 0, "division by zero in emulated udiv32");
    if n < d {
        return 4;
    }
    let steps = (d.leading_zeros() - n.leading_zeros() + 1) as u64;
    4 + 4 * steps + 2 * (n / d).count_ones() as u64
}

/// Value of [`crate::emul::idiv32`]: truncating signed divide.
///
/// # Panics
///
/// Panics if `d == 0`.
#[inline]
pub fn idiv32(n: i32, d: i32) -> (i32, i32) {
    assert!(d != 0, "division by zero in emulated udiv32");
    // Mirrors the reference's unsigned-magnitude arithmetic, which defines
    // idiv32(i32::MIN, -1) = (i32::MIN, 0) instead of trapping.
    (n.wrapping_div(d), n.wrapping_rem(d))
}

/// Tally of [`crate::emul::idiv32`]: sign prologue plus the unsigned divide.
///
/// # Panics
///
/// Panics if `d == 0`.
#[inline]
pub fn idiv32_tally(n: i32, d: i32) -> u64 {
    4 + udiv32_tally(n.unsigned_abs(), d.unsigned_abs())
}

/// Value of [`crate::emul::udiv64`]: `(n / d, n % d)`.
///
/// # Panics
///
/// Panics if `d == 0`, with the reference routine's message.
#[inline]
pub fn udiv64(n: u64, d: u32) -> (u64, u32) {
    assert!(d != 0, "division by zero in emulated udiv64");
    (n / d as u64, (n % d as u64) as u32)
}

/// Tally of [`crate::emul::udiv64`]: 6 setup slots; if `n >= d`, the loop
/// runs over all `64 - lz(n)` significand bits at 5 slots each (64-bit
/// shifts cost two slots) plus 2 per quotient bit set.
///
/// # Panics
///
/// Panics if `d == 0`.
#[inline]
pub fn udiv64_tally(n: u64, d: u32) -> u64 {
    assert!(d != 0, "division by zero in emulated udiv64");
    if n < d as u64 {
        return 6;
    }
    let steps = (64 - n.leading_zeros()) as u64;
    6 + 5 * steps + 2 * (n / d as u64).count_ones() as u64
}

/// Value of [`crate::emul::idiv64`]: truncating signed 64-by-32 divide.
///
/// # Panics
///
/// Panics if `d == 0`.
#[inline]
pub fn idiv64(n: i64, d: i32) -> i64 {
    assert!(d != 0, "division by zero in emulated udiv64");
    let uq = n.unsigned_abs() / d.unsigned_abs() as u64;
    // Same sign reconstruction as the reference (wraps identically on the
    // single i64::MIN / 1 edge in release builds).
    if (n < 0) ^ (d < 0) {
        -(uq as i64)
    } else {
        uq as i64
    }
}

/// Tally of [`crate::emul::idiv64`]: sign prologue plus the unsigned divide.
///
/// # Panics
///
/// Panics if `d == 0`.
#[inline]
pub fn idiv64_tally(n: i64, d: i32) -> u64 {
    4 + udiv64_tally(n.unsigned_abs(), d.unsigned_abs())
}

// ---------------------------------------------------------------------------
// Soft-float helpers (value-only mirrors of the instrumented routines)
// ---------------------------------------------------------------------------

/// Canonicalizes a host result the way the reference tier does: every NaN
/// becomes the canonical quiet NaN, everything else keeps its bits.
#[inline]
fn canon(r: f32) -> u32 {
    if r.is_nan() {
        QNAN
    } else {
        r.to_bits()
    }
}

/// Value-only sticky right shift (`softfloat::shift_right_sticky` without
/// the tally side effect); used to reconstruct the pre-rounding significand
/// that the round/pack tally formula inspects.
#[inline]
fn srs_value(m: u32, amount: u32) -> u32 {
    if amount == 0 {
        m
    } else if amount >= 32 {
        u32::from(m != 0)
    } else {
        let sticky = u32::from(m & ((1u32 << amount) - 1) != 0);
        (m >> amount) | sticky
    }
}

/// Tally of `softfloat::round_and_pack` for a 27-bit (24 + GRS) significand
/// `m`: 9 fixed slots, +1 when the RNE increment fires, +2 more when the
/// increment carries out of the significand.
#[inline]
fn round_pack_tally(m: u32) -> u64 {
    let grs = m & 0x7;
    let kept = m >> 3;
    if grs > 4 || (grs == 4 && (kept & 1) != 0) {
        if kept + 1 == (1 << 24) {
            12
        } else {
            10
        }
    } else {
        9
    }
}

// ---------------------------------------------------------------------------
// Soft-float emulation (softfloat.rs)
// ---------------------------------------------------------------------------

/// Value of [`crate::softfloat::f32_add`]: host-native `a + b` (RNE),
/// NaN-canonicalized.
#[inline]
pub fn f32_add(a: u32, b: u32) -> u32 {
    canon(f32::from_bits(a) + f32::from_bits(b))
}

/// Tally of [`crate::softfloat::f32_add`]. Special values resolve in the
/// classification prologue; the general path pays unpacking, one sticky
/// alignment shift, the sign-combine branch, a closed-form normalization
/// count (`min(26 - msb(m), exp - 1)` left shifts, or one right shift on
/// carry), and the round/pack epilogue.
pub fn f32_add_tally(a: u32, b: u32) -> u64 {
    if is_nan(a) || is_nan(b) {
        return 10;
    }
    if is_inf(a) {
        return 12;
    }
    if is_inf(b) {
        return 10;
    }
    if is_zero(b) {
        return 12;
    }
    if is_zero(a) {
        return 10;
    }

    let (sa, ea, ma) = unpack_finite(a);
    let (sb, eb, mb) = unpack_finite(b);
    let mut ma3 = ma << 3;
    let mut mb3 = mb << 3;
    let exp = if ea >= eb {
        mb3 = srs_value(mb3, (ea - eb) as u32);
        ea
    } else {
        ma3 = srs_value(ma3, (eb - ea) as u32);
        eb
    };
    // 10 classify + 8 unpack + 2 guard shifts + 3 align srs + 2 = 25.
    let mut tally = 25u64;
    let mut m = if sa == sb {
        tally += 1;
        ma3 + mb3
    } else {
        tally += 3;
        if ma3 > mb3 {
            ma3 - mb3
        } else if mb3 > ma3 {
            mb3 - ma3
        } else {
            // Exact cancellation returns +0 straight from the subtract.
            return tally;
        }
    };
    tally += 2;
    if m & (1 << 27) != 0 {
        let sticky = m & 1;
        m = (m >> 1) | sticky;
        tally += 3;
    } else {
        // Closed form of the normalization loop: left-shift until the
        // implicit bit reaches 26 or the exponent bottoms out at 1.
        let msb = 31 - m.leading_zeros() as i32;
        let n = (26 - msb).min(exp - 1).max(0) as u32;
        m <<= n;
        tally += 3 * n as u64;
    }
    tally + round_pack_tally(m)
}

/// Value of [`crate::softfloat::f32_sub`]: host-native `a - b`,
/// NaN-canonicalized.
#[inline]
pub fn f32_sub(a: u32, b: u32) -> u32 {
    canon(f32::from_bits(a) - f32::from_bits(b))
}

/// Tally of [`crate::softfloat::f32_sub`]: one slot for the sign flip, then
/// the add tally on the negated operand (NaN `b` short-circuits).
pub fn f32_sub_tally(a: u32, b: u32) -> u64 {
    if is_nan(b) {
        return 1;
    }
    1 + f32_add_tally(a, b ^ SIGN_MASK)
}

/// Value of [`crate::softfloat::f32_mul`]: host-native `a * b`,
/// NaN-canonicalized.
#[inline]
pub fn f32_mul(a: u32, b: u32) -> u32 {
    canon(f32::from_bits(a) * f32::from_bits(b))
}

/// Tally of [`crate::softfloat::f32_mul`]. The 24×24 shift-add multiply
/// always costs 60 slots for pre-normalized significands (3×3 byte partial
/// products); subnormal operands add 3 slots per pre-normalization shift,
/// and results below the normal range pay one sticky shift.
pub fn f32_mul_tally(a: u32, b: u32) -> u64 {
    if is_nan(a) || is_nan(b) {
        return 10;
    }
    if is_inf(a) || is_inf(b) {
        return 14;
    }
    if is_zero(a) || is_zero(b) {
        return 12;
    }

    let (_, ea, ma) = unpack_finite(a);
    let (_, eb, mb) = unpack_finite(b);
    let ka = if ma & IMPLICIT_BIT == 0 {
        ma.leading_zeros() - 8
    } else {
        0
    };
    let kb = if mb & IMPLICIT_BIT == 0 {
        mb.leading_zeros() - 8
    } else {
        0
    };
    let man = ma << ka;
    let mbn = mb << kb;
    let mut exp = ea + eb - 127 - ka as i32 - kb as i32;

    // 10 classify + 2 sign + 8 unpack, pre-norm shifts, 60 for mul24x24,
    // 4 after the product, 4 after the GRS reduction.
    let mut tally = 88 + 3 * (ka + kb) as u64;

    let prod = (man as u64) * (mbn as u64);
    let mut m = if prod & (1u64 << 47) != 0 {
        let sticky = u64::from(prod & ((1u64 << 21) - 1) != 0);
        exp += 1;
        ((prod >> 21) | sticky) as u32
    } else {
        let sticky = u64::from(prod & ((1u64 << 20) - 1) != 0);
        ((prod >> 20) | sticky) as u32
    };
    if exp < 1 {
        m = srs_value(m, (1 - exp) as u32);
        tally += 5;
    }
    tally + round_pack_tally(m)
}

/// Value of [`crate::softfloat::f32_div`]: host-native `a / b`,
/// NaN-canonicalized.
#[inline]
pub fn f32_div(a: u32, b: u32) -> u32 {
    canon(f32::from_bits(a) / f32::from_bits(b))
}

/// Tally of [`crate::softfloat::f32_div`]. The restoring loop always runs
/// 26 iterations at 4 slots each; its data-dependent part is 2 slots per
/// set bit of the 26-bit raw quotient, recovered here with one host divide.
pub fn f32_div_tally(a: u32, b: u32) -> u64 {
    if is_nan(a) || is_nan(b) {
        return 10;
    }
    if is_inf(a) {
        return 13;
    }
    if is_inf(b) {
        return 12;
    }
    if is_zero(b) {
        return 13;
    }
    if is_zero(a) {
        return 12;
    }

    let (_, ea, ma) = unpack_finite(a);
    let (_, eb, mb) = unpack_finite(b);
    let ka = if ma & IMPLICIT_BIT == 0 {
        ma.leading_zeros() - 8
    } else {
        0
    };
    let kb = if mb & IMPLICIT_BIT == 0 {
        mb.leading_zeros() - 8
    } else {
        0
    };
    let man = ma << ka;
    let mbn = mb << kb;
    let mut exp = ea - eb + 127 - ka as i32 + kb as i32;

    let adj = u32::from(man < mbn);
    exp -= adj as i32;
    // Quotient and sticky of the 26-iteration restoring loop, in one host
    // divide: q = floor(man * 2^(25+adj) / mbn), 26 bits by construction.
    let num = (man as u64) << (25 + adj);
    let q = (num / mbn as u64) as u32;
    let sticky = u32::from(!num.is_multiple_of(mbn as u64));
    let mut m = (q << 1) | sticky;

    // 10 classify + 2 sign + 8 unpack, pre-norm, conditional quotient
    // alignment, 26×4 loop slots + 2 per quotient bit, 3 epilogue.
    let mut tally = 20
        + 3 * (ka + kb) as u64
        + 2 * adj as u64
        + 26 * 4
        + 2 * q.count_ones() as u64
        + 3;
    if exp < 1 {
        m = srs_value(m, (1 - exp) as u32);
        tally += 5;
    }
    tally + round_pack_tally(m)
}

/// Tally of [`crate::softfloat::f32_cmp`] (shared by the relational ops):
/// 8 slots for classification, +4 for the key flip when the comparison is
/// actually performed.
#[inline]
pub fn f32_cmp_tally(a: u32, b: u32) -> u64 {
    if is_nan(a) || is_nan(b) || (is_zero(a) && is_zero(b)) {
        8
    } else {
        12
    }
}

/// Value of [`crate::softfloat::f32_gt`]: host-native `a > b` (false on
/// NaN, exactly the reference semantics).
#[inline]
pub fn f32_gt(a: u32, b: u32) -> bool {
    f32::from_bits(a) > f32::from_bits(b)
}

/// Value of [`crate::softfloat::f32_lt`]: host-native `a < b`.
#[inline]
pub fn f32_lt(a: u32, b: u32) -> bool {
    f32::from_bits(a) < f32::from_bits(b)
}

/// Value of [`crate::softfloat::f32_max`]: `maxNum` semantics — prefer the
/// non-NaN operand, canonical NaN when both are NaN, +0 over −0 on ties.
pub fn f32_max(a: u32, b: u32) -> u32 {
    match (is_nan(a), is_nan(b)) {
        (true, true) => QNAN,
        (true, false) => b,
        (false, true) => a,
        (false, false) => {
            let fa = f32::from_bits(a);
            let fb = f32::from_bits(b);
            if fa > fb || (fa == fb && sign(a) == 0) {
                a
            } else {
                b
            }
        }
    }
}

/// Tally of [`crate::softfloat::f32_max`]: 4 slots of NaN handling, plus
/// the compare tally when neither operand is NaN.
#[inline]
pub fn f32_max_tally(a: u32, b: u32) -> u64 {
    if is_nan(a) || is_nan(b) {
        4
    } else {
        4 + f32_cmp_tally(a, b)
    }
}

/// Value of [`crate::softfloat::i32_to_f32`]: host-native `v as f32` (RNE).
#[inline]
pub fn i32_to_f32(v: i32) -> u32 {
    (v as f32).to_bits()
}

/// Tally of [`crate::softfloat::i32_to_f32`]: zero short-circuits; wide
/// magnitudes (top bit above 26) pay a sticky shift instead of the cheap
/// left-shift placement, then round/pack.
pub fn i32_to_f32_tally(v: i32) -> u64 {
    if v == 0 {
        return 4;
    }
    let mag = v.unsigned_abs();
    let msb = 31 - mag.leading_zeros();
    if msb <= 26 {
        10 + round_pack_tally(mag << (26 - msb))
    } else {
        12 + round_pack_tally(srs_value(mag, msb - 26))
    }
}

/// Value of [`crate::softfloat::f32_to_i32`]: host-native `as i32` cast
/// (truncating, saturating, 0 on NaN — identical semantics).
#[inline]
pub fn f32_to_i32(bits: u32) -> i32 {
    f32::from_bits(bits) as i32
}

/// Tally of [`crate::softfloat::f32_to_i32`]: 6 slots through the small
/// and NaN cases, 10 on saturation, 15 on the in-range extraction path.
#[inline]
pub fn f32_to_i32_tally(bits: u32) -> u64 {
    if is_nan(bits) {
        return 6;
    }
    let e = biased_exp(bits);
    if e < 127 {
        6
    } else if e - 127 >= 31 {
        10
    } else {
        15
    }
}

/// Value of [`crate::softfloat::f32_neg`]: sign flip, NaN canonicalized.
#[inline]
pub fn f32_neg(a: u32) -> u32 {
    if is_nan(a) {
        QNAN
    } else {
        a ^ SIGN_MASK
    }
}

/// Tally of [`crate::softfloat::f32_neg`]: always 1 slot.
#[inline]
pub fn f32_neg_tally(_a: u32) -> u64 {
    1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::OpTally;
    use crate::{emul, softfloat};

    /// A compact lattice of interesting f32 bit patterns; the exhaustive
    /// pairwise suite lives in `tests/fastpath_parity.rs`.
    fn f32_lattice() -> Vec<u32> {
        vec![
            0x0000_0000, // +0
            0x8000_0000, // -0
            0x3F80_0000, // 1.0
            0xBF80_0000, // -1.0
            0x7F80_0000, // +inf
            0xFF80_0000, // -inf
            0x7FC0_0000, // canonical qNaN
            0x7F80_0001, // sNaN payload
            0x0000_0001, // min subnormal
            0x007F_FFFF, // max subnormal
            0x0080_0000, // min normal
            0x7F7F_FFFF, // f32::MAX
            0x3DCC_CCCD, // 0.1
            0x4049_0FDB, // pi
            0xC2F6_E979, // -123.456
            0x4EFF_FFFF, // ~2^31, near i32 saturation
        ]
    }

    #[test]
    fn float_binops_match_reference_on_lattice() {
        for &a in &f32_lattice() {
            for &b in &f32_lattice() {
                let mut t = OpTally::new();
                assert_eq!(f32_add(a, b), softfloat::f32_add(a, b, &mut t), "add {a:#x} {b:#x}");
                assert_eq!(f32_add_tally(a, b), t.count(), "add tally {a:#x} {b:#x}");

                let mut t = OpTally::new();
                assert_eq!(f32_mul(a, b), softfloat::f32_mul(a, b, &mut t), "mul {a:#x} {b:#x}");
                assert_eq!(f32_mul_tally(a, b), t.count(), "mul tally {a:#x} {b:#x}");

                let mut t = OpTally::new();
                assert_eq!(f32_div(a, b), softfloat::f32_div(a, b, &mut t), "div {a:#x} {b:#x}");
                assert_eq!(f32_div_tally(a, b), t.count(), "div tally {a:#x} {b:#x}");

                let mut t = OpTally::new();
                assert_eq!(f32_sub(a, b), softfloat::f32_sub(a, b, &mut t), "sub {a:#x} {b:#x}");
                assert_eq!(f32_sub_tally(a, b), t.count(), "sub tally {a:#x} {b:#x}");

                let mut t = OpTally::new();
                assert_eq!(f32_max(a, b), softfloat::f32_max(a, b, &mut t), "max {a:#x} {b:#x}");
                assert_eq!(f32_max_tally(a, b), t.count(), "max tally {a:#x} {b:#x}");

                let mut t = OpTally::new();
                assert_eq!(f32_gt(a, b), softfloat::f32_gt(a, b, &mut t), "gt {a:#x} {b:#x}");
                assert_eq!(f32_cmp_tally(a, b), t.count(), "gt tally {a:#x} {b:#x}");
            }
        }
    }

    #[test]
    fn integer_ops_match_reference() {
        let vals = [0u32, 1, 2, 3, 7, 255, 256, 9_500, 0x8000_0000, u32::MAX];
        for &a in &vals {
            for &b in &vals {
                let mut t = OpTally::new();
                assert_eq!(umul32_wide(a, b), emul::umul32_wide(a, b, &mut t));
                assert_eq!(umul32_wide_tally(a, b), t.count(), "umul tally {a} {b}");
                if b != 0 {
                    let mut t = OpTally::new();
                    assert_eq!(udiv32(a, b), emul::udiv32(a, b, &mut t));
                    assert_eq!(udiv32_tally(a, b), t.count(), "udiv tally {a} {b}");
                }
            }
        }
    }

    #[test]
    fn idiv32_min_by_minus_one_matches_reference() {
        let mut t = OpTally::new();
        assert_eq!(
            idiv32(i32::MIN, -1),
            emul::idiv32(i32::MIN, -1, &mut t)
        );
        assert_eq!(idiv32_tally(i32::MIN, -1), t.count());
    }
}
