//! Deterministic, seeded fault injection for the simulated platform.
//!
//! SwiftRL's platform is 2,524 real DPUs; individual cores fault
//! independently and the host observes failures only at sync. The PrIM
//! characterization the paper builds on (Gómez-Luna et al., IEEE Access
//! 2022) additionally reports rank-level variability and stragglers as
//! first-class effects. A [`FaultPlan`] attached to
//! [`PimConfig`](crate::config::PimConfig) reproduces those effects in
//! the simulator:
//!
//! * **failed/stuck DPUs** — the kernel aborts before executing, leaving
//!   the DPU's MRAM untouched (a relaunch is therefore sound);
//! * **stragglers** — a per-DPU multiplier on the launch's modelled
//!   cycle count (wall time only; instruction accounting is unchanged);
//! * **MRAM bit flips** — a single bit flipped in a chosen MRAM region
//!   before the kernel runs;
//! * **host-transfer faults** — a CPU→PIM transfer payload corrupted
//!   (one byte XORed) or dropped in flight (time and bytes are still
//!   charged — the host does not know the transfer failed).
//!
//! Every decision is a pure function of `(plan seed, fault stream, DPU
//! index, per-DPU launch counter | host transfer sequence number)`. The
//! launch counter is owned by the [`Dpu`](crate::dpu::Dpu) and the
//! transfer sequence by the [`DpuSet`](crate::host::DpuSet) — both are
//! engine-invariant, so a seeded plan produces bit-identical faults under
//! [`ExecutionEngine::Serial`](crate::engine::ExecutionEngine) and
//! `Threaded`, for any worker count. [`FaultPlan::none`] (the default)
//! injects nothing and leaves every simulated observable bit-identical
//! to a build without this module.

use serde::{Deserialize, Serialize};

/// A half-open byte region `[offset, offset + len)` of a DPU's MRAM bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MramRegion {
    /// First byte of the region.
    pub offset: usize,
    /// Region length in bytes.
    pub len: usize,
}

/// A deterministic, seeded plan of faults to inject during execution.
///
/// All rates are probabilities in `[0, 1]` evaluated independently per
/// `(DPU, launch)` or per `(transfer, DPU)` event. The plan is plain
/// data: cloning or serializing it preserves the exact fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the fault schedule. Two plans with equal fields produce
    /// identical faults on identical workloads.
    pub seed: u64,
    /// Probability that a DPU's kernel aborts on a given launch.
    #[serde(default)]
    pub dpu_fail_rate: f64,
    /// DPUs that fail deterministically on every launch whose per-DPU
    /// launch counter is `>= dead_from_launch` (permanent failures).
    #[serde(default)]
    pub dead_dpus: Vec<usize>,
    /// First per-DPU launch index at which `dead_dpus` start failing.
    #[serde(default)]
    pub dead_from_launch: u64,
    /// Probability that a DPU straggles on a given launch.
    #[serde(default)]
    pub straggler_rate: f64,
    /// Worst-case cycle multiplier for a straggling DPU; the actual
    /// multiplier is drawn uniformly from `[1, straggler_slowdown]`.
    #[serde(default = "one")]
    pub straggler_slowdown: f64,
    /// Probability that one MRAM bit flips in `bitflip_region` before a
    /// DPU executes a launch. Ignored unless a region is set.
    #[serde(default)]
    pub bitflip_rate: f64,
    /// MRAM region bit flips are confined to (e.g. the Q-table).
    #[serde(default)]
    pub bitflip_region: Option<MramRegion>,
    /// Probability that a CPU→PIM transfer to a given DPU lands with one
    /// byte XOR-corrupted.
    #[serde(default)]
    pub transfer_corrupt_rate: f64,
    /// Probability that a CPU→PIM transfer to a given DPU is dropped in
    /// flight (the payload never lands; time and bytes are still charged
    /// because the host cannot observe the loss).
    #[serde(default)]
    pub transfer_drop_rate: f64,
}

// Referenced only through `#[serde(default = "one")]` above.
#[allow(dead_code)]
fn one() -> f64 {
    1.0
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

// Distinct per-kind stream constants keep the fault categories
// statistically independent under one seed.
const STREAM_FAIL: u64 = 0xA1;
const STREAM_STRAGGLE: u64 = 0xB2;
const STREAM_STRAGGLE_MUL: u64 = 0xB3;
const STREAM_FLIP: u64 = 0xC4;
const STREAM_FLIP_POS: u64 = 0xC5;
const STREAM_XFER_CORRUPT: u64 = 0xD6;
const STREAM_XFER_DROP: u64 = 0xD7;

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The empty plan: injects nothing. Simulated results are
    /// bit-identical to a platform without fault injection.
    pub fn none() -> Self {
        Self {
            seed: 0,
            dpu_fail_rate: 0.0,
            dead_dpus: Vec::new(),
            dead_from_launch: 0,
            straggler_rate: 0.0,
            straggler_slowdown: 1.0,
            bitflip_rate: 0.0,
            bitflip_region: None,
            transfer_corrupt_rate: 0.0,
            transfer_drop_rate: 0.0,
        }
    }

    /// A plan with the given schedule seed and no faults enabled yet.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..FaultPlan::none()
        }
    }

    /// Sets the per-launch kernel-abort probability.
    pub fn with_dpu_fail_rate(mut self, rate: f64) -> Self {
        self.dpu_fail_rate = rate;
        self
    }

    /// Marks DPUs as permanently dead from per-DPU launch index
    /// `from_launch` onward.
    pub fn with_dead_dpus(mut self, dpus: Vec<usize>, from_launch: u64) -> Self {
        self.dead_dpus = dpus;
        self.dead_from_launch = from_launch;
        self
    }

    /// Sets the straggler probability and worst-case slowdown.
    pub fn with_stragglers(mut self, rate: f64, slowdown: f64) -> Self {
        self.straggler_rate = rate;
        self.straggler_slowdown = slowdown.max(1.0);
        self
    }

    /// Sets the per-launch MRAM bit-flip probability within `region`.
    pub fn with_bitflips(mut self, rate: f64, region: MramRegion) -> Self {
        self.bitflip_rate = rate;
        self.bitflip_region = Some(region);
        self
    }

    /// Sets the CPU→PIM corruption and drop probabilities.
    pub fn with_transfer_faults(mut self, corrupt_rate: f64, drop_rate: f64) -> Self {
        self.transfer_corrupt_rate = corrupt_rate;
        self.transfer_drop_rate = drop_rate;
        self
    }

    /// True if this plan can never inject a fault. The hot paths use
    /// this to skip fault evaluation entirely.
    pub fn is_none(&self) -> bool {
        self.dpu_fail_rate <= 0.0
            && self.dead_dpus.is_empty()
            && self.straggler_rate <= 0.0
            && (self.bitflip_rate <= 0.0 || self.bitflip_region.is_none())
            && self.transfer_corrupt_rate <= 0.0
            && self.transfer_drop_rate <= 0.0
    }

    fn draw(&self, stream: u64, a: u64, b: u64) -> u64 {
        mix64(self.seed ^ mix64(stream ^ mix64(a ^ mix64(b))))
    }

    /// A uniform draw in `[0, 1)` for the given stream and event key.
    fn unit(&self, stream: u64, a: u64, b: u64) -> f64 {
        // 53 high bits -> exactly representable dyadic rational in [0,1).
        (self.draw(stream, a, b) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Should DPU `dpu`'s kernel abort on its `launch`-th execution?
    pub fn kernel_fault(&self, dpu: usize, launch: u64) -> bool {
        if launch >= self.dead_from_launch && self.dead_dpus.contains(&dpu) {
            return true;
        }
        self.dpu_fail_rate > 0.0 && self.unit(STREAM_FAIL, dpu as u64, launch) < self.dpu_fail_rate
    }

    /// Applies the straggler multiplier (if any) to a launch's cycle
    /// count. Identity when the DPU does not straggle.
    pub fn scale_cycles(&self, dpu: usize, launch: u64, cycles: u64) -> u64 {
        if self.straggler_rate <= 0.0
            || self.straggler_slowdown <= 1.0
            || self.unit(STREAM_STRAGGLE, dpu as u64, launch) >= self.straggler_rate
        {
            return cycles;
        }
        let extra = self.unit(STREAM_STRAGGLE_MUL, dpu as u64, launch)
            * (self.straggler_slowdown - 1.0);
        (cycles as f64 * (1.0 + extra)).round() as u64
    }

    /// Does this plan touch the *execution* of DPU `dpu`'s launch
    /// `launch` in any way — injected abort, MRAM bit flip, or straggler
    /// slowdown? The batched execution tier uses this to fall back to
    /// the per-intrinsic path for exactly the launches whose fault
    /// semantics it must not re-implement; like every other decision
    /// here it is pure data keyed on `(seed, dpu, launch)`, so the
    /// answer is engine-invariant.
    pub fn touches_execution(&self, dpu: usize, launch: u64) -> bool {
        if self.is_none() {
            return false;
        }
        let straggles = self.straggler_rate > 0.0
            && self.straggler_slowdown > 1.0
            && self.unit(STREAM_STRAGGLE, dpu as u64, launch) < self.straggler_rate;
        straggles || self.kernel_fault(dpu, launch) || self.bitflip(dpu, launch).is_some()
    }

    /// The MRAM bit flip (byte offset, bit mask) to apply before DPU
    /// `dpu` executes launch `launch`, if any.
    pub fn bitflip(&self, dpu: usize, launch: u64) -> Option<(usize, u8)> {
        let region = self.bitflip_region?;
        if self.bitflip_rate <= 0.0
            || region.len == 0
            || self.unit(STREAM_FLIP, dpu as u64, launch) >= self.bitflip_rate
        {
            return None;
        }
        let bit = self.draw(STREAM_FLIP_POS, dpu as u64, launch) as usize % (region.len * 8);
        Some((region.offset + bit / 8, 1u8 << (bit % 8)))
    }

    /// The in-flight corruption (byte index, XOR mask) for CPU→PIM
    /// transfer number `seq` to DPU `dpu`, if any. `len` is the payload
    /// length in bytes.
    pub fn corrupt_transfer(&self, seq: u64, dpu: usize, len: usize) -> Option<(usize, u8)> {
        if self.transfer_corrupt_rate <= 0.0
            || len == 0
            || self.unit(STREAM_XFER_CORRUPT, seq, dpu as u64) >= self.transfer_corrupt_rate
        {
            return None;
        }
        let r = self.draw(STREAM_XFER_CORRUPT ^ 1, seq, dpu as u64);
        let pos = (r >> 8) as usize % len;
        // Guarantee a non-zero mask so a "corrupted" transfer always
        // differs from the intended payload.
        let mask = 1u8 << (r % 8);
        Some((pos, mask))
    }

    /// Is CPU→PIM transfer number `seq` to DPU `dpu` dropped in flight?
    pub fn drop_transfer(&self, seq: u64, dpu: usize) -> bool {
        self.transfer_drop_rate > 0.0
            && self.unit(STREAM_XFER_DROP, seq, dpu as u64) < self.transfer_drop_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert_and_default() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        assert_eq!(plan, FaultPlan::default());
        assert!(!plan.kernel_fault(0, 0));
        assert_eq!(plan.scale_cycles(3, 7, 1000), 1000);
        assert_eq!(plan.bitflip(0, 0), None);
        assert_eq!(plan.corrupt_transfer(0, 0, 64), None);
        assert!(!plan.drop_transfer(0, 0));
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::seeded(42)
            .with_dpu_fail_rate(0.3)
            .with_stragglers(0.5, 4.0)
            .with_bitflips(0.5, MramRegion { offset: 64, len: 256 })
            .with_transfer_faults(0.2, 0.2);
        let b = a.clone();
        for dpu in 0..32 {
            for launch in 0..16u64 {
                assert_eq!(a.kernel_fault(dpu, launch), b.kernel_fault(dpu, launch));
                assert_eq!(
                    a.scale_cycles(dpu, launch, 999),
                    b.scale_cycles(dpu, launch, 999)
                );
                assert_eq!(a.bitflip(dpu, launch), b.bitflip(dpu, launch));
                assert_eq!(
                    a.corrupt_transfer(launch, dpu, 64),
                    b.corrupt_transfer(launch, dpu, 64)
                );
                assert_eq!(a.drop_transfer(launch, dpu), b.drop_transfer(launch, dpu));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::seeded(1).with_dpu_fail_rate(0.5);
        let b = FaultPlan::seeded(2).with_dpu_fail_rate(0.5);
        let hits_a: Vec<bool> = (0..64).map(|d| a.kernel_fault(d, 0)).collect();
        let hits_b: Vec<bool> = (0..64).map(|d| b.kernel_fault(d, 0)).collect();
        assert_ne!(hits_a, hits_b);
    }

    #[test]
    fn rate_one_always_fires() {
        let plan = FaultPlan::seeded(7).with_dpu_fail_rate(1.0);
        for dpu in 0..64 {
            assert!(plan.kernel_fault(dpu, 3));
        }
    }

    #[test]
    fn rates_approximate_probabilities() {
        let plan = FaultPlan::seeded(11).with_dpu_fail_rate(0.25);
        let hits = (0..4000)
            .filter(|&d| plan.kernel_fault(d, 0))
            .count() as f64;
        assert!((hits / 4000.0 - 0.25).abs() < 0.05);
    }

    #[test]
    fn dead_dpus_fail_from_the_configured_launch() {
        let plan = FaultPlan::seeded(0).with_dead_dpus(vec![2, 5], 3);
        assert!(!plan.kernel_fault(2, 0));
        assert!(!plan.kernel_fault(2, 2));
        assert!(plan.kernel_fault(2, 3));
        assert!(plan.kernel_fault(5, 100));
        assert!(!plan.kernel_fault(4, 100));
    }

    #[test]
    fn straggler_never_speeds_up_and_is_bounded() {
        let plan = FaultPlan::seeded(9).with_stragglers(1.0, 3.0);
        for dpu in 0..64 {
            let scaled = plan.scale_cycles(dpu, 0, 10_000);
            assert!(scaled >= 10_000);
            assert!(scaled <= 30_000 + 1);
        }
        // Some DPU actually straggles at rate 1.0.
        assert!((0..64).any(|d| plan.scale_cycles(d, 0, 10_000) > 10_000));
    }

    #[test]
    fn bitflips_stay_inside_the_region() {
        let region = MramRegion { offset: 128, len: 40 };
        let plan = FaultPlan::seeded(13).with_bitflips(1.0, region);
        for dpu in 0..64 {
            let (byte, mask) = plan.bitflip(dpu, 1).unwrap();
            assert!(byte >= region.offset);
            assert!(byte < region.offset + region.len);
            assert_eq!(mask.count_ones(), 1);
        }
    }

    #[test]
    fn transfer_corruption_indexes_the_payload() {
        let plan = FaultPlan::seeded(17).with_transfer_faults(1.0, 0.0);
        for seq in 0..64u64 {
            let (pos, mask) = plan.corrupt_transfer(seq, 0, 24).unwrap();
            assert!(pos < 24);
            assert_ne!(mask, 0);
        }
    }

    #[test]
    fn seeded_builder_chain_matches_field_construction() {
        let plan = FaultPlan::seeded(23)
            .with_dpu_fail_rate(0.1)
            .with_bitflips(0.2, MramRegion { offset: 0, len: 8 });
        assert_eq!(plan.seed, 23);
        assert!(!plan.is_none());
        assert_eq!(plan.bitflip_region, Some(MramRegion { offset: 0, len: 8 }));
    }
}
