//! Bit-accurate IEEE-754 binary32 software floating point.
//!
//! UPMEM DPUs have no floating-point unit: the runtime library emulates
//! every FP operation with integer instructions, which is the paper's
//! stated reason for the FP32 workloads' poor performance and for the
//! INT32 fixed-point optimization (SwiftRL §3.2.1, §5). This module is the
//! simulator's runtime library: each routine computes the exact IEEE-754
//! round-to-nearest-even result using integer operations only, while
//! tallying the primitive integer operations it executes into an
//! [`OpTally`]. The tally is charged to the DPU as
//! [`OpClass::FloatEmul`](crate::cost::OpClass) slots, so emulated floating
//! point is *naturally* data-dependently expensive, exactly like the real
//! runtime library ("tens to thousands of cycles").
//!
//! All functions operate on raw `u32` bit patterns so that kernels cannot
//! accidentally fall back to host floating point.
//!
//! NaN results are canonicalized to the quiet NaN `0x7FC0_0000`; inputs
//! with any NaN produce that canonical NaN. All other results (including
//! signed zeros, subnormals and infinities) are bit-exact with hardware
//! IEEE-754 arithmetic, which the property tests in `tests/softfloat.rs`
//! verify against the host FPU.

use crate::cost::OpTally;

/// Canonical quiet NaN returned by all emulated operations.
pub const QNAN: u32 = 0x7FC0_0000;
/// Positive infinity bit pattern.
pub const PLUS_INF: u32 = 0x7F80_0000;
/// Negative infinity bit pattern.
pub const MINUS_INF: u32 = 0xFF80_0000;

pub(crate) const SIGN_MASK: u32 = 0x8000_0000;
const EXP_MASK: u32 = 0x7F80_0000;
const FRAC_MASK: u32 = 0x007F_FFFF;
pub(crate) const IMPLICIT_BIT: u32 = 0x0080_0000;

/// Returns `true` if `bits` encodes a NaN.
#[inline]
pub fn is_nan(bits: u32) -> bool {
    (bits & EXP_MASK) == EXP_MASK && (bits & FRAC_MASK) != 0
}

/// Returns `true` if `bits` encodes ±∞.
#[inline]
pub fn is_inf(bits: u32) -> bool {
    (bits & !SIGN_MASK) == PLUS_INF
}

/// Returns `true` if `bits` encodes ±0.
#[inline]
pub fn is_zero(bits: u32) -> bool {
    (bits & !SIGN_MASK) == 0
}

#[inline]
pub(crate) fn sign(bits: u32) -> u32 {
    bits >> 31
}

#[inline]
pub(crate) fn biased_exp(bits: u32) -> i32 {
    ((bits & EXP_MASK) >> 23) as i32
}

#[inline]
fn fraction(bits: u32) -> u32 {
    bits & FRAC_MASK
}

/// Unpacks into (sign, exponent, significand-with-implicit-bit), treating
/// subnormals as exponent 1 without the implicit bit. Must not be called
/// on NaN/∞.
#[inline]
pub(crate) fn unpack_finite(bits: u32) -> (u32, i32, u32) {
    let e = biased_exp(bits);
    let f = fraction(bits);
    if e == 0 {
        (sign(bits), 1, f)
    } else {
        (sign(bits), e, f | IMPLICIT_BIT)
    }
}

/// Right-shifts `m` by `amount`, OR-ing all shifted-out bits into the
/// lowest result bit (sticky shift), as required by IEEE rounding.
#[inline]
fn shift_right_sticky(m: u32, amount: u32, t: &mut OpTally) -> u32 {
    t.add(3);
    if amount == 0 {
        m
    } else if amount >= 32 {
        u32::from(m != 0)
    } else {
        let sticky = u32::from(m & ((1u32 << amount) - 1) != 0);
        (m >> amount) | sticky
    }
}

/// Rounds a significand carrying 3 extra GRS bits to nearest-even and packs
/// the result. `exp` is the biased exponent of the (possibly denormalized)
/// significand whose implicit bit, when present, sits at bit 26.
fn round_and_pack(sign: u32, mut exp: i32, mut m: u32, t: &mut OpTally) -> u32 {
    // Round to nearest, ties to even, on the low 3 bits.
    t.add(6);
    let grs = m & 0x7;
    m >>= 3;
    if grs > 4 || (grs == 4 && (m & 1) != 0) {
        m += 1;
        t.add(1);
        if m == (1 << 24) {
            // Rounding overflowed the significand: renormalize.
            m >>= 1;
            exp += 1;
            t.add(2);
        }
    }
    t.add(3);
    if exp >= 255 {
        return (sign << 31) | PLUS_INF;
    }
    if m & IMPLICIT_BIT == 0 {
        // Subnormal (or zero): exponent field is 0. Reachable only when the
        // normalization loop bottomed out at exp == 1.
        debug_assert!(exp == 1 || m == 0);
        return (sign << 31) | m;
    }
    (sign << 31) | ((exp as u32) << 23) | (m & FRAC_MASK)
}

/// Emulated IEEE-754 addition: `a + b` with round-to-nearest-even.
pub fn f32_add(a: u32, b: u32, t: &mut OpTally) -> u32 {
    // Unpack + classification overhead of the runtime routine.
    t.add(10);
    if is_nan(a) || is_nan(b) {
        return QNAN;
    }
    if is_inf(a) {
        t.add(2);
        if is_inf(b) && sign(a) != sign(b) {
            return QNAN;
        }
        return a;
    }
    if is_inf(b) {
        return b;
    }
    if is_zero(b) {
        t.add(2);
        if is_zero(a) {
            // (+0)+(+0)=+0, (-0)+(-0)=-0, mixed = +0 under RNE.
            return a & b & SIGN_MASK;
        }
        return a;
    }
    if is_zero(a) {
        return b;
    }

    let (sa, ea, ma) = unpack_finite(a);
    let (sb, eb, mb) = unpack_finite(b);
    t.add(8);

    // 3 guard bits for rounding.
    let mut ma = ma << 3;
    let mut mb = mb << 3;
    t.add(2);

    // Align to the larger exponent.
    let exp = if ea >= eb {
        mb = shift_right_sticky(mb, (ea - eb) as u32, t);
        ea
    } else {
        ma = shift_right_sticky(ma, (eb - ea) as u32, t);
        eb
    };
    t.add(2);

    let (rsign, mut m, mut exp) = if sa == sb {
        t.add(1);
        (sa, ma + mb, exp)
    } else {
        // Effective subtraction: larger magnitude wins the sign.
        t.add(3);
        if ma > mb {
            (sa, ma - mb, exp)
        } else if mb > ma {
            (sb, mb - ma, exp)
        } else {
            // Exact cancellation: +0 under round-to-nearest.
            return 0;
        }
    };

    // Normalize. The aligned significand with implicit bit occupies bit 26;
    // same-sign addition can carry into bit 27.
    t.add(2);
    if m & (1 << 27) != 0 {
        let sticky = m & 1;
        m = (m >> 1) | sticky;
        exp += 1;
        t.add(3);
    } else {
        while m & (1 << 26) == 0 && exp > 1 {
            m <<= 1;
            exp -= 1;
            t.add(3);
        }
    }

    round_and_pack(rsign, exp, m, t)
}

/// Emulated IEEE-754 subtraction: `a - b`.
pub fn f32_sub(a: u32, b: u32, t: &mut OpTally) -> u32 {
    t.add(1);
    if is_nan(b) {
        return QNAN;
    }
    f32_add(a, b ^ SIGN_MASK, t)
}

/// Multiplies two 24-bit significands into a 48-bit product using the
/// DPU's native 8×8-bit multiply steps (nine partial products), tallying
/// each step. This mirrors how the UPMEM runtime composes wide multiplies
/// from `mul_step` instructions.
fn mul24x24(a: u32, b: u32, t: &mut OpTally) -> u64 {
    let mut acc: u64 = 0;
    let mut shift_a = 0u32;
    let mut aa = a;
    while aa != 0 {
        let byte_a = (aa & 0xFF) as u64;
        let mut bb = b;
        let mut shift_b = 0u32;
        while bb != 0 {
            let byte_b = (bb & 0xFF) as u64;
            // mul8 + shift + 64-bit add (two 32-bit adds on the DPU).
            acc += (byte_a * byte_b) << (shift_a + shift_b);
            t.add(4);
            bb >>= 8;
            shift_b += 8;
            t.add(2);
        }
        aa >>= 8;
        shift_a += 8;
        t.add(2);
    }
    acc
}

/// Emulated IEEE-754 multiplication: `a * b` with round-to-nearest-even.
pub fn f32_mul(a: u32, b: u32, t: &mut OpTally) -> u32 {
    t.add(10);
    if is_nan(a) || is_nan(b) {
        return QNAN;
    }
    let rsign = sign(a) ^ sign(b);
    t.add(2);
    if is_inf(a) || is_inf(b) {
        t.add(2);
        if is_zero(a) || is_zero(b) {
            return QNAN; // 0 × ∞
        }
        return (rsign << 31) | PLUS_INF;
    }
    if is_zero(a) || is_zero(b) {
        return rsign << 31;
    }

    let (_, ea, mut ma) = unpack_finite(a);
    let (_, eb, mut mb) = unpack_finite(b);
    t.add(8);

    // Pre-normalize subnormal significands so the implicit bit is at 23.
    let mut exp = ea + eb - 127;
    while ma & IMPLICIT_BIT == 0 {
        ma <<= 1;
        exp -= 1;
        t.add(3);
    }
    while mb & IMPLICIT_BIT == 0 {
        mb <<= 1;
        exp -= 1;
        t.add(3);
    }

    // 24×24 → 48-bit product; top bit at 47 or 46.
    let prod = mul24x24(ma, mb, t);
    t.add(4);

    // Reduce to a 27-bit significand (24 + 3 GRS) with sticky.
    let (mut m, mut exp) = if prod & (1u64 << 47) != 0 {
        // Keep bits [47..21]; sticky from bits [20..0].
        let sticky = u64::from(prod & ((1u64 << 21) - 1) != 0);
        (((prod >> 21) | sticky) as u32, exp + 1)
    } else {
        let sticky = u64::from(prod & ((1u64 << 20) - 1) != 0);
        (((prod >> 20) | sticky) as u32, exp)
    };
    t.add(4);

    // Underflow toward subnormal: shift right until exp reaches 1.
    if exp < 1 {
        let shift = (1 - exp) as u32;
        m = shift_right_sticky(m, shift, t);
        exp = 1;
        t.add(2);
    }

    round_and_pack(rsign, exp, m, t)
}

/// Emulated IEEE-754 division: `a / b` with round-to-nearest-even.
///
/// Uses a bit-at-a-time restoring division over the significands, as the
/// runtime library does — by far the slowest emulated operation.
pub fn f32_div(a: u32, b: u32, t: &mut OpTally) -> u32 {
    t.add(10);
    if is_nan(a) || is_nan(b) {
        return QNAN;
    }
    let rsign = sign(a) ^ sign(b);
    t.add(2);
    if is_inf(a) {
        t.add(1);
        if is_inf(b) {
            return QNAN;
        }
        return (rsign << 31) | PLUS_INF;
    }
    if is_inf(b) {
        return rsign << 31;
    }
    if is_zero(b) {
        t.add(1);
        if is_zero(a) {
            return QNAN; // 0 / 0
        }
        return (rsign << 31) | PLUS_INF;
    }
    if is_zero(a) {
        return rsign << 31;
    }

    let (_, ea, mut ma) = unpack_finite(a);
    let (_, eb, mut mb) = unpack_finite(b);
    t.add(8);

    let mut exp = ea - eb + 127;
    while ma & IMPLICIT_BIT == 0 {
        ma <<= 1;
        exp -= 1;
        t.add(3);
    }
    // Normalizing the divisor shrinks it, so the quotient grows.
    while mb & IMPLICIT_BIT == 0 {
        mb <<= 1;
        exp += 1;
        t.add(3);
    }

    // Long division producing 24 quotient bits + guard/round, plus sticky
    // from any remainder.
    let mut rem = (ma as u64) << 26; // numerator with room for 26 quotient bits
    let den = (mb as u64) << 26;
    let mut q: u32 = 0;
    // Normalize quotient position: ma/mb ∈ [0.5, 2).
    if (ma as u64) < (mb as u64) {
        exp -= 1;
        rem <<= 1;
        t.add(2);
    }
    for _ in 0..26 {
        q <<= 1;
        if rem >= den {
            rem -= den;
            q |= 1;
            t.add(2);
        }
        rem <<= 1;
        t.add(4);
    }
    let sticky = u32::from(rem != 0);
    let mut m = (q << 1) | sticky; // 26 bits + sticky = 27-bit GRS form
    t.add(3);

    if exp < 1 {
        let shift = (1 - exp) as u32;
        m = shift_right_sticky(m, shift, t);
        exp = 1;
        t.add(2);
    }

    round_and_pack(rsign, exp, m, t)
}

/// Total ordering comparison used by the emulated relational operators.
/// Returns `None` when either operand is NaN (all comparisons false).
pub fn f32_cmp(a: u32, b: u32, t: &mut OpTally) -> Option<core::cmp::Ordering> {
    t.add(8);
    if is_nan(a) || is_nan(b) {
        return None;
    }
    if is_zero(a) && is_zero(b) {
        return Some(core::cmp::Ordering::Equal);
    }
    // Flip negative values to make the bit patterns totally ordered.
    let ka = if a & SIGN_MASK != 0 { !a } else { a | SIGN_MASK };
    let kb = if b & SIGN_MASK != 0 { !b } else { b | SIGN_MASK };
    t.add(4);
    Some(ka.cmp(&kb))
}

/// Emulated `a > b` (false on NaN).
pub fn f32_gt(a: u32, b: u32, t: &mut OpTally) -> bool {
    matches!(f32_cmp(a, b, t), Some(core::cmp::Ordering::Greater))
}

/// Emulated `a < b` (false on NaN).
pub fn f32_lt(a: u32, b: u32, t: &mut OpTally) -> bool {
    matches!(f32_cmp(a, b, t), Some(core::cmp::Ordering::Less))
}

/// IEEE-754 `maxNum`-style maximum: propagates the non-NaN operand,
/// canonical NaN if both are NaN, and prefers +0 over −0.
pub fn f32_max(a: u32, b: u32, t: &mut OpTally) -> u32 {
    t.add(4);
    match (is_nan(a), is_nan(b)) {
        (true, true) => QNAN,
        (true, false) => b,
        (false, true) => a,
        (false, false) => match f32_cmp(a, b, t) {
            Some(core::cmp::Ordering::Less) => b,
            Some(core::cmp::Ordering::Equal) => {
                // max(+0, -0) = +0 by sign preference.
                if sign(a) == 0 {
                    a
                } else {
                    b
                }
            }
            _ => a,
        },
    }
}

/// Converts a signed 32-bit integer to the nearest f32 (RNE), emulated.
pub fn i32_to_f32(v: i32, t: &mut OpTally) -> u32 {
    t.add(4);
    if v == 0 {
        return 0;
    }
    let sign = u32::from(v < 0);
    let mag = v.unsigned_abs();
    t.add(3);
    // Position of the leading one (DPU has a native clz).
    let lz = mag.leading_zeros();
    let msb = 31 - lz;
    t.add(2);
    let exp = 127 + msb as i32;
    // Build a 27-bit (24 + GRS) significand with the leading one at bit 26.
    let m = if msb <= 26 {
        t.add(1);
        mag << (26 - msb)
    } else {
        shift_right_sticky(mag, msb - 26, t)
    };
    round_and_pack(sign, exp, m, t)
}

/// Converts an f32 to i32 with truncation toward zero (C semantics),
/// saturating on overflow and returning 0 for NaN, emulated.
pub fn f32_to_i32(bits: u32, t: &mut OpTally) -> i32 {
    t.add(6);
    if is_nan(bits) {
        return 0;
    }
    let neg = sign(bits) == 1;
    let e = biased_exp(bits);
    if e < 127 {
        // |x| < 1 truncates to 0 (covers zeros and subnormals).
        return 0;
    }
    let exp = e - 127;
    t.add(4);
    if exp >= 31 {
        // Saturate like the runtime conversion helpers do; also covers ∞.
        // i32::MIN is exactly representable, so accept exp == 31 for it.
        if neg && exp == 31 && fraction(bits) == 0 && !is_inf(bits) {
            return i32::MIN;
        }
        return if neg { i32::MIN } else { i32::MAX };
    }
    let m = fraction(bits) | IMPLICIT_BIT;
    t.add(3);
    let mag = if exp >= 23 {
        (m as u64) << (exp - 23)
    } else {
        (m >> (23 - exp)) as u64
    };
    t.add(2);
    let val = mag as i64;
    if neg {
        (-val) as i32
    } else {
        val as i32
    }
}

/// Emulated negation (sign-bit flip; NaN is canonicalized).
pub fn f32_neg(a: u32, t: &mut OpTally) -> u32 {
    t.add(1);
    if is_nan(a) {
        return QNAN;
    }
    a ^ SIGN_MASK
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> OpTally {
        OpTally::new()
    }

    fn add_f(a: f32, b: f32) -> f32 {
        f32::from_bits(f32_add(a.to_bits(), b.to_bits(), &mut t()))
    }

    fn mul_f(a: f32, b: f32) -> f32 {
        f32::from_bits(f32_mul(a.to_bits(), b.to_bits(), &mut t()))
    }

    fn div_f(a: f32, b: f32) -> f32 {
        f32::from_bits(f32_div(a.to_bits(), b.to_bits(), &mut t()))
    }

    fn assert_bits_eq(ours: f32, host: f32) {
        assert_eq!(
            ours.to_bits(),
            host.to_bits(),
            "ours={ours} ({:#010x}) host={host} ({:#010x})",
            ours.to_bits(),
            host.to_bits()
        );
    }

    #[test]
    fn add_simple_cases() {
        for (a, b) in [
            (1.0f32, 2.0f32),
            (0.1, 0.2),
            (1.5e-3, -2.5e-3),
            (3.4e38, 3.4e38),
            (1.0, -1.0),
            (-0.0, 0.0),
            (1e-40, 1e-40),
            (1.0, 1e-30),
            (123456.78, -123_456.7),
        ] {
            assert_bits_eq(add_f(a, b), a + b);
        }
    }

    #[test]
    fn add_signed_zero_rules() {
        assert_eq!(add_f(0.0, -0.0).to_bits(), 0);
        assert_eq!(add_f(-0.0, -0.0).to_bits(), (-0.0f32).to_bits());
        assert_eq!(add_f(1.0, -1.0).to_bits(), 0);
    }

    #[test]
    fn add_infinities() {
        assert_eq!(add_f(f32::INFINITY, 1.0), f32::INFINITY);
        assert_eq!(add_f(f32::NEG_INFINITY, -1.0), f32::NEG_INFINITY);
        assert!(add_f(f32::INFINITY, f32::NEG_INFINITY).is_nan());
    }

    #[test]
    fn add_nan_propagates_canonical() {
        assert_eq!(f32_add(QNAN, 0x3F80_0000, &mut t()), QNAN);
        assert_eq!(f32_add(0x3F80_0000, 0x7FC0_0001, &mut t()), QNAN);
    }

    #[test]
    fn add_overflow_to_infinity() {
        assert_eq!(add_f(f32::MAX, f32::MAX), f32::INFINITY);
        assert_eq!(add_f(f32::MIN, f32::MIN), f32::NEG_INFINITY);
    }

    #[test]
    fn mul_simple_cases() {
        for (a, b) in [
            (1.0f32, 2.0f32),
            (0.1, 0.95),
            (-3.25, 7.5),
            (1e-20, 1e-20),
            (1e20, 1e20),
            (1.0000001, 0.9999999),
            (6.0e-39, 0.5), // subnormal result
            (1.2e-38, 1e-5),
        ] {
            assert_bits_eq(mul_f(a, b), a * b);
        }
    }

    #[test]
    fn mul_special_values() {
        assert!(mul_f(0.0, f32::INFINITY).is_nan());
        assert_eq!(mul_f(-2.0, f32::INFINITY), f32::NEG_INFINITY);
        assert_eq!(mul_f(-0.0, 5.0).to_bits(), (-0.0f32).to_bits());
        assert_eq!(mul_f(1e30, 1e30), f32::INFINITY);
    }

    #[test]
    fn mul_subnormal_operands() {
        let tiny = f32::from_bits(1); // smallest positive subnormal
        assert_bits_eq(mul_f(tiny, 2.0), tiny * 2.0);
        assert_bits_eq(mul_f(tiny, 0.5), tiny * 0.5);
        let sub = f32::from_bits(0x0000_1234);
        assert_bits_eq(mul_f(sub, 1024.0), sub * 1024.0);
    }

    #[test]
    fn div_simple_cases() {
        for (a, b) in [
            (1.0f32, 3.0f32),
            (10.0, 4.0),
            (-7.0, 2.0),
            (1.0, 10000.0),
            (0.1, 0.95),
            (1e30, 1e-10),
            (5.0e-39, 2.0),
        ] {
            assert_bits_eq(div_f(a, b), a / b);
        }
    }

    #[test]
    fn div_special_values() {
        assert!(div_f(0.0, 0.0).is_nan());
        assert!(div_f(f32::INFINITY, f32::INFINITY).is_nan());
        assert_eq!(div_f(1.0, 0.0), f32::INFINITY);
        assert_eq!(div_f(-1.0, 0.0), f32::NEG_INFINITY);
        assert_eq!(div_f(1.0, f32::INFINITY), 0.0);
    }

    #[test]
    fn cmp_matches_host() {
        let vals = [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            1e-40,
            -1e-40,
            3.5,
        ];
        for &a in &vals {
            for &b in &vals {
                let ours = f32_cmp(a.to_bits(), b.to_bits(), &mut t());
                assert_eq!(ours, a.partial_cmp(&b), "cmp({a}, {b})");
            }
        }
        assert_eq!(f32_cmp(QNAN, 0, &mut t()), None);
    }

    #[test]
    fn max_prefers_non_nan_and_positive_zero() {
        assert_eq!(f32_max(QNAN, 0x3F80_0000, &mut t()), 0x3F80_0000);
        assert_eq!(f32_max(0x3F80_0000, QNAN, &mut t()), 0x3F80_0000);
        assert_eq!(f32_max(QNAN, QNAN, &mut t()), QNAN);
        let pz = 0.0f32.to_bits();
        let nz = (-0.0f32).to_bits();
        assert_eq!(f32_max(nz, pz, &mut t()), pz);
        assert_eq!(f32_max(pz, nz, &mut t()), pz);
    }

    #[test]
    fn i32_conversion_round_trip() {
        for v in [
            0i32,
            1,
            -1,
            42,
            -9999,
            10_000,
            16_777_216,
            16_777_217, // rounds: not exactly representable
            i32::MAX,
            i32::MIN,
        ] {
            let ours = f32::from_bits(i32_to_f32(v, &mut t()));
            assert_bits_eq(ours, v as f32);
        }
    }

    #[test]
    fn f32_to_i32_truncates() {
        for v in [0.0f32, 0.9, -0.9, 1.5, -1.5, 12345.678, -12345.678, 2.0e9] {
            assert_eq!(f32_to_i32(v.to_bits(), &mut t()), v as i32, "conv {v}");
        }
        assert_eq!(f32_to_i32(QNAN, &mut t()), 0);
        assert_eq!(f32_to_i32(PLUS_INF, &mut t()), i32::MAX);
        assert_eq!(f32_to_i32(MINUS_INF, &mut t()), i32::MIN);
        assert_eq!(f32_to_i32((-2.147_483_6e9_f32).to_bits(), &mut t()), i32::MIN);
    }

    #[test]
    fn ops_are_tallied() {
        let mut tally = OpTally::new();
        f32_mul(0.1f32.to_bits(), 0.95f32.to_bits(), &mut tally);
        let mul_cost = tally.count();
        assert!(mul_cost > 30, "fp mul should be expensive, got {mul_cost}");

        let mut tally = OpTally::new();
        f32_add(1.0f32.to_bits(), 2.0f32.to_bits(), &mut tally);
        let add_cost = tally.count();
        assert!(add_cost > 15, "fp add should cost real work, got {add_cost}");

        let mut tally = OpTally::new();
        f32_div(1.0f32.to_bits(), 3.0f32.to_bits(), &mut tally);
        let div_cost = tally.count();
        assert!(
            div_cost > mul_cost,
            "div ({div_cost}) should out-cost mul ({mul_cost})"
        );
    }

    #[test]
    fn neg_flips_sign() {
        assert_eq!(f32_neg(1.0f32.to_bits(), &mut t()), (-1.0f32).to_bits());
        assert_eq!(f32_neg(QNAN, &mut t()), QNAN);
    }
}
