//! Runtime sanitizer for the DPU simulator.
//!
//! The static analyzer (`swiftrl-analysis`) enforces kernel discipline at
//! the source level; this module enforces it at *run time*, observing every
//! WRAM access and DMA transfer a kernel issues. It is strictly
//! observation-only: enabling it never changes kernel results or cycle
//! counts (a property pinned by the `sanitizer_parity` tests), so it can be
//! left on in CI and turned off in production sweeps.
//!
//! Checks by [`SanitizeLevel`]:
//!
//! * [`SanitizeLevel::Memory`] — reads of WRAM bytes no kernel ever wrote
//!   (the scratchpad powers up with undefined contents on real hardware;
//!   the simulator's deterministic zero-fill would mask the bug), plus
//!   misaligned-DMA and host-access-during-launch observations.
//! * [`SanitizeLevel::Full`] — everything above, plus a per-launch tasklet
//!   access-set race detector: write-write or read-write overlap between
//!   two tasklets within one launch is reported, since tasklet interleaving
//!   on real hardware makes such kernels nondeterministic.
//!
//! Findings accumulate per DPU and are drained by the host into a
//! [`crate::report::SanitizerReport`] after every launch.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::memory::MemoryKind;

/// How much runtime checking the simulator performs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SanitizeLevel {
    /// No checking, no overhead (the default).
    #[default]
    Off,
    /// Shadow-memory checks: uninitialized WRAM reads, misaligned DMA,
    /// host access during a launch.
    Memory,
    /// `Memory` plus the cross-tasklet race detector.
    Full,
}

impl SanitizeLevel {
    /// True if any checking is enabled.
    pub fn enabled(self) -> bool {
        self != SanitizeLevel::Off
    }

    /// True if the race detector is enabled.
    pub fn races(self) -> bool {
        self == SanitizeLevel::Full
    }
}

/// A set of disjoint, sorted, non-adjacent `[start, end)` byte intervals.
///
/// Used both as shadow memory (which WRAM bytes have been initialized) and
/// as per-tasklet access logs for the race detector.
#[derive(Debug, Clone, Default)]
pub struct IntervalSet {
    // start -> end, maintained disjoint and non-adjacent.
    runs: BTreeMap<usize, usize>,
}

impl IntervalSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes all intervals.
    pub fn clear(&mut self) {
        self.runs.clear();
    }

    /// True if no bytes are covered.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Inserts `[start, start + len)`, merging with neighbours.
    pub fn insert(&mut self, start: usize, len: usize) {
        if len == 0 {
            return;
        }
        let end = start.saturating_add(len);
        let mut new_start = start;
        let mut new_end = end;
        // Absorb any run beginning at or before `end` that touches us.
        // A predecessor run that reaches `start` (or beyond) merges too.
        if let Some((&s, &e)) = self.runs.range(..=new_end).next_back() {
            if e >= new_start {
                new_start = new_start.min(s);
                new_end = new_end.max(e);
            }
        }
        let absorbed: Vec<usize> = self
            .runs
            .range(new_start..=new_end)
            .map(|(&s, _)| s)
            .collect();
        for s in absorbed {
            if let Some(e) = self.runs.remove(&s) {
                new_end = new_end.max(e);
            }
        }
        // The predecessor (if merged) may start before `new_start`'s range.
        if let Some((&s, &e)) = self.runs.range(..new_start).next_back() {
            if e >= new_start {
                self.runs.remove(&s);
                new_start = s;
                new_end = new_end.max(e);
            }
        }
        self.runs.insert(new_start, new_end);
    }

    /// True if every byte of `[start, start + len)` is covered.
    pub fn covers(&self, start: usize, len: usize) -> bool {
        if len == 0 {
            return true;
        }
        let end = start.saturating_add(len);
        match self.runs.range(..=start).next_back() {
            Some((_, &e)) => e >= end,
            None => false,
        }
    }

    /// Returns the first overlapping byte range between `self` and `other`,
    /// if any.
    pub fn first_overlap(&self, other: &IntervalSet) -> Option<(usize, usize)> {
        // Merge-walk the two sorted run lists.
        let mut a = self.runs.iter();
        let mut b = other.runs.iter();
        let (mut ra, mut rb) = (a.next(), b.next());
        while let (Some((&as_, &ae)), Some((&bs, &be))) = (ra, rb) {
            let lo = as_.max(bs);
            let hi = ae.min(be);
            if lo < hi {
                return Some((lo, hi));
            }
            if ae <= be {
                ra = a.next();
            } else {
                rb = b.next();
            }
        }
        None
    }

    /// Total number of bytes covered.
    pub fn covered_bytes(&self) -> usize {
        self.runs.iter().map(|(s, e)| e - s).sum()
    }
}

/// What a sanitizer finding reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FindingKind {
    /// A kernel read WRAM bytes that were never written.
    UninitWramRead {
        /// Start offset of the read.
        offset: usize,
        /// Length of the read in bytes.
        len: usize,
    },
    /// A DMA transfer violated the 8-byte alignment/granularity contract.
    MisalignedDma {
        /// Which memory the misaligned side touched.
        kind: MemoryKind,
        /// Transfer offset.
        offset: usize,
        /// Transfer length.
        len: usize,
    },
    /// Two tasklets touched the same bytes in one launch and at least one
    /// of them wrote: the kernel's result depends on tasklet interleaving.
    TaskletRace {
        /// Which memory the overlap is in.
        kind: MemoryKind,
        /// First tasklet involved.
        tasklet_a: usize,
        /// Second tasklet involved.
        tasklet_b: usize,
        /// Start of the overlapping byte range.
        start: usize,
        /// End (exclusive) of the overlapping byte range.
        end: usize,
        /// True for write-write overlap, false for read-write.
        write_write: bool,
    },
    /// The host touched MRAM while a kernel was running on the set.
    HostAccessDuringLaunch {
        /// MRAM offset of the host access.
        offset: usize,
        /// Length of the host access.
        len: usize,
    },
}

/// One sanitizer diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SanitizerFinding {
    /// DPU the finding occurred on.
    pub dpu: usize,
    /// Tasklet that triggered it, when attributable to one.
    pub tasklet: Option<usize>,
    /// What happened.
    pub kind: FindingKind,
}

impl fmt::Display for SanitizerFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dpu {}", self.dpu)?;
        if let Some(t) = self.tasklet {
            write!(f, " tasklet {t}")?;
        }
        match &self.kind {
            FindingKind::UninitWramRead { offset, len } => {
                write!(
                    f,
                    ": read of uninitialized WRAM [{offset}, {})",
                    offset + len
                )
            }
            FindingKind::MisalignedDma { kind, offset, len } => {
                let name = match kind {
                    MemoryKind::Mram => "MRAM",
                    MemoryKind::Wram => "WRAM",
                };
                write!(f, ": misaligned {name} DMA at offset {offset}, len {len}")
            }
            FindingKind::TaskletRace {
                kind,
                tasklet_a,
                tasklet_b,
                start,
                end,
                write_write,
            } => {
                let name = match kind {
                    MemoryKind::Mram => "MRAM",
                    MemoryKind::Wram => "WRAM",
                };
                let what = if *write_write {
                    "write-write"
                } else {
                    "read-write"
                };
                write!(
                    f,
                    ": {what} race on {name} [{start}, {end}) between tasklets \
                     {tasklet_a} and {tasklet_b}"
                )
            }
            FindingKind::HostAccessDuringLaunch { offset, len } => {
                write!(
                    f,
                    ": host MRAM access [{offset}, {}) while a kernel is running",
                    offset + len
                )
            }
        }
    }
}

/// Per-tasklet access log for one launch.
#[derive(Debug, Clone, Default)]
struct TaskletLog {
    wram_reads: IntervalSet,
    wram_writes: IntervalSet,
    mram_reads: IntervalSet,
    mram_writes: IntervalSet,
}

/// Cap on findings retained per DPU; the rest are counted but dropped so a
/// pathological kernel cannot exhaust host memory with diagnostics.
pub const MAX_FINDINGS_PER_DPU: usize = 64;

/// The per-DPU runtime sanitizer.
///
/// Owned by [`crate::dpu::Dpu`]; attached to each [`crate::kernel::DpuContext`]
/// while a launch is in flight (when the configured level enables it).
/// Strictly observation-only: it never mutates memory or cycle counters.
#[derive(Debug, Clone, Default)]
pub struct DpuSanitizer {
    dpu_id: usize,
    level: SanitizeLevel,
    /// Shadow memory: WRAM bytes some kernel has written. Persists across
    /// launches, like the SRAM contents themselves.
    wram_init: IntervalSet,
    /// Per-tasklet access logs for the launch in flight (race detection).
    logs: Vec<TaskletLog>,
    findings: Vec<SanitizerFinding>,
    /// Findings dropped beyond [`MAX_FINDINGS_PER_DPU`].
    dropped: u64,
}

impl DpuSanitizer {
    /// Creates an idle sanitizer for one DPU.
    pub fn new(dpu_id: usize) -> Self {
        Self {
            dpu_id,
            ..Self::default()
        }
    }

    /// The level configured for the launch in flight.
    pub fn level(&self) -> SanitizeLevel {
        self.level
    }

    /// Starts a launch window: sets the level and resets per-launch state.
    pub fn begin_launch(&mut self, level: SanitizeLevel, tasklets: usize) {
        self.level = level;
        self.logs.clear();
        if level.races() {
            self.logs.resize_with(tasklets, TaskletLog::default);
        }
    }

    /// Ends the launch window: runs the race detector over the per-tasklet
    /// access logs and releases them.
    pub fn finish_launch(&mut self) {
        if self.level.races() {
            self.detect_races();
        }
        self.logs.clear();
        self.level = SanitizeLevel::Off;
    }

    fn push(&mut self, tasklet: Option<usize>, kind: FindingKind) {
        if self.findings.len() >= MAX_FINDINGS_PER_DPU {
            self.dropped += 1;
            return;
        }
        self.findings.push(SanitizerFinding {
            dpu: self.dpu_id,
            tasklet,
            kind,
        });
    }

    /// Records a kernel WRAM write.
    #[inline(never)]
    pub fn note_wram_write(&mut self, tasklet: usize, offset: usize, len: usize) {
        self.wram_init.insert(offset, len);
        if let Some(log) = self.logs.get_mut(tasklet) {
            log.wram_writes.insert(offset, len);
        }
    }

    /// Records a kernel WRAM read, flagging uninitialized bytes.
    #[inline(never)]
    pub fn note_wram_read(&mut self, tasklet: usize, offset: usize, len: usize) {
        if !self.wram_init.covers(offset, len) {
            self.push(Some(tasklet), FindingKind::UninitWramRead { offset, len });
        }
        if let Some(log) = self.logs.get_mut(tasklet) {
            log.wram_reads.insert(offset, len);
        }
    }

    /// Records a kernel-side MRAM read (DMA into WRAM or a direct buffer).
    #[inline(never)]
    pub fn note_mram_read(&mut self, tasklet: usize, offset: usize, len: usize) {
        if let Some(log) = self.logs.get_mut(tasklet) {
            log.mram_reads.insert(offset, len);
        }
    }

    /// Records a kernel-side MRAM write.
    #[inline(never)]
    pub fn note_mram_write(&mut self, tasklet: usize, offset: usize, len: usize) {
        if let Some(log) = self.logs.get_mut(tasklet) {
            log.mram_writes.insert(offset, len);
        }
    }

    /// Records a misaligned DMA attempt (also a hard [`crate::memory::MemoryError`]).
    pub fn note_misaligned(&mut self, tasklet: usize, kind: MemoryKind, offset: usize, len: usize) {
        self.push(
            Some(tasklet),
            FindingKind::MisalignedDma { kind, offset, len },
        );
    }

    /// Records a host MRAM access that raced a running kernel.
    pub fn note_host_access(&mut self, offset: usize, len: usize) {
        self.push(None, FindingKind::HostAccessDuringLaunch { offset, len });
    }

    fn detect_races(&mut self) {
        let mut found = Vec::new();
        for a in 0..self.logs.len() {
            for b in (a + 1)..self.logs.len() {
                let (la, lb) = (&self.logs[a], &self.logs[b]);
                let pairs: [(MemoryKind, &IntervalSet, &IntervalSet, bool); 6] = [
                    (MemoryKind::Wram, &la.wram_writes, &lb.wram_writes, true),
                    (MemoryKind::Wram, &la.wram_reads, &lb.wram_writes, false),
                    (MemoryKind::Wram, &la.wram_writes, &lb.wram_reads, false),
                    (MemoryKind::Mram, &la.mram_writes, &lb.mram_writes, true),
                    (MemoryKind::Mram, &la.mram_reads, &lb.mram_writes, false),
                    (MemoryKind::Mram, &la.mram_writes, &lb.mram_reads, false),
                ];
                for (kind, sa, sb, write_write) in pairs {
                    if let Some((start, end)) = sa.first_overlap(sb) {
                        found.push(FindingKind::TaskletRace {
                            kind,
                            tasklet_a: a,
                            tasklet_b: b,
                            start,
                            end,
                            write_write,
                        });
                    }
                }
            }
        }
        for kind in found {
            self.push(None, kind);
        }
    }

    /// Takes all findings accumulated since the last drain, plus the count
    /// of findings dropped over the per-DPU cap.
    pub fn drain(&mut self) -> (Vec<SanitizerFinding>, u64) {
        let dropped = std::mem::take(&mut self.dropped);
        (std::mem::take(&mut self.findings), dropped)
    }

    /// Bytes of WRAM currently tracked as initialized (for stats/tests).
    pub fn wram_initialized_bytes(&self) -> usize {
        self.wram_init.covered_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_insert_merges_and_covers() {
        let mut s = IntervalSet::new();
        s.insert(8, 8);
        s.insert(24, 8);
        assert!(s.covers(8, 8));
        assert!(!s.covers(8, 16));
        assert!(!s.covers(0, 4));
        // Fill the gap: [8,16) + [16,24) + [24,32) merge into [8,32).
        s.insert(16, 8);
        assert!(s.covers(8, 24));
        assert_eq!(s.covered_bytes(), 24);
        assert_eq!(s.runs.len(), 1);
    }

    #[test]
    fn interval_insert_absorbs_contained_runs() {
        let mut s = IntervalSet::new();
        s.insert(10, 2);
        s.insert(20, 2);
        s.insert(30, 2);
        s.insert(0, 100);
        assert_eq!(s.runs.len(), 1);
        assert!(s.covers(0, 100));
        // Overlapping-left extension.
        let mut t = IntervalSet::new();
        t.insert(10, 10);
        t.insert(5, 10);
        assert!(t.covers(5, 15));
        assert_eq!(t.runs.len(), 1);
    }

    #[test]
    fn interval_overlap_walks_both_sets() {
        let mut a = IntervalSet::new();
        a.insert(0, 8);
        a.insert(100, 8);
        let mut b = IntervalSet::new();
        b.insert(8, 8); // adjacent, not overlapping
        b.insert(104, 2);
        assert_eq!(a.first_overlap(&b), Some((104, 106)));
        let empty = IntervalSet::new();
        assert_eq!(a.first_overlap(&empty), None);
    }

    #[test]
    fn uninit_read_flagged_until_written() {
        let mut san = DpuSanitizer::new(3);
        san.begin_launch(SanitizeLevel::Memory, 1);
        san.note_wram_read(0, 64, 8);
        san.note_wram_write(0, 64, 8);
        san.note_wram_read(0, 64, 8); // now initialized — clean
        san.finish_launch();
        let (findings, dropped) = san.drain();
        assert_eq!(dropped, 0);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].dpu, 3);
        assert_eq!(findings[0].tasklet, Some(0));
        assert!(matches!(
            findings[0].kind,
            FindingKind::UninitWramRead { offset: 64, len: 8 }
        ));
    }

    #[test]
    fn wram_init_persists_across_launches() {
        let mut san = DpuSanitizer::new(0);
        san.begin_launch(SanitizeLevel::Memory, 1);
        san.note_wram_write(0, 0, 128);
        san.finish_launch();
        san.begin_launch(SanitizeLevel::Memory, 1);
        san.note_wram_read(0, 0, 128);
        san.finish_launch();
        assert!(san.drain().0.is_empty());
    }

    #[test]
    fn race_detector_flags_write_write_and_read_write() {
        let mut san = DpuSanitizer::new(0);
        san.begin_launch(SanitizeLevel::Full, 3);
        // Tasklets 0 and 1 both write [0,8): WW race.
        san.note_wram_write(0, 0, 8);
        san.note_wram_write(1, 0, 8);
        // Tasklet 2 reads what tasklet 0 wrote: RW race.
        san.note_wram_read(2, 0, 4);
        san.finish_launch();
        let (findings, _) = san.drain();
        let ww = findings.iter().any(|f| {
            matches!(
                f.kind,
                FindingKind::TaskletRace {
                    write_write: true,
                    tasklet_a: 0,
                    tasklet_b: 1,
                    ..
                }
            )
        });
        let rw = findings.iter().any(
            |f| matches!(f.kind, FindingKind::TaskletRace { write_write: false, .. }),
        );
        assert!(ww, "{findings:?}");
        assert!(rw, "{findings:?}");
    }

    #[test]
    fn disjoint_tasklets_are_race_free() {
        let mut san = DpuSanitizer::new(0);
        san.begin_launch(SanitizeLevel::Full, 2);
        san.note_wram_write(0, 0, 64);
        san.note_wram_write(1, 64, 64);
        san.note_wram_read(0, 0, 64);
        san.note_wram_read(1, 64, 64);
        // Shared read-only MRAM is fine.
        san.note_mram_read(0, 0, 1024);
        san.note_mram_read(1, 0, 1024);
        san.finish_launch();
        assert!(san.drain().0.is_empty());
    }

    #[test]
    fn race_detection_off_below_full() {
        let mut san = DpuSanitizer::new(0);
        san.begin_launch(SanitizeLevel::Memory, 2);
        san.note_wram_write(0, 0, 8);
        san.note_wram_write(1, 0, 8);
        san.finish_launch();
        assert!(san.drain().0.is_empty());
    }

    #[test]
    fn findings_cap_counts_dropped() {
        let mut san = DpuSanitizer::new(0);
        san.begin_launch(SanitizeLevel::Memory, 1);
        for i in 0..(MAX_FINDINGS_PER_DPU + 10) {
            san.note_wram_read(0, i * 16, 8);
        }
        san.finish_launch();
        let (findings, dropped) = san.drain();
        assert_eq!(findings.len(), MAX_FINDINGS_PER_DPU);
        assert_eq!(dropped, 10);
        // Drain resets both.
        assert_eq!(san.drain(), (Vec::new(), 0));
    }

    #[test]
    fn finding_display_is_informative() {
        let f = SanitizerFinding {
            dpu: 7,
            tasklet: Some(2),
            kind: FindingKind::UninitWramRead { offset: 32, len: 8 },
        };
        let s = f.to_string();
        assert!(s.contains("dpu 7") && s.contains("tasklet 2") && s.contains("[32, 40)"));
        let r = SanitizerFinding {
            dpu: 0,
            tasklet: None,
            kind: FindingKind::TaskletRace {
                kind: MemoryKind::Wram,
                tasklet_a: 0,
                tasklet_b: 1,
                start: 0,
                end: 8,
                write_write: true,
            },
        };
        assert!(r.to_string().contains("write-write race on WRAM"));
    }
}
