//! Per-DPU memories: the MRAM DRAM bank and the WRAM scratchpad.
//!
//! On UPMEM hardware each DPU owns a 64-MB DRAM bank (MRAM) and a 64-KB
//! SRAM scratchpad (WRAM). The DPU pipeline can only operate on WRAM;
//! data moves between MRAM and WRAM through an explicit DMA engine with
//! 8-byte granularity. The host can read and write MRAM (but not WRAM)
//! while no kernel is running.
//!
//! Banks are lazily materialized in fixed
//! [`BANK_SEGMENT_BYTES`]-sized segments drawn from a
//! [`FleetArena`] shared by the whole DPU set: a segment only consumes
//! host memory once a byte inside it is written, which keeps
//! thousand-DPU fleets affordable (an idle 64-MB bank costs a vector of
//! `None` slots) while still enforcing the capacity limits. Unwritten
//! bytes read as zero. Cloning a bank is cheap — segments are shared and
//! copied on write — and every allocated byte is accounted by the arena,
//! so fleet-wide memory ceilings are queryable at any quiescent point.
//!
//! The read/write paths here are reachable from kernel code through the
//! `DpuContext` DMA intrinsics, so their tokens must satisfy the
//! analyzer's kernel-discipline rules; buffer creation lives in the
//! arena (see its module docs).

use std::fmt;
use std::sync::Arc;

use crate::arena::{FleetArena, SegmentArc};
pub use crate::arena::BANK_SEGMENT_BYTES;

/// Error raised by out-of-range or misaligned memory accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoryError {
    /// The access extends past the bank capacity.
    OutOfRange {
        /// Attempted end offset of the access.
        end: usize,
        /// Capacity of the bank in bytes.
        capacity: usize,
        /// Which memory was accessed.
        kind: MemoryKind,
    },
    /// A DMA transfer violated the engine's alignment/granularity rules.
    Misaligned {
        /// Offset the transfer started at.
        offset: usize,
        /// Length of the transfer in bytes.
        len: usize,
        /// Required alignment/granule in bytes.
        granule: usize,
        /// Which memory was accessed.
        kind: MemoryKind,
    },
}

/// Which memory an error refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryKind {
    /// The per-DPU DRAM bank.
    Mram,
    /// The per-DPU scratchpad.
    Wram,
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::OutOfRange {
                end,
                capacity,
                kind,
            } => {
                let name = match kind {
                    MemoryKind::Mram => "MRAM",
                    MemoryKind::Wram => "WRAM",
                };
                write!(
                    f,
                    "{name} access ends at byte {end} but the bank holds {capacity} bytes"
                )
            }
            MemoryError::Misaligned {
                offset,
                len,
                granule,
                kind,
            } => {
                let name = match kind {
                    MemoryKind::Mram => "MRAM",
                    MemoryKind::Wram => "WRAM",
                };
                write!(
                    f,
                    "misaligned {name} DMA: offset {offset} / length {len} must be \
                     multiples of the {granule}-byte DMA granule"
                )
            }
        }
    }
}

impl std::error::Error for MemoryError {}

/// A lazily-segmented byte bank with a hard capacity.
///
/// Cloning shares the materialized segments copy-on-write.
#[derive(Debug, Clone)]
pub struct Bank {
    segments: Vec<Option<SegmentArc>>,
    capacity: usize,
    kind: MemoryKind,
    arena: FleetArena,
}

impl Bank {
    /// Creates an empty bank with the given capacity, backed by its own
    /// private arena (tests and standalone use).
    pub fn new(capacity: usize, kind: MemoryKind) -> Self {
        Self::with_arena(capacity, kind, FleetArena::new())
    }

    /// Creates an empty bank drawing segments from `arena`.
    pub fn with_arena(capacity: usize, kind: MemoryKind, arena: FleetArena) -> Self {
        let slots = capacity.div_ceil(BANK_SEGMENT_BYTES);
        Self {
            segments: vec![None; slots],
            capacity,
            kind,
            arena,
        }
    }

    /// Bank capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently backed by host memory (whole segments touched by
    /// at least one write).
    pub fn allocated_bytes(&self) -> usize {
        self.segments.iter().flatten().map(|seg| seg.len()).sum()
    }

    /// Length of segment `index`: the fixed granule, except for a
    /// sub-granule tail.
    fn seg_len(&self, index: usize) -> usize {
        BANK_SEGMENT_BYTES.min(self.capacity - index * BANK_SEGMENT_BYTES)
    }

    /// Materializes (and, if shared with a clone, un-shares) segment
    /// `index`, returning its bytes.
    fn segment_mut(&mut self, index: usize) -> &mut [u8] {
        let len = self.seg_len(index);
        let arena = &self.arena;
        let slot = &mut self.segments[index];
        let unique = match slot {
            Some(seg) => Arc::get_mut(seg).is_some(),
            None => false,
        };
        if !unique {
            let fresh = match slot.take() {
                // Copy-on-write: the segment is shared with a clone.
                Some(shared) => {
                    let copy = arena.acquire_copy(&shared);
                    arena.release(shared);
                    copy
                }
                None => arena.acquire(len),
            };
            *slot = Some(fresh);
        }
        match slot.as_mut().and_then(Arc::get_mut) {
            Some(buf) => buf,
            None => &mut [],
        }
    }

    fn check(&self, offset: usize, len: usize) -> Result<usize, MemoryError> {
        let end = offset.checked_add(len).ok_or(MemoryError::OutOfRange {
            end: usize::MAX,
            capacity: self.capacity,
            kind: self.kind,
        })?;
        if end > self.capacity {
            return Err(MemoryError::OutOfRange {
                end,
                capacity: self.capacity,
                kind: self.kind,
            });
        }
        Ok(end)
    }

    /// Reads `dst.len()` bytes starting at `offset`. Unwritten bytes read
    /// as zero, like freshly powered DRAM contents after host clearing.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfRange`] if the access exceeds capacity.
    #[inline]
    pub fn read(&self, offset: usize, dst: &mut [u8]) -> Result<(), MemoryError> {
        self.check(offset, dst.len())?;
        let mut done = 0;
        while done < dst.len() {
            let at = offset + done;
            let index = at / BANK_SEGMENT_BYTES;
            let within = at % BANK_SEGMENT_BYTES;
            let n = (self.seg_len(index) - within).min(dst.len() - done);
            match &self.segments[index] {
                Some(seg) => dst[done..done + n].copy_from_slice(&seg[within..within + n]),
                None => dst[done..done + n].fill(0),
            }
            done += n;
        }
        Ok(())
    }

    /// Writes `src` starting at `offset`, materializing the segments it
    /// touches.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfRange`] if the access exceeds capacity.
    #[inline]
    pub fn write(&mut self, offset: usize, src: &[u8]) -> Result<(), MemoryError> {
        self.check(offset, src.len())?;
        let mut done = 0;
        while done < src.len() {
            let at = offset + done;
            let index = at / BANK_SEGMENT_BYTES;
            let within = at % BANK_SEGMENT_BYTES;
            let n = (self.seg_len(index) - within).min(src.len() - done);
            self.segment_mut(index)[within..within + n].copy_from_slice(&src[done..done + n]);
            done += n;
        }
        Ok(())
    }

    /// Reads a little-endian `u32` at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfRange`] if the access exceeds capacity.
    #[inline]
    pub fn read_u32(&self, offset: usize) -> Result<u32, MemoryError> {
        // Hot path: the word sits inside one materialized segment — one
        // bounds-checked slice load.
        let within = offset % BANK_SEGMENT_BYTES;
        if let Some(Some(seg)) = self.segments.get(offset / BANK_SEGMENT_BYTES) {
            if let Some(bytes) = seg
                .get(within..within.wrapping_add(4))
                .and_then(|s| <[u8; 4]>::try_from(s).ok())
            {
                return Ok(u32::from_le_bytes(bytes));
            }
        }
        let mut buf = [0u8; 4];
        self.read(offset, &mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    /// Writes a little-endian `u32` at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfRange`] if the access exceeds capacity.
    #[inline]
    pub fn write_u32(&mut self, offset: usize, value: u32) -> Result<(), MemoryError> {
        // Hot path: the word sits inside one already-materialized,
        // unshared segment — store in place.
        let within = offset % BANK_SEGMENT_BYTES;
        if let Some(Some(seg)) = self.segments.get_mut(offset / BANK_SEGMENT_BYTES) {
            if let Some(slot) = Arc::get_mut(seg)
                .and_then(|buf| buf.get_mut(within..within.wrapping_add(4)))
            {
                slot.copy_from_slice(&value.to_le_bytes());
                return Ok(());
            }
        }
        self.write(offset, &value.to_le_bytes())
    }
}

impl Drop for Bank {
    fn drop(&mut self) {
        for slot in &mut self.segments {
            if let Some(seg) = slot.take() {
                self.arena.release(seg);
            }
        }
    }
}

/// The per-DPU memory pair.
#[derive(Debug, Clone)]
pub struct DpuMemory {
    /// The DRAM bank (host-visible, kernel-visible via DMA only).
    pub mram: Bank,
    /// The scratchpad (kernel-visible only).
    pub wram: Bank,
}

impl DpuMemory {
    /// Creates the memory pair with the given capacities, backed by a
    /// private arena shared between the two banks.
    pub fn new(mram_bytes: usize, wram_bytes: usize) -> Self {
        Self::with_arena(mram_bytes, wram_bytes, &FleetArena::new())
    }

    /// Creates the memory pair drawing segments from a fleet-owned arena.
    pub fn with_arena(mram_bytes: usize, wram_bytes: usize, arena: &FleetArena) -> Self {
        Self {
            mram: Bank::with_arena(mram_bytes, MemoryKind::Mram, arena.clone()),
            wram: Bank::with_arena(wram_bytes, MemoryKind::Wram, arena.clone()),
        }
    }

    /// Copies `len` bytes MRAM → WRAM without a staging buffer,
    /// preserving [`Bank::read`]'s zero-fill of unmaterialized source
    /// bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfRange`] if either range exceeds its
    /// bank's capacity; nothing is copied in that case.
    #[inline]
    pub fn copy_mram_to_wram(
        &mut self,
        mram_offset: usize,
        wram_offset: usize,
        len: usize,
    ) -> Result<(), MemoryError> {
        copy_between(&self.mram, &mut self.wram, mram_offset, wram_offset, len)
    }

    /// Copies `len` bytes WRAM → MRAM without a staging buffer,
    /// preserving [`Bank::read`]'s zero-fill of unmaterialized source
    /// bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfRange`] if either range exceeds its
    /// bank's capacity; nothing is copied in that case.
    #[inline]
    pub fn copy_wram_to_mram(
        &mut self,
        wram_offset: usize,
        mram_offset: usize,
        len: usize,
    ) -> Result<(), MemoryError> {
        copy_between(&self.wram, &mut self.mram, wram_offset, mram_offset, len)
    }
}

/// Direct bank-to-bank copy with the exact semantics of a `read` into a
/// zeroed buffer followed by a `write`: both ranges are validated before
/// any byte moves, and source bytes in unmaterialized segments read as
/// zero. Copying zeroes into a destination segment that was never
/// materialized leaves it unmaterialized — the bytes read back as zero
/// either way, so only the allocation counters can tell the difference.
fn copy_between(
    src: &Bank,
    dst: &mut Bank,
    src_offset: usize,
    dst_offset: usize,
    len: usize,
) -> Result<(), MemoryError> {
    src.check(src_offset, len)?;
    dst.check(dst_offset, len)?;
    let mut done = 0;
    while done < len {
        let s_at = src_offset + done;
        let d_at = dst_offset + done;
        let s_index = s_at / BANK_SEGMENT_BYTES;
        let s_within = s_at % BANK_SEGMENT_BYTES;
        let d_index = d_at / BANK_SEGMENT_BYTES;
        let d_within = d_at % BANK_SEGMENT_BYTES;
        let n = (src.seg_len(s_index) - s_within)
            .min(dst.seg_len(d_index) - d_within)
            .min(len - done);
        match &src.segments[s_index] {
            Some(seg) => dst.segment_mut(d_index)[d_within..d_within + n]
                .copy_from_slice(&seg[s_within..s_within + n]),
            None if dst.segments[d_index].is_some() => {
                dst.segment_mut(d_index)[d_within..d_within + n].fill(0);
            }
            None => {}
        }
        done += n;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_bytes_read_zero() {
        let bank = Bank::new(64, MemoryKind::Mram);
        let mut buf = [0xFFu8; 8];
        bank.read(16, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
        assert_eq!(bank.allocated_bytes(), 0);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut bank = Bank::new(64, MemoryKind::Wram);
        bank.write(8, &[1, 2, 3, 4]).unwrap();
        let mut buf = [0u8; 6];
        bank.read(7, &mut buf).unwrap();
        assert_eq!(buf, [0, 1, 2, 3, 4, 0]);
        // One (sub-granule) segment spanning the whole 64-byte bank.
        assert_eq!(bank.allocated_bytes(), 64);
    }

    #[test]
    fn only_touched_segments_materialize() {
        let mut bank = Bank::new(16 * BANK_SEGMENT_BYTES, MemoryKind::Mram);
        assert_eq!(bank.allocated_bytes(), 0);
        bank.write(0, &[1u8; 4]).unwrap();
        assert_eq!(bank.allocated_bytes(), BANK_SEGMENT_BYTES);
        // A far-away write materializes just its own segment.
        bank.write(10 * BANK_SEGMENT_BYTES + 100, &[2u8; 4]).unwrap();
        assert_eq!(bank.allocated_bytes(), 2 * BANK_SEGMENT_BYTES);
        assert_eq!(bank.read_u32(0).unwrap(), u32::from_le_bytes([1, 1, 1, 1]));
        assert_eq!(bank.read_u32(5 * BANK_SEGMENT_BYTES).unwrap(), 0);
    }

    #[test]
    fn writes_spanning_segments_round_trip() {
        let mut bank = Bank::new(2 * BANK_SEGMENT_BYTES, MemoryKind::Mram);
        let boundary = BANK_SEGMENT_BYTES - 2;
        bank.write(boundary, &[9, 8, 7, 6]).unwrap();
        let mut buf = [0u8; 4];
        bank.read(boundary, &mut buf).unwrap();
        assert_eq!(buf, [9, 8, 7, 6]);
        bank.write_u32(boundary, 0x0102_0304).unwrap();
        assert_eq!(bank.read_u32(boundary).unwrap(), 0x0102_0304);
        assert_eq!(bank.allocated_bytes(), 2 * BANK_SEGMENT_BYTES);
    }

    #[test]
    fn cloned_banks_copy_on_write() {
        let arena = FleetArena::new();
        let mut a = Bank::with_arena(4 * BANK_SEGMENT_BYTES, MemoryKind::Mram, arena.clone());
        a.write_u32(16, 0xAAAA_AAAA).unwrap();
        let seg = BANK_SEGMENT_BYTES as u64;
        assert_eq!(arena.stats().bank_bytes, seg);

        // The clone shares the segment: no new bytes.
        let b = a.clone();
        assert_eq!(arena.stats().bank_bytes, seg);
        // Writing un-shares it.
        a.write_u32(16, 0xBBBB_BBBB).unwrap();
        assert_eq!(arena.stats().bank_bytes, 2 * seg);
        assert_eq!(a.read_u32(16).unwrap(), 0xBBBB_BBBB);
        assert_eq!(b.read_u32(16).unwrap(), 0xAAAA_AAAA);

        drop(b);
        assert_eq!(arena.stats().bank_bytes, seg);
        drop(a);
        assert_eq!(arena.stats().bank_bytes, 0);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut bank = Bank::new(16, MemoryKind::Mram);
        assert!(bank.write(12, &[0u8; 8]).is_err());
        let mut buf = [0u8; 8];
        assert!(bank.read(9, &mut buf).is_err());
        // Exactly at the boundary is fine.
        assert!(bank.write(8, &[0u8; 8]).is_ok());
    }

    #[test]
    fn misaligned_error_names_the_granule() {
        let e = MemoryError::Misaligned {
            offset: 3,
            len: 4,
            granule: 8,
            kind: MemoryKind::Wram,
        };
        let text = e.to_string();
        assert!(text.contains("WRAM"));
        assert!(text.contains("offset 3"));
        assert!(text.contains("8-byte"));
    }

    #[test]
    fn offset_overflow_rejected() {
        let bank = Bank::new(16, MemoryKind::Mram);
        let mut buf = [0u8; 1];
        assert!(bank.read(usize::MAX, &mut buf).is_err());
    }

    #[test]
    fn u32_round_trip() {
        let mut bank = Bank::new(32, MemoryKind::Wram);
        bank.write_u32(4, 0xDEAD_BEEF).unwrap();
        assert_eq!(bank.read_u32(4).unwrap(), 0xDEAD_BEEF);
        assert_eq!(bank.read_u32(0).unwrap(), 0);
    }

    #[test]
    fn copy_between_zero_fills_without_materializing() {
        let mut mem = DpuMemory::new(4 * BANK_SEGMENT_BYTES, 1 << 16);
        // Source untouched, destination untouched: stays unmaterialized.
        mem.copy_mram_to_wram(BANK_SEGMENT_BYTES, 0, 64).unwrap();
        assert_eq!(mem.wram.allocated_bytes(), 0);
        // A materialized destination really gets the zeroes.
        mem.wram.write(0, &[0xFFu8; 64]).unwrap();
        mem.copy_mram_to_wram(BANK_SEGMENT_BYTES, 0, 64).unwrap();
        let mut buf = [0xAAu8; 64];
        mem.wram.read(0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 64]);
        // And copying real data round-trips.
        mem.mram.write(8, &[5u8; 16]).unwrap();
        mem.copy_mram_to_wram(8, 128, 16).unwrap();
        let mut out = [0u8; 16];
        mem.wram.read(128, &mut out).unwrap();
        assert_eq!(out, [5u8; 16]);
    }

    #[test]
    fn error_display_names_memory() {
        let e = MemoryError::OutOfRange {
            end: 100,
            capacity: 64,
            kind: MemoryKind::Wram,
        };
        assert!(e.to_string().contains("WRAM"));
    }
}
