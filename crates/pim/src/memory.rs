//! Per-DPU memories: the MRAM DRAM bank and the WRAM scratchpad.
//!
//! On UPMEM hardware each DPU owns a 64-MB DRAM bank (MRAM) and a 64-KB
//! SRAM scratchpad (WRAM). The DPU pipeline can only operate on WRAM;
//! data moves between MRAM and WRAM through an explicit DMA engine with
//! 8-byte granularity. The host can read and write MRAM (but not WRAM)
//! while no kernel is running.
//!
//! Memories are allocated lazily: a bank only consumes host memory for the
//! highest offset actually touched, which keeps thousand-DPU simulations
//! affordable while still enforcing the capacity limits.

use std::fmt;

/// Error raised by out-of-range or misaligned memory accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoryError {
    /// The access extends past the bank capacity.
    OutOfRange {
        /// Attempted end offset of the access.
        end: usize,
        /// Capacity of the bank in bytes.
        capacity: usize,
        /// Which memory was accessed.
        kind: MemoryKind,
    },
    /// A DMA transfer violated the engine's alignment/granularity rules.
    Misaligned {
        /// Offset the transfer started at.
        offset: usize,
        /// Length of the transfer in bytes.
        len: usize,
        /// Required alignment/granule in bytes.
        granule: usize,
        /// Which memory was accessed.
        kind: MemoryKind,
    },
}

/// Which memory an error refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryKind {
    /// The per-DPU DRAM bank.
    Mram,
    /// The per-DPU scratchpad.
    Wram,
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::OutOfRange {
                end,
                capacity,
                kind,
            } => {
                let name = match kind {
                    MemoryKind::Mram => "MRAM",
                    MemoryKind::Wram => "WRAM",
                };
                write!(
                    f,
                    "{name} access ends at byte {end} but the bank holds {capacity} bytes"
                )
            }
            MemoryError::Misaligned {
                offset,
                len,
                granule,
                kind,
            } => {
                let name = match kind {
                    MemoryKind::Mram => "MRAM",
                    MemoryKind::Wram => "WRAM",
                };
                write!(
                    f,
                    "misaligned {name} DMA: offset {offset} / length {len} must be \
                     multiples of the {granule}-byte DMA granule"
                )
            }
        }
    }
}

impl std::error::Error for MemoryError {}

/// A lazily-grown byte bank with a hard capacity.
#[derive(Debug, Clone)]
pub struct Bank {
    data: Vec<u8>,
    capacity: usize,
    kind: MemoryKind,
}

impl Bank {
    /// Creates an empty bank with the given capacity.
    pub fn new(capacity: usize, kind: MemoryKind) -> Self {
        Self {
            data: Vec::new(),
            capacity,
            kind,
        }
    }

    /// Bank capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently backed by host memory (high-water mark).
    pub fn resident_bytes(&self) -> usize {
        self.data.len()
    }

    fn check(&self, offset: usize, len: usize) -> Result<usize, MemoryError> {
        let end = offset.checked_add(len).ok_or(MemoryError::OutOfRange {
            end: usize::MAX,
            capacity: self.capacity,
            kind: self.kind,
        })?;
        if end > self.capacity {
            return Err(MemoryError::OutOfRange {
                end,
                capacity: self.capacity,
                kind: self.kind,
            });
        }
        Ok(end)
    }

    /// Reads `dst.len()` bytes starting at `offset`. Unwritten bytes read
    /// as zero, like freshly powered DRAM contents after host clearing.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfRange`] if the access exceeds capacity.
    #[inline]
    pub fn read(&self, offset: usize, dst: &mut [u8]) -> Result<(), MemoryError> {
        self.check(offset, dst.len())?;
        let have = self.data.len().saturating_sub(offset);
        let n = have.min(dst.len());
        if n > 0 {
            dst[..n].copy_from_slice(&self.data[offset..offset + n]);
        }
        dst[n..].fill(0);
        Ok(())
    }

    /// Writes `src` starting at `offset`, growing the resident region.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfRange`] if the access exceeds capacity.
    #[inline]
    pub fn write(&mut self, offset: usize, src: &[u8]) -> Result<(), MemoryError> {
        let end = self.check(offset, src.len())?;
        if end > self.data.len() {
            self.data.resize(end, 0);
        }
        self.data[offset..end].copy_from_slice(src);
        Ok(())
    }

    /// Reads a little-endian `u32` at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfRange`] if the access exceeds capacity.
    #[inline]
    pub fn read_u32(&self, offset: usize) -> Result<u32, MemoryError> {
        // Hot path: the word is fully resident — one unchecked-growth,
        // bounds-checked slice load.
        if let Some(bytes) = self
            .data
            .get(offset..offset.wrapping_add(4))
            .and_then(|s| <[u8; 4]>::try_from(s).ok())
        {
            return Ok(u32::from_le_bytes(bytes));
        }
        let mut buf = [0u8; 4];
        self.read(offset, &mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    /// Writes a little-endian `u32` at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfRange`] if the access exceeds capacity.
    #[inline]
    pub fn write_u32(&mut self, offset: usize, value: u32) -> Result<(), MemoryError> {
        // Hot path: the word is already resident — store in place.
        if let Some(slot) = self.data.get_mut(offset..offset.wrapping_add(4)) {
            slot.copy_from_slice(&value.to_le_bytes());
            return Ok(());
        }
        self.write(offset, &value.to_le_bytes())
    }
}

/// The per-DPU memory pair.
#[derive(Debug, Clone)]
pub struct DpuMemory {
    /// The DRAM bank (host-visible, kernel-visible via DMA only).
    pub mram: Bank,
    /// The scratchpad (kernel-visible only).
    pub wram: Bank,
}

impl DpuMemory {
    /// Creates the memory pair with the given capacities.
    pub fn new(mram_bytes: usize, wram_bytes: usize) -> Self {
        Self {
            mram: Bank::new(mram_bytes, MemoryKind::Mram),
            wram: Bank::new(wram_bytes, MemoryKind::Wram),
        }
    }

    /// Copies `len` bytes MRAM → WRAM without a staging buffer,
    /// preserving [`Bank::read`]'s zero-fill of unresident source bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfRange`] if either range exceeds its
    /// bank's capacity; nothing is copied in that case.
    #[inline]
    pub fn copy_mram_to_wram(
        &mut self,
        mram_offset: usize,
        wram_offset: usize,
        len: usize,
    ) -> Result<(), MemoryError> {
        copy_between(&self.mram, &mut self.wram, mram_offset, wram_offset, len)
    }

    /// Copies `len` bytes WRAM → MRAM without a staging buffer,
    /// preserving [`Bank::read`]'s zero-fill of unresident source bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfRange`] if either range exceeds its
    /// bank's capacity; nothing is copied in that case.
    #[inline]
    pub fn copy_wram_to_mram(
        &mut self,
        wram_offset: usize,
        mram_offset: usize,
        len: usize,
    ) -> Result<(), MemoryError> {
        copy_between(&self.wram, &mut self.mram, wram_offset, mram_offset, len)
    }
}

/// Direct bank-to-bank copy with the exact semantics of a `read` into a
/// zeroed buffer followed by a `write`: both ranges are validated before
/// any byte moves, and source bytes past the resident region read as zero.
fn copy_between(
    src: &Bank,
    dst: &mut Bank,
    src_offset: usize,
    dst_offset: usize,
    len: usize,
) -> Result<(), MemoryError> {
    src.check(src_offset, len)?;
    let dst_end = dst.check(dst_offset, len)?;
    if dst_end > dst.data.len() {
        dst.data.resize(dst_end, 0);
    }
    let have = src.data.len().saturating_sub(src_offset);
    let n = have.min(len);
    if n > 0 {
        dst.data[dst_offset..dst_offset + n].copy_from_slice(&src.data[src_offset..src_offset + n]);
    }
    dst.data[dst_offset + n..dst_end].fill(0);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_bytes_read_zero() {
        let bank = Bank::new(64, MemoryKind::Mram);
        let mut buf = [0xFFu8; 8];
        bank.read(16, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
        assert_eq!(bank.resident_bytes(), 0);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut bank = Bank::new(64, MemoryKind::Wram);
        bank.write(8, &[1, 2, 3, 4]).unwrap();
        let mut buf = [0u8; 6];
        bank.read(7, &mut buf).unwrap();
        assert_eq!(buf, [0, 1, 2, 3, 4, 0]);
        assert_eq!(bank.resident_bytes(), 12);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut bank = Bank::new(16, MemoryKind::Mram);
        assert!(bank.write(12, &[0u8; 8]).is_err());
        let mut buf = [0u8; 8];
        assert!(bank.read(9, &mut buf).is_err());
        // Exactly at the boundary is fine.
        assert!(bank.write(8, &[0u8; 8]).is_ok());
    }

    #[test]
    fn misaligned_error_names_the_granule() {
        let e = MemoryError::Misaligned {
            offset: 3,
            len: 4,
            granule: 8,
            kind: MemoryKind::Wram,
        };
        let text = e.to_string();
        assert!(text.contains("WRAM"));
        assert!(text.contains("offset 3"));
        assert!(text.contains("8-byte"));
    }

    #[test]
    fn offset_overflow_rejected() {
        let bank = Bank::new(16, MemoryKind::Mram);
        let mut buf = [0u8; 1];
        assert!(bank.read(usize::MAX, &mut buf).is_err());
    }

    #[test]
    fn u32_round_trip() {
        let mut bank = Bank::new(32, MemoryKind::Wram);
        bank.write_u32(4, 0xDEAD_BEEF).unwrap();
        assert_eq!(bank.read_u32(4).unwrap(), 0xDEAD_BEEF);
        assert_eq!(bank.read_u32(0).unwrap(), 0);
    }

    #[test]
    fn error_display_names_memory() {
        let e = MemoryError::OutOfRange {
            end: 100,
            capacity: 64,
            kind: MemoryKind::Wram,
        };
        assert!(e.to_string().contains("WRAM"));
    }
}
