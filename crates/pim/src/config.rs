//! Static description of the simulated PIM platform.
//!
//! The default values describe the UPMEM server used by the SwiftRL paper
//! (Table 1): 2,524 DPUs at 425 MHz, 64-MB MRAM banks, 64-KB WRAM, 24-KB
//! IRAM, 24 hardware threads (tasklets) per DPU. Cost-model constants are
//! calibrated to the PrIM characterization of the same hardware
//! (Gómez-Luna et al., IEEE Access 2022), which SwiftRL cites for all of
//! its per-instruction cost claims.

use serde::{Deserialize, Serialize};

/// WRAM scratchpad capacity per DPU in bytes (64 KB on UPMEM). One source
/// of truth for [`PimConfig::default`] and for the analyzer's K009 static
/// WRAM-budget proof.
pub const WRAM_CAPACITY_BYTES: usize = 64 * 1024;

/// MRAM bank capacity per DPU in bytes (64 MB on UPMEM); the budget of the
/// analyzer's K010 MRAM-region proof.
pub const MRAM_BANK_CAPACITY_BYTES: usize = 64 * 1024 * 1024;

/// Geometry and clocking of the simulated PIM platform.
///
/// Construct with [`PimConfig::default`] for the paper's server, or use
/// [`PimConfig::builder`] to customize.
///
/// ```rust
/// use swiftrl_pim::config::PimConfig;
///
/// let cfg = PimConfig::builder().dpus(2000).frequency_mhz(425).build();
/// assert_eq!(cfg.dpus, 2000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PimConfig {
    /// Total number of DPUs (PIM cores) available in the system.
    pub dpus: usize,
    /// DPU clock frequency in MHz.
    pub frequency_mhz: u64,
    /// MRAM bank capacity per DPU in bytes (64 MB on UPMEM).
    pub mram_bytes: usize,
    /// WRAM scratchpad capacity per DPU in bytes (64 KB on UPMEM).
    pub wram_bytes: usize,
    /// Instruction memory per DPU in bytes (24 KB on UPMEM). Only used for
    /// reporting; kernels in this simulator are host closures.
    pub iram_bytes: usize,
    /// Hardware threads (tasklets) per DPU.
    pub tasklets_per_dpu: usize,
    /// DPUs per memory rank; determines how many ranks a DPU set spans,
    /// which drives the CPU↔PIM transfer bandwidth model.
    pub dpus_per_rank: usize,
    /// Cycle-cost constants for the DPU and DMA models.
    pub cost: CostModel,
    /// CPU↔PIM transfer model constants.
    pub transfer: TransferModel,
    /// Runtime sanitizer level applied to every launch (default: off).
    #[serde(default)]
    pub sanitize: crate::sanitize::SanitizeLevel,
    /// Execution engine used to schedule DPU execution on the host
    /// (default: threaded over the host's available parallelism). Every
    /// engine produces bit-identical simulated results; only wall-clock
    /// differs. See [`crate::engine::ExecutionEngine`].
    #[serde(default)]
    pub engine: crate::engine::ExecutionEngine,
    /// Deterministic fault-injection plan (default: no faults). A seeded
    /// plan injects identical faults under every execution engine. See
    /// [`crate::faults::FaultPlan`].
    #[serde(default)]
    pub faults: crate::faults::FaultPlan,
    /// Telemetry sink recording the typed event stream of every run on
    /// this platform (default: disabled — a true zero on the hot path).
    /// Clones of the config share the sink, so the handle the caller
    /// keeps observes everything a `DpuSet` built from this config does.
    /// Skipped by serde: a live event buffer is not part of the platform
    /// description; deserialized configs come back disabled.
    #[serde(skip)]
    pub telemetry: swiftrl_telemetry::Telemetry,
}

impl Default for PimConfig {
    fn default() -> Self {
        Self {
            dpus: 2524,
            frequency_mhz: 425,
            mram_bytes: MRAM_BANK_CAPACITY_BYTES,
            wram_bytes: WRAM_CAPACITY_BYTES,
            iram_bytes: 24 * 1024,
            tasklets_per_dpu: 24,
            dpus_per_rank: 64,
            cost: CostModel::default(),
            transfer: TransferModel::default(),
            sanitize: crate::sanitize::SanitizeLevel::Off,
            engine: crate::engine::ExecutionEngine::default(),
            faults: crate::faults::FaultPlan::none(),
            telemetry: swiftrl_telemetry::Telemetry::disabled(),
        }
    }
}

impl PimConfig {
    /// Starts building a configuration from the paper's defaults.
    pub fn builder() -> PimConfigBuilder {
        PimConfigBuilder {
            inner: PimConfig::default(),
        }
    }

    /// DPU clock frequency in Hz.
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_mhz as f64 * 1.0e6
    }

    /// Number of memory ranks spanned by `dpus` DPUs.
    ///
    /// UPMEM DIMMs hold two ranks of 8 chips × 8 DPUs = 64 DPUs per rank;
    /// transfers to distinct ranks proceed in parallel.
    pub fn ranks_for(&self, dpus: usize) -> usize {
        dpus.div_ceil(self.dpus_per_rank).max(1)
    }

    /// The rank that DPU `dpu` lives on: DPUs are laid out densely, 64
    /// per rank (the paper's server), so rank membership is just
    /// `dpu / dpus_per_rank`.
    pub fn rank_of(&self, dpu: usize) -> usize {
        dpu / self.dpus_per_rank.max(1)
    }

    /// Number of *distinct* ranks addressed by a strictly increasing DPU
    /// index list — the rank parallelism a transfer to exactly those
    /// DPUs enjoys. For a dense prefix `0..n` this equals
    /// [`ranks_for`](Self::ranks_for)`(n)`; a sparse subset spread
    /// across the machine touches more ranks than its size suggests.
    pub fn ranks_spanned(&self, indices: &[usize]) -> usize {
        let mut ranks = 0usize;
        let mut prev = None;
        for &dpu in indices {
            let rank = self.rank_of(dpu);
            if prev != Some(rank) {
                ranks += 1;
                prev = Some(rank);
            }
        }
        ranks.max(1)
    }

    /// Converts a DPU cycle count to seconds at this clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.frequency_hz()
    }
}

/// Builder for [`PimConfig`].
#[derive(Debug, Clone)]
pub struct PimConfigBuilder {
    inner: PimConfig,
}

impl PimConfigBuilder {
    /// Sets the total number of DPUs.
    pub fn dpus(mut self, dpus: usize) -> Self {
        self.inner.dpus = dpus;
        self
    }

    /// Sets the DPU clock frequency in MHz.
    pub fn frequency_mhz(mut self, mhz: u64) -> Self {
        self.inner.frequency_mhz = mhz;
        self
    }

    /// Sets the MRAM capacity per DPU in bytes.
    pub fn mram_bytes(mut self, bytes: usize) -> Self {
        self.inner.mram_bytes = bytes;
        self
    }

    /// Sets the WRAM capacity per DPU in bytes.
    pub fn wram_bytes(mut self, bytes: usize) -> Self {
        self.inner.wram_bytes = bytes;
        self
    }

    /// Sets the number of tasklets per DPU.
    pub fn tasklets_per_dpu(mut self, tasklets: usize) -> Self {
        self.inner.tasklets_per_dpu = tasklets;
        self
    }

    /// Sets the number of DPUs per memory rank (64 on the paper's
    /// server). Drives both the bandwidth model and the rank-grouped
    /// transfer iteration of [`crate::host::DpuSet`].
    pub fn dpus_per_rank(mut self, dpus: usize) -> Self {
        self.inner.dpus_per_rank = dpus;
        self
    }

    /// Overrides the cycle-cost model.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.inner.cost = cost;
        self
    }

    /// Overrides the transfer model.
    pub fn transfer(mut self, transfer: TransferModel) -> Self {
        self.inner.transfer = transfer;
        self
    }

    /// Selects the execution tier (batched aggregate charging, fast
    /// per-intrinsic charging, or the instrumented reference loops). See
    /// [`ExecTier`].
    pub fn exec_tier(mut self, tier: ExecTier) -> Self {
        self.inner.cost.arith_tier = tier;
        self
    }

    /// Pre-PR-9 name of [`Self::exec_tier`], kept for existing call
    /// sites.
    pub fn arith_tier(self, tier: ArithTier) -> Self {
        self.exec_tier(tier)
    }

    /// Sets the execution engine used to schedule DPU execution.
    pub fn engine(mut self, engine: crate::engine::ExecutionEngine) -> Self {
        self.inner.engine = engine;
        self
    }

    /// Sets the runtime sanitizer level for every launch on the platform.
    pub fn sanitize(mut self, level: crate::sanitize::SanitizeLevel) -> Self {
        self.inner.sanitize = level;
        self
    }

    /// Attaches a deterministic fault-injection plan to the platform.
    pub fn faults(mut self, plan: crate::faults::FaultPlan) -> Self {
        self.inner.faults = plan;
        self
    }

    /// Attaches a telemetry sink; every `DpuSet` built from the config
    /// records its event stream into it. See [`swiftrl_telemetry`].
    pub fn telemetry(mut self, telemetry: swiftrl_telemetry::Telemetry) -> Self {
        self.inner.telemetry = telemetry;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> PimConfig {
        self.inner
    }
}

/// Cycle-cost constants of the DPU pipeline and DMA engine.
///
/// The DPU is an in-order, 14-stage, fine-grained multithreaded pipeline.
/// Instructions from the *same* tasklet must be dispatched at least
/// `issue_period` (= 11 on UPMEM) cycles apart, so a single tasklet runs at
/// 1/11 IPC and at least 11 tasklets are needed to reach the 1-IPC peak
/// (PrIM, §3.1). SwiftRL pins one tasklet per DPU, which this model
/// captures via [`CostModel::tasklet_issue_interval`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Minimum cycles between two instructions of the same tasklet.
    pub issue_period: u64,
    /// Fixed DMA setup latency in cycles for an MRAM↔WRAM transfer.
    pub dma_setup_cycles: u64,
    /// DMA cycles per byte transferred (MRAM↔WRAM), after setup.
    /// PrIM measures ~0.5 cycles/byte at large transfer sizes.
    pub dma_cycles_per_byte_num: u64,
    /// Denominator of the per-byte DMA cost (allows fractional rates).
    pub dma_cycles_per_byte_den: u64,
    /// Minimum DMA transfer granule in bytes (UPMEM DMA is 8-byte aligned).
    pub dma_granule_bytes: usize,
    /// Instruction-slot costs of the emulated arithmetic routines.
    pub ops: OpCosts,
    /// How emulated-arithmetic cost (integer multiply/divide and all
    /// floating point) is charged.
    pub emulation_charging: EmulationCharging,
    /// Which arithmetic tier executes the emulated operations (default:
    /// the fast tier, proven bit- and cycle-identical to the reference).
    #[serde(default)]
    pub arith_tier: ArithTier,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            issue_period: 11,
            dma_setup_cycles: 77,
            dma_cycles_per_byte_num: 1,
            dma_cycles_per_byte_den: 2,
            dma_granule_bytes: 8,
            ops: OpCosts::default(),
            emulation_charging: EmulationCharging::Calibrated,
            arith_tier: ArithTier::default(),
        }
    }
}

/// Which execution tier runs kernels and computes their emulated
/// arithmetic (integer multiply/divide and all floating point).
///
/// Every tier produces bit-identical results and charges identical cycles
/// in both [`EmulationCharging`] modes — the contract "a faster tier may
/// never change a bit or a cycle" is enforced differentially by
/// `tests/fastpath_parity.rs` and `tests/engine_determinism.rs`. Only host
/// wall-clock differs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecTier {
    /// Execute the instrumented soft-float / shift-add loops in
    /// [`crate::softfloat`] and [`crate::emul`], tallying every primitive
    /// op. The ground truth; keep for audits and the parity suite.
    Reference,
    /// Compute results with host-native arithmetic and charge cycles from
    /// the closed-form tally formulas in [`crate::fastpath`]. The default:
    /// same bits, same cycles, a fraction of the host time. Still
    /// interprets the kernel one charged intrinsic at a time.
    #[default]
    Fast,
    /// Fuse the whole per-launch update loop into one host-native sweep
    /// per DPU (see [`crate::batch`]): kernels that opt in via
    /// [`Kernel::batch`](crate::kernel::Kernel::batch) compute all values
    /// with [`crate::fastpath`] and charge closed-form *aggregate* cycle
    /// tallies (loop-trip counts × per-intrinsic costs) instead of being
    /// interpreted per intrinsic. A launch that a fault plan touches, a
    /// sanitizing run, or a kernel without a batch implementation falls
    /// back to the per-intrinsic fast path, so resilience and sanitizer
    /// semantics are untouched.
    Batched,
}

/// The pre-PR-9 name of [`ExecTier`], kept as an alias so existing
/// `arith_tier(ArithTier::Fast)` call sites keep compiling.
pub type ArithTier = ExecTier;

/// Charging policy for emulated arithmetic (integer multiply/divide and
/// floating point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EmulationCharging {
    /// Charge the calibrated per-operation slot constants from [`OpCosts`].
    /// This matches the *measured* per-op throughput of the UPMEM runtime
    /// library (PrIM, Fig. 7) and is the default.
    Calibrated,
    /// Charge the primitive integer operations actually executed by the
    /// simulator's own soft-float routines plus
    /// [`OpCosts::fp_call_overhead_slots`] per call. Data-dependent; used
    /// by the charging-mode ablation.
    Tally,
}

/// Instruction-slot costs of emulated arithmetic, calibrated to the
/// arithmetic-throughput microbenchmarks of the PrIM characterization of
/// UPMEM hardware (Gómez-Luna et al., IEEE Access 2022, Fig. 7):
/// at a saturated pipeline (425 MIPS), measured FLOAT ADD/MUL throughput
/// implies ≈75–80 instructions per operation and 32-bit integer multiply
/// ≈6. The divide costs model what the compiler actually emits in the RL
/// kernels — division by the constant scale factor strength-reduced to a
/// magic-number multiply-high plus shifts (≈1.5× a wide multiply), not a
/// full restoring divide. Native 32-bit add/sub/logic and 8-bit multiply
/// are single-slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCosts {
    /// Slots per emulated FP32 add/sub.
    pub fadd_slots: u64,
    /// Slots per emulated FP32 multiply.
    pub fmul_slots: u64,
    /// Slots per emulated FP32 divide.
    pub fdiv_slots: u64,
    /// Slots per emulated FP32 compare.
    pub fcmp_slots: u64,
    /// Slots per emulated int↔float conversion.
    pub fconv_slots: u64,
    /// Call/prologue/epilogue overhead added per FP routine in
    /// [`EmulationCharging::Tally`] mode.
    pub fp_call_overhead_slots: u64,
    /// Slots per emulated 32×32→32 integer multiply.
    pub mul32_slots: u64,
    /// Slots per emulated 32×32→64 integer multiply.
    pub mul64_slots: u64,
    /// Slots per emulated 32-bit integer divide.
    pub div32_slots: u64,
    /// Slots per emulated 64-bit integer divide.
    pub div64_slots: u64,
}

impl Default for OpCosts {
    fn default() -> Self {
        Self {
            fadd_slots: 78,
            fmul_slots: 73,
            fdiv_slots: 130,
            fcmp_slots: 30,
            fconv_slots: 40,
            fp_call_overhead_slots: 40,
            mul32_slots: 6,
            mul64_slots: 10,
            div32_slots: 10,
            div64_slots: 14,
        }
    }
}

impl CostModel {
    /// Dispatch interval for one tasklet when `active` tasklets run
    /// concurrently on the pipeline.
    ///
    /// The revolver scheduler issues one instruction per cycle round-robin,
    /// but a tasklet cannot re-issue within `issue_period` cycles, so the
    /// per-tasklet interval is `max(active, issue_period)`.
    pub fn tasklet_issue_interval(&self, active: usize) -> u64 {
        (active as u64).max(self.issue_period)
    }

    /// DMA cost in cycles for a transfer of `bytes` bytes.
    ///
    /// The transfer is rounded up to the DMA granule.
    #[inline]
    pub fn dma_cycles(&self, bytes: usize) -> u64 {
        let granule = self.dma_granule_bytes.max(1);
        // Identical arithmetic to the div_ceil forms below, but free of
        // runtime division for the (default) power-of-two parameters —
        // this sits on the per-DMA hot path of the simulator.
        let rounded = if granule.is_power_of_two() {
            bytes.checked_add(granule - 1).map(|n| n & !(granule - 1))
        } else {
            bytes.div_ceil(granule).checked_mul(granule)
        };
        let rounded = match rounded {
            Some(r) => r,
            None => bytes.div_ceil(granule).wrapping_mul(granule),
        };
        let scaled = rounded as u64 * self.dma_cycles_per_byte_num;
        let den = self.dma_cycles_per_byte_den;
        let per_byte = if den.is_power_of_two() {
            scaled
                .checked_add(den - 1)
                .map_or_else(|| scaled.div_ceil(den), |n| n >> den.trailing_zeros())
        } else {
            scaled.div_ceil(den)
        };
        self.dma_setup_cycles + per_byte
    }
}

/// CPU↔PIM transfer bandwidth model.
///
/// Parallel CPU→DPU and DPU→CPU transfers scale with the number of ranks
/// addressed, saturating at a system-wide cap (PrIM, Fig. 9). Time for a
/// transfer of `total_bytes` spread over `ranks` ranks is
/// `latency + total_bytes / min(ranks * per_rank_gbps, cap_gbps)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferModel {
    /// Fixed software/driver latency per transfer operation, in seconds.
    pub latency_s: f64,
    /// Sustained bandwidth per rank for parallel transfers, in GB/s.
    pub per_rank_gbps: f64,
    /// System-wide bandwidth cap for parallel transfers, in GB/s.
    pub cap_gbps: f64,
    /// Bandwidth ratio applied to broadcast (copy same buffer to all DPUs);
    /// broadcasts are faster because the source is read once.
    pub broadcast_factor: f64,
    /// Fixed host-side cost of loading a DPU program binary into the
    /// set's IRAMs (driver + allocation overhead), seconds.
    pub program_load_base_s: f64,
    /// Additional program-load cost per DPU, seconds. On UPMEM,
    /// `dpu_load` across thousands of DPUs costs on the order of a
    /// second; the paper's FrozenLake runs show the one-time setup
    /// reaching ~30% of total time for the fastest kernels (§4.3,
    /// observation 3), which this term reproduces.
    pub program_load_per_dpu_s: f64,
}

impl Default for TransferModel {
    fn default() -> Self {
        // Bandwidths are calibrated to the KB-scale per-DPU buffers the
        // SwiftRL protocol actually moves (Q-tables and dataset chunks):
        // PrIM measures aggregate parallel-transfer bandwidth well below
        // the channel peak for small per-DPU sizes, and the paper's taxi
        // runs show the τ-periodic Q-table exchange reaching ~21% of
        // total time at 2,000 DPUs, which these constants reproduce.
        Self {
            latency_s: 20.0e-6,
            per_rank_gbps: 0.045,
            cap_gbps: 1.0,
            broadcast_factor: 1.35,
            program_load_base_s: 0.05,
            program_load_per_dpu_s: 0.6e-3,
        }
    }
}

impl TransferModel {
    /// Effective bandwidth in bytes/second for a scatter/gather across
    /// `ranks` ranks.
    pub fn bandwidth_bytes_per_s(&self, ranks: usize) -> f64 {
        let gbps = (ranks as f64 * self.per_rank_gbps).min(self.cap_gbps);
        gbps * 1.0e9
    }

    /// Seconds needed to scatter or gather `total_bytes` across `ranks`.
    pub fn scatter_gather_seconds(&self, total_bytes: usize, ranks: usize) -> f64 {
        if total_bytes == 0 {
            return 0.0;
        }
        self.latency_s + total_bytes as f64 / self.bandwidth_bytes_per_s(ranks)
    }

    /// One-time cost of loading the kernel binary onto `dpus` DPUs.
    pub fn program_load_seconds(&self, dpus: usize) -> f64 {
        self.program_load_base_s + dpus as f64 * self.program_load_per_dpu_s
    }

    /// Seconds needed to broadcast `bytes` (one buffer) to every DPU in a
    /// set spanning `ranks` ranks.
    pub fn broadcast_seconds(&self, bytes: usize, dpus: usize, ranks: usize) -> f64 {
        if bytes == 0 || dpus == 0 {
            return 0.0;
        }
        let total = bytes * dpus;
        self.latency_s
            + total as f64 / (self.bandwidth_bytes_per_s(ranks) * self.broadcast_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_table1() {
        let cfg = PimConfig::default();
        assert_eq!(cfg.dpus, 2524);
        assert_eq!(cfg.frequency_mhz, 425);
        assert_eq!(cfg.mram_bytes, 64 << 20);
        assert_eq!(cfg.wram_bytes, 64 << 10);
        assert_eq!(cfg.tasklets_per_dpu, 24);
    }

    #[test]
    fn builder_overrides_fields() {
        let cfg = PimConfig::builder()
            .dpus(125)
            .frequency_mhz(400)
            .wram_bytes(32 << 10)
            .build();
        assert_eq!(cfg.dpus, 125);
        assert_eq!(cfg.frequency_mhz, 400);
        assert_eq!(cfg.wram_bytes, 32 << 10);
        // Untouched fields keep defaults.
        assert_eq!(cfg.mram_bytes, 64 << 20);
    }

    #[test]
    fn ranks_round_up() {
        let cfg = PimConfig::default();
        assert_eq!(cfg.ranks_for(1), 1);
        assert_eq!(cfg.ranks_for(64), 1);
        assert_eq!(cfg.ranks_for(65), 2);
        assert_eq!(cfg.ranks_for(2000), 32);
    }

    #[test]
    fn rank_membership_is_dense_64_per_rank() {
        let cfg = PimConfig::default();
        assert_eq!(cfg.rank_of(0), 0);
        assert_eq!(cfg.rank_of(63), 0);
        assert_eq!(cfg.rank_of(64), 1);
        assert_eq!(cfg.rank_of(2523), 39);
        let custom = PimConfig::builder().dpus_per_rank(8).build();
        assert_eq!(custom.rank_of(15), 1);
        assert_eq!(custom.ranks_for(16), 2);
    }

    #[test]
    fn ranks_spanned_counts_distinct_ranks() {
        let cfg = PimConfig::default();
        // A dense prefix matches ranks_for.
        let dense: Vec<usize> = (0..130).collect();
        assert_eq!(cfg.ranks_spanned(&dense), cfg.ranks_for(130));
        // Two DPUs on the same rank span one rank; a sparse pair that
        // straddles a rank boundary spans two.
        assert_eq!(cfg.ranks_spanned(&[0, 63]), 1);
        assert_eq!(cfg.ranks_spanned(&[0, 64]), 2);
        // Four DPUs scattered over four ranks span four ranks even
        // though ranks_for(4) == 1.
        assert_eq!(cfg.ranks_spanned(&[0, 70, 140, 210]), 4);
        assert_eq!(cfg.ranks_for(4), 1);
    }

    #[test]
    fn single_tasklet_issues_every_11_cycles() {
        let cost = CostModel::default();
        assert_eq!(cost.tasklet_issue_interval(1), 11);
        assert_eq!(cost.tasklet_issue_interval(11), 11);
        assert_eq!(cost.tasklet_issue_interval(16), 16);
    }

    #[test]
    fn dma_cost_rounds_to_granule() {
        let cost = CostModel::default();
        // 1 byte rounds to 8 bytes: 77 + ceil(8/2) = 81.
        assert_eq!(cost.dma_cycles(1), 81);
        assert_eq!(cost.dma_cycles(8), 81);
        assert_eq!(cost.dma_cycles(16), 85);
        // Zero-byte transfers still pay setup (degenerate but defined).
        assert_eq!(cost.dma_cycles(0), 77);
    }

    #[test]
    fn transfer_bandwidth_saturates() {
        let t = TransferModel::default();
        let one = t.bandwidth_bytes_per_s(1);
        let many = t.bandwidth_bytes_per_s(1000);
        assert!(one < many);
        assert!((many - t.cap_gbps * 1.0e9).abs() < 1.0);
    }

    #[test]
    fn transfer_seconds_monotonic_in_bytes() {
        let t = TransferModel::default();
        let a = t.scatter_gather_seconds(1 << 20, 4);
        let b = t.scatter_gather_seconds(2 << 20, 4);
        assert!(b > a);
        assert_eq!(t.scatter_gather_seconds(0, 4), 0.0);
    }

    #[test]
    fn cycles_to_seconds_uses_clock() {
        let cfg = PimConfig::builder().frequency_mhz(425).build();
        let s = cfg.cycles_to_seconds(425_000_000);
        assert!((s - 1.0).abs() < 1e-12);
    }
}
