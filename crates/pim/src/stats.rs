//! Execution statistics reported by the host interface.

use crate::cost::CycleCounter;
use serde::{Deserialize, Serialize};

/// Statistics of a single kernel launch across a DPU set.
///
/// Container-level `serde(default)`: fields added after an artifact was
/// written deserialize to their defaults, so pre-existing JSON (e.g. a
/// checked-in `BENCH_SIM_THROUGHPUT.json`) keeps parsing across schema
/// growth. The per-field attributes this replaces are kept implicitly.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct LaunchStats {
    /// Number of DPUs that executed the kernel.
    pub dpus: usize,
    /// Cycles of the slowest DPU (determines launch latency).
    pub max_cycles: u64,
    /// Cycles of the fastest DPU.
    pub min_cycles: u64,
    /// Mean cycles across DPUs.
    pub mean_cycles: f64,
    /// Launch latency in seconds (`max_cycles / f_clk`).
    pub seconds: f64,
    /// Merged per-class instruction accounting over all DPUs.
    pub merged: CycleCounter,
    /// Sanitizer findings raised during this launch (0 when sanitization
    /// is off or the launch was clean).
    pub sanitizer_findings: u64,
    /// DPUs whose kernel faulted during this launch, in DPU-index order
    /// (empty for a clean launch). Cycle fields (`max`/`min`/`mean`,
    /// `merged`) cover only the DPUs that completed.
    pub faulted_dpus: Vec<usize>,
}

impl LaunchStats {
    /// Load imbalance: slowest DPU cycles over mean cycles (1.0 = perfectly
    /// balanced). Returns 1.0 for an empty launch.
    pub fn imbalance(&self) -> f64 {
        if self.mean_cycles <= 0.0 {
            return 1.0;
        }
        self.max_cycles as f64 / self.mean_cycles
    }

    /// True if any DPU faulted during this launch.
    pub fn is_faulted(&self) -> bool {
        !self.faulted_dpus.is_empty()
    }
}

/// Cumulative statistics of a [`DpuSet`](crate::host::DpuSet).
///
/// Groups the four time components the paper's figures break execution
/// into: PIM kernel time, CPU→PIM transfer, PIM→CPU transfer; inter-PIM
/// synchronization (which is host-mediated) is accounted by the
/// orchestration layer on top using these same transfer primitives.
///
/// Container-level `serde(default)`, like [`LaunchStats`]: artifacts
/// written before a field existed still deserialize.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct SystemStats {
    /// Number of kernel launches performed.
    pub launches: u64,
    /// Seconds of the most recent launch.
    pub last_kernel_seconds: f64,
    /// Total PIM kernel seconds across launches.
    pub kernel_seconds: f64,
    /// Total CPU→PIM transfer seconds (includes the one-time program
    /// load, also reported separately in `program_load_seconds`).
    pub cpu_to_pim_seconds: f64,
    /// One-time DPU program-load seconds (subset of `cpu_to_pim_seconds`).
    pub program_load_seconds: f64,
    /// Total PIM→CPU transfer seconds.
    pub pim_to_cpu_seconds: f64,
    /// Total bytes moved CPU→PIM.
    pub cpu_to_pim_bytes: u64,
    /// Total bytes moved PIM→CPU.
    pub pim_to_cpu_bytes: u64,
    /// Launches in which at least one DPU faulted. Faulted launches are
    /// not counted in `launches` and their time is kept out of
    /// `kernel_seconds` (tracked in `faulted_kernel_seconds` instead).
    pub faulted_launches: u64,
    /// Modelled seconds the host spent waiting on launches that ended in
    /// a fault (the slowest *surviving* DPU of each such launch).
    pub faulted_kernel_seconds: f64,
    /// CPU→PIM transfers corrupted or dropped in flight by the fault
    /// plan.
    pub injected_transfer_faults: u64,
}

impl SystemStats {
    /// Total modelled seconds (kernel + both transfer directions).
    pub fn total_seconds(&self) -> f64 {
        self.kernel_seconds + self.cpu_to_pim_seconds + self.pim_to_cpu_seconds
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = SystemStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_of_empty_launch_is_one() {
        let s = LaunchStats::default();
        assert_eq!(s.imbalance(), 1.0);
    }

    #[test]
    fn imbalance_reflects_skew() {
        let s = LaunchStats {
            dpus: 2,
            max_cycles: 200,
            min_cycles: 100,
            mean_cycles: 150.0,
            seconds: 0.0,
            merged: CycleCounter::new(),
            sanitizer_findings: 0,
            faulted_dpus: Vec::new(),
        };
        assert!((s.imbalance() - 200.0 / 150.0).abs() < 1e-12);
        assert!(!s.is_faulted());
    }

    #[test]
    fn total_seconds_sums_components() {
        let mut s = SystemStats {
            kernel_seconds: 1.0,
            cpu_to_pim_seconds: 0.25,
            pim_to_cpu_seconds: 0.5,
            ..SystemStats::default()
        };
        assert!((s.total_seconds() - 1.75).abs() < 1e-12);
        s.reset();
        assert_eq!(s.total_seconds(), 0.0);
    }
}
