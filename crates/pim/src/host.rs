//! Host-side interface: DPU allocation, data transfers, kernel launches.
//!
//! Mirrors the structure of the UPMEM host API (`dpu_alloc`,
//! `dpu_copy_to`, parallel `dpu_push_xfer` scatter/gather,
//! `dpu_launch`): the host can touch MRAM between launches, kernels run
//! to completion, and all timing is accumulated in [`SystemStats`].
//!
//! Launches are tier-oblivious: whether a DPU interpreted its kernel
//! per-intrinsic or took the fused batched sweep (DESIGN.md §14), the
//! per-DPU cycle counters merged into [`LaunchStats`] here are
//! identical, so `last_launch()` and the accumulated [`SystemStats`]
//! never reveal which tier ran.

use crate::config::PimConfig;
use crate::dpu::Dpu;
use crate::kernel::{Kernel, KernelError};
use crate::memory::MemoryError;
use crate::report::SanitizerReport;
use crate::sanitize::{FindingKind, SanitizeLevel, SanitizerFinding};
use crate::stats::{LaunchStats, SystemStats};
use crate::xfer::{Direction, TransferLedger, TransferRecord};
use std::fmt;
use swiftrl_telemetry::{CycleClassTotals, Event, TransferFaultKind, TransferKind};

/// Error raised by host-side PIM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PimError {
    /// Requested more DPUs than the system has available.
    Alloc {
        /// DPUs requested.
        requested: usize,
        /// DPUs still available.
        available: usize,
    },
    /// A DPU index was out of range for the set.
    BadDpu {
        /// The offending index.
        index: usize,
        /// Number of DPUs in the set.
        dpus: usize,
    },
    /// A host-side MRAM access failed.
    Memory(MemoryError),
    /// A kernel failed during a launch.
    Kernel {
        /// DPU on which the kernel faulted.
        dpu: usize,
        /// The kernel's error.
        error: KernelError,
    },
    /// An argument was invalid (e.g. mismatched scatter part count).
    BadArgument(String),
    /// The host abandoned the run at a round boundary (job cancellation
    /// in a multi-tenant service). The DPU set is left in a consistent
    /// state and can be freed or reused.
    Cancelled,
}

impl fmt::Display for PimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PimError::Alloc {
                requested,
                available,
            } => write!(f, "requested {requested} DPUs but only {available} are available"),
            PimError::BadDpu { index, dpus } => {
                write!(f, "DPU index {index} out of range for a set of {dpus}")
            }
            PimError::Memory(e) => write!(f, "host MRAM access failed: {e}"),
            PimError::Kernel { dpu, error } => write!(f, "kernel fault on DPU {dpu}: {error}"),
            PimError::BadArgument(msg) => write!(f, "invalid argument: {msg}"),
            PimError::Cancelled => write!(f, "run cancelled by the host"),
        }
    }
}

impl std::error::Error for PimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PimError::Memory(e) => Some(e),
            PimError::Kernel { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<MemoryError> for PimError {
    fn from(e: MemoryError) -> Self {
        PimError::Memory(e)
    }
}

/// The whole PIM platform; allocates [`DpuSet`]s.
///
/// Owns the [`FleetArena`](crate::arena::FleetArena) that backs every
/// bank segment of every set it allocates: per-DPU memory is
/// materialized lazily on first write, accounted fleet-wide, and pooled
/// for reuse when sets are freed — so a 2,524-DPU platform costs host
/// memory proportional to the bytes its workloads actually touch, not
/// to 2,524 × 64 MB of nominal bank capacity.
#[derive(Debug)]
pub struct PimSystem {
    config: PimConfig,
    allocated: usize,
    arena: crate::arena::FleetArena,
}

impl PimSystem {
    /// Creates a system with the given platform configuration.
    pub fn new(config: PimConfig) -> Self {
        Self {
            config,
            allocated: 0,
            arena: crate::arena::FleetArena::new(),
        }
    }

    /// The platform configuration.
    pub fn config(&self) -> &PimConfig {
        &self.config
    }

    /// Fleet-wide bank-memory accounting (current and peak allocated
    /// bank bytes, arena footprint) across every set this system has
    /// allocated, live or freed.
    pub fn memory_stats(&self) -> crate::arena::MemoryStats {
        self.arena.stats()
    }

    /// DPUs not yet allocated to a set.
    pub fn available_dpus(&self) -> usize {
        self.config.dpus - self.allocated
    }

    /// Allocates a set of `dpus` DPUs.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::Alloc`] if fewer than `dpus` remain, or
    /// [`PimError::BadArgument`] for an empty request.
    pub fn alloc(&mut self, dpus: usize) -> Result<DpuSet, PimError> {
        self.alloc_with_config(dpus, self.config.clone())
    }

    /// [`Self::alloc`], but the set runs under `config` — its own fault
    /// plan, telemetry sink, and arithmetic tier — while still drawing
    /// bank segments from (and counting against) this system's shared
    /// fleet arena and DPU capacity. Multi-tenant hosts use this to give
    /// every job an isolated platform view over one shared machine.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::Alloc`] if fewer than `dpus` remain, or
    /// [`PimError::BadArgument`] for an empty request.
    pub fn alloc_with_config(
        &mut self,
        dpus: usize,
        config: PimConfig,
    ) -> Result<DpuSet, PimError> {
        if dpus == 0 {
            return Err(PimError::BadArgument("cannot allocate 0 DPUs".into()));
        }
        let available = self.available_dpus();
        if dpus > available {
            return Err(PimError::Alloc {
                requested: dpus,
                available,
            });
        }
        self.allocated += dpus;
        Ok(DpuSet::new(config, dpus, &self.arena))
    }

    /// Returns a set's DPUs to the pool.
    pub fn free(&mut self, set: DpuSet) {
        self.allocated -= set.ndpus();
    }
}

/// A set of allocated DPUs operated on collectively, like a UPMEM
/// `dpu_set_t`.
#[derive(Debug)]
pub struct DpuSet {
    config: PimConfig,
    dpus: Vec<Dpu>,
    arena: crate::arena::FleetArena,
    stats: SystemStats,
    ledger: TransferLedger,
    last_launch: LaunchStats,
    program_loaded: bool,
    sanitizer_report: SanitizerReport,
    kernel_running: bool,
    // Host-side serial number of CPU→PIM transfer operations; the fault
    // plan keys in-flight corruption/drop decisions on it, which makes
    // transfer faults engine-invariant by construction.
    transfer_seq: u64,
}

impl DpuSet {
    fn new(config: PimConfig, n: usize, arena: &crate::arena::FleetArena) -> Self {
        let dpus = (0..n).map(|i| Dpu::with_arena(i, &config, arena)).collect();
        let sanitizer_report = SanitizerReport {
            level: config.sanitize,
            ..SanitizerReport::default()
        };
        Self {
            config,
            dpus,
            arena: arena.clone(),
            stats: SystemStats::default(),
            ledger: TransferLedger::new(),
            last_launch: LaunchStats::default(),
            program_loaded: false,
            sanitizer_report,
            kernel_running: false,
            transfer_seq: 0,
        }
    }

    /// Number of DPUs in the set.
    pub fn ndpus(&self) -> usize {
        self.dpus.len()
    }

    /// The platform configuration.
    pub fn config(&self) -> &PimConfig {
        &self.config
    }

    /// Cumulative time/byte statistics.
    pub fn stats(&self) -> &SystemStats {
        &self.stats
    }

    /// Statistics of the most recent launch.
    pub fn last_launch(&self) -> &LaunchStats {
        &self.last_launch
    }

    /// The transfer ledger (every recorded transfer, in order).
    pub fn ledger(&self) -> &TransferLedger {
        &self.ledger
    }

    /// Fleet-wide bank-memory accounting of the arena backing this
    /// set's banks (shared with the owning [`PimSystem`]): current and
    /// peak allocated bank bytes, and the arena's own footprint
    /// including pooled segments.
    pub fn memory_stats(&self) -> crate::arena::MemoryStats {
        self.arena.stats()
    }

    /// Resets cumulative statistics (keeps memory contents and the
    /// loaded program).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.ledger.clear();
        self.last_launch = LaunchStats::default();
    }

    /// Sets the runtime sanitization level for subsequent launches.
    ///
    /// Sanitization is observation-only: Q-tables and cycle counts are
    /// bit-identical with it on or off; only diagnostics are collected.
    pub fn set_sanitize_level(&mut self, level: SanitizeLevel) {
        self.config.sanitize = level;
        self.sanitizer_report.level = level;
    }

    /// The sanitization level launches currently run at.
    pub fn sanitize_level(&self) -> SanitizeLevel {
        self.config.sanitize
    }

    /// Accumulated sanitizer diagnostics across launches.
    pub fn sanitizer_report(&self) -> &SanitizerReport {
        &self.sanitizer_report
    }

    /// Clears accumulated sanitizer findings (keeps the level).
    pub fn reset_sanitizer_report(&mut self) {
        self.sanitizer_report.reset();
    }

    /// Records a host MRAM access inside an async launch window.
    fn note_host_access(&mut self, dpu: usize, offset: usize, len: usize) {
        if self.kernel_running && self.config.sanitize.enabled() {
            self.sanitizer_report.findings.push(SanitizerFinding {
                dpu,
                tasklet: None,
                kind: FindingKind::HostAccessDuringLaunch { offset, len },
            });
        }
    }

    fn check_dpu(&self, index: usize) -> Result<(), PimError> {
        if index >= self.dpus.len() {
            return Err(PimError::BadDpu {
                index,
                dpus: self.dpus.len(),
            });
        }
        Ok(())
    }

    fn ranks(&self) -> usize {
        self.config.ranks_for(self.dpus.len())
    }

    /// The single rank-aware transfer path: walks the addressed DPUs
    /// (`None` = the whole set) rank group by rank group in ascending
    /// order, calling `f(set, pos, dpu)` with `pos` the ordinal of
    /// `dpu` within the selection, and returns the number of distinct
    /// ranks visited — the rank parallelism the bandwidth model is
    /// charged for. Every broadcast/scatter/gather variant routes its
    /// per-DPU work and its rank count through here, so full-set and
    /// subset operations share one charging semantics: a transfer is
    /// charged for the ranks it *actually* addresses. (For a full set
    /// of `n` DPUs that is exactly `ranks_for(n)`; a sparse subset
    /// spread across the machine touches — and is charged for — more
    /// ranks than a dense packing of its size would.)
    ///
    /// DPUs are visited in strictly ascending index order, identical to
    /// a flat iteration, so transfer sequence numbers and fault-plan
    /// decisions are unaffected by the rank grouping.
    fn visit_ranks(
        &mut self,
        indices: Option<&[usize]>,
        mut f: impl FnMut(&mut Self, usize, usize) -> Result<(), PimError>,
    ) -> Result<usize, PimError> {
        let per = self.config.dpus_per_rank.max(1);
        match indices {
            None => {
                let n = self.dpus.len();
                let ranks = self.config.ranks_for(n);
                for rank in 0..ranks {
                    for dpu in rank * per..((rank + 1) * per).min(n) {
                        f(self, dpu, dpu)?;
                    }
                }
                Ok(ranks)
            }
            Some(indices) => {
                let mut ranks = 0usize;
                let mut pos = 0usize;
                while pos < indices.len() {
                    let rank = self.config.rank_of(indices[pos]);
                    ranks += 1;
                    while pos < indices.len() && self.config.rank_of(indices[pos]) == rank {
                        f(self, pos, indices[pos])?;
                        pos += 1;
                    }
                }
                Ok(ranks.max(1))
            }
        }
    }

    /// Validates a DPU index list for a subset operation: non-empty,
    /// strictly increasing, all in range.
    fn check_indices(&self, indices: &[usize]) -> Result<(), PimError> {
        if indices.is_empty() {
            return Err(PimError::BadArgument(
                "subset operation expects at least one DPU index".into(),
            ));
        }
        for w in indices.windows(2) {
            if w[0] >= w[1] {
                return Err(PimError::BadArgument(
                    "subset DPU indices must be strictly increasing".into(),
                ));
            }
        }
        match indices.last() {
            Some(&last) => self.check_dpu(last),
            None => Ok(()),
        }
    }

    fn next_transfer_seq(&mut self) -> u64 {
        let seq = self.transfer_seq;
        self.transfer_seq += 1;
        seq
    }

    /// Lands `data` in `dpu`'s MRAM, subject to the fault plan's
    /// in-flight decisions for CPU→PIM transfer operation `seq`. A
    /// dropped payload never reaches the bank; a corrupted one lands
    /// with a single byte XORed. The host cannot observe either, so
    /// callers charge time and bytes as if the transfer succeeded.
    ///
    /// The clean path (and the dropped path) never copies the payload;
    /// only a corrupted transfer touches extra bytes, and even then the
    /// payload lands directly and the single corrupted byte is patched
    /// in place afterwards — `deliver` allocates nothing on any path.
    fn deliver(
        &mut self,
        seq: u64,
        dpu: usize,
        mram_offset: usize,
        data: &[u8],
    ) -> Result<(), PimError> {
        if self.config.faults.is_none() {
            self.dpus[dpu].mram_mut().write(mram_offset, data)?;
            return Ok(());
        }
        if self.config.faults.drop_transfer(seq, dpu) {
            self.stats.injected_transfer_faults += 1;
            self.config.telemetry.emit(|| Event::TransferFault {
                kind: TransferFaultKind::Dropped,
                seq,
                dpu,
            });
            return Ok(());
        }
        self.dpus[dpu].mram_mut().write(mram_offset, data)?;
        if let Some((pos, mask)) = self.config.faults.corrupt_transfer(seq, dpu, data.len()) {
            // Patch the single corrupted byte in place: read-modify-write
            // of one byte instead of cloning the whole payload.
            let mut byte = [0u8; 1];
            self.dpus[dpu].mram().read(mram_offset + pos, &mut byte)?;
            byte[0] ^= mask;
            self.dpus[dpu].mram_mut().write(mram_offset + pos, &byte)?;
            self.stats.injected_transfer_faults += 1;
            self.config.telemetry.emit(|| Event::TransferFault {
                kind: TransferFaultKind::Corrupted,
                seq,
                dpu,
            });
        }
        Ok(())
    }

    fn record(&mut self, direction: Direction, bytes: u64, dpus: usize, ranks: usize, seconds: f64) {
        self.ledger.record(TransferRecord {
            direction,
            bytes,
            dpus,
            ranks,
            seconds,
        });
        match direction {
            Direction::CpuToPim => {
                self.stats.cpu_to_pim_seconds += seconds;
                self.stats.cpu_to_pim_bytes += bytes;
            }
            Direction::PimToCpu => {
                self.stats.pim_to_cpu_seconds += seconds;
                self.stats.pim_to_cpu_bytes += bytes;
            }
        }
    }

    /// [`Self::record`] for data transfers, plus the telemetry event.
    /// Direction follows the transfer kind; program loads go through
    /// plain `record` and emit their own [`Event::ProgramLoad`].
    fn record_xfer(&mut self, kind: TransferKind, bytes: u64, dpus: usize, ranks: usize, seconds: f64) {
        let direction = if kind.is_cpu_to_pim() {
            Direction::CpuToPim
        } else {
            Direction::PimToCpu
        };
        self.record(direction, bytes, dpus, ranks, seconds);
        self.config.telemetry.emit(|| Event::Transfer {
            kind,
            bytes,
            dpus,
            seconds,
        });
    }

    // ---- transfers -------------------------------------------------------

    /// Copies `data` into one DPU's MRAM at `mram_offset`.
    ///
    /// # Errors
    ///
    /// Fails on a bad DPU index or an out-of-range MRAM write.
    pub fn copy_to(&mut self, dpu: usize, mram_offset: usize, data: &[u8]) -> Result<(), PimError> {
        self.check_dpu(dpu)?;
        self.note_host_access(dpu, mram_offset, data.len());
        let seq = self.next_transfer_seq();
        self.deliver(seq, dpu, mram_offset, data)?;
        let seconds = self.config.transfer.scatter_gather_seconds(data.len(), 1);
        self.record_xfer(TransferKind::CopyTo, data.len() as u64, 1, 1, seconds);
        Ok(())
    }

    /// Reads `len` bytes from one DPU's MRAM at `mram_offset`.
    ///
    /// # Errors
    ///
    /// Fails on a bad DPU index or an out-of-range MRAM read.
    pub fn copy_from(
        &mut self,
        dpu: usize,
        mram_offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, PimError> {
        self.check_dpu(dpu)?;
        self.note_host_access(dpu, mram_offset, len);
        let mut buf = vec![0u8; len];
        self.dpus[dpu].mram().read(mram_offset, &mut buf)?;
        let seconds = self.config.transfer.scatter_gather_seconds(len, 1);
        self.record_xfer(TransferKind::CopyFrom, len as u64, 1, 1, seconds);
        Ok(buf)
    }

    /// Parallel scatter: part `i` of `parts` goes to DPU `i` at
    /// `mram_offset`. This is the UPMEM `dpu_push_xfer(..., TO_DPU)`
    /// equivalent and the fast path for dataset-chunk loading.
    ///
    /// # Errors
    ///
    /// Fails if `parts.len() != ndpus()` or any MRAM write is out of range.
    pub fn scatter(&mut self, mram_offset: usize, parts: &[Vec<u8>]) -> Result<(), PimError> {
        if parts.len() != self.dpus.len() {
            return Err(PimError::BadArgument(format!(
                "scatter expects {} parts, got {}",
                self.dpus.len(),
                parts.len()
            )));
        }
        for (i, part) in parts.iter().enumerate() {
            if !part.is_empty() {
                self.note_host_access(i, mram_offset, part.len());
            }
        }
        let seq = self.next_transfer_seq();
        let total: u64 = parts.iter().map(|p| p.len() as u64).sum();
        // Empty parts carry no payload: their DPUs are not addressed by
        // the transfer at all (`partition_even` with more DPUs than
        // items yields empty tail chunks), so they see no delivery —
        // and no in-flight fault decisions — and their ranks don't
        // count toward the rank parallelism the bandwidth model is
        // charged for.
        let addressed: Vec<usize> = (0..parts.len()).filter(|&i| !parts[i].is_empty()).collect();
        let ranks = if addressed.len() == parts.len() {
            self.visit_ranks(None, |set, _, dpu| {
                set.deliver(seq, dpu, mram_offset, &parts[dpu])
            })?
        } else if addressed.is_empty() {
            0
        } else {
            self.visit_ranks(Some(&addressed), |set, _, dpu| {
                set.deliver(seq, dpu, mram_offset, &parts[dpu])
            })?
        };
        let seconds = if ranks == 0 {
            0.0
        } else {
            self.config
                .transfer
                .scatter_gather_seconds(total as usize, ranks)
        };
        self.record_xfer(TransferKind::Scatter, total, addressed.len(), ranks, seconds);
        Ok(())
    }

    /// Broadcast: copies the same buffer to every DPU at `mram_offset`
    /// (UPMEM `dpu_broadcast_to`).
    ///
    /// # Errors
    ///
    /// Fails if the MRAM write is out of range.
    pub fn broadcast(&mut self, mram_offset: usize, data: &[u8]) -> Result<(), PimError> {
        for i in 0..self.dpus.len() {
            self.note_host_access(i, mram_offset, data.len());
        }
        let seq = self.next_transfer_seq();
        let ranks = self.visit_ranks(None, |set, _, dpu| set.deliver(seq, dpu, mram_offset, data))?;
        let n = self.dpus.len();
        let seconds = self
            .config
            .transfer
            .broadcast_seconds(data.len(), n, ranks);
        self.record_xfer(TransferKind::Broadcast, (data.len() * n) as u64, n, ranks, seconds);
        Ok(())
    }

    /// [`Self::broadcast`] restricted to the DPUs in `indices` (strictly
    /// increasing). Used by resilient hosts to refresh only the healthy
    /// subset, e.g. when rolling back to a Q-table checkpoint.
    ///
    /// # Errors
    ///
    /// Fails on an invalid index list or an out-of-range MRAM write.
    pub fn broadcast_subset(
        &mut self,
        mram_offset: usize,
        data: &[u8],
        indices: &[usize],
    ) -> Result<(), PimError> {
        self.check_indices(indices)?;
        for &i in indices {
            self.note_host_access(i, mram_offset, data.len());
        }
        let seq = self.next_transfer_seq();
        let ranks = self.visit_ranks(Some(indices), |set, _, dpu| {
            set.deliver(seq, dpu, mram_offset, data)
        })?;
        let n = indices.len();
        let seconds = self
            .config
            .transfer
            .broadcast_seconds(data.len(), n, ranks);
        self.record_xfer(TransferKind::Broadcast, (data.len() * n) as u64, n, ranks, seconds);
        Ok(())
    }

    /// Parallel gather: reads `len` bytes at `mram_offset` from every DPU
    /// (UPMEM `dpu_push_xfer(..., FROM_DPU)`).
    ///
    /// # Errors
    ///
    /// Fails if any MRAM read is out of range.
    pub fn gather(&mut self, mram_offset: usize, len: usize) -> Result<Vec<Vec<u8>>, PimError> {
        for i in 0..self.dpus.len() {
            self.note_host_access(i, mram_offset, len);
        }
        let mut out = Vec::with_capacity(self.dpus.len());
        let ranks = self.visit_ranks(None, |set, _, dpu| {
            let mut buf = vec![0u8; len];
            set.dpus[dpu].mram().read(mram_offset, &mut buf)?;
            out.push(buf);
            Ok(())
        })?;
        let n = self.dpus.len();
        let total = (len * n) as u64;
        let seconds = self
            .config
            .transfer
            .scatter_gather_seconds(total as usize, ranks);
        self.record_xfer(TransferKind::Gather, total, n, ranks, seconds);
        Ok(out)
    }

    /// [`Self::gather`] restricted to the DPUs in `indices` (strictly
    /// increasing); buffers are returned in index order. Used by
    /// resilient hosts to collect Q-tables from the healthy subset only.
    ///
    /// # Errors
    ///
    /// Fails on an invalid index list or an out-of-range MRAM read.
    pub fn gather_subset(
        &mut self,
        mram_offset: usize,
        len: usize,
        indices: &[usize],
    ) -> Result<Vec<Vec<u8>>, PimError> {
        self.check_indices(indices)?;
        for &i in indices {
            self.note_host_access(i, mram_offset, len);
        }
        let mut out = Vec::with_capacity(indices.len());
        let ranks = self.visit_ranks(Some(indices), |set, _, dpu| {
            let mut buf = vec![0u8; len];
            set.dpus[dpu].mram().read(mram_offset, &mut buf)?;
            out.push(buf);
            Ok(())
        })?;
        let n = indices.len();
        let total = (len * n) as u64;
        let seconds = self
            .config
            .transfer
            .scatter_gather_seconds(total as usize, ranks);
        self.record_xfer(TransferKind::Gather, total, n, ranks, seconds);
        Ok(out)
    }

    /// Zero-allocation [`Self::gather`]: reads `len` bytes at
    /// `mram_offset` from every DPU into the caller-owned flat buffer
    /// `out` (DPU `i`'s chunk lands at `out[i * len .. (i + 1) * len]`).
    /// Sync-loop hosts reuse one scratch buffer across rounds instead of
    /// allocating `ndpus` fresh vectors per gather.
    ///
    /// # Errors
    ///
    /// Fails if `out.len() != len * ndpus()` or any MRAM read is out of
    /// range.
    pub fn gather_into(
        &mut self,
        mram_offset: usize,
        len: usize,
        out: &mut [u8],
    ) -> Result<(), PimError> {
        let expected = len * self.dpus.len();
        if out.len() != expected {
            return Err(PimError::BadArgument(format!(
                "gather_into expects a {expected}-byte buffer, got {}",
                out.len()
            )));
        }
        for i in 0..self.dpus.len() {
            self.note_host_access(i, mram_offset, len);
        }
        let ranks = if len > 0 {
            self.visit_ranks(None, |set, pos, dpu| {
                set.dpus[dpu]
                    .mram()
                    .read(mram_offset, &mut out[pos * len..(pos + 1) * len])?;
                Ok(())
            })?
        } else {
            self.ranks()
        };
        let n = self.dpus.len();
        let total = (len * n) as u64;
        let seconds = self
            .config
            .transfer
            .scatter_gather_seconds(total as usize, ranks);
        self.record_xfer(TransferKind::Gather, total, n, ranks, seconds);
        Ok(())
    }

    /// Zero-allocation [`Self::gather_subset`]: reads `len` bytes at
    /// `mram_offset` from the DPUs in `indices` (strictly increasing)
    /// into the caller-owned flat buffer `out`, packed in index order
    /// with stride `len`.
    ///
    /// # Errors
    ///
    /// Fails on an invalid index list, if
    /// `out.len() != len * indices.len()`, or on an out-of-range MRAM
    /// read.
    pub fn gather_subset_into(
        &mut self,
        mram_offset: usize,
        len: usize,
        indices: &[usize],
        out: &mut [u8],
    ) -> Result<(), PimError> {
        self.check_indices(indices)?;
        let expected = len * indices.len();
        if out.len() != expected {
            return Err(PimError::BadArgument(format!(
                "gather_subset_into expects a {expected}-byte buffer, got {}",
                out.len()
            )));
        }
        for &i in indices {
            self.note_host_access(i, mram_offset, len);
        }
        let ranks = if len > 0 {
            self.visit_ranks(Some(indices), |set, pos, dpu| {
                set.dpus[dpu]
                    .mram()
                    .read(mram_offset, &mut out[pos * len..(pos + 1) * len])?;
                Ok(())
            })?
        } else {
            self.config.ranks_spanned(indices)
        };
        let n = indices.len();
        let total = (len * n) as u64;
        let seconds = self
            .config
            .transfer
            .scatter_gather_seconds(total as usize, ranks);
        self.record_xfer(TransferKind::Gather, total, n, ranks, seconds);
        Ok(())
    }

    // ---- launch ----------------------------------------------------------

    /// One-time `dpu_load` of the kernel binary into the set's IRAMs.
    /// Charged to the CPU→PIM category (and tracked separately in
    /// [`SystemStats::program_load_seconds`]). Idempotent; `launch` calls
    /// it implicitly if the host has not done so.
    pub fn load_program(&mut self) {
        if self.program_loaded {
            return;
        }
        let n = self.dpus.len();
        let seconds = self.config.transfer.program_load_seconds(n);
        let bytes = (self.config.iram_bytes * n) as u64;
        let ranks = self.ranks();
        self.record(Direction::CpuToPim, bytes, n, ranks, seconds);
        self.stats.program_load_seconds += seconds;
        self.program_loaded = true;
        self.config.telemetry.emit(|| Event::ProgramLoad {
            dpus: n,
            bytes,
            seconds,
        });
    }

    /// Launches `kernel` on every DPU in the set and blocks until all
    /// finish. Launch latency is the slowest DPU's cycle count at the
    /// platform clock. Equivalent to [`Self::launch_async`] followed by
    /// [`Self::sync`].
    ///
    /// # Errors
    ///
    /// Returns the first kernel fault with its DPU index.
    pub fn launch(&mut self, kernel: &dyn Kernel) -> Result<&LaunchStats, PimError> {
        self.launch_async(kernel)?;
        Ok(self.sync())
    }

    /// Starts a launch without closing its window (UPMEM
    /// `DPU_ASYNCHRONOUS`). The simulator executes the kernel eagerly —
    /// scheduled across host threads per the configured
    /// [`crate::engine::ExecutionEngine`] — but host MRAM accesses before
    /// [`Self::sync`] are flagged by the sanitizer as
    /// [`FindingKind::HostAccessDuringLaunch`] — on real hardware they
    /// would race the running kernel.
    ///
    /// All DPUs execute (as they would on hardware, where every core runs
    /// to completion or fault independently); results are then merged in
    /// DPU-index order, so cycle statistics, sanitizer finding order, and
    /// fault attribution are identical for every engine.
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed kernel fault with its DPU index (unlike
    /// real hardware, faults are reported here rather than at `sync`).
    pub fn launch_async(&mut self, kernel: &dyn Kernel) -> Result<(), PimError> {
        // Full-set launch: no per-launch index vector is materialised —
        // the engine runs directly over the owned DPU slice.
        self.launch_on(kernel, None)
    }

    /// Launches `kernel` on the DPUs in `indices` only (strictly
    /// increasing) and blocks until they finish. The other DPUs are left
    /// untouched — their MRAM, counters, and launch indices do not
    /// advance. This is the host's relaunch primitive for faulted DPUs
    /// and the degraded-mode launch path.
    ///
    /// # Errors
    ///
    /// Fails on an invalid index list; otherwise as [`Self::launch`].
    pub fn launch_subset(
        &mut self,
        kernel: &dyn Kernel,
        indices: &[usize],
    ) -> Result<&LaunchStats, PimError> {
        self.launch_subset_async(kernel, indices)?;
        Ok(self.sync())
    }

    /// [`Self::launch_subset`] without closing the launch window; pair
    /// with [`Self::sync`].
    ///
    /// # Errors
    ///
    /// Fails on an invalid index list; otherwise as
    /// [`Self::launch_async`].
    pub fn launch_subset_async(
        &mut self,
        kernel: &dyn Kernel,
        indices: &[usize],
    ) -> Result<(), PimError> {
        self.check_indices(indices)?;
        self.launch_on(kernel, Some(indices))
    }

    /// Shared launch core. `indices: None` launches the full set (the
    /// engine runs over the owned DPU slice directly, no selection
    /// vector); `Some(indices)` launches that strictly-increasing
    /// subset.
    fn launch_on(&mut self, kernel: &dyn Kernel, indices: Option<&[usize]>) -> Result<(), PimError> {
        self.load_program();
        self.kernel_running = true;
        let results = match indices {
            None => self
                .config
                .engine
                .execute_all(&self.config, &mut self.dpus, kernel),
            Some(indices) => {
                // Collect mutable references to the selected DPUs in index
                // order; the engine schedules exactly this selection.
                let mut refs: Vec<&mut Dpu> = Vec::with_capacity(indices.len());
                let mut want = indices.iter().copied().peekable();
                for (i, dpu) in self.dpus.iter_mut().enumerate() {
                    if want.peek() == Some(&i) {
                        refs.push(dpu);
                        want.next();
                    }
                }
                self.config.engine.execute_refs(&self.config, &mut refs, kernel)
            }
        };
        let launched = indices.map_or(self.dpus.len(), <[usize]>::len);

        // Ordered merge: walk the per-DPU results strictly in DPU-index
        // order so every engine reports bit-identical statistics. Cycle
        // aggregates cover the DPUs that completed; faulted DPUs are
        // listed in `faulted_dpus` instead.
        let mut max_cycles = 0u64;
        let mut min_cycles = u64::MAX;
        let mut sum_cycles = 0u128;
        let mut survivors = 0usize;
        let mut merged = crate::cost::CycleCounter::new();
        let mut faulted_dpus = Vec::new();
        let mut fault = None;
        // Per-DPU spans are collected only when telemetry is on: with it
        // off the launch hot path allocates and pushes nothing.
        let telemetry_on = self.config.telemetry.is_enabled();
        let mut dpu_cycles: Vec<(usize, u64)> = Vec::new();
        for (i, result) in results.into_iter().enumerate() {
            let idx = match indices {
                None => i,
                Some(indices) => indices[i],
            };
            match result {
                Ok(cycles) => {
                    survivors += 1;
                    max_cycles = max_cycles.max(cycles);
                    min_cycles = min_cycles.min(cycles);
                    sum_cycles += cycles as u128;
                    merged.merge(self.dpus[idx].last_counter());
                    if telemetry_on {
                        dpu_cycles.push((idx, cycles));
                    }
                }
                Err(error) => {
                    if fault.is_none() {
                        fault = Some(PimError::Kernel { dpu: idx, error });
                    }
                    faulted_dpus.push(idx);
                }
            }
        }
        // Drain sanitizer findings even when a DPU faulted: partial
        // access sets still carry diagnostics.
        let mut launch_findings = 0u64;
        for dpu in &mut self.dpus {
            let (findings, dropped) = dpu.sanitizer_mut().drain();
            launch_findings += findings.len() as u64;
            self.sanitizer_report.findings.extend(findings);
            self.sanitizer_report.dropped += dropped;
        }
        if self.config.sanitize.enabled() {
            self.sanitizer_report.level = self.config.sanitize;
            self.sanitizer_report.sanitized_launches += 1;
        }
        let seconds = self.config.cycles_to_seconds(max_cycles);
        // Even a faulted launch overwrites `last_launch`: `sync()` after
        // a fault reports the faulted launch (marked via `faulted_dpus`,
        // with the survivors' merged cycle accounting), never the stale
        // statistics of an earlier launch.
        self.last_launch = LaunchStats {
            dpus: launched,
            max_cycles,
            min_cycles: if survivors == 0 { 0 } else { min_cycles },
            mean_cycles: if survivors == 0 {
                0.0
            } else {
                sum_cycles as f64 / survivors as f64
            },
            seconds,
            merged,
            sanitizer_findings: launch_findings,
            faulted_dpus,
        };
        if telemetry_on {
            // Emitted for clean and faulted launches alike, after the
            // ordered merge above — so the stream is identical for every
            // execution engine, exactly like `LaunchStats`.
            let stats = &self.last_launch;
            let classes = CycleClassTotals {
                alu_slots: stats.merged.alu_slots,
                wram_slots: stats.merged.wram_slots,
                control_slots: stats.merged.control_slots,
                int_emul_slots: stats.merged.int_emul_slots,
                float_emul_slots: stats.merged.float_emul_slots,
                dma_cycles: stats.merged.dma_cycles,
                dma_bytes: stats.merged.dma_bytes,
            };
            self.config.telemetry.emit(|| Event::KernelLaunch {
                dpus: survivors,
                max_cycles: stats.max_cycles,
                min_cycles: stats.min_cycles,
                mean_cycles: stats.mean_cycles,
                seconds,
                dpu_cycles,
                faulted_dpus: stats.faulted_dpus.clone(),
                classes,
                sanitizer_findings: launch_findings,
            });
        }
        if let Some(e) = fault {
            self.kernel_running = false;
            // Faulted launches never contribute to `launches` or
            // `kernel_seconds`; the time the host spent waiting on the
            // surviving DPUs is tracked separately.
            self.stats.faulted_launches += 1;
            self.stats.faulted_kernel_seconds += seconds;
            return Err(e);
        }
        self.stats.launches += 1;
        self.stats.last_kernel_seconds = seconds;
        self.stats.kernel_seconds += seconds;
        Ok(())
    }

    /// Closes the launch window opened by [`Self::launch_async`]: after
    /// this the host may touch MRAM freely again. Returns the launch's
    /// statistics. Idempotent.
    pub fn sync(&mut self) -> &LaunchStats {
        self.kernel_running = false;
        &self.last_launch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::DpuContext;

    fn tiny_system() -> PimSystem {
        PimSystem::new(
            PimConfig::builder()
                .dpus(8)
                .mram_bytes(1 << 16)
                .build(),
        )
    }

    struct IdKernel;
    impl Kernel for IdKernel {
        fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
            let id = ctx.dpu_id() as u64;
            ctx.charge_alu(10 * (id + 1)); // skewed load
            ctx.mram_write(0, &id.to_le_bytes())?;
            Ok(())
        }
    }

    #[test]
    fn alloc_respects_capacity() {
        let mut sys = tiny_system();
        assert!(sys.alloc(0).is_err());
        let a = sys.alloc(5).unwrap();
        assert_eq!(sys.available_dpus(), 3);
        assert!(matches!(sys.alloc(4), Err(PimError::Alloc { .. })));
        sys.free(a);
        assert_eq!(sys.available_dpus(), 8);
    }

    #[test]
    fn scatter_gather_round_trip() {
        let mut sys = tiny_system();
        let mut set = sys.alloc(4).unwrap();
        let parts: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 16]).collect();
        set.scatter(0, &parts).unwrap();
        let back = set.gather(0, 16).unwrap();
        assert_eq!(back, parts);
        assert_eq!(set.stats().cpu_to_pim_bytes, 64);
        assert_eq!(set.stats().pim_to_cpu_bytes, 64);
        assert!(set.stats().cpu_to_pim_seconds > 0.0);
    }

    #[test]
    fn scatter_skips_empty_parts_in_time_and_rank_accounting() {
        // 6 DPUs at 2 per rank: parts for DPUs 0..3 carry data, 4..6
        // are empty (the `partition_even` tail when parts > items), so
        // only ranks 0–1 are addressed and rank 2 must not inflate the
        // modelled bandwidth parallelism.
        let mut sys = PimSystem::new(
            PimConfig::builder()
                .dpus(6)
                .dpus_per_rank(2)
                .mram_bytes(1 << 16)
                .build(),
        );
        let mut set = sys.alloc(6).unwrap();
        let parts = vec![
            vec![1u8; 8],
            vec![2u8; 8],
            vec![3u8; 8],
            vec![],
            vec![],
            vec![],
        ];
        set.scatter(0, &parts).unwrap();
        let rec = *set.ledger().records().last().unwrap();
        assert_eq!(rec.bytes, 24);
        assert_eq!(rec.dpus, 3, "empty parts are not addressed");
        assert_eq!(rec.ranks, 2, "the all-empty rank is not touched");
        assert!(rec.seconds > 0.0);

        // Same payload scattered to a 3-DPU set spans the same 2 ranks
        // and must cost exactly the same modelled time: the empty tail
        // is free.
        let mut dense_sys = PimSystem::new(
            PimConfig::builder()
                .dpus(3)
                .dpus_per_rank(2)
                .mram_bytes(1 << 16)
                .build(),
        );
        let mut dense = dense_sys.alloc(3).unwrap();
        dense.scatter(0, &parts[..3]).unwrap();
        let dense_rec = dense.ledger().records().last().unwrap();
        assert_eq!(rec.seconds, dense_rec.seconds);
    }

    #[test]
    fn all_empty_scatter_is_free() {
        let mut sys = tiny_system();
        let mut set = sys.alloc(4).unwrap();
        let parts = vec![Vec::new(); 4];
        set.scatter(0, &parts).unwrap();
        let rec = set.ledger().records().last().unwrap();
        assert_eq!(rec.bytes, 0);
        assert_eq!(rec.dpus, 0);
        assert_eq!(rec.ranks, 0);
        assert_eq!(rec.seconds, 0.0);
        assert_eq!(set.stats().cpu_to_pim_seconds, 0.0);
    }

    #[test]
    fn scatter_part_count_validated() {
        let mut sys = tiny_system();
        let mut set = sys.alloc(4).unwrap();
        let parts = vec![vec![0u8; 4]; 3];
        assert!(matches!(
            set.scatter(0, &parts),
            Err(PimError::BadArgument(_))
        ));
    }

    #[test]
    fn broadcast_reaches_all_dpus() {
        let mut sys = tiny_system();
        let mut set = sys.alloc(3).unwrap();
        set.broadcast(8, &[7u8; 8]).unwrap();
        for dpu in 0..3 {
            assert_eq!(set.copy_from(dpu, 8, 8).unwrap(), vec![7u8; 8]);
        }
    }

    #[test]
    fn launch_reports_skewed_load() {
        let mut sys = tiny_system();
        let mut set = sys.alloc(4).unwrap();
        set.launch(&IdKernel).unwrap();
        let stats = set.last_launch();
        assert_eq!(stats.dpus, 4);
        assert_eq!(stats.max_cycles, 40 * 11 + set.config().cost.dma_cycles(8));
        assert!(stats.imbalance() > 1.0);
        // Each DPU wrote its id.
        for dpu in 0..4 {
            let bytes = set.copy_from(dpu, 0, 8).unwrap();
            assert_eq!(u64::from_le_bytes(bytes.try_into().unwrap()), dpu as u64);
        }
    }

    #[test]
    fn host_access_during_async_launch_is_flagged() {
        let mut sys = tiny_system();
        let mut set = sys.alloc(2).unwrap();
        set.set_sanitize_level(SanitizeLevel::Memory);
        set.launch_async(&IdKernel).unwrap();
        // The launch window is still open: this read races the kernel.
        let _ = set.copy_from(0, 0, 8).unwrap();
        set.sync();
        let report = set.sanitizer_report();
        assert_eq!(report.counts(), [0, 0, 0, 1]);
        // After sync the window is closed; accesses are clean again.
        let _ = set.copy_from(0, 0, 8).unwrap();
        assert_eq!(set.sanitizer_report().counts(), [0, 0, 0, 1]);
    }

    #[test]
    fn sanitized_launch_of_clean_kernel_reports_clean() {
        let mut sys = tiny_system();
        let mut set = sys.alloc(4).unwrap();
        set.set_sanitize_level(SanitizeLevel::Full);
        set.launch(&IdKernel).unwrap();
        assert!(set.sanitizer_report().is_clean());
        assert_eq!(set.sanitizer_report().sanitized_launches, 1);
        assert_eq!(set.last_launch().sanitizer_findings, 0);
    }

    #[test]
    fn sanitize_level_off_records_nothing() {
        let mut sys = tiny_system();
        let mut set = sys.alloc(2).unwrap();
        assert_eq!(set.sanitize_level(), SanitizeLevel::Off);
        set.launch_async(&IdKernel).unwrap();
        let _ = set.copy_from(0, 0, 8).unwrap();
        set.sync();
        assert!(set.sanitizer_report().is_clean());
        assert_eq!(set.sanitizer_report().sanitized_launches, 0);
    }

    struct FaultyOn2;
    impl Kernel for FaultyOn2 {
        fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
            if ctx.dpu_id() == 2 {
                return Err(KernelError::Fault("boom".into()));
            }
            ctx.charge_alu(10);
            Ok(())
        }
    }

    #[test]
    fn kernel_fault_names_dpu() {
        let mut sys = tiny_system();
        let mut set = sys.alloc(4).unwrap();
        match set.launch(&FaultyOn2) {
            Err(PimError::Kernel { dpu, .. }) => assert_eq!(dpu, 2),
            other => panic!("expected kernel fault, got {other:?}"),
        }
    }

    #[test]
    fn mean_cycles_keeps_fractional_part() {
        // Two DPUs at 11 and 22 cycles: the true mean is 16.5 — the old
        // u128 integer division truncated it to 16.0 and skewed
        // imbalance().
        struct Uneven;
        impl Kernel for Uneven {
            fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                ctx.charge_alu(ctx.dpu_id() as u64 + 1);
                Ok(())
            }
        }
        let mut sys = tiny_system();
        let mut set = sys.alloc(2).unwrap();
        set.launch(&Uneven).unwrap();
        let stats = set.last_launch();
        assert_eq!(stats.max_cycles, 22);
        assert_eq!(stats.min_cycles, 11);
        assert_eq!(stats.mean_cycles, 16.5);
        assert!((stats.imbalance() - 22.0 / 16.5).abs() < 1e-12);
    }

    #[test]
    fn faulted_launch_overwrites_last_launch_and_merges_survivors() {
        let mut sys = tiny_system();
        let mut set = sys.alloc(4).unwrap();
        // A first, clean launch seeds last_launch with stale stats.
        set.launch(&IdKernel).unwrap();
        assert!(!set.last_launch().is_faulted());
        let stale_max = set.last_launch().max_cycles;

        assert!(set.launch(&FaultyOn2).is_err());
        let stats = set.last_launch();
        // sync()/last_launch now describe the faulted launch, not the
        // previous one.
        assert_eq!(stats.faulted_dpus, vec![2]);
        assert!(stats.is_faulted());
        assert_eq!(stats.dpus, 4);
        // Survivors (DPUs 0, 1, 3) each charged 10 ALU slots.
        assert_eq!(stats.merged.alu_slots, 30);
        assert_eq!(stats.max_cycles, 10 * 11);
        assert_ne!(stats.max_cycles, stale_max);
        assert_eq!(stats.mean_cycles, 110.0);
        // Accounting: the clean launch counted, the faulted one went to
        // the faulted counters.
        assert_eq!(set.stats().launches, 1);
        assert_eq!(set.stats().faulted_launches, 1);
        assert!(set.stats().faulted_kernel_seconds > 0.0);
        let synced = set.sync().clone();
        assert_eq!(synced.faulted_dpus, vec![2]);
    }

    #[test]
    fn subset_launch_touches_only_selected_dpus() {
        let mut sys = tiny_system();
        let mut set = sys.alloc(4).unwrap();
        let stats = set.launch_subset(&IdKernel, &[1, 3]).unwrap().clone();
        assert_eq!(stats.dpus, 2);
        assert_eq!(stats.max_cycles, 40 * 11 + set.config().cost.dma_cycles(8));
        // Selected DPUs wrote their ids; the others still hold zeros.
        for dpu in [1usize, 3] {
            let bytes = set.copy_from(dpu, 0, 8).unwrap();
            assert_eq!(u64::from_le_bytes(bytes.try_into().unwrap()), dpu as u64);
        }
        for dpu in [0usize, 2] {
            assert_eq!(set.copy_from(dpu, 0, 8).unwrap(), vec![0u8; 8]);
        }
    }

    #[test]
    fn subset_indices_validated() {
        let mut sys = tiny_system();
        let mut set = sys.alloc(4).unwrap();
        assert!(matches!(
            set.launch_subset(&IdKernel, &[]),
            Err(PimError::BadArgument(_))
        ));
        assert!(matches!(
            set.launch_subset(&IdKernel, &[1, 1]),
            Err(PimError::BadArgument(_))
        ));
        assert!(matches!(
            set.launch_subset(&IdKernel, &[3, 1]),
            Err(PimError::BadArgument(_))
        ));
        assert!(matches!(
            set.launch_subset(&IdKernel, &[0, 7]),
            Err(PimError::BadDpu { .. })
        ));
        assert!(matches!(
            set.gather_subset(0, 8, &[2, 2]),
            Err(PimError::BadArgument(_))
        ));
        assert!(matches!(
            set.broadcast_subset(0, &[0u8; 8], &[9]),
            Err(PimError::BadDpu { .. })
        ));
    }

    #[test]
    fn subset_gather_and_broadcast_follow_indices() {
        let mut sys = tiny_system();
        let mut set = sys.alloc(4).unwrap();
        set.broadcast_subset(0, &[5u8; 8], &[0, 2]).unwrap();
        let picked = set.gather_subset(0, 8, &[0, 2]).unwrap();
        assert_eq!(picked, vec![vec![5u8; 8], vec![5u8; 8]]);
        // DPUs 1 and 3 were not addressed.
        assert_eq!(set.copy_from(1, 0, 8).unwrap(), vec![0u8; 8]);
        assert_eq!(set.copy_from(3, 0, 8).unwrap(), vec![0u8; 8]);
    }

    #[test]
    fn dropped_transfer_charges_time_but_loses_payload() {
        use crate::faults::FaultPlan;
        let mut sys = PimSystem::new(
            PimConfig::builder()
                .dpus(4)
                .mram_bytes(1 << 16)
                .faults(FaultPlan::seeded(1).with_transfer_faults(0.0, 1.0))
                .build(),
        );
        let mut set = sys.alloc(2).unwrap();
        set.broadcast(0, &[9u8; 16]).unwrap();
        // Every payload was dropped in flight; banks still hold zeros.
        for dpu in 0..2 {
            assert_eq!(set.copy_from(dpu, 0, 16).unwrap(), vec![0u8; 16]);
        }
        // The host cannot observe the loss: bytes and seconds recorded.
        assert_eq!(set.stats().cpu_to_pim_bytes, 32);
        assert!(set.stats().cpu_to_pim_seconds > 0.0);
        assert_eq!(set.stats().injected_transfer_faults, 2);
    }

    #[test]
    fn corrupted_transfer_flips_exactly_one_byte() {
        use crate::faults::FaultPlan;
        let mut sys = PimSystem::new(
            PimConfig::builder()
                .dpus(4)
                .mram_bytes(1 << 16)
                .faults(FaultPlan::seeded(2).with_transfer_faults(1.0, 0.0))
                .build(),
        );
        let mut set = sys.alloc(1).unwrap();
        set.copy_to(0, 0, &[0u8; 32]).unwrap();
        let landed = set.copy_from(0, 0, 32).unwrap();
        let differing = landed.iter().filter(|&&b| b != 0).count();
        assert_eq!(differing, 1);
        assert_eq!(set.stats().injected_transfer_faults, 1);
    }

    #[test]
    fn gather_into_matches_gather() {
        let mut sys = tiny_system();
        let mut set = sys.alloc(4).unwrap();
        let parts: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i + 1; 16]).collect();
        set.scatter(0, &parts).unwrap();
        let nested = set.gather(0, 16).unwrap();
        let mut flat = vec![0u8; 16 * 4];
        set.gather_into(0, 16, &mut flat).unwrap();
        for (i, part) in nested.iter().enumerate() {
            assert_eq!(&flat[i * 16..(i + 1) * 16], part.as_slice());
        }
        // Same transfer accounting as the allocating variant.
        let records = set.ledger().records();
        let (a, b) = (&records[records.len() - 2], &records[records.len() - 1]);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.dpus, b.dpus);
        assert_eq!(a.seconds, b.seconds);
        // A mis-sized buffer is rejected before any read.
        let mut short = vec![0u8; 7];
        assert!(matches!(
            set.gather_into(0, 16, &mut short),
            Err(PimError::BadArgument(_))
        ));
    }

    #[test]
    fn gather_subset_into_matches_gather_subset() {
        let mut sys = tiny_system();
        let mut set = sys.alloc(4).unwrap();
        let parts: Vec<Vec<u8>> = (0..4u8).map(|i| vec![10 * (i + 1); 8]).collect();
        set.scatter(0, &parts).unwrap();
        let nested = set.gather_subset(0, 8, &[1, 3]).unwrap();
        let mut flat = vec![0u8; 8 * 2];
        set.gather_subset_into(0, 8, &[1, 3], &mut flat).unwrap();
        assert_eq!(&flat[..8], nested[0].as_slice());
        assert_eq!(&flat[8..], nested[1].as_slice());
        assert!(matches!(
            set.gather_subset_into(0, 8, &[3, 1], &mut flat),
            Err(PimError::BadArgument(_))
        ));
        let mut short = vec![0u8; 8];
        assert!(matches!(
            set.gather_subset_into(0, 8, &[1, 3], &mut short),
            Err(PimError::BadArgument(_))
        ));
    }

    #[test]
    fn clean_delivery_is_byte_identical_under_a_fault_plan() {
        use crate::faults::FaultPlan;
        // A fault plan with zero transfer-fault probability exercises the
        // fault-aware deliver path; payloads still land untouched.
        let mut sys = PimSystem::new(
            PimConfig::builder()
                .dpus(2)
                .mram_bytes(1 << 16)
                .faults(FaultPlan::seeded(3).with_transfer_faults(0.0, 0.0))
                .build(),
        );
        let mut set = sys.alloc(2).unwrap();
        let payload: Vec<u8> = (0..64u8).collect();
        set.copy_to(0, 0, &payload).unwrap();
        assert_eq!(set.copy_from(0, 0, 64).unwrap(), payload);
        assert_eq!(set.stats().injected_transfer_faults, 0);
    }

    #[test]
    fn corrupted_delivery_patches_exactly_one_byte_in_place() {
        use crate::faults::FaultPlan;
        let mut sys = PimSystem::new(
            PimConfig::builder()
                .dpus(2)
                .mram_bytes(1 << 16)
                .faults(FaultPlan::seeded(5).with_transfer_faults(1.0, 0.0))
                .build(),
        );
        let mut set = sys.alloc(1).unwrap();
        let payload: Vec<u8> = (0..128).map(|i| i as u8).collect();
        set.copy_to(0, 0, &payload).unwrap();
        let landed = set.copy_from(0, 0, 128).unwrap();
        let diffs: Vec<usize> = (0..128).filter(|&i| landed[i] != payload[i]).collect();
        assert_eq!(diffs.len(), 1, "exactly one byte must differ");
        // The flipped byte differs by a single XOR mask; every other
        // byte is byte-identical to the source buffer.
        assert_ne!(landed[diffs[0]], payload[diffs[0]]);
        assert_eq!(set.stats().injected_transfer_faults, 1);
    }

    #[test]
    fn subset_transfers_charge_distinct_ranks() {
        // 128 DPUs = 2 ranks of 64. The subset {0, 64} has only two
        // DPUs but straddles both ranks: the unified charging semantics
        // bills it for 2 ranks of parallelism, not ranks_for(2) == 1 as
        // a dense packing of its size would.
        let mut sys = PimSystem::new(PimConfig::builder().dpus(128).mram_bytes(1 << 16).build());
        let mut set = sys.alloc(128).unwrap();
        let t = set.config().transfer.clone();
        set.broadcast_subset(0, &[1u8; 64], &[0, 64]).unwrap();
        let rec = *set.ledger().records().last().unwrap();
        assert_eq!(rec.ranks, 2);
        assert!((rec.seconds - t.broadcast_seconds(64, 2, 2)).abs() < 1e-15);
        // A subset confined to one rank is charged one rank.
        set.gather_subset(0, 8, &[1, 2, 63]).unwrap();
        let rec = *set.ledger().records().last().unwrap();
        assert_eq!(rec.ranks, 1);
        assert!((rec.seconds - t.scatter_gather_seconds(8 * 3, 1)).abs() < 1e-15);
        // Full-set operations keep the dense count: 128 DPUs, 2 ranks.
        set.gather(0, 8).unwrap();
        let rec = *set.ledger().records().last().unwrap();
        assert_eq!(rec.ranks, 2);
        assert!((rec.seconds - t.scatter_gather_seconds(8 * 128, 2)).abs() < 1e-15);
        // The zero-allocation variant charges identically.
        let mut flat = vec![0u8; 8 * 2];
        set.gather_subset_into(0, 8, &[0, 64], &mut flat).unwrap();
        let rec = *set.ledger().records().last().unwrap();
        assert_eq!(rec.ranks, 2);
    }

    #[test]
    fn paper_scale_sparse_workload_stays_lazy() {
        // Full 64-MB banks at the paper's 2,524-DPU scale: an eager
        // allocator would commit 2,524 × 64 MB ≈ 158 GB up front. A
        // sparse workload touching ~4 KB per DPU must materialize well
        // under 10% of that.
        let mut sys = PimSystem::new(PimConfig::default());
        let mut set = sys.alloc(2524).unwrap();
        let parts: Vec<Vec<u8>> = (0..2524).map(|i| vec![i as u8; 4096]).collect();
        set.scatter(32 << 20, &parts).unwrap();
        let stats = set.memory_stats();
        let eager = 2524u64 * (64 << 20);
        assert!(
            stats.bank_peak_bytes < eager / 10,
            "sparse run materialized {} of {} eager bytes",
            stats.bank_peak_bytes,
            eager
        );
        // Exactly one 64-KB segment per DPU (4 KB at a segment-aligned
        // offset), and the data is really there.
        assert_eq!(stats.bank_bytes, 2524 * 64 * 1024);
        assert_eq!(set.copy_from(1234, 32 << 20, 4096).unwrap(), parts[1234]);
    }

    #[test]
    fn freed_sets_return_segments_to_the_arena_pool() {
        let mut sys = tiny_system();
        let mut set = sys.alloc(4).unwrap();
        set.broadcast(0, &[9u8; 1024]).unwrap();
        let after_first = sys.memory_stats();
        assert!(after_first.bank_bytes > 0);
        assert_eq!(after_first.bank_bytes, set.memory_stats().bank_bytes);
        sys.free(set);
        let freed = sys.memory_stats();
        // Dropping the set released every segment into the pool: no
        // bank bytes are live, but the arena keeps its footprint for
        // reuse.
        assert_eq!(freed.bank_bytes, 0);
        assert_eq!(freed.arena_bytes, after_first.bank_bytes);
        // A second set draws from the pool: the footprint peak does not
        // grow.
        let mut set = sys.alloc(4).unwrap();
        set.broadcast(0, &[5u8; 1024]).unwrap();
        let reused = sys.memory_stats();
        assert_eq!(reused.bank_bytes, after_first.bank_bytes);
        assert_eq!(reused.arena_peak_bytes, freed.arena_peak_bytes);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut sys = tiny_system();
        let mut set = sys.alloc(2).unwrap();
        set.broadcast(0, &[1u8; 32]).unwrap();
        set.launch(&IdKernel).unwrap();
        assert_eq!(set.stats().launches, 1);
        assert!(set.stats().total_seconds() > 0.0);
        set.reset_stats();
        assert_eq!(set.stats().launches, 0);
        assert_eq!(set.stats().total_seconds(), 0.0);
        assert!(set.ledger().records().is_empty());
    }
}
