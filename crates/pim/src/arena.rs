//! Fleet-owned segment arena backing every DPU's MRAM/WRAM banks.
//!
//! At paper scale (2,524 DPUs, 64 MB of MRAM each) eager per-DPU
//! allocation would cost ~160 GB of host memory before a single byte is
//! written. Instead, [`crate::memory::Bank`] materializes fixed-size
//! segments on first write and draws every segment buffer from one
//! `FleetArena` shared by the whole [`crate::host::DpuSet`]. The arena
//!
//! * **pools** retired full-size segments so repeated alloc/free cycles
//!   on one [`crate::host::PimSystem`] reuse buffers instead of hitting
//!   the host allocator, and
//! * **accounts** every byte: live bank bytes (current and peak) and the
//!   arena's total host footprint (live + pooled, current and peak),
//!   queryable at any quiescent point via [`FleetArena::stats`].
//!
//! Accounting is deterministic across execution engines. During a launch
//! banks are never shared and nothing is released, so the live byte
//! count only grows — concurrent workers race only on the *order* of
//! `fetch_add`s, never on the final total or the peak. Releases (bank
//! drop, copy-on-write replacement) happen host-side between launches.
//!
//! The allocation routine is reachable from kernel code through the
//! `DpuContext` DMA intrinsics, so its tokens must satisfy the analyzer's
//! kernel-discipline rules (no `vec!`/`Vec` spelled in reachable
//! signatures or bodies): buffers are cloned from an empty prototype and
//! `resize`d, and signatures go through type aliases.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Size of one bank segment: 64 KB, the WRAM capacity, so a WRAM bank is
/// exactly one segment and a 64-MB MRAM bank is 1,024 lazily-filled
/// slots.
pub const BANK_SEGMENT_BYTES: usize = 64 * 1024;

/// A segment buffer handed out by the arena. Shared (`Arc`) so banks can
/// be cloned copy-on-write; uniquely owned for the entire duration of a
/// launch.
pub(crate) type SegmentArc = Arc<Vec<u8>>;

type Buf = Vec<u8>;
type PoolGuard<'a> = std::sync::MutexGuard<'a, Vec<Buf>>;

/// Memory ceilings of one fleet, sampled from its arena.
///
/// `bank_*` counts bytes live inside bank segments (what an eager
/// simulator would have allocated up front, truncated to touched
/// segments); `arena_*` counts the arena's total host footprint
/// including pooled-but-idle buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// Bytes currently live in bank segments.
    pub bank_bytes: u64,
    /// High-water mark of [`MemoryStats::bank_bytes`].
    pub bank_peak_bytes: u64,
    /// Total host bytes held by the arena (live segments + pool).
    pub arena_bytes: u64,
    /// High-water mark of [`MemoryStats::arena_bytes`].
    pub arena_peak_bytes: u64,
}

struct ArenaInner {
    /// Retired full-size (`BANK_SEGMENT_BYTES`) buffers awaiting reuse.
    /// Sub-size tail segments are returned to the host allocator instead.
    pool: Mutex<Vec<Buf>>,
    /// Empty prototype buffer cloned by the kernel-reachable allocation
    /// path (see the module docs on token discipline).
    proto: Buf,
    bank_bytes: AtomicU64,
    bank_peak: AtomicU64,
    pooled_bytes: AtomicU64,
    footprint: AtomicU64,
    footprint_peak: AtomicU64,
}

/// Cheaply-cloneable handle to a shared segment arena.
#[derive(Clone)]
pub struct FleetArena {
    inner: Arc<ArenaInner>,
}

impl Default for FleetArena {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for FleetArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetArena").field("stats", &self.stats()).finish()
    }
}

/// Raises `slot` to at least `value` (a lock-free `fetch_max`).
fn bump_peak(slot: &AtomicU64, value: u64) {
    slot.fetch_max(value, Ordering::Relaxed);
}

impl FleetArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(ArenaInner {
                pool: Mutex::new(Vec::new()),
                proto: Vec::new(),
                bank_bytes: AtomicU64::new(0),
                bank_peak: AtomicU64::new(0),
                pooled_bytes: AtomicU64::new(0),
                footprint: AtomicU64::new(0),
                footprint_peak: AtomicU64::new(0),
            }),
        }
    }

    fn lock_pool(&self) -> PoolGuard<'_> {
        // A poisoned pool only means another worker panicked mid-push;
        // the buffer list itself is always structurally valid.
        match self.inner.pool.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Obtains a buffer of exactly `len` bytes (contents unspecified) and
    /// charges it as live bank bytes.
    fn obtain(&self, len: usize) -> Buf {
        let reused = if len == BANK_SEGMENT_BYTES {
            self.lock_pool().pop()
        } else {
            None
        };
        let buf = match reused {
            Some(b) => {
                self.inner.pooled_bytes.fetch_sub(len as u64, Ordering::Relaxed);
                b
            }
            None => {
                let now = self.inner.footprint.fetch_add(len as u64, Ordering::Relaxed) + len as u64;
                bump_peak(&self.inner.footprint_peak, now);
                let mut b = self.inner.proto.clone();
                b.resize(len, 0);
                b
            }
        };
        let now = self.inner.bank_bytes.fetch_add(len as u64, Ordering::Relaxed) + len as u64;
        bump_peak(&self.inner.bank_peak, now);
        buf
    }

    /// Hands out a zero-filled segment of `len` bytes.
    pub(crate) fn acquire(&self, len: usize) -> SegmentArc {
        let mut buf = self.obtain(len);
        buf.fill(0);
        Arc::new(buf)
    }

    /// Hands out a segment initialized to a copy of `src` (the
    /// copy-on-write path).
    pub(crate) fn acquire_copy(&self, src: &[u8]) -> SegmentArc {
        let mut buf = self.obtain(src.len());
        buf.copy_from_slice(src);
        Arc::new(buf)
    }

    /// Returns a segment to the arena. Only the *last* holder actually
    /// releases the bytes; a still-shared segment stays charged to the
    /// clone that keeps it alive.
    pub(crate) fn release(&self, segment: SegmentArc) {
        let Ok(buf) = Arc::try_unwrap(segment) else {
            return;
        };
        let len = buf.len() as u64;
        self.inner.bank_bytes.fetch_sub(len, Ordering::Relaxed);
        if buf.len() == BANK_SEGMENT_BYTES {
            self.inner.pooled_bytes.fetch_add(len, Ordering::Relaxed);
            self.lock_pool().push(buf);
        } else {
            self.inner.footprint.fetch_sub(len, Ordering::Relaxed);
        }
    }

    /// Current and peak byte counters. Exact at quiescent points (no
    /// launch in flight).
    pub fn stats(&self) -> MemoryStats {
        MemoryStats {
            bank_bytes: self.inner.bank_bytes.load(Ordering::Relaxed),
            bank_peak_bytes: self.inner.bank_peak.load(Ordering::Relaxed),
            arena_bytes: self.inner.footprint.load(Ordering::Relaxed),
            arena_peak_bytes: self.inner.footprint_peak.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_charges_and_release_pools_full_segments() {
        let arena = FleetArena::new();
        let seg = arena.acquire(BANK_SEGMENT_BYTES);
        let s = arena.stats();
        assert_eq!(s.bank_bytes, BANK_SEGMENT_BYTES as u64);
        assert_eq!(s.arena_bytes, BANK_SEGMENT_BYTES as u64);
        arena.release(seg);
        let s = arena.stats();
        assert_eq!(s.bank_bytes, 0);
        // The buffer went to the pool: still part of the host footprint.
        assert_eq!(s.arena_bytes, BANK_SEGMENT_BYTES as u64);
        // Re-acquiring reuses it without growing the footprint.
        let seg = arena.acquire(BANK_SEGMENT_BYTES);
        assert!(seg.iter().all(|&b| b == 0), "pooled segment not re-zeroed");
        let s = arena.stats();
        assert_eq!(s.arena_bytes, BANK_SEGMENT_BYTES as u64);
        assert_eq!(s.arena_peak_bytes, BANK_SEGMENT_BYTES as u64);
    }

    #[test]
    fn sub_size_segments_are_freed_not_pooled() {
        let arena = FleetArena::new();
        let seg = arena.acquire(100);
        assert_eq!(arena.stats().bank_bytes, 100);
        arena.release(seg);
        let s = arena.stats();
        assert_eq!(s.bank_bytes, 0);
        assert_eq!(s.arena_bytes, 0);
        assert_eq!(s.arena_peak_bytes, 100);
    }

    #[test]
    fn shared_segment_released_only_by_last_holder() {
        let arena = FleetArena::new();
        let a = arena.acquire(BANK_SEGMENT_BYTES);
        let b = Arc::clone(&a);
        arena.release(a);
        // Still shared: nothing released.
        assert_eq!(arena.stats().bank_bytes, BANK_SEGMENT_BYTES as u64);
        arena.release(b);
        assert_eq!(arena.stats().bank_bytes, 0);
    }

    #[test]
    fn copy_acquire_preserves_contents_and_peak_tracks_max() {
        let arena = FleetArena::new();
        let a = arena.acquire(64);
        let b = arena.acquire_copy(&[7u8; 32]);
        assert_eq!(&b[..], &[7u8; 32]);
        assert_eq!(arena.stats().bank_peak_bytes, 96);
        arena.release(a);
        arena.release(b);
        assert_eq!(arena.stats().bank_bytes, 0);
        assert_eq!(arena.stats().bank_peak_bytes, 96);
    }
}
