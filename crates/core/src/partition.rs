//! Dataset partitioning across PIM cores.
//!
//! SwiftRL partitions the training dataset so each PIM core handles a
//! distinct chunk (§3.2.1, step 1). Chunks are contiguous, cover the
//! dataset exactly once, and differ in size by at most one transition so
//! the strong-scaling experiments stay load-balanced.

use std::ops::Range;

/// Splits `0..len` into `parts` contiguous ranges whose sizes differ by
/// at most one (larger chunks first).
///
/// # Panics
///
/// Panics if `parts == 0`.
pub fn partition_even(len: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "cannot partition into zero parts");
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_exactly_once() {
        let parts = partition_even(10, 3);
        assert_eq!(parts, vec![0..4, 4..7, 7..10]);
    }

    #[test]
    fn even_split() {
        let parts = partition_even(8, 4);
        assert!(parts.iter().all(|r| r.len() == 2));
    }

    #[test]
    fn more_parts_than_items_yields_empty_tails() {
        let parts = partition_even(2, 4);
        assert_eq!(parts, vec![0..1, 1..2, 2..2, 2..2]);
    }

    #[test]
    fn zero_length() {
        let parts = partition_even(0, 3);
        assert!(parts.iter().all(|r| r.is_empty()));
        assert_eq!(parts.len(), 3);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn zero_parts_panics() {
        partition_even(5, 0);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn partition_is_exact_cover(len in 0usize..100_000, parts in 1usize..3_000) {
            let ranges = partition_even(len, parts);
            prop_assert_eq!(ranges.len(), parts);
            // Contiguous cover.
            let mut expect_start = 0;
            for r in &ranges {
                prop_assert_eq!(r.start, expect_start);
                expect_start = r.end;
            }
            prop_assert_eq!(expect_start, len);
            // Balanced within one.
            let min = ranges.iter().map(|r| r.len()).min().unwrap();
            let max = ranges.iter().map(|r| r.len()).max().unwrap();
            prop_assert!(max - min <= 1);
        }
    }
}
