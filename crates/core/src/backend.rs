//! A single execution interface over every training comparator.
//!
//! The SwiftRL evaluation compares one workload across very different
//! executors: the simulated PIM platform ([`PimRunner`]), its
//! multi-agent variant, the paper's two CPU baselines (both as measured
//! runs and as Table 1 analytical models), and the modelled GPU
//! baseline. Before this module each experiment binary hand-rolled a
//! driver loop per comparator; [`TrainingBackend`] collapses them into
//! one shape — `train(dataset) → TrainingReport` — so a figure is just
//! "enumerate backends, train each, print the rows".
//!
//! Every backend reports through the same [`TrainingReport`]:
//!
//! * the trained (or reference) Q-table,
//! * a [`TimeBreakdown`] in the figure's four categories — non-PIM
//!   backends have no transfer phases, so their entire modelled or
//!   measured time is reported in the compute component
//!   (`pim_kernel_s`), which is exactly how the paper's bar charts
//!   treat them;
//! * [`BackendStats`] with whatever extra the executor knows (DPU
//!   count and sanitizer findings, per-agent tables, thread counts).

use crate::breakdown::TimeBreakdown;
use crate::config::{Algorithm, RunConfig, WorkloadSpec};
use crate::multi_agent::train_multi_agent;
use crate::partition::partition_even;
use crate::resilience::ResilienceStats;
use crate::runner::PimRunner;
use swiftrl_baselines::cpu_exec::{train_cpu_v1, train_cpu_v2, UpdateRule};
use swiftrl_baselines::cpu_model::{CpuModel, CpuVersion};
use swiftrl_baselines::gpu_model::GpuModel;
use swiftrl_env::ExperienceDataset;
use swiftrl_pim::host::PimError;
use swiftrl_pim::report::SanitizerReport;
use swiftrl_rl::qlearning::{self, QLearningConfig};
use swiftrl_rl::qtable::QTable;
use swiftrl_rl::sarsa::{self, SarsaConfig};

/// What a backend learned and how long it (really or per model) took.
#[derive(Debug, Clone)]
pub struct TrainingReport {
    /// The trained Q-table (for purely modelled backends: the host
    /// reference table trained with the same hyper-parameters, or zeros
    /// when the backend models time only).
    pub q_table: QTable,
    /// Execution time in the four categories of Figures 5–6. Backends
    /// without PIM transfer phases report their entire time in
    /// `pim_kernel_s` (the compute component).
    pub breakdown: TimeBreakdown,
    /// Executor-specific statistics.
    pub stats: BackendStats,
}

impl TrainingReport {
    /// Total seconds across every breakdown component.
    pub fn total_seconds(&self) -> f64 {
        self.breakdown.total_seconds()
    }
}

/// Executor-specific statistics carried by a [`TrainingReport`].
#[derive(Debug, Clone)]
pub enum BackendStats {
    /// A [`PimRunner`] run.
    Pim {
        /// DPUs used.
        dpus: usize,
        /// Synchronization rounds performed (`E/τ`).
        comm_rounds: u32,
        /// Accumulated runtime-sanitizer findings.
        sanitizer: SanitizerReport,
        /// Resilience actions taken (faults, retries, degraded DPUs).
        resilience: ResilienceStats,
    },
    /// A [`MultiAgentRunner`] run.
    MultiAgent {
        /// One trained Q-table per agent, in agent order.
        q_tables: Vec<QTable>,
    },
    /// An analytically modelled CPU baseline.
    CpuModeled {
        /// Which of the paper's two CPU versions was modelled.
        version: CpuVersion,
    },
    /// A measured (really executed) CPU baseline.
    CpuMeasured {
        /// Which of the paper's two CPU versions ran.
        version: CpuVersion,
        /// Threads used.
        threads: usize,
    },
    /// An analytically modelled GPU baseline.
    GpuModeled,
}

/// One training executor: anything that can turn an experience dataset
/// into a Q-table with a time breakdown.
///
/// Implemented by [`PimRunner`], [`MultiAgentRunner`], and the CPU/GPU
/// baseline wrappers, so experiment binaries can enumerate comparators
/// as `Box<dyn TrainingBackend>` instead of hand-rolling one driver
/// loop per executor.
pub trait TrainingBackend {
    /// Short human-readable name for table rows (e.g. `CPU-V2`).
    fn name(&self) -> String;

    /// Trains over `dataset` and reports the result.
    ///
    /// # Errors
    ///
    /// Returns a [`PimError`] when the executor cannot run — bad
    /// arguments, failed allocation, kernel faults, transfer failures.
    fn train(&self, dataset: &ExperienceDataset) -> Result<TrainingReport, PimError>;
}

impl TrainingBackend for PimRunner {
    fn name(&self) -> String {
        format!("PIM ({} DPUs)", self.config().dpus)
    }

    fn train(&self, dataset: &ExperienceDataset) -> Result<TrainingReport, PimError> {
        let out = self.run(dataset)?;
        Ok(TrainingReport {
            q_table: out.q_table,
            breakdown: out.breakdown,
            stats: BackendStats::Pim {
                dpus: out.dpus,
                comm_rounds: out.comm_rounds,
                sanitizer: out.sanitizer,
                resilience: out.resilience,
            },
        })
    }
}

/// Multi-agent training behind the [`TrainingBackend`] interface: the
/// combined dataset is split evenly into `agents` contiguous chunks,
/// one independent learner trains per chunk (one per DPU, no
/// synchronization), and the aggregate Q-table is the mean of the
/// per-agent tables. The per-agent tables are preserved in
/// [`BackendStats::MultiAgent`].
#[derive(Debug, Clone)]
pub struct MultiAgentRunner {
    spec: WorkloadSpec,
    cfg: RunConfig,
    agents: usize,
}

impl MultiAgentRunner {
    /// Builds a runner training `agents` independent learners.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::BadArgument`] if `agents` is zero.
    pub fn new(spec: WorkloadSpec, cfg: RunConfig, agents: usize) -> Result<Self, PimError> {
        if agents == 0 {
            return Err(PimError::BadArgument(
                "need at least one agent".to_string(),
            ));
        }
        Ok(Self { spec, cfg, agents })
    }

    /// The number of independent agents.
    pub fn agents(&self) -> usize {
        self.agents
    }

    /// Splits `dataset` into per-agent datasets, in agent order.
    fn split(&self, dataset: &ExperienceDataset) -> Vec<ExperienceDataset> {
        let ranges = partition_even(dataset.len(), self.agents);
        ranges
            .into_iter()
            .map(|r| {
                let mut d = ExperienceDataset::new(
                    dataset.env_name(),
                    dataset.num_states(),
                    dataset.num_actions(),
                );
                d.extend(dataset.transitions()[r].iter().copied());
                d
            })
            .collect()
    }
}

impl TrainingBackend for MultiAgentRunner {
    fn name(&self) -> String {
        format!("PIM multi-agent ({} agents)", self.agents)
    }

    fn train(&self, dataset: &ExperienceDataset) -> Result<TrainingReport, PimError> {
        let datasets = self.split(dataset);
        let out = train_multi_agent(self.spec, &self.cfg, &datasets)?;
        Ok(TrainingReport {
            q_table: QTable::mean_of(&out.q_tables),
            breakdown: out.breakdown,
            stats: BackendStats::MultiAgent {
                q_tables: out.q_tables,
            },
        })
    }
}

/// Trains the host-side FP32 reference table for a workload: the same
/// update rule, hyper-parameters, sampling, and seed the dataset-chunk
/// kernels use, but in one pass over the whole dataset.
fn host_reference_table(
    spec: &WorkloadSpec,
    cfg: &RunConfig,
    dataset: &ExperienceDataset,
) -> QTable {
    match spec.algorithm {
        Algorithm::QLearning => qlearning::train_offline(
            dataset,
            &QLearningConfig {
                alpha: cfg.alpha,
                gamma: cfg.gamma,
                episodes: cfg.episodes,
            },
            spec.sampling,
            cfg.seed,
        ),
        Algorithm::Sarsa => sarsa::train_offline(
            dataset,
            &SarsaConfig {
                alpha: cfg.alpha,
                gamma: cfg.gamma,
                episodes: cfg.episodes,
                epsilon: cfg.epsilon,
            },
            spec.sampling,
            cfg.seed,
        ),
    }
}

/// The paper's CPU baselines as *analytical models* (Table 1 Xeon
/// Silver 4110 by default): training time comes from
/// [`CpuModel::training_seconds`], while the Q-table is the real host
/// reference trained with the run's hyper-parameters — so quality
/// comparisons stay meaningful even though the time is modelled.
#[derive(Debug, Clone)]
pub struct CpuModelBackend {
    version: CpuVersion,
    model: CpuModel,
    spec: WorkloadSpec,
    cfg: RunConfig,
    /// Override for the modelled update count; `None` derives it from
    /// the dataset (`len × episodes`). Figures comparing against
    /// paper-scale environments set this to the paper's update count
    /// directly, because the V2 merge term is not linear in updates and
    /// would not extrapolate exactly.
    total_updates: Option<u64>,
}

impl CpuModelBackend {
    /// Builds a modelled CPU baseline with the given model.
    pub fn new(version: CpuVersion, model: CpuModel, spec: WorkloadSpec, cfg: RunConfig) -> Self {
        Self {
            version,
            model,
            spec,
            cfg,
            total_updates: None,
        }
    }

    /// Overrides the modelled update count (e.g. the paper-scale count)
    /// instead of deriving it from the dataset.
    pub fn with_total_updates(mut self, total_updates: u64) -> Self {
        self.total_updates = Some(total_updates);
        self
    }
}

impl TrainingBackend for CpuModelBackend {
    fn name(&self) -> String {
        match self.version {
            CpuVersion::V1 => "CPU-V1".to_string(),
            CpuVersion::V2 => "CPU-V2".to_string(),
        }
    }

    fn train(&self, dataset: &ExperienceDataset) -> Result<TrainingReport, PimError> {
        let updates = self
            .total_updates
            .unwrap_or_else(|| dataset.len() as u64 * self.cfg.episodes as u64);
        let seconds = self.model.training_seconds(
            self.version,
            updates,
            dataset.num_states(),
            dataset.num_actions(),
            self.spec.sampling,
        );
        Ok(TrainingReport {
            q_table: host_reference_table(&self.spec, &self.cfg, dataset),
            breakdown: TimeBreakdown {
                pim_kernel_s: seconds,
                ..TimeBreakdown::default()
            },
            stats: BackendStats::CpuModeled {
                version: self.version,
            },
        })
    }
}

/// The paper's CPU baselines as *measured runs* on the local host:
/// [`train_cpu_v1`]/[`train_cpu_v2`] really execute the multithreaded
/// update loops and report wall-clock seconds.
#[derive(Debug, Clone)]
pub struct CpuExecBackend {
    version: CpuVersion,
    spec: WorkloadSpec,
    cfg: RunConfig,
    threads: usize,
}

impl CpuExecBackend {
    /// Builds a measured CPU baseline on `threads` host threads.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::BadArgument`] if `threads` is zero.
    pub fn new(
        version: CpuVersion,
        spec: WorkloadSpec,
        cfg: RunConfig,
        threads: usize,
    ) -> Result<Self, PimError> {
        if threads == 0 {
            return Err(PimError::BadArgument(
                "need at least one thread".to_string(),
            ));
        }
        Ok(Self {
            version,
            spec,
            cfg,
            threads,
        })
    }
}

impl TrainingBackend for CpuExecBackend {
    fn name(&self) -> String {
        match self.version {
            CpuVersion::V1 => "CPU-V1 (measured)".to_string(),
            CpuVersion::V2 => "CPU-V2 (measured)".to_string(),
        }
    }

    fn train(&self, dataset: &ExperienceDataset) -> Result<TrainingReport, PimError> {
        if dataset.is_empty() {
            return Err(PimError::BadArgument("empty dataset".to_string()));
        }
        let rule = match self.spec.algorithm {
            Algorithm::QLearning => UpdateRule::QLearning,
            Algorithm::Sarsa => UpdateRule::Sarsa {
                epsilon: self.cfg.epsilon,
            },
        };
        let run = match self.version {
            CpuVersion::V1 => train_cpu_v1(
                dataset,
                rule,
                self.cfg.alpha,
                self.cfg.gamma,
                self.cfg.episodes,
                self.spec.sampling,
                self.threads,
                self.cfg.seed,
            ),
            CpuVersion::V2 => train_cpu_v2(
                dataset,
                rule,
                self.cfg.alpha,
                self.cfg.gamma,
                self.cfg.episodes,
                self.spec.sampling,
                self.threads,
                self.cfg.seed,
            ),
        };
        Ok(TrainingReport {
            q_table: run.q_table,
            breakdown: TimeBreakdown {
                pim_kernel_s: run.seconds,
                ..TimeBreakdown::default()
            },
            stats: BackendStats::CpuMeasured {
                version: self.version,
                threads: run.threads,
            },
        })
    }
}

/// The CPU multi-agent baseline (§4.4): `agents` independent learners
/// time-shared over the CPU's threads, modelled by
/// [`CpuModel::multi_agent_seconds`]. Time-only — the report's Q-table
/// is zeros.
#[derive(Debug, Clone)]
pub struct CpuMultiAgentBackend {
    model: CpuModel,
    agents: usize,
    episodes: u32,
}

impl CpuMultiAgentBackend {
    /// Builds the modelled CPU multi-agent baseline.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::BadArgument`] if `agents` is zero.
    pub fn new(model: CpuModel, agents: usize, episodes: u32) -> Result<Self, PimError> {
        if agents == 0 {
            return Err(PimError::BadArgument(
                "need at least one agent".to_string(),
            ));
        }
        Ok(Self {
            model,
            agents,
            episodes,
        })
    }
}

impl TrainingBackend for CpuMultiAgentBackend {
    fn name(&self) -> String {
        format!("CPU multi-agent ({} agents)", self.agents)
    }

    fn train(&self, dataset: &ExperienceDataset) -> Result<TrainingReport, PimError> {
        let updates_per_agent =
            (dataset.len() / self.agents) as u64 * self.episodes as u64;
        let seconds =
            self.model
                .multi_agent_seconds(self.agents, updates_per_agent, dataset.num_actions());
        Ok(TrainingReport {
            q_table: QTable::zeros(dataset.num_states(), dataset.num_actions()),
            breakdown: TimeBreakdown {
                pim_kernel_s: seconds,
                ..TimeBreakdown::default()
            },
            stats: BackendStats::CpuModeled {
                version: CpuVersion::V2,
            },
        })
    }
}

/// The modelled GPU baseline (Table 1 RTX 3090 by default):
/// [`GpuModel::training_seconds`] over an explicit episode/update
/// schedule. Time-only — the report's Q-table is zeros.
#[derive(Debug, Clone)]
pub struct GpuModelBackend {
    model: GpuModel,
    episodes: u64,
    updates_per_episode: u64,
}

impl GpuModelBackend {
    /// Builds a modelled GPU baseline running `episodes` episodes of
    /// `updates_per_episode` Q-updates each.
    pub fn new(model: GpuModel, episodes: u64, updates_per_episode: u64) -> Self {
        Self {
            model,
            episodes,
            updates_per_episode,
        }
    }
}

impl TrainingBackend for GpuModelBackend {
    fn name(&self) -> String {
        "GPU".to_string()
    }

    fn train(&self, dataset: &ExperienceDataset) -> Result<TrainingReport, PimError> {
        let table_entries = dataset.num_states() * dataset.num_actions();
        let seconds =
            self.model
                .training_seconds(self.episodes, self.updates_per_episode, table_entries);
        Ok(TrainingReport {
            q_table: QTable::zeros(dataset.num_states(), dataset.num_actions()),
            breakdown: TimeBreakdown {
                pim_kernel_s: seconds,
                ..TimeBreakdown::default()
            },
            stats: BackendStats::GpuModeled,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftrl_env::collect::collect_random;
    use swiftrl_env::frozen_lake::FrozenLake;
    use swiftrl_rl::sampling::SamplingStrategy;

    fn dataset() -> ExperienceDataset {
        let mut env = FrozenLake::slippery_4x4();
        collect_random(&mut env, 2_000, 42)
    }

    fn quick_cfg() -> RunConfig {
        RunConfig::paper_defaults()
            .with_dpus(4)
            .with_episodes(20)
            .with_tau(10)
    }

    #[test]
    fn pim_runner_reports_through_the_trait() {
        let d = dataset();
        let backend: Box<dyn TrainingBackend> = Box::new(
            PimRunner::new(WorkloadSpec::q_learning_seq_int32(), quick_cfg()).unwrap(),
        );
        let report = backend.train(&d).unwrap();
        assert!(report.total_seconds() > 0.0);
        assert!(report.q_table.values().iter().any(|&v| v != 0.0));
        match report.stats {
            BackendStats::Pim {
                dpus, comm_rounds, ..
            } => {
                assert_eq!(dpus, 4);
                assert_eq!(comm_rounds, 2);
            }
            other => panic!("expected Pim stats, got {other:?}"),
        }
    }

    #[test]
    fn trait_report_matches_direct_run() {
        // The trait adapter is a pure repackaging: same Q-table, same
        // breakdown as calling PimRunner::run directly.
        let d = dataset();
        let runner = PimRunner::new(WorkloadSpec::q_learning_seq_fp32(), quick_cfg()).unwrap();
        let direct = runner.run(&d).unwrap();
        let report = runner.train(&d).unwrap();
        assert_eq!(report.q_table, direct.q_table);
        assert_eq!(report.breakdown, direct.breakdown);
    }

    #[test]
    fn multi_agent_split_round_trips_the_dataset() {
        let d = dataset();
        let runner =
            MultiAgentRunner::new(WorkloadSpec::q_learning_seq_fp32(), quick_cfg(), 4).unwrap();
        let parts = runner.split(&d);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), d.len());
        let rejoined: Vec<_> = parts
            .iter()
            .flat_map(|p| p.transitions().iter().copied())
            .collect();
        assert_eq!(rejoined, d.transitions());
    }

    #[test]
    fn multi_agent_backend_trains_independent_tables() {
        let d = dataset();
        let backend =
            MultiAgentRunner::new(WorkloadSpec::q_learning_seq_int32(), quick_cfg(), 4).unwrap();
        let report = backend.train(&d).unwrap();
        assert_eq!(report.breakdown.inter_pim_s, 0.0, "agents never talk");
        match &report.stats {
            BackendStats::MultiAgent { q_tables } => {
                assert_eq!(q_tables.len(), 4);
                assert_eq!(report.q_table, QTable::mean_of(q_tables));
            }
            other => panic!("expected MultiAgent stats, got {other:?}"),
        }
    }

    #[test]
    fn zero_agents_rejected() {
        let err = MultiAgentRunner::new(WorkloadSpec::q_learning_seq_fp32(), quick_cfg(), 0)
            .unwrap_err();
        assert!(matches!(err, PimError::BadArgument(_)), "{err:?}");
    }

    #[test]
    fn cpu_model_backend_reports_reference_table_and_modelled_time() {
        let d = dataset();
        let cfg = quick_cfg();
        let spec = WorkloadSpec::q_learning_seq_fp32();
        let backend = CpuModelBackend::new(CpuVersion::V2, CpuModel::xeon_4110(), spec, cfg);
        let report = backend.train(&d).unwrap();
        let expected = qlearning::train_offline(
            &d,
            &QLearningConfig {
                alpha: cfg.alpha,
                gamma: cfg.gamma,
                episodes: cfg.episodes,
            },
            SamplingStrategy::Sequential,
            cfg.seed,
        );
        assert_eq!(report.q_table, expected);
        let modelled = CpuModel::xeon_4110().training_seconds(
            CpuVersion::V2,
            d.len() as u64 * cfg.episodes as u64,
            d.num_states(),
            d.num_actions(),
            SamplingStrategy::Sequential,
        );
        assert_eq!(report.breakdown.pim_kernel_s, modelled);
        assert_eq!(report.breakdown.cpu_pim_s, 0.0);
    }

    #[test]
    fn cpu_model_update_override_changes_time_only() {
        let d = dataset();
        let spec = WorkloadSpec::q_learning_seq_fp32();
        let base = CpuModelBackend::new(CpuVersion::V1, CpuModel::xeon_4110(), spec, quick_cfg());
        let scaled = base.clone().with_total_updates(1_000_000);
        let a = base.train(&d).unwrap();
        let b = scaled.train(&d).unwrap();
        assert_eq!(a.q_table, b.q_table);
        assert!(b.breakdown.pim_kernel_s > a.breakdown.pim_kernel_s);
    }

    #[test]
    fn cpu_exec_backend_really_trains() {
        let d = dataset();
        let backend = CpuExecBackend::new(
            CpuVersion::V2,
            WorkloadSpec::q_learning_seq_fp32(),
            quick_cfg(),
            2,
        )
        .unwrap();
        let report = backend.train(&d).unwrap();
        assert!(report.q_table.values().iter().any(|&v| v != 0.0));
        assert!(matches!(
            report.stats,
            BackendStats::CpuMeasured {
                version: CpuVersion::V2,
                threads: 2
            }
        ));
    }

    #[test]
    fn gpu_backend_models_time() {
        let d = dataset();
        let backend = GpuModelBackend::new(GpuModel::rtx_3090(), 100, d.len() as u64);
        let report = backend.train(&d).unwrap();
        assert!(report.breakdown.pim_kernel_s > 0.0);
        assert!(matches!(report.stats, BackendStats::GpuModeled));
    }

    #[test]
    fn backends_enumerate_uniformly() {
        // The whole point: heterogeneous comparators behind one loop.
        let d = dataset();
        let cfg = quick_cfg();
        let spec = WorkloadSpec::q_learning_seq_fp32();
        let backends: Vec<Box<dyn TrainingBackend>> = vec![
            Box::new(PimRunner::new(spec, cfg).unwrap()),
            Box::new(MultiAgentRunner::new(spec, cfg, 2).unwrap()),
            Box::new(CpuModelBackend::new(
                CpuVersion::V1,
                CpuModel::xeon_4110(),
                spec,
                cfg,
            )),
            Box::new(GpuModelBackend::new(GpuModel::rtx_3090(), 20, d.len() as u64)),
        ];
        for backend in &backends {
            let report = backend
                .train(&d)
                .unwrap_or_else(|e| panic!("{} failed: {e}", backend.name()));
            assert!(report.total_seconds() > 0.0, "{}", backend.name());
        }
    }
}
