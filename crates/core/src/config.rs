//! Workload and run configuration: the paper's 12 variants and
//! hyper-parameters.

use serde::{Deserialize, Serialize};
use std::fmt;
use swiftrl_pim::host::PimError;
use swiftrl_rl::fixed::{FixedScale, PAPER_SCALE};
use swiftrl_rl::sampling::{SamplingStrategy, PAPER_STRIDE};

/// Which RL algorithm the kernel implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Tabular Q-learning (Algorithm 1).
    QLearning,
    /// SARSA (Equation 1) with ε-greedy next-action selection.
    Sarsa,
}

impl Algorithm {
    /// Short tag used in workload names.
    pub fn tag(&self) -> &'static str {
        match self {
            Algorithm::QLearning => "Q-learner",
            Algorithm::Sarsa => "SARSA",
        }
    }
}

/// Numeric representation of the kernel's arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 32-bit IEEE floating point, emulated by the runtime library.
    Fp32,
    /// 32-bit fixed point with the paper's scaling optimization.
    Int32,
}

impl DataType {
    /// Short tag used in workload names.
    pub fn tag(&self) -> &'static str {
        match self {
            DataType::Fp32 => "FP32",
            DataType::Int32 => "INT32",
        }
    }
}

/// One of the paper's workload variants: algorithm × sampling × data type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// The RL algorithm.
    pub algorithm: Algorithm,
    /// The experience-sampling strategy.
    pub sampling: SamplingStrategy,
    /// The arithmetic representation.
    pub dtype: DataType,
}

impl WorkloadSpec {
    /// All 12 variants evaluated in Figures 5–6, in the paper's order.
    pub fn paper_variants() -> Vec<WorkloadSpec> {
        let mut out = Vec::with_capacity(12);
        for algorithm in [Algorithm::QLearning, Algorithm::Sarsa] {
            for sampling in [
                SamplingStrategy::Sequential,
                SamplingStrategy::Random,
                SamplingStrategy::Stride(PAPER_STRIDE),
            ] {
                for dtype in [DataType::Fp32, DataType::Int32] {
                    out.push(WorkloadSpec {
                        algorithm,
                        sampling,
                        dtype,
                    });
                }
            }
        }
        out
    }

    /// `Q-learner-SEQ-FP32`.
    pub fn q_learning_seq_fp32() -> Self {
        Self {
            algorithm: Algorithm::QLearning,
            sampling: SamplingStrategy::Sequential,
            dtype: DataType::Fp32,
        }
    }

    /// `Q-learner-SEQ-INT32`.
    pub fn q_learning_seq_int32() -> Self {
        Self {
            algorithm: Algorithm::QLearning,
            sampling: SamplingStrategy::Sequential,
            dtype: DataType::Int32,
        }
    }

    /// `SARSA-SEQ-FP32`.
    pub fn sarsa_seq_fp32() -> Self {
        Self {
            algorithm: Algorithm::Sarsa,
            sampling: SamplingStrategy::Sequential,
            dtype: DataType::Fp32,
        }
    }

    /// `SARSA-SEQ-INT32`.
    pub fn sarsa_seq_int32() -> Self {
        Self {
            algorithm: Algorithm::Sarsa,
            sampling: SamplingStrategy::Sequential,
            dtype: DataType::Int32,
        }
    }

    /// The paper's workload name, e.g. `Q-learner-RAN-INT32`.
    pub fn name(&self) -> String {
        format!(
            "{}-{}-{}",
            self.algorithm.tag(),
            self.sampling.tag(),
            self.dtype.tag()
        )
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Run-level configuration: hardware allotment, schedule and
/// hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Number of PIM cores to train on.
    pub dpus: usize,
    /// Total training episodes `E`.
    pub episodes: u32,
    /// Synchronization period `τ`: local Q-tables are aggregated every τ
    /// episodes, so `Comm_rounds = E/τ` (§4.2).
    pub tau: u32,
    /// Learning rate α.
    pub alpha: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Exploration rate of SARSA's ε-greedy next-action selection.
    pub epsilon: f32,
    /// Fixed-point scale factor for INT32 workloads.
    pub scale_factor: i32,
    /// Base RNG seed (RAN sampling and SARSA exploration).
    pub seed: u32,
    /// Tasklets (hardware threads) per DPU. The paper pins a single
    /// tasklet per DPU ("this work focuses solely on PIM-core
    /// parallelism"); values >1 enable the tasklet-parallel kernel
    /// extension, where the chunk is sub-partitioned within each DPU and
    /// the pipeline fills up to its 1-IPC peak at ≥11 tasklets.
    pub tasklets: usize,
    /// Initial Q-value ("Initialize a Q-table with arbitrary/zero
    /// values", Algorithm 1). Zero costs no transfer (fresh MRAM reads
    /// as zero); non-zero values are broadcast to every DPU during the
    /// load phase. Pessimistic initialization (below the minimum return)
    /// is recommended for all-negative-reward environments.
    pub initial_q: f32,
}

impl RunConfig {
    /// The paper's experiment parameters: 2,000 episodes, τ = 50,
    /// α = 0.1, γ = 0.95, scale factor 10,000, 2,000 DPUs.
    pub fn paper_defaults() -> Self {
        Self {
            dpus: 2_000,
            episodes: 2_000,
            tau: 50,
            alpha: 0.1,
            gamma: 0.95,
            epsilon: 0.1,
            scale_factor: PAPER_SCALE,
            seed: 0xC0FFEE,
            tasklets: 1,
            initial_q: 0.0,
        }
    }

    /// Returns a copy with a different DPU count.
    pub fn with_dpus(mut self, dpus: usize) -> Self {
        self.dpus = dpus;
        self
    }

    /// Returns a copy with a different episode count.
    pub fn with_episodes(mut self, episodes: u32) -> Self {
        self.episodes = episodes;
        self
    }

    /// Returns a copy with a different synchronization period.
    pub fn with_tau(mut self, tau: u32) -> Self {
        self.tau = tau;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u32) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different tasklet count per DPU.
    ///
    /// # Panics
    ///
    /// Panics if `tasklets` is zero.
    pub fn with_tasklets(mut self, tasklets: usize) -> Self {
        assert!(tasklets > 0, "need at least one tasklet");
        self.tasklets = tasklets;
        self
    }

    /// Returns a copy with a different initial Q-value.
    pub fn with_initial_q(mut self, initial_q: f32) -> Self {
        self.initial_q = initial_q;
        self
    }

    /// The fixed-point format of INT32 workloads.
    pub fn scale(&self) -> FixedScale {
        FixedScale::new(self.scale_factor)
    }

    /// Communication rounds `E/τ`.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::BadArgument`] if `τ` is zero or does not
    /// divide the episode count — the paper assumes divisibility ("the
    /// total number of episodes … is assumed to be divisible by τ").
    pub fn comm_rounds(&self) -> Result<u32, PimError> {
        if self.tau == 0 {
            return Err(PimError::BadArgument(
                "tau must be positive".to_string(),
            ));
        }
        if !self.episodes.is_multiple_of(self.tau) {
            return Err(PimError::BadArgument(format!(
                "episodes ({}) must be divisible by tau ({})",
                self.episodes, self.tau
            )));
        }
        Ok(self.episodes / self.tau)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_paper_variants_with_unique_names() {
        let v = WorkloadSpec::paper_variants();
        assert_eq!(v.len(), 12);
        let names: std::collections::HashSet<_> = v.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 12);
        assert!(names.contains("Q-learner-SEQ-FP32"));
        assert!(names.contains("SARSA-RAN-INT32"));
        assert!(names.contains("Q-learner-STR-INT32"));
    }

    #[test]
    fn paper_defaults_match_section_4_1() {
        let c = RunConfig::paper_defaults();
        assert_eq!(c.episodes, 2_000);
        assert_eq!(c.tau, 50);
        assert_eq!(c.alpha, 0.1);
        assert_eq!(c.gamma, 0.95);
        assert_eq!(c.scale_factor, 10_000);
        assert_eq!(c.comm_rounds().unwrap(), 40);
    }

    #[test]
    fn builder_helpers() {
        let c = RunConfig::paper_defaults()
            .with_dpus(125)
            .with_episodes(100)
            .with_tau(25)
            .with_seed(9);
        assert_eq!(c.dpus, 125);
        assert_eq!(c.comm_rounds().unwrap(), 4);
        assert_eq!(c.seed, 9);
    }

    #[test]
    fn indivisible_tau_rejected() {
        let err = RunConfig::paper_defaults()
            .with_episodes(100)
            .with_tau(33)
            .comm_rounds()
            .unwrap_err();
        match err {
            PimError::BadArgument(msg) => assert!(msg.contains("divisible"), "{msg}"),
            other => panic!("expected BadArgument, got {other:?}"),
        }
    }

    #[test]
    fn zero_tau_rejected() {
        let err = RunConfig::paper_defaults().with_tau(0).comm_rounds().unwrap_err();
        assert!(matches!(err, PimError::BadArgument(_)), "{err:?}");
    }

    #[test]
    fn display_matches_paper_naming() {
        assert_eq!(
            WorkloadSpec::q_learning_seq_fp32().to_string(),
            "Q-learner-SEQ-FP32"
        );
        assert_eq!(WorkloadSpec::sarsa_seq_int32().to_string(), "SARSA-SEQ-INT32");
    }
}
