//! MRAM layout shared between host and kernels.
//!
//! Every DPU's MRAM bank is laid out as:
//!
//! ```text
//! 0                 64                64 + q_bytes          ...
//! +-----------------+------------------+---------------------+
//! | KernelHeader    | Q-table          | transition records  |
//! | (64 bytes)      | (S*A 32-bit LE)  | (16 bytes each)     |
//! +-----------------+------------------+---------------------+
//! ```
//!
//! The header carries everything the kernel needs: chunk length, table
//! shape, the episode schedule of this launch, sampling strategy, seeds
//! and (scaled) hyper-parameters. All fields are little-endian `u32`.

use serde::{Deserialize, Serialize};
use swiftrl_env::Transition;

/// Magic word identifying a SwiftRL header ("SWFT").
pub const HEADER_MAGIC: u32 = 0x5357_4654;
/// Size of the serialized header in bytes (fixed, 8-byte aligned).
pub const HEADER_BYTES: usize = 64;
/// MRAM offset of the Q-table.
pub const Q_TABLE_OFFSET: usize = HEADER_BYTES;

// Static MRAM bank map in the `MRAM_<X>_OFFSET`/`_BYTES` convention the
// analyzer proves non-overlapping and within the 64-MB bank (K010). The
// runtime layout ([`KernelHeader::transitions_offset`]) packs the
// transition store right after the *actual* Q-table; these constants pin
// the worst case (Taxi-v3's 12 000-byte table) and give the transition
// store everything that remains.

/// The header occupies the first 64 bytes of every bank.
pub const MRAM_HEADER_OFFSET: usize = 0;
/// See [`HEADER_BYTES`].
pub const MRAM_HEADER_BYTES: usize = HEADER_BYTES;
/// The Q-table slab follows the header.
pub const MRAM_Q_TABLE_OFFSET: usize = Q_TABLE_OFFSET;
/// Worst-case Q-table: Taxi-v3, 500 states × 6 actions × 4 bytes.
pub const MRAM_Q_TABLE_BYTES: usize = 12_000;
/// Transition records fill the rest of the bank.
pub const MRAM_TRANSITIONS_OFFSET: usize = MRAM_Q_TABLE_OFFSET + MRAM_Q_TABLE_BYTES;
/// Everything after header + worst-case Q-table, up to the 64-MB bank.
pub const MRAM_TRANSITIONS_BYTES: usize =
    swiftrl_pim::config::MRAM_BANK_CAPACITY_BYTES - MRAM_TRANSITIONS_OFFSET;

/// Sampling-strategy discriminants in the header.
pub mod sampling_kind {
    /// Sequential walk.
    pub const SEQ: u32 = 0;
    /// Stride-based walk.
    pub const STR: u32 = 1;
    /// Random draws.
    pub const RAN: u32 = 2;
}

/// Why a serialized [`KernelHeader`] failed to decode.
///
/// Plain data (no owned strings): [`KernelHeader::from_bytes`] runs on the
/// kernel's launch path, where heap allocation is forbidden (K002). The
/// host formats the message when it surfaces the fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderError {
    /// The MRAM block was shorter than [`HEADER_BYTES`].
    TooShort {
        /// Actual length of the block handed to the decoder.
        len: usize,
    },
    /// The first word did not match [`HEADER_MAGIC`].
    BadMagic {
        /// The word actually read.
        word: u32,
    },
}

impl core::fmt::Display for HeaderError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::TooShort { len } => write!(f, "header block too short: {len} bytes"),
            Self::BadMagic { word } => write!(f, "bad header magic {word:#010x}"),
        }
    }
}

impl std::error::Error for HeaderError {}

/// The per-DPU kernel parameter block.
///
/// `alpha`/`gamma`/`epsilon_threshold`/`scale` are interpreted per data
/// type: FP32 kernels read `alpha`/`gamma` as float bits; INT32 kernels
/// read them as scaled integers. `epsilon_threshold` is the integer draw
/// threshold of the ε-greedy rule in both cases (see
/// `swiftrl_rl::policy::epsilon_threshold`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelHeader {
    /// Number of transitions in this DPU's chunk.
    pub n_transitions: u32,
    /// Number of states (Q-table rows).
    pub num_states: u32,
    /// Number of actions (Q-table columns).
    pub num_actions: u32,
    /// Episodes to run in this launch (τ per synchronization round).
    pub episodes: u32,
    /// Index of the first episode of this launch (for per-episode seeds).
    pub episode_base: u32,
    /// Sampling strategy discriminant (see [`sampling_kind`]).
    pub sampling: u32,
    /// Stride for STR sampling (ignored otherwise).
    pub stride: u32,
    /// Base seed of this DPU (already decorrelated per DPU).
    pub seed: u32,
    /// Learning rate: f32 bits (FP32) or scaled integer (INT32).
    pub alpha: u32,
    /// Discount factor: f32 bits (FP32) or scaled integer (INT32).
    pub gamma: u32,
    /// ε-greedy integer draw threshold (SARSA only).
    pub epsilon_threshold: u32,
    /// Fixed-point scale factor (INT32 only).
    pub scale: u32,
}

impl KernelHeader {
    /// Serializes into a caller-provided 64-byte block without heap
    /// allocation — the form kernels use (K002: no free work in kernel
    /// bodies). Trailing pad bytes are zeroed.
    pub fn encode_into(&self, out: &mut [u8; HEADER_BYTES]) {
        let words = [
            HEADER_MAGIC,
            self.n_transitions,
            self.num_states,
            self.num_actions,
            self.episodes,
            self.episode_base,
            self.sampling,
            self.stride,
            self.seed,
            self.alpha,
            self.gamma,
            self.epsilon_threshold,
            self.scale,
        ];
        *out = [0u8; HEADER_BYTES];
        for (i, w) in words.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
    }

    /// Serializes to the 64-byte MRAM block (host-side convenience).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = [0u8; HEADER_BYTES];
        self.encode_into(&mut out);
        out.to_vec()
    }

    /// Deserializes from the 64-byte MRAM block.
    ///
    /// # Errors
    ///
    /// Returns a [`HeaderError`] if the block is too short or the magic
    /// word is wrong (kernel launched on an unloaded DPU). The error is
    /// plain data — this function is kernel-reachable, so nothing on its
    /// path allocates; callers format the message on their (exempt) fault
    /// path.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, HeaderError> {
        if bytes.len() < HEADER_BYTES {
            return Err(HeaderError::TooShort { len: bytes.len() });
        }
        let word = |i: usize| {
            u32::from_le_bytes([bytes[4 * i], bytes[4 * i + 1], bytes[4 * i + 2], bytes[4 * i + 3]])
        };
        if word(0) != HEADER_MAGIC {
            return Err(HeaderError::BadMagic { word: word(0) });
        }
        Ok(Self {
            n_transitions: word(1),
            num_states: word(2),
            num_actions: word(3),
            episodes: word(4),
            episode_base: word(5),
            sampling: word(6),
            stride: word(7),
            seed: word(8),
            alpha: word(9),
            gamma: word(10),
            epsilon_threshold: word(11),
            scale: word(12),
        })
    }

    /// Bytes occupied by the Q-table in this layout.
    pub fn q_table_bytes(&self) -> usize {
        self.num_states as usize * self.num_actions as usize * 4
    }

    /// MRAM offset of the first transition record.
    pub fn transitions_offset(&self) -> usize {
        // Keep 8-byte alignment for the DMA engine.
        let q_end = Q_TABLE_OFFSET + self.q_table_bytes();
        q_end.div_ceil(8) * 8
    }

    /// MRAM offset of transition record `i`.
    pub fn transition_offset(&self, i: usize) -> usize {
        self.transitions_offset() + i * Transition::RECORD_BYTES
    }
}

/// Per-episode sampling seed, identical on host and kernel so SEQ/STR/RAN
/// orders can be replayed bit-exactly.
#[inline]
pub fn episode_seed(base_seed: u32, episode: u32) -> u32 {
    base_seed.wrapping_add(episode).wrapping_mul(0x9E37_79B9)
}

/// Per-DPU decorrelated seed.
#[inline]
pub fn dpu_seed(run_seed: u32, dpu: usize) -> u32 {
    run_seed
        .wrapping_add(dpu as u32)
        .wrapping_mul(0x85EB_CA6B)
        .rotate_left(13)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> KernelHeader {
        KernelHeader {
            n_transitions: 1_000,
            num_states: 16,
            num_actions: 4,
            episodes: 50,
            episode_base: 100,
            sampling: sampling_kind::STR,
            stride: 4,
            seed: 42,
            alpha: 0.1f32.to_bits(),
            gamma: 0.95f32.to_bits(),
            epsilon_threshold: 0,
            scale: 10_000,
        }
    }

    #[test]
    fn round_trips() {
        let h = header();
        let bytes = h.to_bytes();
        assert_eq!(bytes.len(), HEADER_BYTES);
        assert_eq!(KernelHeader::from_bytes(&bytes).unwrap(), h);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = header().to_bytes();
        bytes[0] = 0;
        assert!(KernelHeader::from_bytes(&bytes).is_err());
        assert!(KernelHeader::from_bytes(&bytes[..10]).is_err());
    }

    #[test]
    fn layout_offsets_are_aligned() {
        let h = header();
        assert_eq!(h.q_table_bytes(), 16 * 4 * 4);
        assert_eq!(h.transitions_offset() % 8, 0);
        assert_eq!(h.transitions_offset(), 64 + 256);
        assert_eq!(h.transition_offset(2), 64 + 256 + 32);
        // Taxi-shaped table: 500*6*4 = 12000, already 8-aligned.
        let mut taxi = h;
        taxi.num_states = 500;
        taxi.num_actions = 6;
        assert_eq!(taxi.transitions_offset(), 64 + 12_000);
        // Odd-sized table gets padded up.
        let mut odd = h;
        odd.num_states = 3;
        odd.num_actions = 3;
        assert_eq!(odd.transitions_offset() % 8, 0);
        assert!(odd.transitions_offset() >= 64 + 36);
    }

    #[test]
    fn seeds_are_decorrelated() {
        let a = dpu_seed(7, 0);
        let b = dpu_seed(7, 1);
        assert_ne!(a, b);
        assert_ne!(episode_seed(a, 0), episode_seed(a, 1));
    }
}
