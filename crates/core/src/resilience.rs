//! Host-side resilience policy for PIM training runs.
//!
//! The fault plan ([`swiftrl_pim::faults::FaultPlan`]) breaks DPUs;
//! this module decides what the host does about it. Three independent
//! mechanisms compose, all driven by [`crate::runner::PimRunner`]:
//!
//! 1. **Retry** — a faulted launch is re-attempted on exactly the
//!    faulted DPUs (the survivors' results stand), up to
//!    [`ResilienceConfig::max_retries`] times. Injected faults abort
//!    before any kernel work, so the faulted DPU's MRAM — including its
//!    self-advancing episode window — is untouched and a relaunch
//!    replays the identical episode window.
//! 2. **Checkpoint / rollback** — every
//!    [`ResilienceConfig::checkpoint_every`] synchronization rounds the
//!    host keeps the aggregated Q-table it just broadcast (host memory
//!    only: zero modelled transfer time). When a DPU is declared dead,
//!    training rolls back to the checkpointed round instead of losing
//!    the dead DPU's episodes since then.
//! 3. **Degrade** — a DPU that exhausts its retries is dropped from the
//!    run and its dataset chunk is re-partitioned onto the surviving
//!    DPUs (appended behind their own chunks), so training completes on
//!    a smaller machine rather than failing.
//!
//! With the default [`ResilienceConfig::none`] every mechanism is off
//! and a faulted launch propagates as the [`swiftrl_pim::host::PimError`]
//! it always was — the resilient path is strictly opt-in.

use serde::{Deserialize, Serialize};

/// Knobs for the host-side resilience loop. Default: everything off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// Relaunch attempts for the faulted subset of a launch before the
    /// DPUs are declared dead (0 = a single fault is fatal).
    #[serde(default)]
    pub max_retries: u32,
    /// Keep a host-side copy of the aggregated Q-table every this many
    /// synchronization rounds (0 = never checkpoint). On degradation the
    /// run rolls back to the most recent checkpoint.
    #[serde(default)]
    pub checkpoint_every: u32,
    /// Drop dead DPUs and remap their dataset chunks onto the survivors
    /// instead of failing the run.
    #[serde(default)]
    pub degrade: bool,
}

impl ResilienceConfig {
    /// No retries, no checkpoints, no degradation: faults are fatal,
    /// exactly as without a resilience layer.
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            checkpoint_every: 0,
            degrade: false,
        }
    }

    /// Sets the relaunch-retry budget per faulted launch.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Checkpoints the aggregated Q-table every `rounds` sync rounds.
    pub fn with_checkpoint_every(mut self, rounds: u32) -> Self {
        self.checkpoint_every = rounds;
        self
    }

    /// Enables remapping dead DPUs' chunks onto survivors.
    pub fn with_degrade(mut self, degrade: bool) -> Self {
        self.degrade = degrade;
        self
    }

    /// True when every mechanism is disabled.
    pub fn is_none(&self) -> bool {
        *self == Self::none()
    }
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// What the resilience loop actually did during one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResilienceStats {
    /// Per-DPU kernel faults observed (a DPU faulting in the initial
    /// launch and again in a retry counts twice).
    pub faults_seen: u64,
    /// Subset relaunch attempts performed.
    pub retries: u64,
    /// DPUs dropped from the run, in the order they were declared dead.
    pub degraded_dpus: Vec<usize>,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Total bytes of Q-table snapshots kept on the host.
    pub checkpoint_bytes: u64,
    /// Rollbacks to a checkpointed round.
    pub rollbacks: u64,
    /// Modelled seconds spent on launches that ended in a fault (wasted
    /// work; kept out of the clean kernel counters by the host).
    pub faulted_kernel_seconds: f64,
}

impl ResilienceStats {
    /// True when the run needed no resilience action at all.
    pub fn is_clean(&self) -> bool {
        self.faults_seen == 0
            && self.retries == 0
            && self.degraded_dpus.is_empty()
            && self.rollbacks == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_none_and_inert() {
        let c = ResilienceConfig::default();
        assert!(c.is_none());
        assert_eq!(c, ResilienceConfig::none());
        assert_eq!(c.max_retries, 0);
        assert_eq!(c.checkpoint_every, 0);
        assert!(!c.degrade);
    }

    #[test]
    fn builders_set_fields() {
        let c = ResilienceConfig::none()
            .with_max_retries(3)
            .with_checkpoint_every(2)
            .with_degrade(true);
        assert!(!c.is_none());
        assert_eq!(c.max_retries, 3);
        assert_eq!(c.checkpoint_every, 2);
        assert!(c.degrade);
    }

    #[test]
    fn stats_cleanliness_tracks_actions() {
        let mut s = ResilienceStats::default();
        assert!(s.is_clean());
        // Checkpoints alone are proactive, not a fault response.
        s.checkpoints = 2;
        s.checkpoint_bytes = 512;
        assert!(s.is_clean());
        s.faults_seen = 1;
        assert!(!s.is_clean());
    }
}
