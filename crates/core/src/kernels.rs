//! The SwiftRL DPU kernels: Q-learning and SARSA in FP32 and INT32, with
//! SEQ/STR/RAN sampling.
//!
//! One kernel runs per DPU with a single tasklet (the paper's
//! configuration). The kernel:
//!
//! 1. reads its [`KernelHeader`] and DMAs the
//!    local Q-table from MRAM into WRAM;
//! 2. for each of the launch's `τ` episodes, walks its chunk in the
//!    sampling strategy's order, streaming transition records from MRAM
//!    (batched DMA for SEQ; per-record DMA for STR and RAN, whose
//!    irregular patterns defeat batching);
//! 3. applies the update rule with *emulated* arithmetic — soft-float
//!    FP32 or the paper's scaled INT32 — charging every operation to the
//!    DPU cycle counter;
//! 4. DMAs the updated Q-table back to MRAM for the host to gather.
//!
//! The arithmetic is bit-identical to the host reference in
//! `swiftrl_rl::{qlearning, sarsa}`: an integration test trains both ways
//! and compares Q-tables exactly.

use crate::config::{Algorithm, DataType, WorkloadSpec};
use crate::layout::{episode_seed, sampling_kind, KernelHeader, HEADER_BYTES, Q_TABLE_OFFSET};
use swiftrl_pim::kernel::{DpuContext, Kernel, KernelError, F32};
use swiftrl_pim::{BatchContext, BatchKernel};

/// Transition records DMA'd per batch in SEQ order (32 records = 512 B).
const SEQ_BATCH: usize = 32;
/// Bytes per transition record.
const RECORD_BYTES: usize = 16;
/// Most tasklets a kernel can be configured with — the 24 hardware threads
/// of an UPMEM DPU. Bounds the static WRAM batch budget below.
pub const MAX_TASKLETS: usize = 24;

/// Static WRAM budget of the kernel, in the `WRAM_<X>_OFFSET`/`_BYTES`
/// convention the analyzer proves non-overlapping and within the 64-KB
/// scratchpad (K009). The runtime [`WramMap`] packs tighter (its batch
/// window starts right after the *actual* Q-table), but never exceeds
/// these bounds.
pub const WRAM_Q_TABLE_OFFSET: usize = 0;
/// Worst-case Q-table slab: Taxi-v3, 500 states × 6 actions × 4 bytes.
pub const WRAM_Q_TABLE_BYTES: usize = 12_000;
/// Per-tasklet transition staging windows follow the Q-table slab.
pub const WRAM_BATCH_OFFSET: usize = WRAM_Q_TABLE_OFFSET + WRAM_Q_TABLE_BYTES;
/// One SEQ batch window (32 × 16 B) per tasklet.
pub const WRAM_BATCH_BYTES: usize = MAX_TASKLETS * SEQ_BATCH * RECORD_BYTES;

// The budget must fit the UPMEM scratchpad — checked at compile time here
// and re-proven (with overlap checks) by `swiftrl-analysis` K009.
const _: () = assert!(WRAM_BATCH_OFFSET + WRAM_BATCH_BYTES <= swiftrl_pim::config::WRAM_CAPACITY_BYTES);
/// Bit of the action word carrying the terminal flag
/// (`Transition::DONE_BIT`).
const DONE_BIT: u32 = 1 << 31;

/// The SwiftRL training kernel for one workload variant.
///
/// The same kernel object is launched on every DPU of a set; per-DPU
/// behaviour (chunk size, seeds) comes from the header each DPU carries
/// in its own MRAM.
#[derive(Debug, Clone, Copy)]
pub struct SwiftRlKernel {
    spec: WorkloadSpec,
    tasklets: usize,
    /// Batch-eligibility flag: when true (the default) the kernel offers
    /// its fused whole-launch form to the executor under
    /// [`ExecTier::Batched`](swiftrl_pim::config::ExecTier::Batched).
    batching: bool,
}

impl SwiftRlKernel {
    /// Creates the single-tasklet kernel for a workload variant (the
    /// paper's configuration).
    pub fn new(spec: WorkloadSpec) -> Self {
        Self::with_tasklets(spec, 1)
    }

    /// Creates the tasklet-parallel kernel: each DPU's chunk is further
    /// sub-partitioned across `tasklets` hardware threads sharing the
    /// WRAM Q-table. At ≥11 tasklets the DPU pipeline reaches its 1-IPC
    /// peak (the extension the paper leaves as future work).
    ///
    /// The simulator serializes tasklet bodies, so shared-table updates
    /// interleave at tasklet granularity — an idealization of the
    /// lossy concurrent updates a real multi-tasklet kernel would make
    /// (CPU-V1-style), while the *timing* reflects the fine-grained
    /// multithreaded pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `tasklets` is zero or exceeds [`MAX_TASKLETS`] (the DPU's
    /// 24 hardware threads — also the bound of the static WRAM budget).
    pub fn with_tasklets(spec: WorkloadSpec, tasklets: usize) -> Self {
        assert!(tasklets > 0, "need at least one tasklet");
        assert!(
            tasklets <= MAX_TASKLETS,
            "a DPU has {MAX_TASKLETS} hardware threads, got {tasklets}"
        );
        Self {
            spec,
            tasklets,
            batching: true,
        }
    }

    /// Sets the batch-eligibility flag. Disabling it forces per-intrinsic
    /// interpretation even under the batched execution tier — useful for
    /// differential testing and for pinning the per-op charge stream.
    pub fn with_batching(mut self, enabled: bool) -> Self {
        self.batching = enabled;
        self
    }

    /// The workload variant this kernel implements.
    pub fn spec(&self) -> WorkloadSpec {
        self.spec
    }
}

impl Kernel for SwiftRlKernel {
    fn tasklets(&self) -> usize {
        self.tasklets
    }

    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
        // Header load: one DMA + field decodes (every tasklet reads it,
        // as UPMEM tasklets each execute main()). Stack buffer: kernels
        // must not heap-allocate (K002).
        let mut hdr_buf = [0u8; HEADER_BYTES];
        ctx.mram_read(0, &mut hdr_buf)?;
        ctx.charge_alu(13); // unpack the 13 header words into registers
        let hdr = KernelHeader::from_bytes(&hdr_buf)
            .map_err(|e| KernelError::Fault(format!("{e}")))?;

        let body = KernelBody::new(self.spec, hdr, ctx.tasklet_id(), self.tasklets);
        body.run(ctx)
    }

    fn batch(&self) -> Option<&dyn BatchKernel> {
        if self.batching {
            Some(self)
        } else {
            None
        }
    }
}

/// WRAM address map used by the kernel body.
#[derive(Debug, Clone, Copy)]
struct WramMap {
    /// Q-table at offset 0.
    q: usize,
    /// Transition staging buffer after the Q-table (8-byte aligned).
    batch: usize,
}

impl WramMap {
    fn new(hdr: &KernelHeader) -> Self {
        let q_bytes = hdr.q_table_bytes();
        // The runtime map packs the batch window right after the actual
        // Q-table. Oversized tables (beyond the static budget K009 proves
        // for the paper's workloads) are legal inputs: the out-of-range
        // WRAM access faults the kernel downstream.
        Self {
            q: 0,
            batch: q_bytes.div_ceil(8) * 8,
        }
    }

    #[inline]
    fn q_entry(&self, num_actions: u32, state: u32, action: u32) -> usize {
        self.q + (state * num_actions + action) as usize * 4
    }

    /// Q-table DMA length: `q_bytes` rounded up to the 8-byte DMA
    /// granule. The pad bytes fall in the reserved gap before `batch`
    /// (WRAM) and before the transition records (MRAM).
    #[inline]
    fn q_dma_bytes(&self) -> usize {
        self.batch - self.q
    }
}

/// One decoded transition record.
#[derive(Debug, Clone, Copy)]
struct Record {
    state: u32,
    action: u32,
    /// FP32 bits or scaled i32, depending on the workload data type.
    reward_raw: u32,
    next_state: u32,
    /// Terminal flag (bit 31 of the action word): do not bootstrap.
    done: bool,
}

struct KernelBody {
    spec: WorkloadSpec,
    hdr: KernelHeader,
    map: WramMap,
    /// This tasklet's contiguous sub-range of the DPU's chunk.
    range: std::ops::Range<usize>,
    tasklet_id: usize,
    tasklets: usize,
}

impl KernelBody {
    fn new(spec: WorkloadSpec, hdr: KernelHeader, tasklet_id: usize, tasklets: usize) -> Self {
        let map = WramMap::new(&hdr);
        // Contiguous sub-partition of the chunk, sizes within one.
        let n = hdr.n_transitions as usize;
        let base = n / tasklets;
        let extra = n % tasklets;
        let start = tasklet_id * base + tasklet_id.min(extra);
        let len = base + usize::from(tasklet_id < extra);
        Self {
            spec,
            hdr,
            map,
            range: start..start + len,
            tasklet_id,
            tasklets,
        }
    }

    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
        let hdr = &self.hdr;
        if hdr.num_states == 0 || hdr.num_actions == 0 {
            return Err(KernelError::Fault("empty Q-table shape".into()));
        }

        // Tasklet 0 stages the shared Q-table into WRAM; the others
        // arrive at a barrier (charged as control slots).
        if self.tasklet_id == 0 {
            ctx.mram_to_wram(Q_TABLE_OFFSET, self.map.q, self.map.q_dma_bytes())?;
        } else {
            ctx.charge_control(2); // barrier wait
        }

        // SARSA's ε-greedy policy stream persists across the launch's
        // episodes, seeded like the host reference trainer (decorrelated
        // per tasklet beyond tasklet 0).
        let mut policy_state = (hdr.seed ^ 0x5A85_AA11)
            .wrapping_add((self.tasklet_id as u32).wrapping_mul(0x9E37_79B9));

        let n = self.range.len();
        for ep in 0..hdr.episodes {
            ctx.charge_control(2); // episode loop bookkeeping + barrier
            if n == 0 {
                continue;
            }
            let ep_seed = episode_seed(hdr.seed, hdr.episode_base + ep)
                .wrapping_add(self.tasklet_id as u32);
            self.run_episode(ctx, ep_seed, &mut policy_state)?;
        }

        // The last tasklet publishes the updated table for the host
        // gather and advances the header's episode window so the next
        // launch continues where this one stopped (no host-side header
        // re-arm between rounds).
        if self.tasklet_id + 1 == self.tasklets {
            ctx.wram_to_mram(self.map.q, Q_TABLE_OFFSET, self.map.q_dma_bytes())?;
            let mut next_hdr = *hdr;
            next_hdr.episode_base = hdr.episode_base.wrapping_add(hdr.episodes);
            let mut hdr_out = [0u8; HEADER_BYTES];
            next_hdr.encode_into(&mut hdr_out);
            ctx.mram_write(0, &hdr_out)?;
            ctx.charge_alu(2);
        }
        Ok(())
    }

    /// WRAM offset of this tasklet's private transition staging buffer.
    fn batch_off(&self) -> usize {
        self.map.batch + self.tasklet_id * SEQ_BATCH * RECORD_BYTES
    }

    /// MRAM offset of record `i` of this tasklet's sub-range.
    fn record_off(&self, i: usize) -> usize {
        self.hdr.transition_offset(self.range.start + i)
    }

    fn run_episode(
        &self,
        ctx: &mut DpuContext<'_>,
        ep_seed: u32,
        policy_state: &mut u32,
    ) -> Result<(), KernelError> {
        let n = self.range.len();
        let batch = self.batch_off();
        match self.hdr.sampling {
            sampling_kind::SEQ => {
                // Stream the chunk in batches.
                let mut fetched_base = usize::MAX;
                for i in 0..n {
                    let batch_base = i - (i % SEQ_BATCH);
                    if batch_base != fetched_base {
                        let count = SEQ_BATCH.min(n - batch_base);
                        ctx.mram_to_wram(
                            self.record_off(batch_base),
                            batch,
                            count * RECORD_BYTES,
                        )?;
                        fetched_base = batch_base;
                    }
                    let rec = self.read_record(ctx, batch + (i - batch_base) * RECORD_BYTES)?;
                    self.apply_update(ctx, &rec, policy_state)?;
                }
            }
            sampling_kind::STR => {
                // The stride walk of SamplingStrategy::Stride, index by
                // index; each record needs its own DMA.
                let k = self.hdr.stride as usize;
                if k == 0 {
                    return Err(KernelError::Fault("stride must be positive".into()));
                }
                let mut cursor = 0usize;
                let mut offset = 0usize;
                for _ in 0..n {
                    let i = cursor;
                    cursor += k;
                    if cursor >= n {
                        offset += 1;
                        cursor = offset;
                    }
                    ctx.charge_alu(3); // stride bookkeeping
                    ctx.mram_to_wram(self.record_off(i), batch, RECORD_BYTES)?;
                    let rec = self.read_record(ctx, batch)?;
                    self.apply_update(ctx, &rec, policy_state)?;
                }
            }
            sampling_kind::RAN => {
                // Uniform draws with the in-kernel LCG, matching the host
                // SampleIndices stream for the same seed.
                let mut sample_state = ep_seed;
                for _ in 0..n {
                    let i = ctx.lcg_below(&mut sample_state, n as u32) as usize;
                    ctx.mram_to_wram(self.record_off(i), batch, RECORD_BYTES)?;
                    let rec = self.read_record(ctx, batch)?;
                    self.apply_update(ctx, &rec, policy_state)?;
                }
            }
            other => {
                return Err(KernelError::Fault(format!(
                    "unknown sampling kind {other}"
                )));
            }
        }
        Ok(())
    }

    /// Reads and validates one staged record from WRAM.
    fn read_record(&self, ctx: &mut DpuContext<'_>, wram_off: usize) -> Result<Record, KernelError> {
        let state = ctx.wram_read_u32(wram_off)?;
        let action_word = ctx.wram_read_u32(wram_off + 4)?;
        let reward_raw = ctx.wram_read_u32(wram_off + 8)?;
        let next_state = ctx.wram_read_u32(wram_off + 12)?;
        // Unpack the terminal flag from bit 31 of the action word.
        let done = action_word & DONE_BIT != 0;
        let action = action_word & !DONE_BIT;
        ctx.charge_alu(2);
        if state >= self.hdr.num_states
            || next_state >= self.hdr.num_states
            || action >= self.hdr.num_actions
        {
            return Err(KernelError::Fault(format!(
                "record out of space: s={state} a={action} s'={next_state}"
            )));
        }
        Ok(Record {
            state,
            action,
            reward_raw,
            next_state,
            done,
        })
    }

    fn apply_update(
        &self,
        ctx: &mut DpuContext<'_>,
        rec: &Record,
        policy_state: &mut u32,
    ) -> Result<(), KernelError> {
        ctx.charge_control(1); // update-call overhead
        match (self.spec.algorithm, self.spec.dtype) {
            (Algorithm::QLearning, DataType::Fp32) => self.q_update_fp32(ctx, rec),
            (Algorithm::QLearning, DataType::Int32) => self.q_update_int32(ctx, rec),
            (Algorithm::Sarsa, DataType::Fp32) => self.sarsa_update_fp32(ctx, rec, policy_state),
            (Algorithm::Sarsa, DataType::Int32) => self.sarsa_update_int32(ctx, rec, policy_state),
        }
    }

    // ---- FP32 updates ------------------------------------------------------

    /// `max_a' Q(s', a')` with emulated comparisons.
    fn max_next_fp32(&self, ctx: &mut DpuContext<'_>, next_state: u32) -> Result<F32, KernelError> {
        let na = self.hdr.num_actions;
        ctx.charge_alu(2); // row base address
        let mut best = ctx.wram_read_f32(self.map.q_entry(na, next_state, 0))?;
        for a in 1..na {
            ctx.charge_alu(1);
            let v = ctx.wram_read_f32(self.map.q_entry(na, next_state, a))?;
            best = ctx.fmax(best, v);
        }
        Ok(best)
    }

    fn q_update_fp32(&self, ctx: &mut DpuContext<'_>, rec: &Record) -> Result<(), KernelError> {
        let na = self.hdr.num_actions;
        let alpha = F32(self.hdr.alpha);
        let gamma = F32(self.hdr.gamma);
        let reward = F32(rec.reward_raw);

        ctx.charge_control(1); // terminal-flag branch
        let target = if rec.done {
            reward
        } else {
            let max_next = self.max_next_fp32(ctx, rec.next_state)?;
            let discounted = ctx.fmul(gamma, max_next);
            ctx.fadd(reward, discounted)
        };
        ctx.charge_alu(2);
        let entry = self.map.q_entry(na, rec.state, rec.action);
        let old = ctx.wram_read_f32(entry)?;
        let delta = ctx.fsub(target, old);
        let scaled = ctx.fmul(alpha, delta);
        let new = ctx.fadd(old, scaled);
        ctx.wram_write_f32(entry, new)?;
        Ok(())
    }

    /// ε-greedy a' over the WRAM Q-table, bit-identical to the host's
    /// `epsilon_greedy` (integer threshold draw, then either a uniform
    /// action or a first-max argmax).
    fn epsilon_greedy_fp32(
        &self,
        ctx: &mut DpuContext<'_>,
        state: u32,
        policy_state: &mut u32,
    ) -> Result<u32, KernelError> {
        let na = self.hdr.num_actions;
        let draw = ctx.lcg_next(policy_state);
        ctx.charge_alu(1);
        if draw < self.hdr.epsilon_threshold {
            return Ok(ctx.lcg_below(policy_state, na));
        }
        ctx.charge_alu(2);
        let mut best_a = 0u32;
        let mut best_v = ctx.wram_read_f32(self.map.q_entry(na, state, 0))?;
        for a in 1..na {
            ctx.charge_alu(1);
            let v = ctx.wram_read_f32(self.map.q_entry(na, state, a))?;
            if ctx.fgt(v, best_v) {
                best_v = v;
                best_a = a;
            }
        }
        Ok(best_a)
    }

    fn sarsa_update_fp32(
        &self,
        ctx: &mut DpuContext<'_>,
        rec: &Record,
        policy_state: &mut u32,
    ) -> Result<(), KernelError> {
        let na = self.hdr.num_actions;
        let alpha = F32(self.hdr.alpha);
        let gamma = F32(self.hdr.gamma);
        let reward = F32(rec.reward_raw);

        ctx.charge_control(1); // terminal-flag branch
        let target = if rec.done {
            reward
        } else {
            let a_next = self.epsilon_greedy_fp32(ctx, rec.next_state, policy_state)?;
            ctx.charge_alu(2);
            let q_next = ctx.wram_read_f32(self.map.q_entry(na, rec.next_state, a_next))?;
            let discounted = ctx.fmul(gamma, q_next);
            ctx.fadd(reward, discounted)
        };
        ctx.charge_alu(2);
        let entry = self.map.q_entry(na, rec.state, rec.action);
        let old = ctx.wram_read_f32(entry)?;
        let delta = ctx.fsub(target, old);
        let scaled = ctx.fmul(alpha, delta);
        let new = ctx.fadd(old, scaled);
        ctx.wram_write_f32(entry, new)?;
        Ok(())
    }

    // ---- INT32 fixed-point updates -------------------------------------

    /// `max_a' Q(s', a')` with native integer comparisons (last max wins
    /// on value ties, which is value-identical to any tie choice).
    fn max_next_int32(&self, ctx: &mut DpuContext<'_>, next_state: u32) -> Result<i32, KernelError> {
        let na = self.hdr.num_actions;
        ctx.charge_alu(2);
        let mut best = ctx.wram_read_i32(self.map.q_entry(na, next_state, 0))?;
        for a in 1..na {
            ctx.charge_alu(1);
            let v = ctx.wram_read_i32(self.map.q_entry(na, next_state, a))?;
            if ctx.igt(v, best) {
                best = v;
            }
        }
        Ok(best)
    }

    /// `(a * b) / scale` with the emulated wide multiply + divide, exactly
    /// like `FixedScale::mul`.
    #[inline]
    fn fixed_mul(&self, ctx: &mut DpuContext<'_>, a: i32, b: i32) -> i32 {
        let wide = ctx.mul_wide(a, b);
        ctx.div_wide(wide, self.hdr.scale as i32) as i32
    }

    fn q_update_int32(&self, ctx: &mut DpuContext<'_>, rec: &Record) -> Result<(), KernelError> {
        let na = self.hdr.num_actions;
        let alpha_s = self.hdr.alpha as i32;
        let gamma_s = self.hdr.gamma as i32;
        let reward_s = rec.reward_raw as i32;

        ctx.charge_control(1); // terminal-flag branch
        let target = if rec.done {
            reward_s
        } else {
            let max_next = self.max_next_int32(ctx, rec.next_state)?;
            let discounted = self.fixed_mul(ctx, gamma_s, max_next);
            ctx.iadd(reward_s, discounted)
        };
        ctx.charge_alu(2);
        let entry = self.map.q_entry(na, rec.state, rec.action);
        let old = ctx.wram_read_i32(entry)?;
        let diff = ctx.isub(target, old);
        let delta = self.fixed_mul(ctx, alpha_s, diff);
        let new = ctx.iadd(old, delta);
        ctx.wram_write_i32(entry, new)?;
        Ok(())
    }

    fn epsilon_greedy_int32(
        &self,
        ctx: &mut DpuContext<'_>,
        state: u32,
        policy_state: &mut u32,
    ) -> Result<u32, KernelError> {
        let na = self.hdr.num_actions;
        let draw = ctx.lcg_next(policy_state);
        ctx.charge_alu(1);
        if draw < self.hdr.epsilon_threshold {
            return Ok(ctx.lcg_below(policy_state, na));
        }
        ctx.charge_alu(2);
        let mut best_a = 0u32;
        let mut best_v = ctx.wram_read_i32(self.map.q_entry(na, state, 0))?;
        for a in 1..na {
            ctx.charge_alu(1);
            let v = ctx.wram_read_i32(self.map.q_entry(na, state, a))?;
            if ctx.igt(v, best_v) {
                best_v = v;
                best_a = a;
            }
        }
        Ok(best_a)
    }

    fn sarsa_update_int32(
        &self,
        ctx: &mut DpuContext<'_>,
        rec: &Record,
        policy_state: &mut u32,
    ) -> Result<(), KernelError> {
        let na = self.hdr.num_actions;
        let alpha_s = self.hdr.alpha as i32;
        let gamma_s = self.hdr.gamma as i32;
        let reward_s = rec.reward_raw as i32;

        ctx.charge_control(1); // terminal-flag branch
        let target = if rec.done {
            reward_s
        } else {
            let a_next = self.epsilon_greedy_int32(ctx, rec.next_state, policy_state)?;
            ctx.charge_alu(2);
            let q_next = ctx.wram_read_i32(self.map.q_entry(na, rec.next_state, a_next))?;
            let discounted = self.fixed_mul(ctx, gamma_s, q_next);
            ctx.iadd(reward_s, discounted)
        };
        ctx.charge_alu(2);
        let entry = self.map.q_entry(na, rec.state, rec.action);
        let old = ctx.wram_read_i32(entry)?;
        let diff = ctx.isub(target, old);
        let delta = self.fixed_mul(ctx, alpha_s, diff);
        let new = ctx.iadd(old, delta);
        ctx.wram_write_i32(entry, new)?;
        Ok(())
    }
}

// ---- Batched (fused) execution -----------------------------------------
//
// Under `ExecTier::Batched` the executor offers the whole launch to the
// kernel as one host-native sweep per DPU instead of interpreting it one
// charged intrinsic at a time per tasklet. Values are computed with the
// same `swiftrl_pim::fastpath` bit-exact routines the fast tier uses, so
// Q-tables stay bit-identical; charges are deposited per tasklet as
// *aggregates* — loop-trip counts multiplied by the pinned per-intrinsic
// slot costs under calibrated charging, or summed data-dependent tallies
// (plus the per-call FP overhead) under tally charging. The parity suite
// (`tests/fastpath_parity.rs`, `tests/engine_determinism.rs`) proves both
// the bytes and the cycle accounting identical to the per-intrinsic
// tiers; any launch this sweep cannot reproduce exactly is declined
// (`Ok(false)`), which falls back to the canonical interpreter.

use swiftrl_pim::config::{EmulationCharging, OpCosts};
use swiftrl_pim::cost::CycleCounter;
use swiftrl_pim::emul::Lcg32;
use swiftrl_pim::fastpath;

/// Aggregate charge accumulator for one tasklet of a fused launch.
///
/// Mirrors every charging intrinsic of `DpuContext`, but instead of
/// touching a cycle counter per operation it counts operations by charge
/// class (`TALLY = false`, calibrated charging: the closed form is
/// `count × slots` per class) or sums the exact data-dependent fastpath
/// tallies (`TALLY = true`). `flush_into` deposits the totals.
struct Em<'a, const TALLY: bool> {
    ops: &'a OpCosts,
    alu: u64,
    control: u64,
    wram: u64,
    /// Calibrated-mode loop-trip counts per op kind.
    n_fadd: u64,
    n_fmul: u64,
    n_fcmp: u64,
    n_mul32: u64,
    n_mul64: u64,
    n_div64: u64,
    /// Tally-mode slot sums (FP sums include the per-call overhead).
    int_slots: u64,
    float_slots: u64,
}

impl<'a, const TALLY: bool> Em<'a, TALLY> {
    fn new(ops: &'a OpCosts) -> Self {
        Self {
            ops,
            alu: 0,
            control: 0,
            wram: 0,
            n_fadd: 0,
            n_fmul: 0,
            n_fcmp: 0,
            n_mul32: 0,
            n_mul64: 0,
            n_div64: 0,
            int_slots: 0,
            float_slots: 0,
        }
    }

    #[inline]
    fn alu(&mut self, n: u64) {
        self.alu += n;
    }

    #[inline]
    fn control(&mut self, n: u64) {
        self.control += n;
    }

    #[inline]
    fn wram(&mut self, n: u64) {
        self.wram += n;
    }

    #[inline]
    fn fadd(&mut self, a: u32, b: u32) -> u32 {
        if TALLY {
            self.float_slots += fastpath::f32_add_tally(a, b) + self.ops.fp_call_overhead_slots;
        } else {
            self.n_fadd += 1;
        }
        fastpath::f32_add(a, b)
    }

    #[inline]
    fn fsub(&mut self, a: u32, b: u32) -> u32 {
        if TALLY {
            self.float_slots += fastpath::f32_sub_tally(a, b) + self.ops.fp_call_overhead_slots;
        } else {
            // Charged at the add cost, exactly like `DpuContext::fsub`.
            self.n_fadd += 1;
        }
        fastpath::f32_sub(a, b)
    }

    #[inline]
    fn fmul(&mut self, a: u32, b: u32) -> u32 {
        if TALLY {
            self.float_slots += fastpath::f32_mul_tally(a, b) + self.ops.fp_call_overhead_slots;
        } else {
            self.n_fmul += 1;
        }
        fastpath::f32_mul(a, b)
    }

    #[inline]
    fn fmax(&mut self, a: u32, b: u32) -> u32 {
        if TALLY {
            self.float_slots += fastpath::f32_max_tally(a, b) + self.ops.fp_call_overhead_slots;
        } else {
            self.n_fcmp += 1;
        }
        fastpath::f32_max(a, b)
    }

    #[inline]
    fn fgt(&mut self, a: u32, b: u32) -> bool {
        if TALLY {
            self.float_slots += fastpath::f32_cmp_tally(a, b) + self.ops.fp_call_overhead_slots;
        } else {
            self.n_fcmp += 1;
        }
        fastpath::f32_gt(a, b)
    }

    #[inline]
    fn iadd(&mut self, a: i32, b: i32) -> i32 {
        self.alu += 1;
        a.wrapping_add(b)
    }

    #[inline]
    fn isub(&mut self, a: i32, b: i32) -> i32 {
        self.alu += 1;
        a.wrapping_sub(b)
    }

    #[inline]
    fn igt(&mut self, a: i32, b: i32) -> bool {
        self.alu += 1;
        a > b
    }

    #[inline]
    fn mul_wide(&mut self, a: i32, b: i32) -> i64 {
        if TALLY {
            self.int_slots += fastpath::imul32_wide_tally(a, b);
        } else {
            self.n_mul64 += 1;
        }
        fastpath::imul32_wide(a, b)
    }

    #[inline]
    fn div_wide(&mut self, n: i64, d: i32) -> i64 {
        if TALLY {
            self.int_slots += fastpath::idiv64_tally(n, d);
        } else {
            self.n_div64 += 1;
        }
        fastpath::idiv64(n, d)
    }

    /// LCG advance: one mul32-class emulated multiply + one native add,
    /// exactly like `DpuContext::lcg_next`.
    #[inline]
    fn lcg_next(&mut self, state: &mut u32) -> u32 {
        if TALLY {
            self.int_slots += fastpath::umul32_wide_tally(*state, Lcg32::MULTIPLIER);
        } else {
            self.n_mul32 += 1;
        }
        let m = fastpath::umul32_wide(*state, Lcg32::MULTIPLIER) as u32;
        self.alu += 1;
        *state = m.wrapping_add(Lcg32::INCREMENT);
        *state
    }

    /// Uniform draw in `[0, bound)`: `lcg_next` plus one mul64-class
    /// emulated wide multiply, exactly like `DpuContext::lcg_below`.
    #[inline]
    fn lcg_below(&mut self, state: &mut u32, bound: u32) -> u32 {
        let raw = self.lcg_next(state);
        if TALLY {
            self.int_slots += fastpath::umul32_wide_tally(raw, bound);
        } else {
            self.n_mul64 += 1;
        }
        self.alu += 1;
        let wide = fastpath::umul32_wide(raw, bound);
        (wide >> 32) as u32
    }

    /// Deposits the aggregate charges into a tasklet's cycle counter.
    fn flush_into(&self, counter: &mut CycleCounter) {
        counter.alu_slots += self.alu;
        counter.control_slots += self.control;
        counter.wram_slots += self.wram;
        if TALLY {
            counter.int_emul_slots += self.int_slots;
            counter.float_emul_slots += self.float_slots;
        } else {
            counter.int_emul_slots += self.n_mul32 * self.ops.mul32_slots
                + self.n_mul64 * self.ops.mul64_slots
                + self.n_div64 * self.ops.div64_slots;
            counter.float_emul_slots += self.n_fadd * self.ops.fadd_slots
                + self.n_fmul * self.ops.fmul_slots
                + self.n_fcmp * self.ops.fcmp_slots;
        }
    }
}

/// Header-derived parameters of one fused launch, shared by all tasklets.
struct FusedParams {
    algorithm: Algorithm,
    dtype: DataType,
    na: u32,
    alpha: u32,
    gamma: u32,
    epsilon_threshold: u32,
    scale: i32,
}

impl FusedParams {
    /// Q-table word index of `(state, action)` (the fused sweep holds the
    /// WRAM Q-table image as a `u32` slice, so `q_entry / 4`).
    #[inline]
    fn qi(&self, state: u32, action: u32) -> usize {
        (state * self.na + action) as usize
    }

    /// One Q-update on the shared table image, mirroring `apply_update`
    /// and the per-variant update routines charge for charge.
    #[inline]
    fn update<const TALLY: bool>(
        &self,
        em: &mut Em<'_, TALLY>,
        q: &mut [u32],
        rec: &Record,
        policy_state: &mut u32,
    ) {
        em.control(1); // update-call overhead
        match (self.algorithm, self.dtype) {
            (Algorithm::QLearning, DataType::Fp32) => self.q_update_fp32(em, q, rec),
            (Algorithm::QLearning, DataType::Int32) => self.q_update_int32(em, q, rec),
            (Algorithm::Sarsa, DataType::Fp32) => self.sarsa_update_fp32(em, q, rec, policy_state),
            (Algorithm::Sarsa, DataType::Int32) => {
                self.sarsa_update_int32(em, q, rec, policy_state)
            }
        }
    }

    fn q_update_fp32<const TALLY: bool>(&self, em: &mut Em<'_, TALLY>, q: &mut [u32], rec: &Record) {
        em.control(1); // terminal-flag branch
        let target = if rec.done {
            rec.reward_raw
        } else {
            // max_next_fp32
            em.alu(2);
            em.wram(1);
            let mut best = q[self.qi(rec.next_state, 0)];
            for a in 1..self.na {
                em.alu(1);
                em.wram(1);
                let v = q[self.qi(rec.next_state, a)];
                best = em.fmax(best, v);
            }
            let discounted = em.fmul(self.gamma, best);
            em.fadd(rec.reward_raw, discounted)
        };
        em.alu(2);
        let e = self.qi(rec.state, rec.action);
        em.wram(1);
        let old = q[e];
        let delta = em.fsub(target, old);
        let scaled = em.fmul(self.alpha, delta);
        let new = em.fadd(old, scaled);
        em.wram(1);
        q[e] = new;
    }

    fn epsilon_greedy_fp32<const TALLY: bool>(
        &self,
        em: &mut Em<'_, TALLY>,
        q: &[u32],
        state: u32,
        policy_state: &mut u32,
    ) -> u32 {
        let draw = em.lcg_next(policy_state);
        em.alu(1);
        if draw < self.epsilon_threshold {
            return em.lcg_below(policy_state, self.na);
        }
        em.alu(2);
        let mut best_a = 0u32;
        em.wram(1);
        let mut best_v = q[self.qi(state, 0)];
        for a in 1..self.na {
            em.alu(1);
            em.wram(1);
            let v = q[self.qi(state, a)];
            if em.fgt(v, best_v) {
                best_v = v;
                best_a = a;
            }
        }
        best_a
    }

    fn sarsa_update_fp32<const TALLY: bool>(
        &self,
        em: &mut Em<'_, TALLY>,
        q: &mut [u32],
        rec: &Record,
        policy_state: &mut u32,
    ) {
        em.control(1); // terminal-flag branch
        let target = if rec.done {
            rec.reward_raw
        } else {
            let a_next = self.epsilon_greedy_fp32(em, q, rec.next_state, policy_state);
            em.alu(2);
            em.wram(1);
            let q_next = q[self.qi(rec.next_state, a_next)];
            let discounted = em.fmul(self.gamma, q_next);
            em.fadd(rec.reward_raw, discounted)
        };
        em.alu(2);
        let e = self.qi(rec.state, rec.action);
        em.wram(1);
        let old = q[e];
        let delta = em.fsub(target, old);
        let scaled = em.fmul(self.alpha, delta);
        let new = em.fadd(old, scaled);
        em.wram(1);
        q[e] = new;
    }

    /// `(a * b) / scale` with the emulated wide multiply + divide,
    /// exactly like `KernelBody::fixed_mul`.
    #[inline]
    fn fixed_mul<const TALLY: bool>(&self, em: &mut Em<'_, TALLY>, a: i32, b: i32) -> i32 {
        let wide = em.mul_wide(a, b);
        em.div_wide(wide, self.scale) as i32
    }

    fn q_update_int32<const TALLY: bool>(
        &self,
        em: &mut Em<'_, TALLY>,
        q: &mut [u32],
        rec: &Record,
    ) {
        em.control(1); // terminal-flag branch
        let target = if rec.done {
            rec.reward_raw as i32
        } else {
            // max_next_int32
            em.alu(2);
            em.wram(1);
            let mut best = q[self.qi(rec.next_state, 0)] as i32;
            for a in 1..self.na {
                em.alu(1);
                em.wram(1);
                let v = q[self.qi(rec.next_state, a)] as i32;
                if em.igt(v, best) {
                    best = v;
                }
            }
            let discounted = self.fixed_mul(em, self.gamma as i32, best);
            em.iadd(rec.reward_raw as i32, discounted)
        };
        em.alu(2);
        let e = self.qi(rec.state, rec.action);
        em.wram(1);
        let old = q[e] as i32;
        let diff = em.isub(target, old);
        let delta = self.fixed_mul(em, self.alpha as i32, diff);
        let new = em.iadd(old, delta);
        em.wram(1);
        q[e] = new as u32;
    }

    fn epsilon_greedy_int32<const TALLY: bool>(
        &self,
        em: &mut Em<'_, TALLY>,
        q: &[u32],
        state: u32,
        policy_state: &mut u32,
    ) -> u32 {
        let draw = em.lcg_next(policy_state);
        em.alu(1);
        if draw < self.epsilon_threshold {
            return em.lcg_below(policy_state, self.na);
        }
        em.alu(2);
        let mut best_a = 0u32;
        em.wram(1);
        let mut best_v = q[self.qi(state, 0)] as i32;
        for a in 1..self.na {
            em.alu(1);
            em.wram(1);
            let v = q[self.qi(state, a)] as i32;
            if em.igt(v, best_v) {
                best_v = v;
                best_a = a;
            }
        }
        best_a
    }

    fn sarsa_update_int32<const TALLY: bool>(
        &self,
        em: &mut Em<'_, TALLY>,
        q: &mut [u32],
        rec: &Record,
        policy_state: &mut u32,
    ) {
        em.control(1); // terminal-flag branch
        let target = if rec.done {
            rec.reward_raw as i32
        } else {
            let a_next = self.epsilon_greedy_int32(em, q, rec.next_state, policy_state);
            em.alu(2);
            em.wram(1);
            let q_next = q[self.qi(rec.next_state, a_next)] as i32;
            let discounted = self.fixed_mul(em, self.gamma as i32, q_next);
            em.iadd(rec.reward_raw as i32, discounted)
        };
        em.alu(2);
        let e = self.qi(rec.state, rec.action);
        em.wram(1);
        let old = q[e] as i32;
        let diff = em.isub(target, old);
        let delta = self.fixed_mul(em, self.alpha as i32, diff);
        let new = em.iadd(old, delta);
        em.wram(1);
        q[e] = new as u32;
    }
}

impl SwiftRlKernel {
    /// The fused per-DPU sweep: every tasklet's episodes, in tasklet
    /// order (the per-intrinsic executor serializes tasklet bodies over
    /// the shared WRAM Q-table), charging per-tasklet aggregates.
    fn fused_sweep<const TALLY: bool>(
        &self,
        ctx: &mut BatchContext<'_>,
        hdr: &KernelHeader,
        q: &mut [u32],
        records: &[Record],
        q_dma_bytes: usize,
    ) {
        let cost = ctx.cost().clone();
        let p = FusedParams {
            algorithm: self.spec.algorithm,
            dtype: self.spec.dtype,
            na: hdr.num_actions,
            alpha: hdr.alpha,
            gamma: hdr.gamma,
            epsilon_threshold: hdr.epsilon_threshold,
            scale: hdr.scale as i32,
        };
        // DMA cycle costs, hoisted per transfer length.
        let c_hdr = cost.dma_cycles(HEADER_BYTES);
        let c_rec = cost.dma_cycles(RECORD_BYTES);
        let c_batch = cost.dma_cycles(SEQ_BATCH * RECORD_BYTES);
        let c_q = cost.dma_cycles(q_dma_bytes);

        let n = hdr.n_transitions as usize;
        let tasklets = self.tasklets;
        for t in 0..tasklets {
            // This tasklet's contiguous sub-range (as in `KernelBody::new`).
            let base = n / tasklets;
            let extra = n % tasklets;
            let start = t * base + t.min(extra);
            let rn = base + usize::from(t < extra);

            let mut em = Em::<TALLY>::new(&cost.ops);
            let mut dma_bytes = 0u64;
            let mut dma_cycles = 0u64;

            // Header load + field decodes.
            dma_bytes += HEADER_BYTES as u64;
            dma_cycles += c_hdr;
            em.alu(13);

            // Tasklet 0 stages the Q-table; the others hit the barrier.
            if t == 0 {
                dma_bytes += q_dma_bytes as u64;
                dma_cycles += c_q;
            } else {
                em.control(2);
            }

            let mut policy_state = (hdr.seed ^ 0x5A85_AA11)
                .wrapping_add((t as u32).wrapping_mul(0x9E37_79B9));

            for ep in 0..hdr.episodes {
                em.control(2); // episode loop bookkeeping + barrier
                if rn == 0 {
                    continue;
                }
                let ep_seed = episode_seed(hdr.seed, hdr.episode_base + ep)
                    .wrapping_add(t as u32);
                match hdr.sampling {
                    sampling_kind::SEQ => {
                        // Batched streaming: one DMA per 32-record window.
                        let mut i = 0usize;
                        while i < rn {
                            let count = SEQ_BATCH.min(rn - i);
                            let len = count * RECORD_BYTES;
                            dma_bytes += len as u64;
                            dma_cycles += if count == SEQ_BATCH {
                                c_batch
                            } else {
                                cost.dma_cycles(len)
                            };
                            i += count;
                        }
                        for rec in &records[start..start + rn] {
                            em.wram(4);
                            em.alu(2);
                            p.update(&mut em, q, rec, &mut policy_state);
                        }
                    }
                    sampling_kind::STR => {
                        let k = hdr.stride as usize;
                        let mut cursor = 0usize;
                        let mut offset = 0usize;
                        for _ in 0..rn {
                            let i = cursor;
                            cursor += k;
                            if cursor >= rn {
                                offset += 1;
                                cursor = offset;
                            }
                            em.alu(3); // stride bookkeeping
                            dma_bytes += RECORD_BYTES as u64;
                            dma_cycles += c_rec;
                            em.wram(4);
                            em.alu(2);
                            p.update(&mut em, q, &records[start + i], &mut policy_state);
                        }
                    }
                    _ => {
                        // RAN (preflight rejected every other kind).
                        let mut sample_state = ep_seed;
                        for _ in 0..rn {
                            let i = em.lcg_below(&mut sample_state, rn as u32) as usize;
                            dma_bytes += RECORD_BYTES as u64;
                            dma_cycles += c_rec;
                            em.wram(4);
                            em.alu(2);
                            p.update(&mut em, q, &records[start + i], &mut policy_state);
                        }
                    }
                }
            }

            // The last tasklet publishes the table and re-arms the header.
            if t + 1 == tasklets {
                dma_bytes += q_dma_bytes as u64;
                dma_cycles += c_q;
                dma_bytes += HEADER_BYTES as u64;
                dma_cycles += c_hdr;
                em.alu(2);
            }

            let counter = ctx.counter_mut(t);
            em.flush_into(counter);
            counter.charge_dma(dma_bytes, dma_cycles);
        }
    }
}

impl BatchKernel for SwiftRlKernel {
    fn run_batched(&self, ctx: &mut BatchContext<'_>) -> Result<bool, KernelError> {
        // ---- preflight: decline (`Ok(false)`) on anything the fused
        // sweep cannot reproduce exactly, including every input the
        // per-intrinsic path would fault on — the fallback then raises
        // the canonical error with the canonical partial charges.
        if ctx.tasklets() != self.tasklets {
            // The platform clamped the tasklet count; the per-intrinsic
            // partition (which keys on the kernel's own count) is the
            // reference behaviour for that corner.
            return Ok(false);
        }
        // Every DMA this kernel issues is 8-byte aligned; coarser
        // granules would fault some of them mid-launch.
        let granule = ctx.cost().dma_granule_bytes.max(1);
        if 8 % granule != 0 {
            return Ok(false);
        }
        let mut hdr_buf = [0u8; HEADER_BYTES];
        if ctx.mram().read(0, &mut hdr_buf).is_err() {
            return Ok(false);
        }
        let Ok(hdr) = KernelHeader::from_bytes(&hdr_buf) else {
            return Ok(false);
        };
        if hdr.num_states == 0 || hdr.num_actions == 0 {
            return Ok(false);
        }
        match hdr.sampling {
            sampling_kind::SEQ | sampling_kind::RAN => {}
            sampling_kind::STR => {
                if hdr.stride == 0 {
                    return Ok(false);
                }
            }
            _ => return Ok(false),
        }
        if self.spec.dtype == DataType::Int32 && hdr.scale == 0 {
            return Ok(false);
        }
        let map = WramMap::new(&hdr);
        let q_dma_bytes = map.q_dma_bytes();
        // Modelled WRAM working set (Q-table image + every tasklet's
        // staging window) must fit the scratchpad, as it must for the
        // per-intrinsic path.
        if map.batch + self.tasklets * SEQ_BATCH * RECORD_BYTES > ctx.wram_capacity() {
            return Ok(false);
        }
        // MRAM ranges touched by the launch must be in-bank.
        let cap = ctx.mram().capacity() as u64;
        let n = hdr.n_transitions as usize;
        if (Q_TABLE_OFFSET + q_dma_bytes) as u64 > cap {
            return Ok(false);
        }
        let records_end = hdr.transitions_offset() as u64 + (n as u64) * RECORD_BYTES as u64;
        if records_end > cap {
            return Ok(false);
        }

        // Stage the Q-table image and decode the replay chunk once.
        let mut q_image = vec![0u8; q_dma_bytes];
        if ctx.mram().read(Q_TABLE_OFFSET, &mut q_image).is_err() {
            return Ok(false);
        }
        let mut rec_bytes = vec![0u8; n * RECORD_BYTES];
        if ctx.mram().read(hdr.transitions_offset(), &mut rec_bytes).is_err() {
            return Ok(false);
        }
        let mut records = Vec::with_capacity(n);
        for raw in rec_bytes.chunks_exact(RECORD_BYTES) {
            let word = |i: usize| {
                u32::from_le_bytes([raw[4 * i], raw[4 * i + 1], raw[4 * i + 2], raw[4 * i + 3]])
            };
            let action_word = word(1);
            let rec = Record {
                state: word(0),
                action: action_word & !DONE_BIT,
                reward_raw: word(2),
                next_state: word(3),
                done: action_word & DONE_BIT != 0,
            };
            if rec.state >= hdr.num_states
                || rec.next_state >= hdr.num_states
                || rec.action >= hdr.num_actions
            {
                // A record the per-intrinsic path may fault on mid-sweep.
                return Ok(false);
            }
            records.push(rec);
        }

        let mut q: Vec<u32> = q_image
            .chunks_exact(4)
            .map(|w| u32::from_le_bytes([w[0], w[1], w[2], w[3]]))
            .collect();

        // ---- committed: the fused sweep cannot fail past this point.
        match ctx.cost().emulation_charging {
            EmulationCharging::Tally => {
                self.fused_sweep::<true>(ctx, &hdr, &mut q, &records, q_dma_bytes)
            }
            EmulationCharging::Calibrated => {
                self.fused_sweep::<false>(ctx, &hdr, &mut q, &records, q_dma_bytes)
            }
        }

        // Publish: Q-table image (including the staged pad bytes, exactly
        // like the WRAM write-back) and the re-armed header.
        for (w, chunk) in q.iter().zip(q_image.chunks_exact_mut(4)) {
            chunk.copy_from_slice(&w.to_le_bytes());
        }
        if ctx.mram_mut().write(Q_TABLE_OFFSET, &q_image).is_err() {
            return Ok(false);
        }
        let mut next_hdr = hdr;
        next_hdr.episode_base = hdr.episode_base.wrapping_add(hdr.episodes);
        let mut hdr_out = [0u8; HEADER_BYTES];
        next_hdr.encode_into(&mut hdr_out);
        if ctx.mram_mut().write(0, &hdr_out).is_err() {
            return Ok(false);
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::dpu_seed;
    use swiftrl_env::{Action, State, Transition};
    use swiftrl_pim::config::PimConfig;
    use swiftrl_pim::host::PimSystem;
    use swiftrl_rl::fixed::FixedScale;
    use swiftrl_rl::policy::epsilon_threshold;
    use swiftrl_rl::qtable::{FixedQTable, QTable};
    use swiftrl_rl::sampling::SamplingStrategy;

    fn tiny_transitions() -> Vec<Transition> {
        vec![
            Transition {
                state: State(0),
                action: Action(0),
                reward: 0.0,
                next_state: State(1),
                done: false,
            },
            Transition {
                state: State(1),
                action: Action(1),
                reward: 1.0,
                next_state: State(2),
                done: false,
            },
            Transition {
                state: State(2),
                action: Action(0),
                reward: -0.5,
                next_state: State(0),
                done: false,
            },
        ]
    }

    /// Loads a DPU with a header + zero Q-table + transitions, runs the
    /// kernel, returns the Q-table bytes.
    fn run_kernel_once(
        spec: WorkloadSpec,
        hdr: KernelHeader,
        transitions: &[Transition],
        int32_scale: Option<i32>,
    ) -> Vec<u8> {
        let mut sys = PimSystem::new(PimConfig::builder().dpus(1).mram_bytes(1 << 20).build());
        let mut set = sys.alloc(1).unwrap();
        set.copy_to(0, 0, &hdr.to_bytes()).unwrap();
        let q_bytes = vec![0u8; hdr.q_table_bytes()];
        set.copy_to(0, Q_TABLE_OFFSET, &q_bytes).unwrap();
        let mut data = Vec::new();
        for t in transitions {
            match int32_scale {
                Some(scale) => t.encode_int32(scale, &mut data),
                None => t.encode_fp32(&mut data),
            }
        }
        set.copy_to(0, hdr.transitions_offset(), &data).unwrap();
        set.launch(&SwiftRlKernel::new(spec)).unwrap();
        set.copy_from(0, Q_TABLE_OFFSET, hdr.q_table_bytes()).unwrap()
    }

    fn header_for(
        spec: WorkloadSpec,
        n: usize,
        episodes: u32,
        seed: u32,
    ) -> KernelHeader {
        let scale = FixedScale::paper();
        let (alpha, gamma) = match spec.dtype {
            DataType::Fp32 => (0.1f32.to_bits(), 0.95f32.to_bits()),
            DataType::Int32 => (scale.to_fixed(0.1) as u32, scale.to_fixed(0.95) as u32),
        };
        let sampling = match spec.sampling {
            SamplingStrategy::Sequential => sampling_kind::SEQ,
            SamplingStrategy::Stride(_) => sampling_kind::STR,
            SamplingStrategy::Random => sampling_kind::RAN,
        };
        let stride = match spec.sampling {
            SamplingStrategy::Stride(k) => k as u32,
            _ => 0,
        };
        KernelHeader {
            n_transitions: n as u32,
            num_states: 3,
            num_actions: 2,
            episodes,
            episode_base: 0,
            sampling,
            stride,
            seed,
            alpha,
            gamma,
            epsilon_threshold: epsilon_threshold(0.1).min(u32::MAX as u64) as u32,
            scale: 10_000,
        }
    }

    #[test]
    fn q_fp32_seq_matches_host_reference_bitwise() {
        let spec = WorkloadSpec::q_learning_seq_fp32();
        let data = tiny_transitions();
        let seed = dpu_seed(1, 0);
        let hdr = header_for(spec, data.len(), 7, seed);
        let bytes = run_kernel_once(spec, hdr, &data, None);
        let pim_q = QTable::from_bytes(3, 2, &bytes);

        let mut host_q = QTable::zeros(3, 2);
        let cfg = swiftrl_rl::qlearning::QLearningConfig {
            alpha: 0.1,
            gamma: 0.95,
            episodes: 7,
        };
        swiftrl_rl::qlearning::train_offline_into(
            &mut host_q,
            &data,
            &cfg,
            SamplingStrategy::Sequential,
            seed,
        );
        assert_eq!(pim_q, host_q, "PIM and host FP32 Q-tables must be bit-identical");
        assert!(pim_q.values().iter().any(|&v| v != 0.0), "training happened");
    }

    #[test]
    fn q_fp32_ran_matches_host_reference_bitwise() {
        let spec = WorkloadSpec {
            sampling: SamplingStrategy::Random,
            ..WorkloadSpec::q_learning_seq_fp32()
        };
        let data = tiny_transitions();
        let seed = dpu_seed(3, 0);
        let hdr = header_for(spec, data.len(), 5, seed);
        let bytes = run_kernel_once(spec, hdr, &data, None);
        let pim_q = QTable::from_bytes(3, 2, &bytes);

        let mut host_q = QTable::zeros(3, 2);
        let cfg = swiftrl_rl::qlearning::QLearningConfig {
            alpha: 0.1,
            gamma: 0.95,
            episodes: 5,
        };
        swiftrl_rl::qlearning::train_offline_into(
            &mut host_q,
            &data,
            &cfg,
            SamplingStrategy::Random,
            seed,
        );
        assert_eq!(pim_q, host_q);
    }

    #[test]
    fn q_int32_stride_matches_host_reference_exactly() {
        let spec = WorkloadSpec {
            sampling: SamplingStrategy::Stride(4),
            dtype: DataType::Int32,
            ..WorkloadSpec::q_learning_seq_int32()
        };
        let data = tiny_transitions();
        let seed = dpu_seed(5, 0);
        let hdr = header_for(spec, data.len(), 9, seed);
        let bytes = run_kernel_once(spec, hdr, &data, Some(10_000));
        let scale = FixedScale::paper();
        let pim_q = FixedQTable::from_bytes(3, 2, scale, &bytes);

        // Host fixed-point reference.
        let mut d = swiftrl_env::ExperienceDataset::new("tiny", 3, 2);
        d.extend(data.clone());
        let cfg = swiftrl_rl::qlearning::QLearningConfig {
            alpha: 0.1,
            gamma: 0.95,
            episodes: 9,
        };
        let host_q = swiftrl_rl::qlearning::train_offline_fixed(
            &d,
            &cfg,
            SamplingStrategy::Stride(4),
            scale,
            seed,
        );
        assert_eq!(pim_q, host_q);
    }

    #[test]
    fn sarsa_fp32_seq_matches_host_reference_bitwise() {
        let spec = WorkloadSpec::sarsa_seq_fp32();
        let data = tiny_transitions();
        let seed = dpu_seed(11, 0);
        let hdr = header_for(spec, data.len(), 6, seed);
        let bytes = run_kernel_once(spec, hdr, &data, None);
        let pim_q = QTable::from_bytes(3, 2, &bytes);

        let mut d = swiftrl_env::ExperienceDataset::new("tiny", 3, 2);
        d.extend(data.clone());
        let cfg = swiftrl_rl::sarsa::SarsaConfig {
            alpha: 0.1,
            gamma: 0.95,
            episodes: 6,
            epsilon: 0.1,
        };
        let host_q =
            swiftrl_rl::sarsa::train_offline(&d, &cfg, SamplingStrategy::Sequential, seed);
        assert_eq!(pim_q, host_q);
    }

    #[test]
    fn sarsa_int32_seq_matches_host_reference_exactly() {
        let spec = WorkloadSpec::sarsa_seq_int32();
        let data = tiny_transitions();
        let seed = dpu_seed(13, 0);
        let hdr = header_for(spec, data.len(), 6, seed);
        let bytes = run_kernel_once(spec, hdr, &data, Some(10_000));
        let scale = FixedScale::paper();
        let pim_q = FixedQTable::from_bytes(3, 2, scale, &bytes);

        let mut d = swiftrl_env::ExperienceDataset::new("tiny", 3, 2);
        d.extend(data.clone());
        let cfg = swiftrl_rl::sarsa::SarsaConfig {
            alpha: 0.1,
            gamma: 0.95,
            episodes: 6,
            epsilon: 0.1,
        };
        let host_q = swiftrl_rl::sarsa::train_offline_fixed(
            &d,
            &cfg,
            SamplingStrategy::Sequential,
            scale,
            seed,
        );
        assert_eq!(pim_q, host_q);
    }

    #[test]
    fn fp32_kernel_costs_several_times_int32_kernel() {
        // The paper's headline INT32-vs-FP32 result at kernel granularity.
        let data = tiny_transitions();
        let mut cycles = std::collections::HashMap::new();
        for spec in [
            WorkloadSpec::q_learning_seq_fp32(),
            WorkloadSpec::q_learning_seq_int32(),
        ] {
            let hdr = header_for(spec, data.len(), 20, 1);
            let mut sys =
                PimSystem::new(PimConfig::builder().dpus(1).mram_bytes(1 << 20).build());
            let mut set = sys.alloc(1).unwrap();
            set.copy_to(0, 0, &hdr.to_bytes()).unwrap();
            set.copy_to(0, Q_TABLE_OFFSET, &vec![0u8; hdr.q_table_bytes()])
                .unwrap();
            let mut bytes = Vec::new();
            for t in &data {
                match spec.dtype {
                    DataType::Fp32 => t.encode_fp32(&mut bytes),
                    DataType::Int32 => t.encode_int32(10_000, &mut bytes),
                }
            }
            set.copy_to(0, hdr.transitions_offset(), &bytes).unwrap();
            set.launch(&SwiftRlKernel::new(spec)).unwrap();
            cycles.insert(spec.dtype, set.last_launch().max_cycles);
        }
        let ratio = cycles[&DataType::Fp32] as f64 / cycles[&DataType::Int32] as f64;
        assert!(
            ratio > 2.0,
            "FP32 kernel should far out-cost INT32, got ratio {ratio:.2}"
        );
    }

    #[test]
    fn multi_tasklet_kernel_fills_the_pipeline() {
        // Same work, more tasklets: DPU cycles should shrink roughly
        // linearly until the pipeline fills at 11 tasklets, then flatten
        // — the fine-grained-multithreading behaviour of the hardware.
        let data: Vec<Transition> = (0..240)
            .map(|i| Transition {
                state: State(i % 3),
                action: Action(i % 2),
                reward: 0.25,
                next_state: State((i + 1) % 3),
                done: false,
            })
            .collect();
        let spec = WorkloadSpec::q_learning_seq_int32();
        let mut cycles = Vec::new();
        for tasklets in [1usize, 2, 4, 11, 16] {
            let hdr = header_for(spec, data.len(), 10, 1);
            let mut sys =
                PimSystem::new(PimConfig::builder().dpus(1).mram_bytes(1 << 20).build());
            let mut set = sys.alloc(1).unwrap();
            set.copy_to(0, 0, &hdr.to_bytes()).unwrap();
            set.copy_to(0, Q_TABLE_OFFSET, &vec![0u8; hdr.q_table_bytes()])
                .unwrap();
            let mut bytes = Vec::new();
            for t in &data {
                t.encode_int32(10_000, &mut bytes);
            }
            set.copy_to(0, hdr.transitions_offset(), &bytes).unwrap();
            set.launch(&SwiftRlKernel::with_tasklets(spec, tasklets))
                .unwrap();
            cycles.push(set.last_launch().max_cycles);
        }
        let [t1, t2, t4, t11, t16] = cycles[..] else {
            panic!("expected 5 samples")
        };
        assert!(t2 < t1 * 6 / 10, "2 tasklets: {t1} -> {t2}");
        assert!(t4 < t2 * 6 / 10, "4 tasklets: {t2} -> {t4}");
        assert!(t11 < t4, "11 tasklets: {t4} -> {t11}");
        // Past 11 the issue interval grows with the tasklet count, so the
        // time stops improving.
        assert!(
            t16 as f64 > t11 as f64 * 0.85,
            "beyond pipeline fill should flatten: {t11} -> {t16}"
        );
    }

    #[test]
    fn multi_tasklet_kernel_still_learns() {
        let data = tiny_transitions();
        let spec = WorkloadSpec::q_learning_seq_fp32();
        let hdr = header_for(spec, data.len(), 10, 3);
        let mut sys = PimSystem::new(PimConfig::builder().dpus(1).mram_bytes(1 << 20).build());
        let mut set = sys.alloc(1).unwrap();
        set.copy_to(0, 0, &hdr.to_bytes()).unwrap();
        set.copy_to(0, Q_TABLE_OFFSET, &vec![0u8; hdr.q_table_bytes()])
            .unwrap();
        let mut bytes = Vec::new();
        for t in &data {
            t.encode_fp32(&mut bytes);
        }
        set.copy_to(0, hdr.transitions_offset(), &bytes).unwrap();
        set.launch(&SwiftRlKernel::with_tasklets(spec, 3)).unwrap();
        let out = set.copy_from(0, Q_TABLE_OFFSET, hdr.q_table_bytes()).unwrap();
        let q = QTable::from_bytes(3, 2, &out);
        assert!(q.values().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn empty_chunk_is_a_no_op() {
        let spec = WorkloadSpec::q_learning_seq_fp32();
        let hdr = header_for(spec, 0, 10, 1);
        let bytes = run_kernel_once(spec, hdr, &[], None);
        assert!(bytes.iter().all(|&b| b == 0));
    }

    #[test]
    fn corrupt_record_faults() {
        let spec = WorkloadSpec::q_learning_seq_fp32();
        let bad = [Transition {
            state: State(0),
            action: Action(0),
            reward: 0.0,
            next_state: State(2),
            done: false,
        }];
        let mut hdr = header_for(spec, 1, 1, 1);
        hdr.num_states = 1; // record's next_state (2) now out of range
        hdr.num_actions = 1;
        let mut sys = PimSystem::new(PimConfig::builder().dpus(1).mram_bytes(1 << 20).build());
        let mut set = sys.alloc(1).unwrap();
        set.copy_to(0, 0, &hdr.to_bytes()).unwrap();
        set.copy_to(0, Q_TABLE_OFFSET, &vec![0u8; hdr.q_table_bytes()])
            .unwrap();
        let mut data = Vec::new();
        bad[0].encode_fp32(&mut data);
        set.copy_to(0, hdr.transitions_offset(), &data).unwrap();
        assert!(set.launch(&SwiftRlKernel::new(spec)).is_err());
    }

    #[test]
    fn missing_header_faults() {
        let spec = WorkloadSpec::q_learning_seq_fp32();
        let mut sys = PimSystem::new(PimConfig::builder().dpus(1).mram_bytes(1 << 20).build());
        let mut set = sys.alloc(1).unwrap();
        assert!(set.launch(&SwiftRlKernel::new(spec)).is_err());
    }
}
