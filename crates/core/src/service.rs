//! Multi-tenant training service: an async job queue multiplexing many
//! concurrent training jobs over one shared simulated PIM fleet.
//!
//! The paper's machine is a single 2,524-DPU fleet, but a deployment
//! rarely dedicates it to one workload: tuning sweeps, per-team
//! experiments and fault-injection campaigns all want slices of the
//! same ranks at the same time. [`TrainingService`] provides that
//! multiplexing with *fault isolation by construction*:
//!
//! - **Admission control** leases whole 64-DPU ranks (the transfer
//!   bandwidth granularity) to each job from a shared rank bitmap.
//!   Leases never overlap, so a job's CPU↔PIM traffic is modelled on
//!   its own ranks exactly as a solo run would be.
//! - **Per-job platform views**: every admitted job gets its own
//!   [`DpuSet`] built from its own [`PimConfig`] — its own
//!   [`FaultPlan`](swiftrl_pim::faults::FaultPlan), its own
//!   [`Telemetry`] sink, local DPU indices `0..n`. The only shared
//!   pieces of machinery are the fleet's memory arena (accounting) and
//!   the DPU/rank capacity counters, neither of which feeds any
//!   simulated observable of the run. One tenant's injected faults
//!   therefore cannot perturb another tenant's bit-exact Q-tables.
//! - **Fair scheduling with cancellation**: jobs are admitted strictly
//!   in submission order (FIFO; a job that does not fit blocks the
//!   queue rather than being starved by smaller late arrivals), and
//!   every job carries a [`CancelToken`] checked by the runner at each
//!   sync-round boundary, so a cancelled job frees its lease within
//!   one round.
//!
//! The isolation claim is pinned by `tests/service.rs`, which runs 100+
//! concurrent jobs with mixed fault plans and diffs every tenant's
//! Q-table byte-for-byte against its solo run.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use swiftrl_env::dataset::ExperienceDataset;
use swiftrl_pim::config::{ExecTier, PimConfig};
use swiftrl_pim::faults::FaultPlan;
use swiftrl_pim::host::{PimError, PimSystem};
use swiftrl_telemetry::{MetricsSnapshot, ServiceEvent, ServiceTelemetry, Telemetry};

use crate::config::{RunConfig, WorkloadSpec};
use crate::resilience::ResilienceConfig;
use crate::runner::{PimRunner, RunOutcome};

/// Cooperative cancellation flag shared between a [`JobHandle`] and the
/// worker driving the job.
///
/// The runner polls the token at every sync-round boundary; a cancelled
/// run stops before its next launch and surfaces
/// [`PimError::Cancelled`], leaving the leased DPU set consistent so
/// the service can free it immediately.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; takes effect at the job's
    /// next round boundary (or immediately if the job is still queued).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Errors surfaced by [`TrainingService`] admission and job handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The job wants more rank capacity than the whole fleet has.
    TooLarge {
        /// DPUs the job asked for.
        requested_dpus: usize,
        /// DPUs the fleet has in total.
        fleet_dpus: usize,
    },
    /// A pinned-rank request overlaps a lease already promised to
    /// another live (queued or running) job.
    LeaseOverlap {
        /// The first contested rank index.
        rank: usize,
    },
    /// A pinned-rank request is malformed: a rank index out of range,
    /// a duplicate rank, or pinned capacity below the job's DPU count.
    BadPin(String),
    /// The service is shutting down and no longer accepts jobs.
    ShuttingDown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::TooLarge {
                requested_dpus,
                fleet_dpus,
            } => write!(
                f,
                "job wants {requested_dpus} DPUs but the fleet has only {fleet_dpus}"
            ),
            ServiceError::LeaseOverlap { rank } => {
                write!(f, "pinned rank {rank} is already leased to another job")
            }
            ServiceError::BadPin(msg) => write!(f, "invalid rank pin: {msg}"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Everything a tenant submits to run one training job.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Tenant label; stamped on the job's [`MetricsSnapshot`].
    pub tenant: String,
    /// Workload variant (algorithm × data type).
    pub spec: WorkloadSpec,
    /// Run configuration; `cfg.dpus` is the job's fleet slice size.
    pub cfg: RunConfig,
    /// Host-side resilience policy for this job.
    pub resilience: ResilienceConfig,
    /// The job's private fault-injection plan. Applied only to the
    /// job's own DPU set; other tenants never observe it.
    pub faults: FaultPlan,
    /// Offline experience dataset to train on.
    pub dataset: ExperienceDataset,
    /// Optional explicit rank lease. `None` lets the scheduler pick
    /// the lowest free ranks at admission time; `Some(ranks)` reserves
    /// exactly those ranks for the job's lifetime and rejects the
    /// submission synchronously if they overlap another live pin.
    pub pinned_ranks: Option<Vec<usize>>,
    /// Optional per-job execution-tier override. `None` inherits the
    /// fleet platform's tier; `Some(tier)` runs this job's DPU set
    /// under `tier` without affecting any other tenant — every tier
    /// produces bit- and cycle-identical observables (DESIGN.md §14),
    /// so mixing tiers across tenants only changes host wall-clock.
    pub exec_tier: Option<ExecTier>,
}

impl JobRequest {
    /// Convenience constructor for an unpinned, fault-free job with no
    /// resilience policy.
    pub fn new(
        tenant: impl Into<String>,
        spec: WorkloadSpec,
        cfg: RunConfig,
        dataset: ExperienceDataset,
    ) -> Self {
        Self {
            tenant: tenant.into(),
            spec,
            cfg,
            resilience: ResilienceConfig::none(),
            faults: FaultPlan::none(),
            dataset,
            pinned_ranks: None,
            exec_tier: None,
        }
    }

    /// Sets the job's fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the job's resilience policy.
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }

    /// Pins the job to an explicit set of ranks.
    pub fn with_pinned_ranks(mut self, ranks: Vec<usize>) -> Self {
        self.pinned_ranks = Some(ranks);
        self
    }

    /// Overrides the execution tier for this job only (the fleet
    /// default applies when unset).
    pub fn with_exec_tier(mut self, tier: ExecTier) -> Self {
        self.exec_tier = Some(tier);
        self
    }
}

/// Terminal state of a job.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// The job trained to completion.
    Completed(Box<RunOutcome>),
    /// The job failed with a PIM error (unrecovered kernel fault,
    /// transfer failure, ...).
    Failed(PimError),
    /// The job was cancelled — either while still queued or at a
    /// round boundary mid-run.
    Cancelled,
}

impl JobOutcome {
    /// The completed run outcome, if the job finished training.
    pub fn completed(&self) -> Option<&RunOutcome> {
        match self {
            JobOutcome::Completed(out) => Some(out),
            _ => None,
        }
    }

    /// Whether the job ended by cancellation.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, JobOutcome::Cancelled)
    }
}

/// Where a job currently is in its lifecycle, as observed through
/// [`JobHandle::status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the FIFO queue for a worker and a rank lease.
    Queued,
    /// Admitted: holding a lease and training on its own DPU set.
    Running,
    /// Reached a terminal state ([`JobHandle::wait`] returns it).
    Done,
}

/// Where a job currently is in its lifecycle.
#[derive(Debug, Clone)]
enum JobState {
    Queued,
    Running,
    Done(JobOutcome),
}

/// Shared cell a worker publishes job progress into and a
/// [`JobHandle`] waits on.
#[derive(Debug)]
struct JobCell {
    state: Mutex<JobState>,
    done_cv: Condvar,
}

impl JobCell {
    fn new() -> Self {
        Self {
            state: Mutex::new(JobState::Queued),
            done_cv: Condvar::new(),
        }
    }

    fn set(&self, state: JobState) {
        *lock_recover(&self.state) = state;
        self.done_cv.notify_all();
    }
}

/// Caller-side handle to a submitted job: wait for the outcome, cancel
/// it, and read its private telemetry.
#[derive(Debug, Clone)]
pub struct JobHandle {
    id: u64,
    tenant: String,
    token: CancelToken,
    cell: Arc<JobCell>,
    telemetry: Telemetry,
}

impl JobHandle {
    /// Service-assigned job id (submission order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The tenant label the job was submitted under.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Requests cancellation: a queued job is discarded before it ever
    /// touches the fleet; a running job stops at its next sync-round
    /// boundary and frees its lease.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// A non-blocking snapshot of where the job is in its lifecycle.
    pub fn status(&self) -> JobStatus {
        match &*lock_recover(&self.cell.state) {
            JobState::Queued => JobStatus::Queued,
            JobState::Running => JobStatus::Running,
            JobState::Done(_) => JobStatus::Done,
        }
    }

    /// Blocks until the job reaches a terminal state and returns it.
    /// Safe to call from several clones of the handle; each receives
    /// the same outcome.
    pub fn wait(&self) -> JobOutcome {
        let mut state = lock_recover(&self.cell.state);
        loop {
            if let JobState::Done(outcome) = &*state {
                return outcome.clone();
            }
            state = self
                .cell
                .done_cv
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The job's private telemetry sink. Contains only this job's
    /// events — launches, transfers, faults, resilience actions — and
    /// nothing from any other tenant.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Per-tenant metrics snapshot aggregated from the job's private
    /// event stream, labelled `tenant/job-<id>`.
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot::from_events(
            format!("{}/job-{}", self.tenant, self.id),
            &self.telemetry.events(),
        )
    }
}

/// A job sitting in the FIFO queue, waiting for a worker.
struct QueuedJob {
    id: u64,
    request: JobRequest,
    token: CancelToken,
    cell: Arc<JobCell>,
    telemetry: Telemetry,
}

/// The fleet-side state every admission decision reads and writes.
struct FleetState {
    /// The one shared machine. Tracks DPU capacity and fleet-wide
    /// memory accounting; per-job sets draw from it via
    /// [`PimSystem::alloc_with_config`].
    system: PimSystem,
    /// `true` for each rank currently leased to a *running* job.
    rank_leased: Vec<bool>,
    /// Rank sets promised to live pinned jobs (queued or running),
    /// keyed by job id. Pinned submissions are rejected synchronously
    /// when they overlap an entry here.
    pinned: Vec<(u64, Vec<usize>)>,
}

/// Scheduler shared state: FIFO queue + fleet + coordination.
struct Shared {
    fleet: Mutex<FleetState>,
    /// Signalled when a lease is released (capacity may now fit the
    /// head-of-line job).
    lease_cv: Condvar,
    queue: Mutex<VecDeque<QueuedJob>>,
    /// Signalled when a job is enqueued or shutdown begins.
    queue_cv: Condvar,
    shutdown: AtomicBool,
    /// Service observability sink + wall-clock anchor. Disabled by
    /// default; a disabled observer emits nothing and allocates
    /// nothing.
    observer: Observer,
}

/// The service's observability emitter: a [`ServiceTelemetry`] sink
/// plus the **one wall-clock anchor** in the service (DESIGN.md §15).
///
/// ---- Non-deterministic section ----
/// `started` is host wall-clock; elapsed seconds stamp every record's
/// `wall_s` for timeline layout and latency histograms. Wall time
/// never feeds a simulated observable, and a sink created with
/// [`ServiceTelemetry::deterministic`] zeroes it at recording time so
/// rendered streams can be pinned byte-exactly. Everything else on a
/// [`ServiceEvent`] is logical-clock data (job id, round, rank id) or
/// a simulated quantity.
struct Observer {
    sink: ServiceTelemetry,
    started: std::time::Instant,
}

impl Observer {
    fn new(sink: ServiceTelemetry) -> Self {
        Self {
            sink,
            started: std::time::Instant::now(),
        }
    }

    /// Whether expensive payload construction should run at all.
    #[inline]
    fn on(&self) -> bool {
        self.sink.is_enabled()
    }

    /// Records an event stamped with the current wall-clock offset.
    /// The closure is evaluated only when the sink is enabled.
    #[inline]
    fn emit(&self, make: impl FnOnce() -> ServiceEvent) {
        if self.sink.is_enabled() {
            self.sink.emit(self.started.elapsed().as_secs_f64(), make);
        }
    }
}

/// Locks a mutex, recovering the guard if a worker panicked while
/// holding it (the state itself stays consistent: every critical
/// section is a small, non-panicking bookkeeping update).
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Multi-tenant training service over one shared simulated fleet.
///
/// Construct with [`TrainingService::new`], submit jobs with
/// [`submit`](Self::submit), and stop with
/// [`shutdown`](Self::shutdown) (also run on drop). Worker threads the
/// service owns admit jobs strictly in submission order, lease each
/// one a disjoint slice of 64-DPU ranks, and drive the training run on
/// a private [`DpuSet`](swiftrl_pim::host::DpuSet) with the job's own
/// fault plan and telemetry sink.
pub struct TrainingService {
    config: PimConfig,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next_id: Mutex<u64>,
}

impl TrainingService {
    /// Builds a service over a fleet described by `config`, with
    /// `workers` concurrent admission/execution threads.
    ///
    /// `workers` is clamped to at least 1. More workers means more
    /// jobs training concurrently (each on its own lease); one worker
    /// serializes the fleet.
    ///
    /// Observability is off: the service emits no [`ServiceEvent`]s
    /// and pays nothing for the instrumentation. Use
    /// [`with_observability`](Self::with_observability) to attach a
    /// sink.
    pub fn new(config: PimConfig, workers: usize) -> Self {
        Self::with_observability(config, workers, ServiceTelemetry::disabled())
    }

    /// Builds a service like [`new`](Self::new) with a service-event
    /// sink attached: every job-lifecycle transition, worker busy/idle
    /// change, rank-lease change and queue-depth sample is recorded
    /// into `sink` (see [`ServiceTelemetry`]). A
    /// [`ServiceTelemetry::deterministic`] sink zeroes the wall-clock
    /// section for byte-exact stream pins.
    pub fn with_observability(config: PimConfig, workers: usize, sink: ServiceTelemetry) -> Self {
        let ranks = config.ranks_for(config.dpus);
        let shared = Arc::new(Shared {
            fleet: Mutex::new(FleetState {
                system: PimSystem::new(config.clone()),
                rank_leased: vec![false; ranks],
                pinned: Vec::new(),
            }),
            lease_cv: Condvar::new(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            observer: Observer::new(sink),
        });
        let workers = workers.max(1);
        let handles = (0..workers)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                let config = config.clone();
                std::thread::spawn(move || worker_loop(&shared, &config, worker))
            })
            .collect();
        Self {
            config,
            shared,
            workers: handles,
            next_id: Mutex::new(0),
        }
    }

    /// The service-event sink attached at construction (disabled for
    /// [`new`](Self::new)). Snapshot it with
    /// [`ServiceTelemetry::records`] to read the stream.
    pub fn service_telemetry(&self) -> &ServiceTelemetry {
        &self.shared.observer.sink
    }

    /// The fleet's platform configuration.
    pub fn fleet_config(&self) -> &PimConfig {
        &self.config
    }

    /// Number of ranks in the fleet.
    pub fn fleet_ranks(&self) -> usize {
        self.config.ranks_for(self.config.dpus)
    }

    /// DPU capacity of rank `rank` (the last rank of a fleet whose DPU
    /// count is not a rank multiple is partial).
    fn rank_capacity(&self, rank: usize) -> usize {
        rank_capacity(&self.config, rank)
    }

    /// The platform configuration a job submitted as `request` runs
    /// under: the fleet platform with the job's own DPU count and
    /// fault plan. A solo [`PimRunner`] run on this exact platform is
    /// bit-identical to the job's in-service run — the equivalence the
    /// service's isolation tests pin.
    pub fn job_platform(&self, request: &JobRequest) -> PimConfig {
        let mut platform = self.config.clone();
        platform.dpus = request.cfg.dpus;
        platform.faults = request.faults.clone();
        platform.telemetry = Telemetry::disabled();
        if let Some(tier) = request.exec_tier {
            platform.cost.arith_tier = tier;
        }
        platform
    }

    /// Submits a job. Admission control runs synchronously: a job that
    /// can never fit the fleet, or whose pinned ranks overlap another
    /// live pin, is rejected here; everything else is queued FIFO and
    /// picked up by a worker as capacity frees.
    ///
    /// # Errors
    ///
    /// [`ServiceError::TooLarge`] if `cfg.dpus` exceeds the fleet,
    /// [`ServiceError::BadPin`] for a malformed pin,
    /// [`ServiceError::LeaseOverlap`] for a contested pin, and
    /// [`ServiceError::ShuttingDown`] after [`shutdown`](Self::shutdown).
    pub fn submit(&self, request: JobRequest) -> Result<JobHandle, ServiceError> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(ServiceError::ShuttingDown);
        }
        let fleet_dpus = self.config.dpus;
        if request.cfg.dpus == 0 || request.cfg.dpus > fleet_dpus {
            return Err(ServiceError::TooLarge {
                requested_dpus: request.cfg.dpus,
                fleet_dpus,
            });
        }
        let id = {
            let mut next = lock_recover(&self.next_id);
            let id = *next;
            *next += 1;
            id
        };
        if let Some(ranks) = &request.pinned_ranks {
            self.validate_pin(ranks, request.cfg.dpus)?;
            let mut fleet = lock_recover(&self.shared.fleet);
            for (_, held) in &fleet.pinned {
                if let Some(&rank) = ranks.iter().find(|r| held.contains(r)) {
                    return Err(ServiceError::LeaseOverlap { rank });
                }
            }
            fleet.pinned.push((id, ranks.clone()));
        }
        let token = CancelToken::new();
        let cell = Arc::new(JobCell::new());
        let telemetry = Telemetry::enabled();
        let handle = JobHandle {
            id,
            tenant: request.tenant.clone(),
            token: token.clone(),
            cell: Arc::clone(&cell),
            telemetry: telemetry.clone(),
        };
        // Clone the tenant label only when someone is listening:
        // `String::new()` does not allocate, keeping the disabled
        // path a true zero.
        let tenant = if self.shared.observer.on() {
            request.tenant.clone()
        } else {
            String::new()
        };
        let dpus = request.cfg.dpus;
        let mut queue = lock_recover(&self.shared.queue);
        queue.push_back(QueuedJob {
            id,
            request,
            token,
            cell,
            telemetry,
        });
        let depth = queue.len();
        drop(queue);
        self.shared.queue_cv.notify_one();
        self.shared.observer.emit(|| ServiceEvent::JobSubmitted {
            job: id,
            tenant,
            dpus,
        });
        self.shared
            .observer
            .emit(|| ServiceEvent::QueueDepth { depth });
        Ok(handle)
    }

    /// Checks a pinned-rank list: in range, duplicate-free, and with
    /// enough DPU capacity for the job.
    fn validate_pin(&self, ranks: &[usize], dpus: usize) -> Result<(), ServiceError> {
        let fleet_ranks = self.fleet_ranks();
        let mut capacity = 0usize;
        for (i, &rank) in ranks.iter().enumerate() {
            if rank >= fleet_ranks {
                return Err(ServiceError::BadPin(format!(
                    "rank {rank} out of range for a {fleet_ranks}-rank fleet"
                )));
            }
            if ranks[..i].contains(&rank) {
                return Err(ServiceError::BadPin(format!("rank {rank} pinned twice")));
            }
            capacity += self.rank_capacity(rank);
        }
        if capacity < dpus {
            return Err(ServiceError::BadPin(format!(
                "pinned ranks hold {capacity} DPUs but the job wants {dpus}"
            )));
        }
        Ok(())
    }

    /// Stops accepting jobs, drains the queue (every queued and
    /// running job still reaches a terminal state), and joins the
    /// workers. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        self.shared.lease_cv.notify_all();
        for handle in self.workers.drain(..) {
            drop(handle.join());
        }
    }
}

impl Drop for TrainingService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// DPU capacity of rank `rank` on `config`'s fleet.
fn rank_capacity(config: &PimConfig, rank: usize) -> usize {
    let per_rank = config.dpus_per_rank.max(1);
    let start = rank * per_rank;
    config.dpus.saturating_sub(start).min(per_rank)
}

/// Picks the lowest free ranks whose combined DPU capacity covers
/// `dpus`, or returns `None` if the free set is currently too small.
fn pick_free_ranks(config: &PimConfig, leased: &[bool], dpus: usize) -> Option<Vec<usize>> {
    let mut chosen = Vec::new();
    let mut capacity = 0usize;
    for (rank, &held) in leased.iter().enumerate() {
        if held {
            continue;
        }
        chosen.push(rank);
        capacity += rank_capacity(config, rank);
        if capacity >= dpus {
            return Some(chosen);
        }
    }
    None
}

/// One worker: pop jobs FIFO, lease ranks, run, release.
fn worker_loop(shared: &Shared, fleet_config: &PimConfig, worker: usize) {
    loop {
        let (job, depth) = {
            let mut queue = lock_recover(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break (job, queue.len());
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let id = job.id;
        shared
            .observer
            .emit(|| ServiceEvent::WorkerBusy { worker, job: id });
        shared.observer.emit(|| ServiceEvent::QueueDepth { depth });
        run_job(shared, fleet_config, job);
        shared.observer.emit(|| ServiceEvent::WorkerIdle { worker });
    }
}

/// Admits and executes one job end-to-end, publishing its terminal
/// state and releasing every fleet resource it held.
fn run_job(shared: &Shared, fleet_config: &PimConfig, job: QueuedJob) {
    if job.token.is_cancelled() {
        release_pin(shared, job.id);
        let id = job.id;
        shared
            .observer
            .emit(|| ServiceEvent::JobCancelled { job: id });
        job.cell.set(JobState::Done(JobOutcome::Cancelled));
        return;
    }

    // ---- Admission: lease ranks and allocate the job's private set ----
    let dpus = job.request.cfg.dpus;
    let (lease, mut set) = {
        let mut fleet = lock_recover(&shared.fleet);
        let lease = loop {
            if job.token.is_cancelled() {
                drop(fleet);
                release_pin(shared, job.id);
                let id = job.id;
                shared
                    .observer
                    .emit(|| ServiceEvent::JobCancelled { job: id });
                job.cell.set(JobState::Done(JobOutcome::Cancelled));
                return;
            }
            let candidate = match &job.request.pinned_ranks {
                Some(ranks) => {
                    // The pin is registered; wait for the ranks to be
                    // physically free (an unpinned job may still hold
                    // them).
                    if ranks.iter().all(|&r| !fleet.rank_leased[r]) {
                        Some(ranks.clone())
                    } else {
                        None
                    }
                }
                None => pick_free_ranks(fleet_config, &fleet.rank_leased, dpus),
            };
            if let Some(ranks) = candidate {
                break ranks;
            }
            fleet = shared
                .lease_cv
                .wait(fleet)
                .unwrap_or_else(|e| e.into_inner());
        };
        for &rank in &lease {
            fleet.rank_leased[rank] = true;
        }
        if shared.observer.on() {
            let leased_ranks = fleet.rank_leased.iter().filter(|&&l| l).count();
            let ranks = lease.clone();
            let id = job.id;
            shared.observer.emit(|| ServiceEvent::LeaseGranted {
                job: id,
                ranks,
                leased_ranks,
            });
        }
        let mut platform = fleet_config.clone();
        platform.dpus = dpus;
        platform.faults = job.request.faults.clone();
        platform.telemetry = job.telemetry.clone();
        if let Some(tier) = job.request.exec_tier {
            platform.cost.arith_tier = tier;
        }
        match fleet.system.alloc_with_config(dpus, platform) {
            Ok(set) => (lease, set),
            Err(err) => {
                // Unreachable by construction (leases bound capacity),
                // but fail the job cleanly rather than poisoning the
                // fleet if the invariant is ever broken.
                for &rank in &lease {
                    fleet.rank_leased[rank] = false;
                }
                if shared.observer.on() {
                    let leased_ranks = fleet.rank_leased.iter().filter(|&&l| l).count();
                    let ranks = lease.clone();
                    let id = job.id;
                    let error = err.to_string();
                    shared.observer.emit(|| ServiceEvent::LeaseReleased {
                        job: id,
                        ranks,
                        leased_ranks,
                    });
                    shared
                        .observer
                        .emit(|| ServiceEvent::JobFailed { job: id, error });
                }
                drop(fleet);
                shared.lease_cv.notify_all();
                release_pin(shared, job.id);
                job.cell.set(JobState::Done(JobOutcome::Failed(err)));
                return;
            }
        }
    };

    job.cell.set(JobState::Running);
    {
        let id = job.id;
        shared
            .observer
            .emit(|| ServiceEvent::JobAdmitted { job: id, dpus });
    }

    // ---- Execution: drive the run outside every lock ----
    let outcome = match PimRunner::with_platform(
        job.request.spec,
        job.request.cfg,
        set.config().clone(),
    ) {
        Ok(runner) => {
            let runner = runner.with_resilience(job.request.resilience);
            match runner.run_on(&mut set, &job.request.dataset, Some(&job.token)) {
                Ok(out) => JobOutcome::Completed(Box::new(out)),
                Err(PimError::Cancelled) => JobOutcome::Cancelled,
                Err(err) => JobOutcome::Failed(err),
            }
        }
        Err(err) => JobOutcome::Failed(err),
    };

    // ---- Observability: re-emit the job's simulated timeline onto
    // the service stream, then its terminal event. Everything here is
    // folded from the job's private telemetry (simulated observables),
    // and the whole block is skipped when no sink is attached.
    if shared.observer.on() {
        let id = job.id;
        let events = job.telemetry.events();
        for event in &events {
            if let swiftrl_telemetry::Event::SyncRound { round, live_dpus } = event {
                let (round, live_dpus) = (*round, *live_dpus);
                shared.observer.emit(|| ServiceEvent::SyncRound {
                    job: id,
                    round,
                    live_dpus,
                });
            }
        }
        match &outcome {
            JobOutcome::Completed(_) => {
                let snap = MetricsSnapshot::from_events("", &events);
                shared.observer.emit(|| ServiceEvent::JobCompleted {
                    job: id,
                    sync_rounds: snap.sync_rounds,
                    launches: snap.launches,
                    faulted_launches: snap.faulted_launches,
                    retries: snap.retries,
                    rollbacks: snap.rollbacks,
                    degraded_dpus: snap.degraded_dpus,
                    kernel_seconds: snap.kernel_seconds,
                    launch_cycles: snap.launch_cycles,
                });
            }
            JobOutcome::Cancelled => {
                shared
                    .observer
                    .emit(|| ServiceEvent::JobCancelled { job: id });
            }
            JobOutcome::Failed(err) => {
                let error = err.to_string();
                shared
                    .observer
                    .emit(|| ServiceEvent::JobFailed { job: id, error });
            }
        }
    }

    // ---- Release: return DPUs and ranks, wake waiting admissions ----
    {
        let mut fleet = lock_recover(&shared.fleet);
        fleet.system.free(set);
        for &rank in &lease {
            fleet.rank_leased[rank] = false;
        }
        if shared.observer.on() {
            let leased_ranks = fleet.rank_leased.iter().filter(|&&l| l).count();
            let ranks = lease.clone();
            let id = job.id;
            shared.observer.emit(|| ServiceEvent::LeaseReleased {
                job: id,
                ranks,
                leased_ranks,
            });
        }
    }
    shared.lease_cv.notify_all();
    release_pin(shared, job.id);
    job.cell.set(JobState::Done(outcome));
}

/// Drops job `id`'s pinned-rank registration, if any.
fn release_pin(shared: &Shared, id: u64) {
    let mut fleet = lock_recover(&shared.fleet);
    fleet.pinned.retain(|(job, _)| *job != id);
}
