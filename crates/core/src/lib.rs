//! # swiftrl-core
//!
//! The SwiftRL system (Gogineni et al., ISPASS 2024): offline tabular
//! reinforcement learning — Q-learning and SARSA — accelerated on a
//! processing-in-memory architecture, reproduced on the simulated
//! UPMEM-class platform of [`swiftrl_pim`].
//!
//! The execution model follows the paper's Figure 4:
//!
//! 1. the experience dataset is partitioned into per-DPU chunks and
//!    scattered into the DPUs' MRAM banks ([`partition`], **CPU→PIM**);
//! 2. every DPU trains a local Q-table over its chunk with a
//!    single-tasklet kernel ([`kernels`], **PIM kernel**), in one of 12
//!    workload variants: {Q-learning, SARSA} × {FP32, INT32 fixed-point}
//!    × {SEQ, STR, RAN} sampling ([`config`]);
//! 3. every `τ` episodes the host gathers the local Q-tables, averages
//!    them and broadcasts the aggregate back (**inter-PIM-core
//!    communication**, host-mediated as on the real hardware);
//! 4. after the final round the host retrieves and aggregates the final
//!    Q-table (**PIM→CPU**).
//!
//! [`runner::PimRunner`] drives this loop and reports a
//! [`breakdown::TimeBreakdown`] with exactly the four components of the
//! paper's Figures 5–6. [`multi_agent`] implements the multi-agent
//! variant (one independent learner per DPU, no aggregation).
//! [`backend::TrainingBackend`] puts the PIM runner, the multi-agent
//! runner, and the CPU/GPU baselines behind one
//! `train(dataset) → report` interface, so experiment binaries
//! enumerate comparators instead of hand-rolling per-executor loops.
//!
//! ## Example
//!
//! ```rust
//! use swiftrl_core::config::{RunConfig, WorkloadSpec};
//! use swiftrl_core::runner::PimRunner;
//! use swiftrl_env::collect::collect_random;
//! use swiftrl_env::frozen_lake::FrozenLake;
//! use swiftrl_rl::eval::evaluate_greedy;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut env = FrozenLake::slippery_4x4();
//! let dataset = collect_random(&mut env, 4_000, 1);
//!
//! let spec = WorkloadSpec::q_learning_seq_int32();
//! let cfg = RunConfig::paper_defaults()
//!     .with_dpus(4)
//!     .with_episodes(100)
//!     .with_tau(50);
//!
//! let outcome = PimRunner::new(spec, cfg)?.run(&dataset)?;
//! let stats = evaluate_greedy(&mut env, &outcome.q_table, 100, 2);
//! assert!(stats.mean_reward >= 0.0);
//! assert!(outcome.breakdown.total_seconds() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod breakdown;
pub mod config;
pub mod kernels;
pub mod layout;
pub mod multi_agent;
pub mod partition;
pub mod resilience;
pub mod runner;
pub mod service;

pub use backend::{BackendStats, MultiAgentRunner, TrainingBackend, TrainingReport};
pub use breakdown::TimeBreakdown;
pub use config::{Algorithm, DataType, RunConfig, WorkloadSpec};
pub use resilience::{ResilienceConfig, ResilienceStats};
pub use runner::{PimRunner, RunOutcome};
pub use service::{
    CancelToken, JobHandle, JobOutcome, JobRequest, JobStatus, ServiceError, TrainingService,
};
