//! Execution-time breakdown: the four components of Figures 5–6.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::AddAssign;

/// Modelled execution time split into the paper's categories.
///
/// Container-level `serde(default)`: artifacts serialized before a
/// component existed (e.g. `program_load_s` predates some checked-in
/// bench JSON) still deserialize, with missing fields zeroed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct TimeBreakdown {
    /// PIM kernel execution (slowest DPU per launch, summed over rounds).
    pub pim_kernel_s: f64,
    /// Initial CPU→PIM dataset/Q-table transfer.
    pub cpu_pim_s: f64,
    /// Final PIM→CPU result retrieval.
    pub pim_cpu_s: f64,
    /// Inter-PIM-core communication: the τ-periodic host-mediated
    /// gather + aggregate + broadcast of Q-tables.
    pub inter_pim_s: f64,
    /// One-time DPU program-load seconds. Informational: already
    /// *included* in `cpu_pim_s` (the paper folds setup costs into the
    /// CPU-PIM category); tracked separately because it does not scale
    /// with the dataset.
    pub program_load_s: f64,
}

impl TimeBreakdown {
    /// Total modelled execution time.
    pub fn total_seconds(&self) -> f64 {
        self.pim_kernel_s + self.cpu_pim_s + self.pim_cpu_s + self.inter_pim_s
    }

    /// Fraction of the total spent in each category, in the order
    /// (kernel, CPU→PIM, PIM→CPU, inter-PIM). Zero total yields zeros.
    pub fn fractions(&self) -> [f64; 4] {
        let total = self.total_seconds();
        if total <= 0.0 {
            return [0.0; 4];
        }
        [
            self.pim_kernel_s / total,
            self.cpu_pim_s / total,
            self.pim_cpu_s / total,
            self.inter_pim_s / total,
        ]
    }

    /// Scales every component (used to extrapolate reduced-scale runs to
    /// paper scale).
    pub fn scaled(&self, factor: f64) -> TimeBreakdown {
        TimeBreakdown {
            pim_kernel_s: self.pim_kernel_s * factor,
            cpu_pim_s: self.cpu_pim_s * factor,
            pim_cpu_s: self.pim_cpu_s * factor,
            inter_pim_s: self.inter_pim_s * factor,
            program_load_s: self.program_load_s * factor,
        }
    }
}

impl AddAssign for TimeBreakdown {
    fn add_assign(&mut self, rhs: TimeBreakdown) {
        self.pim_kernel_s += rhs.pim_kernel_s;
        self.cpu_pim_s += rhs.cpu_pim_s;
        self.pim_cpu_s += rhs.pim_cpu_s;
        self.inter_pim_s += rhs.inter_pim_s;
        self.program_load_s += rhs.program_load_s;
    }
}

impl fmt::Display for TimeBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:.4}s (kernel {:.4}s, CPU-PIM {:.4}s, PIM-CPU {:.4}s, inter-PIM {:.4}s)",
            self.total_seconds(),
            self.pim_kernel_s,
            self.cpu_pim_s,
            self.pim_cpu_s,
            self.inter_pim_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimeBreakdown {
        TimeBreakdown {
            pim_kernel_s: 4.0,
            cpu_pim_s: 1.0,
            pim_cpu_s: 0.5,
            inter_pim_s: 2.5,
            program_load_s: 0.25,
        }
    }

    #[test]
    fn total_and_fractions() {
        let b = sample();
        assert_eq!(b.total_seconds(), 8.0);
        let f = b.fractions();
        assert!((f[0] - 0.5).abs() < 1e-12);
        assert!((f[3] - 0.3125).abs() < 1e-12);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_total_fractions_are_zero() {
        assert_eq!(TimeBreakdown::default().fractions(), [0.0; 4]);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = sample();
        a += sample();
        assert_eq!(a.total_seconds(), 16.0);
    }

    #[test]
    fn scaled_multiplies_components() {
        let b = sample().scaled(2.0);
        assert_eq!(b.pim_kernel_s, 8.0);
        assert_eq!(b.total_seconds(), 16.0);
    }

    #[test]
    fn display_mentions_all_components() {
        let s = sample().to_string();
        assert!(s.contains("kernel") && s.contains("inter-PIM"));
    }
}
