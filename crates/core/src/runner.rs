//! The SwiftRL execution driver (the paper's Figure 4).
//!
//! [`PimRunner`] allocates a fresh DPU set per run and drives the four
//! phases: load (CPU→PIM), kernel rounds, τ-periodic inter-PIM-core
//! synchronization through the host, and final retrieval (PIM→CPU) +
//! aggregation. It reports the trained Q-table and a
//! [`TimeBreakdown`] with the same four categories as Figures 5–6.
//!
//! The runner is execution-tier agnostic: it stages headers and replay
//! chunks the same way under every [`ArithTier`](swiftrl_pim::config::ArithTier),
//! and [`SwiftRlKernel`] advertises its fused batched implementation via
//! `Kernel::batch` — whether a launch interprets per-intrinsic or takes
//! the host-fused sweep is decided per DPU inside the platform
//! (DESIGN.md §14), never here.

use crate::breakdown::TimeBreakdown;
use crate::config::{DataType, RunConfig, WorkloadSpec};
use crate::kernels::SwiftRlKernel;
use crate::layout::{dpu_seed, sampling_kind, KernelHeader, HEADER_BYTES, Q_TABLE_OFFSET};
use crate::partition::partition_even;
use crate::resilience::{ResilienceConfig, ResilienceStats};
use std::ops::Range;
use std::time::Instant;
use swiftrl_baselines::specs::MachineSpec;
use swiftrl_env::{ExperienceDataset, Transition};
use swiftrl_pim::config::PimConfig;
use swiftrl_pim::host::{DpuSet, PimError, PimSystem};
use swiftrl_pim::report::SanitizerReport;
use swiftrl_rl::policy::epsilon_threshold;
use swiftrl_rl::qtable::{FixedQTable, QTable};
use swiftrl_rl::sampling::SamplingStrategy;
use swiftrl_telemetry::{Event, Telemetry};

/// Host DRAM bandwidth assumed for the aggregation (averaging) step, in
/// bytes/second. The averaging of N small Q-tables is bandwidth-bound on
/// the host, so this is the Table 1 memory bandwidth of the paper's CPU
/// baseline (Xeon Silver 4110), sourced from `baselines::specs` so the
/// figure lives in exactly one place.
fn host_aggregate_bw() -> f64 {
    MachineSpec::xeon_silver_4110().memory_bandwidth_gbps * 1.0e9
}

/// Result of a SwiftRL training run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The final aggregated Q-table (descaled to FP32 for INT32 runs,
    /// exactly as the PIM cores convert before the final transfer).
    pub q_table: QTable,
    /// Modelled execution-time breakdown.
    pub breakdown: TimeBreakdown,
    /// Synchronization rounds performed (`E/τ`).
    pub comm_rounds: u32,
    /// DPUs used.
    pub dpus: usize,
    /// Accumulated runtime-sanitizer findings over every launch of the
    /// run. Empty (and `is_clean()`) when the platform runs with
    /// [`swiftrl_pim::sanitize::SanitizeLevel::Off`].
    pub sanitizer: SanitizerReport,
    /// What the resilience loop did: faults seen, retries, degraded
    /// DPUs, checkpoints, rollbacks. All-zero (`is_clean()`) for a
    /// fault-free run.
    pub resilience: ResilienceStats,
    /// Host wall-clock seconds this process spent inside DPU kernel
    /// launches — the simulator's own compute cost, not a modelled
    /// quantity. Machine- and tier-dependent; excluded from every
    /// determinism comparison.
    pub host_kernel_s: f64,
    /// Fleet-wide bank-memory accounting at the end of the run: how
    /// many bank bytes the lazily-materialized banks actually held
    /// (current and peak) and the footprint of the segment arena
    /// backing them. Engine-invariant; host-machine-dependent only in
    /// the sense that it reflects the simulated working set, never
    /// wall-clock.
    pub memory: swiftrl_pim::MemoryStats,
}

/// Drives one workload variant on a simulated PIM platform.
///
/// Construction validates the schedule (`episodes` divisible by `τ`) and
/// probes the DPU allocation, so a successfully built runner is known to
/// be executable. Each [`run`](PimRunner::run) allocates a fresh DPU set
/// on the stored platform configuration, so the runner is reusable and
/// every run starts from zeroed simulated memory.
#[derive(Debug, Clone)]
pub struct PimRunner {
    spec: WorkloadSpec,
    cfg: RunConfig,
    platform: PimConfig,
    resilience: ResilienceConfig,
}

impl PimRunner {
    /// Builds a runner on a default-shaped platform big enough for the
    /// run.
    ///
    /// # Errors
    ///
    /// Returns a [`PimError`] if the configuration is invalid (see
    /// [`Self::with_platform`]).
    pub fn new(spec: WorkloadSpec, cfg: RunConfig) -> Result<Self, PimError> {
        let platform = PimConfig::builder().dpus(cfg.dpus).build();
        Self::with_platform(spec, cfg, platform)
    }

    /// Builds a runner on a custom platform configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::BadArgument`] if `cfg.episodes` is not
    /// divisible by `cfg.tau`, or [`PimError::Alloc`] if fewer than
    /// `cfg.dpus` DPUs are available on the platform.
    pub fn with_platform(
        spec: WorkloadSpec,
        cfg: RunConfig,
        platform: PimConfig,
    ) -> Result<Self, PimError> {
        cfg.comm_rounds()?;
        // Probe the allocation now so a bad DPU count fails at
        // construction, before any dataset work.
        PimSystem::new(platform.clone()).alloc(cfg.dpus)?;
        Ok(Self {
            spec,
            cfg,
            platform,
            resilience: ResilienceConfig::none(),
        })
    }

    /// Sets the host-side resilience policy (retry / checkpoint /
    /// degrade) applied by every subsequent [`run`](Self::run).
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }

    /// Attaches a telemetry sink: every subsequent [`run`](Self::run)
    /// records its full event stream (transfers, launches with per-DPU
    /// cycle spans, sync rounds, faults and resilience actions) into
    /// the handle the caller keeps. Equivalent to building the platform
    /// with [`swiftrl_pim::config::PimConfigBuilder::telemetry`].
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.platform.telemetry = telemetry;
        self
    }

    /// The resilience policy in effect.
    pub fn resilience(&self) -> &ResilienceConfig {
        &self.resilience
    }

    /// The workload variant.
    pub fn spec(&self) -> WorkloadSpec {
        self.spec
    }

    /// The run configuration.
    pub fn config(&self) -> &RunConfig {
        &self.cfg
    }

    /// The platform configuration each run allocates its DPU set on.
    pub fn platform(&self) -> &PimConfig {
        &self.platform
    }

    /// Trains over `dataset` and returns the aggregated Q-table with the
    /// time breakdown.
    ///
    /// # Errors
    ///
    /// Returns a [`PimError`] on kernel faults or transfer failures
    /// (e.g. a chunk that does not fit in MRAM).
    pub fn run(&self, dataset: &ExperienceDataset) -> Result<RunOutcome, PimError> {
        let mut system = PimSystem::new(self.platform.clone());
        let mut set = system.alloc(self.cfg.dpus)?;
        self.run_on(&mut set, dataset, None)
    }

    /// [`Self::run`] on a caller-allocated DPU set. Multi-tenant hosts
    /// lease sets from one shared [`PimSystem`] (see
    /// [`crate::service::TrainingService`]) and drive each tenant's run
    /// on its own set; because the set carries its own
    /// [`PimConfig`] — fault plan and telemetry sink included — the run
    /// is bit-identical to a solo [`Self::run`] on an identically
    /// configured private platform (only fleet-wide memory accounting
    /// is shared).
    ///
    /// When `cancel` is given, the token is checked at every round
    /// boundary; a cancelled run stops before its next launch and
    /// returns [`PimError::Cancelled`], leaving `set` consistent (and
    /// reusable or freeable by the caller).
    ///
    /// # Errors
    ///
    /// Returns [`PimError::BadArgument`] if the set's size differs from
    /// the configured DPU count, [`PimError::Cancelled`] on
    /// cancellation, or any [`PimError`] a plain run can produce.
    pub fn run_on(
        &self,
        set: &mut DpuSet,
        dataset: &ExperienceDataset,
        cancel: Option<&crate::service::CancelToken>,
    ) -> Result<RunOutcome, PimError> {
        let rounds = self.cfg.comm_rounds()?;
        let ndpus = set.ndpus();
        if ndpus != self.cfg.dpus {
            return Err(PimError::BadArgument(format!(
                "run_on expects a set of {} DPUs, got {ndpus}",
                self.cfg.dpus
            )));
        }
        let ns = dataset.num_states();
        let na = dataset.num_actions();
        let q_bytes = ns * na * 4;
        let scale = self.cfg.scale();

        let mut breakdown = TimeBreakdown::default();
        let mut res = ResilienceStats::default();
        let mut host_kernel_s = 0.0_f64;

        // ---- Phase 1: CPU→PIM program + dataset + header + Q-table load ----
        set.reset_stats();
        set.load_program();
        let ranges = partition_even(dataset.len(), ndpus);
        let headers: Vec<KernelHeader> = ranges
            .iter()
            .enumerate()
            .map(|(dpu, range)| self.header_for(dpu, range.len(), ns, na, 0))
            .collect();

        let header_parts: Vec<Vec<u8>> = headers.iter().map(|h| h.to_bytes()).collect();
        set.scatter(0, &header_parts)?;

        // Zero-initialized Q-tables need no transfer (fresh MRAM reads as
        // zero); an arbitrary initial value is broadcast to every DPU.
        let initial_q_bytes: Vec<u8> = if self.cfg.initial_q != 0.0 {
            let init = match self.spec.dtype {
                DataType::Fp32 => QTable::filled(ns, na, self.cfg.initial_q).to_bytes(),
                DataType::Int32 => FixedQTable::filled(
                    ns,
                    na,
                    scale,
                    scale.to_fixed(self.cfg.initial_q),
                )
                .to_bytes(),
            };
            set.broadcast(Q_TABLE_OFFSET, &init)?;
            init
        } else {
            vec![0u8; q_bytes]
        };
        let trans_offset = headers[0].transitions_offset();
        let chunk_parts: Vec<Vec<u8>> = ranges
            .iter()
            .map(|r| match self.spec.dtype {
                DataType::Fp32 => dataset.encode_range_fp32(r.clone()),
                DataType::Int32 => dataset.encode_range_int32(r.clone(), scale.factor()),
            })
            .collect();
        set.scatter(trans_offset, &chunk_parts)?;
        breakdown.cpu_pim_s = set.stats().cpu_to_pim_seconds;
        breakdown.program_load_s = set.stats().program_load_seconds;

        // ---- Phase 2+3: kernel rounds with τ-periodic synchronization ----
        //
        // The resilient form of the plain `for round in 0..rounds` loop:
        // `alive` tracks the DPUs still in the run, `assignments`/`counts`
        // which dataset ranges each holds (for degrade remapping), and
        // `checkpoint` the most recent host-side Q-table snapshot. While
        // every DPU is alive the loop takes exactly the same full-set
        // launch/gather/broadcast path as before, so fault-free runs are
        // bit-identical to the non-resilient driver.
        let kernel = SwiftRlKernel::with_tasklets(self.spec, self.cfg.tasklets);
        let mut alive: Vec<usize> = (0..ndpus).collect();
        let mut assignments: Vec<Vec<Range<usize>>> =
            ranges.iter().map(|r| vec![r.clone()]).collect();
        let mut counts: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        // The checkpoint is never absent: before `checkpoint_every`
        // first fires (or when it is 0), the snapshot is the *initial*
        // Q-table at round 0, so a degradation in the first window rolls
        // survivors back to a from-scratch replay instead of keeping the
        // partially-updated tables the dead DPU contributed to. The
        // implicit round-0 snapshot is not counted in
        // `ResilienceStats::checkpoints`/`checkpoint_bytes` (those count
        // explicit periodic checkpoints only).
        let mut checkpoint: Option<(u32, Vec<u8>)> = Some((0, initial_q_bytes));
        // One flat gather buffer reused every sync round (stride
        // `q_bytes` per live DPU) — the per-round Vec-of-Vec allocation
        // the gather used to make is gone.
        let mut q_scratch = vec![0u8; q_bytes * ndpus];
        let mut final_live = 0usize;
        let mut round: u32 = 0;
        while round < rounds {
            if let Some(token) = cancel {
                if token.is_cancelled() {
                    return Err(PimError::Cancelled);
                }
            }
            // The kernel advances its own episode window in MRAM, so no
            // header re-arm is needed between rounds.
            let kernel_before = set.stats().kernel_seconds;
            let sync_cpu_before = set.stats().cpu_to_pim_seconds;
            let sync_pim_before = set.stats().pim_to_cpu_seconds;

            let launch_started = Instant::now();
            let dead = self.launch_with_retry(set, &kernel, &alive, ndpus, &mut res)?;
            host_kernel_s += launch_started.elapsed().as_secs_f64();
            let rollback = if dead.is_empty() {
                None
            } else {
                self.degrade(
                    set,
                    dataset,
                    &mut alive,
                    &mut assignments,
                    &mut counts,
                    &dead,
                    checkpoint.as_ref(),
                    trans_offset,
                    &mut res,
                )?
            };

            let is_last = rollback.is_none() && round + 1 == rounds;
            if rollback.is_none() {
                // Gather local Q-tables (survivors only once degraded)
                // into the reused flat scratch buffer.
                let live = alive.len();
                let tables = &mut q_scratch[..q_bytes * live];
                if live == ndpus {
                    set.gather_into(Q_TABLE_OFFSET, q_bytes, tables)?;
                } else {
                    set.gather_subset_into(Q_TABLE_OFFSET, q_bytes, &alive, tables)?;
                }

                if is_last {
                    // The scratch buffer already holds the final tables;
                    // remember how many live chunks it contains.
                    final_live = live;
                } else {
                    // Host-side aggregation + broadcast of the average.
                    let avg = self.aggregate(&q_scratch[..q_bytes * live], ns, na);
                    let agg_s = self.aggregate_seconds(live, q_bytes);
                    breakdown.inter_pim_s += agg_s;
                    self.platform.telemetry.emit(|| Event::HostAggregate {
                        tables: live,
                        bytes: q_bytes as u64,
                        seconds: agg_s,
                    });
                    if alive.len() == ndpus {
                        set.broadcast(Q_TABLE_OFFSET, &avg)?;
                    } else {
                        set.broadcast_subset(Q_TABLE_OFFSET, &avg, &alive)?;
                    }
                    let every = self.resilience.checkpoint_every;
                    if every > 0 && (round + 1).is_multiple_of(every) {
                        res.checkpoints += 1;
                        res.checkpoint_bytes += avg.len() as u64;
                        checkpoint = Some((round + 1, avg));
                    }
                }
            }

            let kernel_delta = set.stats().kernel_seconds - kernel_before;
            breakdown.pim_kernel_s += kernel_delta;
            let sync_cpu = set.stats().cpu_to_pim_seconds - sync_cpu_before;
            let sync_pim = set.stats().pim_to_cpu_seconds - sync_pim_before;
            if is_last {
                // The final gather is the PIM→CPU retrieval phase.
                breakdown.pim_cpu_s += sync_pim;
                breakdown.inter_pim_s += sync_cpu;
            } else {
                // Repair traffic (rollback broadcast, chunk remapping)
                // rides the same host-mediated path as synchronization.
                breakdown.inter_pim_s += sync_cpu + sync_pim;
            }

            if rollback.is_none() {
                self.platform.telemetry.emit(|| Event::SyncRound {
                    round,
                    live_dpus: alive.len(),
                });
            }
            round = match rollback {
                Some(ck_round) => ck_round,
                None => round + 1,
            };
        }

        // ---- Phase 4: final aggregation on the host ----
        let avg = self.aggregate(&q_scratch[..q_bytes * final_live], ns, na);
        let final_agg_s = self.aggregate_seconds(alive.len(), q_bytes);
        breakdown.pim_cpu_s += final_agg_s;
        self.platform.telemetry.emit(|| Event::HostAggregate {
            tables: final_live,
            bytes: q_bytes as u64,
            seconds: final_agg_s,
        });
        let q_table = match self.spec.dtype {
            DataType::Fp32 => QTable::from_bytes(ns, na, &avg),
            DataType::Int32 => FixedQTable::from_bytes(ns, na, scale, &avg).to_float(),
        };

        // Launches that ended in a fault still cost modelled wall time
        // (the host waited on the slowest survivor); the DpuSet keeps
        // them out of its clean kernel counters, so fold them in here.
        breakdown.pim_kernel_s += set.stats().faulted_kernel_seconds;
        res.faulted_kernel_seconds = set.stats().faulted_kernel_seconds;

        let memory = set.memory_stats();
        self.platform.telemetry.emit(|| Event::MemoryCeilings {
            bank_bytes: memory.bank_bytes,
            bank_peak_bytes: memory.bank_peak_bytes,
            arena_bytes: memory.arena_bytes,
            arena_peak_bytes: memory.arena_peak_bytes,
        });

        Ok(RunOutcome {
            q_table,
            breakdown,
            comm_rounds: rounds,
            dpus: ndpus,
            sanitizer: set.sanitizer_report().clone(),
            resilience: res,
            host_kernel_s,
            memory,
        })
    }

    /// Launches one round on `alive`, retrying the faulted subset up to
    /// the configured budget. Returns the DPUs still faulting after all
    /// retries (empty on a clean round) — non-empty only when degrade
    /// mode may absorb them; otherwise the launch error propagates.
    fn launch_with_retry(
        &self,
        set: &mut DpuSet,
        kernel: &SwiftRlKernel,
        alive: &[usize],
        ndpus: usize,
        res: &mut ResilienceStats,
    ) -> Result<Vec<usize>, PimError> {
        let first = if alive.len() == ndpus {
            set.launch(kernel).map(|_| ())
        } else {
            set.launch_subset(kernel, alive).map(|_| ())
        };
        let mut last_err = match first {
            Ok(()) => return Ok(Vec::new()),
            Err(e) => e,
        };
        // Survivors of a faulted launch completed their episode window;
        // only the faulted DPUs are relaunched. An injected fault aborts
        // before any kernel work, so the faulted DPU's MRAM — episode
        // window included — is untouched and the relaunch replays it.
        let mut pending = set.last_launch().faulted_dpus.clone();
        res.faults_seen += pending.len() as u64;
        for attempt in 1..=self.resilience.max_retries {
            res.retries += 1;
            self.platform.telemetry.emit(|| Event::Retry {
                attempt,
                dpus: pending.clone(),
            });
            match set.launch_subset(kernel, &pending) {
                Ok(_) => return Ok(Vec::new()),
                Err(e) => {
                    pending = set.last_launch().faulted_dpus.clone();
                    res.faults_seen += pending.len() as u64;
                    last_err = e;
                }
            }
        }
        if self.resilience.degrade && pending.len() < alive.len() {
            Ok(pending)
        } else {
            Err(last_err)
        }
    }

    /// Drops `dead` from the run and remaps their dataset chunks onto
    /// the survivors (appended behind each survivor's own records, with
    /// a header patch for the new transition count). The survivors are
    /// rolled back to the latest checkpoint — Q-table snapshot
    /// re-broadcast, episode windows re-armed — and the checkpointed
    /// round index is returned so the caller replays from there. Before
    /// the first periodic checkpoint fires (or with `checkpoint_every`
    /// 0) the snapshot is the initial round-0 Q-table, so the replay is
    /// a from-scratch run on the survivors.
    #[allow(clippy::too_many_arguments)]
    fn degrade(
        &self,
        set: &mut DpuSet,
        dataset: &ExperienceDataset,
        alive: &mut Vec<usize>,
        assignments: &mut [Vec<Range<usize>>],
        counts: &mut [usize],
        dead: &[usize],
        checkpoint: Option<&(u32, Vec<u8>)>,
        trans_offset: usize,
        res: &mut ResilienceStats,
    ) -> Result<Option<u32>, PimError> {
        alive.retain(|d| !dead.contains(d));
        res.degraded_dpus.extend_from_slice(dead);
        self.platform.telemetry.emit(|| Event::Degradation {
            dead_dpus: dead.to_vec(),
            survivors: alive.len(),
        });
        if alive.is_empty() {
            return Err(PimError::BadArgument(
                "every DPU faulted; no survivors to degrade onto".to_string(),
            ));
        }

        // Orphaned dataset ranges, in dead-DPU order.
        let mut orphans: Vec<Range<usize>> = Vec::new();
        for &d in dead {
            orphans.append(&mut assignments[d]);
            counts[d] = 0;
        }
        let total: usize = orphans.iter().map(|r| r.len()).sum();

        // Cut the orphan ranges into contiguous per-survivor shares,
        // using the same even split as the initial partition.
        let shares = partition_even(total, alive.len());
        let mut pieces: Vec<Vec<Range<usize>>> = vec![Vec::new(); alive.len()];
        let mut slot = 0usize;
        let mut filled = 0usize;
        for mut r in orphans {
            while !r.is_empty() && slot < pieces.len() {
                let room = shares[slot].len() - filled;
                if room == 0 {
                    slot += 1;
                    filled = 0;
                    continue;
                }
                let take = room.min(r.len());
                pieces[slot].push(r.start..r.start + take);
                r.start += take;
                filled += take;
            }
        }

        // Roll back to the latest checkpoint if one exists: survivors
        // get the snapshot Q-table and replay from that round, so no
        // episodes on the orphaned data are lost since the checkpoint.
        let rollback = match checkpoint {
            Some((ck_round, snapshot)) => {
                set.broadcast_subset(Q_TABLE_OFFSET, snapshot, alive)?;
                res.rollbacks += 1;
                self.platform.telemetry.emit(|| Event::Rollback {
                    to_round: *ck_round,
                });
                Some(*ck_round)
            }
            None => None,
        };

        for (slot, &dpu) in alive.iter().enumerate() {
            let added: usize = pieces[slot].iter().map(|r| r.len()).sum();
            if added > 0 {
                let mut bytes = Vec::with_capacity(added * Transition::RECORD_BYTES);
                for r in &pieces[slot] {
                    let part = match self.spec.dtype {
                        DataType::Fp32 => dataset.encode_range_fp32(r.clone()),
                        DataType::Int32 => {
                            dataset.encode_range_int32(r.clone(), self.cfg.scale().factor())
                        }
                    };
                    bytes.extend_from_slice(&part);
                }
                set.copy_to(
                    dpu,
                    trans_offset + counts[dpu] * Transition::RECORD_BYTES,
                    &bytes,
                )?;
                assignments[dpu].append(&mut pieces[slot]);
                counts[dpu] += added;
            }
            if added > 0 || rollback.is_some() {
                // Read-modify-write the header so the kernel-advanced
                // episode window survives a pure chunk-count patch.
                let raw = set.copy_from(dpu, 0, HEADER_BYTES)?;
                let mut header = KernelHeader::from_bytes(&raw)
                    .map_err(|e| PimError::BadArgument(e.to_string()))?;
                header.n_transitions = counts[dpu] as u32;
                if let Some(ck_round) = rollback {
                    header.episode_base = ck_round * self.cfg.tau;
                }
                set.copy_to(dpu, 0, &header.to_bytes())?;
            }
        }
        Ok(rollback)
    }

    /// Builds the per-DPU header for an episode window starting at
    /// `episode_base`.
    fn header_for(
        &self,
        dpu: usize,
        chunk_len: usize,
        ns: usize,
        na: usize,
        episode_base: u32,
    ) -> KernelHeader {
        let scale = self.cfg.scale();
        let (alpha, gamma) = match self.spec.dtype {
            DataType::Fp32 => (self.cfg.alpha.to_bits(), self.cfg.gamma.to_bits()),
            DataType::Int32 => (
                scale.to_fixed(self.cfg.alpha) as u32,
                scale.to_fixed(self.cfg.gamma) as u32,
            ),
        };
        let (sampling, stride) = match self.spec.sampling {
            SamplingStrategy::Sequential => (sampling_kind::SEQ, 0),
            SamplingStrategy::Stride(k) => (sampling_kind::STR, k as u32),
            SamplingStrategy::Random => (sampling_kind::RAN, 0),
        };
        KernelHeader {
            n_transitions: chunk_len as u32,
            num_states: ns as u32,
            num_actions: na as u32,
            episodes: self.cfg.tau,
            episode_base,
            sampling,
            stride,
            seed: dpu_seed(self.cfg.seed, dpu),
            alpha,
            gamma,
            epsilon_threshold: epsilon_threshold(self.cfg.epsilon).min(u32::MAX as u64) as u32,
            scale: scale.factor() as u32,
        }
    }

    /// Averages gathered Q-table blobs in the run's data type. `tables`
    /// is a flat buffer of per-DPU blobs packed with stride
    /// `ns * na * 4` (exactly the [`DpuSet::gather_into`] layout).
    fn aggregate(&self, tables: &[u8], ns: usize, na: usize) -> Vec<u8> {
        let q_bytes = ns * na * 4;
        match self.spec.dtype {
            DataType::Fp32 => {
                let parsed: Vec<QTable> = tables
                    .chunks_exact(q_bytes)
                    .map(|b| QTable::from_bytes(ns, na, b))
                    .collect();
                QTable::mean_of(&parsed).to_bytes()
            }
            DataType::Int32 => {
                let scale = self.cfg.scale();
                let parsed: Vec<FixedQTable> = tables
                    .chunks_exact(q_bytes)
                    .map(|b| FixedQTable::from_bytes(ns, na, scale, b))
                    .collect();
                FixedQTable::mean_of(&parsed).to_bytes()
            }
        }
    }

    /// Modelled host time to average `n` Q-tables of `q_bytes` each.
    fn aggregate_seconds(&self, n: usize, q_bytes: usize) -> f64 {
        ((n + 1) * q_bytes) as f64 / host_aggregate_bw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftrl_env::collect::collect_random;
    use swiftrl_env::frozen_lake::FrozenLake;

    fn dataset() -> ExperienceDataset {
        let mut env = FrozenLake::slippery_4x4();
        collect_random(&mut env, 2_000, 42)
    }

    fn quick_cfg(dpus: usize) -> RunConfig {
        RunConfig::paper_defaults()
            .with_dpus(dpus)
            .with_episodes(20)
            .with_tau(10)
    }

    #[test]
    fn run_produces_breakdown_and_table() {
        let d = dataset();
        let out = PimRunner::new(WorkloadSpec::q_learning_seq_int32(), quick_cfg(4))
            .unwrap()
            .run(&d)
            .unwrap();
        assert_eq!(out.comm_rounds, 2);
        assert_eq!(out.dpus, 4);
        assert!(out.breakdown.pim_kernel_s > 0.0);
        assert!(out.breakdown.cpu_pim_s > 0.0);
        assert!(out.breakdown.pim_cpu_s > 0.0);
        assert!(out.breakdown.inter_pim_s > 0.0);
        // Training moved some Q-values.
        assert!(out.q_table.values().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn single_dpu_single_round_matches_host_training() {
        let d = dataset();
        let cfg = quick_cfg(1).with_episodes(10).with_tau(10);
        let out = PimRunner::new(WorkloadSpec::q_learning_seq_fp32(), cfg)
            .unwrap()
            .run(&d)
            .unwrap();

        let mut host = QTable::zeros(d.num_states(), d.num_actions());
        let qcfg = swiftrl_rl::qlearning::QLearningConfig {
            alpha: 0.1,
            gamma: 0.95,
            episodes: 10,
        };
        swiftrl_rl::qlearning::train_offline_into(
            &mut host,
            d.transitions(),
            &qcfg,
            SamplingStrategy::Sequential,
            dpu_seed(cfg.seed, 0),
        );
        assert_eq!(out.q_table, host, "1-DPU PIM run must equal host training");
    }

    #[test]
    fn more_dpus_cut_kernel_time() {
        let d = dataset();
        let t = |dpus| {
            PimRunner::new(WorkloadSpec::q_learning_seq_int32(), quick_cfg(dpus))
                .unwrap()
                .run(&d)
                .unwrap()
                .breakdown
                .pim_kernel_s
        };
        let t4 = t(4);
        let t16 = t(16);
        assert!(
            t16 < t4 / 2.0,
            "strong scaling failed: 4 DPUs {t4}s vs 16 DPUs {t16}s"
        );
    }

    #[test]
    fn int32_outcome_close_to_fp32_outcome() {
        let d = dataset();
        let fp = PimRunner::new(WorkloadSpec::q_learning_seq_fp32(), quick_cfg(4))
            .unwrap()
            .run(&d)
            .unwrap();
        let ix = PimRunner::new(WorkloadSpec::q_learning_seq_int32(), quick_cfg(4))
            .unwrap()
            .run(&d)
            .unwrap();
        let diff = fp.q_table.max_abs_diff(&ix.q_table);
        assert!(diff < 0.05, "INT32 drifted {diff} from FP32");
    }

    #[test]
    fn all_twelve_variants_run() {
        let d = dataset();
        for spec in WorkloadSpec::paper_variants() {
            let out = PimRunner::new(spec, quick_cfg(2).with_episodes(4).with_tau(2))
                .unwrap()
                .run(&d)
                .unwrap_or_else(|e| panic!("{spec} failed: {e}"));
            assert!(out.breakdown.total_seconds() > 0.0, "{spec}");
        }
    }
}
