//! Multi-agent Q-learning: one independent learner per PIM core.
//!
//! In the paper's multi-agent workload (§3.2.1) each agent has its own
//! experience dataset and Q-table; agents are pinned one-per-DPU, train
//! concurrently, and never communicate — so the τ-synchronization and the
//! aggregation step disappear entirely. The host only loads the
//! per-agent datasets and retrieves the final per-agent Q-tables.

use crate::breakdown::TimeBreakdown;
use crate::config::{DataType, RunConfig, WorkloadSpec};
use crate::kernels::SwiftRlKernel;
use crate::layout::{dpu_seed, sampling_kind, KernelHeader, Q_TABLE_OFFSET};
use swiftrl_env::ExperienceDataset;
use swiftrl_pim::config::PimConfig;
use swiftrl_pim::host::{PimError, PimSystem};
use swiftrl_rl::policy::epsilon_threshold;
use swiftrl_rl::qtable::{FixedQTable, QTable};
use swiftrl_rl::sampling::SamplingStrategy;

/// Result of a multi-agent run.
#[derive(Debug, Clone)]
pub struct MultiAgentOutcome {
    /// One trained Q-table per agent, in agent order.
    pub q_tables: Vec<QTable>,
    /// Modelled execution-time breakdown (no inter-PIM component by
    /// construction).
    pub breakdown: TimeBreakdown,
}

/// Trains `datasets.len()` independent agents, one per DPU.
///
/// All agents share the workload variant and hyper-parameters of
/// `spec`/`cfg`; `cfg.dpus` is ignored in favour of the agent count, and
/// `cfg.tau` is irrelevant (no synchronization) — the whole episode
/// budget runs in a single launch per agent.
///
/// # Errors
///
/// Returns a [`PimError`] if allocation, transfers, or kernels fail.
///
/// # Panics
///
/// Panics if `datasets` is empty or the datasets disagree on their
/// state/action spaces.
pub fn train_multi_agent(
    spec: WorkloadSpec,
    cfg: &RunConfig,
    datasets: &[ExperienceDataset],
) -> Result<MultiAgentOutcome, PimError> {
    assert!(!datasets.is_empty(), "need at least one agent dataset");
    let ns = datasets[0].num_states();
    let na = datasets[0].num_actions();
    assert!(
        datasets
            .iter()
            .all(|d| d.num_states() == ns && d.num_actions() == na),
        "agent datasets must share the environment spaces"
    );

    let agents = datasets.len();
    let platform = PimConfig::builder().dpus(agents).build();
    let mut system = PimSystem::new(platform);
    let mut set = system.alloc(agents)?;
    let q_bytes = ns * na * 4;
    let scale = cfg.scale();
    let mut breakdown = TimeBreakdown::default();

    set.load_program();

    // Load: per-agent header + zero Q-table + the agent's own dataset.
    let headers: Vec<KernelHeader> = datasets
        .iter()
        .enumerate()
        .map(|(agent, d)| {
            let (alpha, gamma) = match spec.dtype {
                DataType::Fp32 => (cfg.alpha.to_bits(), cfg.gamma.to_bits()),
                DataType::Int32 => (
                    scale.to_fixed(cfg.alpha) as u32,
                    scale.to_fixed(cfg.gamma) as u32,
                ),
            };
            let (sampling, stride) = match spec.sampling {
                SamplingStrategy::Sequential => (sampling_kind::SEQ, 0),
                SamplingStrategy::Stride(k) => (sampling_kind::STR, k as u32),
                SamplingStrategy::Random => (sampling_kind::RAN, 0),
            };
            KernelHeader {
                n_transitions: d.len() as u32,
                num_states: ns as u32,
                num_actions: na as u32,
                episodes: cfg.episodes,
                episode_base: 0,
                sampling,
                stride,
                seed: dpu_seed(cfg.seed, agent),
                alpha,
                gamma,
                epsilon_threshold: epsilon_threshold(cfg.epsilon).min(u32::MAX as u64) as u32,
                scale: scale.factor() as u32,
            }
        })
        .collect();

    set.scatter(0, &headers.iter().map(|h| h.to_bytes()).collect::<Vec<_>>())?;
    // Zero-initialized Q-tables need no transfer (fresh MRAM reads as
    // zero); an arbitrary initial value is broadcast to every agent.
    if cfg.initial_q != 0.0 {
        let init = match spec.dtype {
            DataType::Fp32 => QTable::filled(ns, na, cfg.initial_q).to_bytes(),
            DataType::Int32 => {
                FixedQTable::filled(ns, na, scale, scale.to_fixed(cfg.initial_q)).to_bytes()
            }
        };
        set.broadcast(Q_TABLE_OFFSET, &init)?;
    }
    let trans_offset = headers[0].transitions_offset();
    let chunks: Vec<Vec<u8>> = datasets
        .iter()
        .map(|d| match spec.dtype {
            DataType::Fp32 => d.encode_range_fp32(0..d.len()),
            DataType::Int32 => d.encode_range_int32(0..d.len(), scale.factor()),
        })
        .collect();
    set.scatter(trans_offset, &chunks)?;
    breakdown.cpu_pim_s = set.stats().cpu_to_pim_seconds;
    breakdown.program_load_s = set.stats().program_load_seconds;

    // One launch trains every agent for the full episode budget.
    set.launch(&SwiftRlKernel::with_tasklets(spec, cfg.tasklets))?;
    breakdown.pim_kernel_s = set.stats().kernel_seconds;

    // Retrieval: per-agent Q-tables; no aggregation ("the aggregation
    // step would be unnecessary in this setting").
    let before = set.stats().pim_to_cpu_seconds;
    let blobs = set.gather(Q_TABLE_OFFSET, q_bytes)?;
    breakdown.pim_cpu_s = set.stats().pim_to_cpu_seconds - before;

    let q_tables = blobs
        .iter()
        .map(|b| match spec.dtype {
            DataType::Fp32 => QTable::from_bytes(ns, na, b),
            DataType::Int32 => FixedQTable::from_bytes(ns, na, scale, b).to_float(),
        })
        .collect();

    Ok(MultiAgentOutcome {
        q_tables,
        breakdown,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftrl_env::collect::collect_per_agent;
    use swiftrl_env::frozen_lake::FrozenLake;

    fn cfg() -> RunConfig {
        RunConfig::paper_defaults().with_episodes(10).with_tau(10)
    }

    #[test]
    fn agents_train_independently() {
        let mut env = FrozenLake::slippery_4x4();
        // Enough data per agent that every dataset contains at least one
        // goal reward (otherwise an all-zero table is the correct result).
        let datasets = collect_per_agent(&mut env, 4, 3_000, 3);
        assert!(datasets
            .iter()
            .all(|d| d.iter().any(|t| t.reward > 0.0)));
        let out =
            train_multi_agent(WorkloadSpec::q_learning_seq_int32(), &cfg(), &datasets).unwrap();
        assert_eq!(out.q_tables.len(), 4);
        assert_eq!(out.breakdown.inter_pim_s, 0.0, "no inter-agent communication");
        // Different datasets + seeds ⇒ different tables.
        assert_ne!(out.q_tables[0], out.q_tables[1]);
        assert!(out.q_tables.iter().all(|q| q.values().iter().any(|&v| v != 0.0)));
    }

    #[test]
    fn agent_result_equals_single_agent_run() {
        // Agent i's table must be exactly what a lone DPU would learn on
        // dataset i (independence property).
        let mut env = FrozenLake::slippery_4x4();
        let datasets = collect_per_agent(&mut env, 3, 300, 7);
        let spec = WorkloadSpec::q_learning_seq_fp32();
        let out = train_multi_agent(spec, &cfg(), &datasets).unwrap();

        let mut host = QTable::zeros(16, 4);
        let qcfg = swiftrl_rl::qlearning::QLearningConfig {
            alpha: 0.1,
            gamma: 0.95,
            episodes: 10,
        };
        swiftrl_rl::qlearning::train_offline_into(
            &mut host,
            datasets[1].transitions(),
            &qcfg,
            SamplingStrategy::Sequential,
            dpu_seed(cfg().seed, 1),
        );
        assert_eq!(out.q_tables[1], host);
    }

    #[test]
    #[should_panic(expected = "at least one agent")]
    fn empty_agent_list_rejected() {
        let _ = train_multi_agent(WorkloadSpec::q_learning_seq_fp32(), &cfg(), &[]);
    }

    #[test]
    fn breakdown_scales_with_agents() {
        let mut env = FrozenLake::slippery_4x4();
        let d2 = collect_per_agent(&mut env, 2, 400, 1);
        let d8 = collect_per_agent(&mut env, 8, 400, 1);
        let spec = WorkloadSpec::q_learning_seq_int32();
        let t2 = train_multi_agent(spec, &cfg(), &d2).unwrap().breakdown;
        let t8 = train_multi_agent(spec, &cfg(), &d8).unwrap().breakdown;
        // Same per-agent work ⇒ kernel time roughly flat (agent-level
        // parallelism), while CPU↔PIM bytes grow.
        assert!(t8.pim_kernel_s < t2.pim_kernel_s * 1.5);
        assert!(t8.cpu_pim_s > t2.cpu_pim_s);
    }
}
