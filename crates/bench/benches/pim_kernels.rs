//! Macro-benchmarks: host wall-clock cost of simulating one PIM kernel
//! launch per workload variant (simulator throughput, not modelled time).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use swiftrl_core::config::{RunConfig, WorkloadSpec};
use swiftrl_core::runner::PimRunner;
use swiftrl_env::collect::collect_random;
use swiftrl_env::frozen_lake::FrozenLake;

fn bench_pim_kernels(c: &mut Criterion) {
    let mut env = FrozenLake::slippery_4x4();
    let dataset = collect_random(&mut env, 4_000, 1);

    let mut g = c.benchmark_group("pim_run");
    g.sample_size(10);
    for spec in [
        WorkloadSpec::q_learning_seq_fp32(),
        WorkloadSpec::q_learning_seq_int32(),
        WorkloadSpec::sarsa_seq_fp32(),
        WorkloadSpec::sarsa_seq_int32(),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(spec), &spec, |b, &spec| {
            b.iter(|| {
                let cfg = RunConfig::paper_defaults()
                    .with_dpus(4)
                    .with_episodes(10)
                    .with_tau(10);
                PimRunner::new(spec, cfg)
                    .unwrap()
                    .run(black_box(&dataset))
                    .unwrap()
                    .breakdown
                    .total_seconds()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pim_kernels);
criterion_main!(benches);
