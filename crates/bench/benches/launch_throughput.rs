//! Simulator throughput of the execution engines: host wall-clock cost of
//! the same training run under the serial and threaded DPU engines.
//!
//! Modelled (simulated) time is bit-identical between engines by
//! construction — `tests/engine_determinism.rs` asserts it — so this
//! benchmark measures the only thing the engine choice can change: how
//! fast the simulator itself gets through launches.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use swiftrl_core::config::{RunConfig, WorkloadSpec};
use swiftrl_core::runner::PimRunner;
use swiftrl_env::collect::collect_random;
use swiftrl_env::frozen_lake::FrozenLake;
use swiftrl_pim::config::PimConfig;
use swiftrl_pim::ExecutionEngine;

fn bench_launch_throughput(c: &mut Criterion) {
    let mut env = FrozenLake::slippery_4x4();
    let dataset = collect_random(&mut env, 8_000, 1);
    let workers = std::thread::available_parallelism().map_or(2, |n| n.get());

    let mut g = c.benchmark_group("launch_throughput");
    g.sample_size(10);
    for dpus in [8usize, 32, 128] {
        let cfg = RunConfig::paper_defaults()
            .with_dpus(dpus)
            .with_episodes(10)
            .with_tau(10);
        for (name, engine) in [
            ("serial", ExecutionEngine::Serial),
            ("threaded", ExecutionEngine::Threaded { workers }),
        ] {
            g.bench_with_input(BenchmarkId::new(name, dpus), &engine, |b, &engine| {
                let platform = PimConfig::builder().dpus(dpus).engine(engine).build();
                let runner = PimRunner::with_platform(
                    WorkloadSpec::q_learning_seq_int32(),
                    cfg,
                    platform,
                )
                .unwrap();
                b.iter(|| runner.run(black_box(&dataset)).unwrap().comm_rounds)
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_launch_throughput);
criterion_main!(benches);
