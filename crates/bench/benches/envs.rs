//! Micro-benchmarks of environment stepping and dataset collection.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use swiftrl_env::collect::collect_random;
use swiftrl_env::frozen_lake::FrozenLake;
use swiftrl_env::taxi::Taxi;

fn bench_envs(c: &mut Criterion) {
    let mut g = c.benchmark_group("envs");
    g.bench_function("frozen_lake_collect_10k", |b| {
        let mut env = FrozenLake::slippery_4x4();
        b.iter(|| collect_random(&mut env, black_box(10_000), 1))
    });
    g.bench_function("taxi_collect_10k", |b| {
        let mut env = Taxi::new();
        b.iter(|| collect_random(&mut env, black_box(10_000), 1))
    });
    g.finish();
}

criterion_group!(benches, bench_envs);
criterion_main!(benches);
