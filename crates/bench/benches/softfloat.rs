//! Micro-benchmarks of the emulated IEEE-754 arithmetic against the host
//! FPU — quantifies the simulation overhead of the soft-float library.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use swiftrl_pim::cost::OpTally;
use swiftrl_pim::softfloat as sf;

fn bench_softfloat(c: &mut Criterion) {
    let pairs: Vec<(u32, u32)> = (0..256u32)
        .map(|i| {
            (
                (1.0f32 + i as f32 * 0.37).to_bits(),
                (0.01f32 * i as f32 - 1.3).to_bits(),
            )
        })
        .collect();

    let mut g = c.benchmark_group("softfloat");
    g.bench_function("f32_add_emulated", |b| {
        b.iter(|| {
            let mut t = OpTally::new();
            let mut acc = 0u32;
            for &(x, y) in &pairs {
                acc ^= sf::f32_add(black_box(x), black_box(y), &mut t);
            }
            acc
        })
    });
    g.bench_function("f32_add_host", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &(x, y) in &pairs {
                acc += f32::from_bits(black_box(x)) + f32::from_bits(black_box(y));
            }
            acc
        })
    });
    g.bench_function("f32_mul_emulated", |b| {
        b.iter(|| {
            let mut t = OpTally::new();
            let mut acc = 0u32;
            for &(x, y) in &pairs {
                acc ^= sf::f32_mul(black_box(x), black_box(y), &mut t);
            }
            acc
        })
    });
    g.bench_function("f32_div_emulated", |b| {
        b.iter(|| {
            let mut t = OpTally::new();
            let mut acc = 0u32;
            for &(x, y) in &pairs {
                acc ^= sf::f32_div(black_box(x), black_box(y), &mut t);
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_softfloat);
criterion_main!(benches);
