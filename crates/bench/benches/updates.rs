//! Micro-benchmarks of the host-side Q-learning / SARSA update rules in
//! FP32 and INT32 fixed point (the CPU baselines' inner loops).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use swiftrl_env::{Action, State, Transition};
use swiftrl_rl::fixed::FixedScale;
use swiftrl_rl::qlearning::{q_update, q_update_fixed};
use swiftrl_rl::qtable::{FixedQTable, QTable};
use swiftrl_rl::rng::Lcg32;
use swiftrl_rl::sarsa::sarsa_update;

fn transitions(n: usize, ns: u32, na: u32) -> Vec<Transition> {
    let mut rng = Lcg32::new(9);
    (0..n)
        .map(|_| Transition {
            state: State(rng.below(ns)),
            action: Action(rng.below(na)),
            reward: if rng.below(100) == 0 { 1.0 } else { 0.0 },
            next_state: State(rng.below(ns)),
            done: false,
        })
        .collect()
}

fn bench_updates(c: &mut Criterion) {
    let data = transitions(1_000, 16, 4);
    let scale = FixedScale::paper();

    let mut g = c.benchmark_group("updates");
    g.bench_function("q_update_fp32_host", |b| {
        let mut q = QTable::zeros(16, 4);
        b.iter(|| {
            for t in &data {
                q_update(&mut q, black_box(t), 0.1, 0.95);
            }
        })
    });
    g.bench_function("q_update_int32_host", |b| {
        let mut q = FixedQTable::zeros(16, 4, scale);
        b.iter(|| {
            for t in &data {
                q_update_fixed(&mut q, black_box(t), 1_000, 9_500, 0, scale);
            }
        })
    });
    g.bench_function("sarsa_update_fp32_host", |b| {
        let mut q = QTable::zeros(16, 4);
        let mut rng = Lcg32::new(1);
        b.iter(|| {
            for t in &data {
                sarsa_update(&mut q, black_box(t), 0.1, 0.95, 0.1, &mut rng);
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
