//! Micro-benchmarks of the three experience-sampling strategies.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use swiftrl_rl::sampling::SamplingStrategy;

fn bench_sampling(c: &mut Criterion) {
    const N: usize = 100_000;
    let mut g = c.benchmark_group("sampling");
    for (name, strategy) in [
        ("seq", SamplingStrategy::Sequential),
        ("stride4", SamplingStrategy::Stride(4)),
        ("random", SamplingStrategy::Random),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for i in strategy.indices(black_box(N), 7) {
                    acc = acc.wrapping_add(i);
                }
                acc
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
