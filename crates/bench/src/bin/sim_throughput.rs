//! Simulator throughput: host wall-clock cost per simulated kernel-second
//! under the reference (instrumented soft-float), fast (host-native
//! arithmetic, per-intrinsic charges) and batched (fused per-launch
//! sweep, aggregate charges) execution tiers, across FrozenLake and Taxi
//! workload variants.
//!
//! All tiers produce bit-identical Q-tables and cycle totals (enforced
//! here and proven in `tests/fastpath_parity.rs`); the only difference is
//! how fast the host gets there. A final fleet-scale sweep runs the
//! paper's 2,524-DPU configuration under the fast and batched tiers.
//! Results land in `BENCH_SIM_THROUGHPUT.json` in the current directory.
//!
//! ```text
//! cargo run --release -p swiftrl-bench --bin sim_throughput
//! cargo run --release -p swiftrl-bench --bin sim_throughput -- --quick
//! ```

use std::time::Instant;
use swiftrl_bench::write_json_artifact;
use swiftrl_core::config::{RunConfig, WorkloadSpec};
use swiftrl_core::runner::{PimRunner, RunOutcome};
use swiftrl_env::cliff_walking::CliffWalking;
use swiftrl_env::collect::collect_random;
use swiftrl_env::frozen_lake::FrozenLake;
use swiftrl_env::taxi::Taxi;
use swiftrl_env::ExperienceDataset;
use swiftrl_pim::config::{ExecTier, PimConfig};
use swiftrl_telemetry::Json;

/// The paper platform's DPU count, for the fleet-scale sweep.
const FLEET_DPUS: usize = 2_524;

/// One (environment, workload) point of the sweep.
struct Case {
    env: &'static str,
    figure: &'static str,
    spec: WorkloadSpec,
    dataset: ExperienceDataset,
    cfg: RunConfig,
}

/// One tier's measurement for a case.
struct Measurement {
    tier: ExecTier,
    wall_s: f64,
    kernel_wall_s: f64,
    sim_kernel_s: f64,
    sim_total_s: f64,
    q_bytes: Vec<u8>,
}

fn tier_name(tier: ExecTier) -> &'static str {
    match tier {
        ExecTier::Reference => "reference",
        ExecTier::Fast => "fast",
        ExecTier::Batched => "batched",
    }
}

fn run_tier(case: &Case, tier: ExecTier, repeats: usize) -> Measurement {
    let platform = PimConfig::builder()
        .dpus(case.cfg.dpus)
        .exec_tier(tier)
        .build();
    let runner = PimRunner::with_platform(case.spec, case.cfg, platform).expect("runner");
    let mut best_wall = f64::INFINITY;
    let mut best_kernel_wall = f64::INFINITY;
    let mut outcome: Option<RunOutcome> = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let out = runner.run(&case.dataset).expect("run");
        best_wall = best_wall.min(start.elapsed().as_secs_f64());
        best_kernel_wall = best_kernel_wall.min(out.host_kernel_s);
        outcome = Some(out);
    }
    let out = outcome.expect("at least one repeat");
    Measurement {
        tier,
        wall_s: best_wall,
        kernel_wall_s: best_kernel_wall,
        sim_kernel_s: out.breakdown.pim_kernel_s,
        sim_total_s: out.breakdown.total_seconds(),
        q_bytes: out.q_table.to_bytes(),
    }
}

/// Asserts the tier-identity contract between a reference measurement and
/// a faster tier: same bytes, same simulated cycles.
fn assert_identical(case: &Case, want: &Measurement, got: &Measurement) {
    assert_eq!(
        want.q_bytes,
        got.q_bytes,
        "{} {}: Q-table bytes diverged between {} and {} tiers",
        case.env,
        case.spec,
        tier_name(want.tier),
        tier_name(got.tier)
    );
    assert_eq!(
        want.sim_kernel_s,
        got.sim_kernel_s,
        "{} {}: simulated kernel seconds diverged between {} and {} tiers",
        case.env,
        case.spec,
        tier_name(want.tier),
        tier_name(got.tier)
    );
    assert_eq!(
        want.sim_total_s,
        got.sim_total_s,
        "{} {}: simulated total seconds diverged between {} and {} tiers",
        case.env,
        case.spec,
        tier_name(want.tier),
        tier_name(got.tier)
    );
}

fn entry_json(case: &Case, dpus: usize, m: &Measurement) -> Json {
    Json::obj([
        ("env", Json::str(case.env)),
        ("figure", Json::str(case.figure)),
        ("workload", Json::str(case.spec.to_string())),
        ("tier", Json::str(tier_name(m.tier))),
        ("dpus", Json::UInt(dpus as u64)),
        ("host_kernel_wall_s", Json::Num(m.kernel_wall_s)),
        ("host_wall_s", Json::Num(m.wall_s)),
        ("sim_kernel_s", Json::Num(m.sim_kernel_s)),
        (
            "host_kernel_wall_per_sim_kernel_s",
            // `null` when the modelled kernel time is zero (a degenerate
            // run): the artifact must never carry a non-finite number.
            swiftrl_bench::ratio_json(m.kernel_wall_s, m.sim_kernel_s),
        ),
    ])
}

fn main() {
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--help" | "-h" => {
                eprintln!("flags: --quick (smaller dataset/episodes for CI)");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }

    // Best-of-N wall clock per tier: on a busy host only the cleanest
    // run reflects the simulator's cost, and every tier gets the same
    // treatment. `--quick` covers the Q-learner SEQ variants only; the
    // full sweep runs every paper variant, because the fig5/fig7 kernel
    // phase is the sum over all twelve.
    let (transitions, episodes, tau, dpus, repeats) = if quick {
        (10_000, 20, 10, 8, 1)
    } else {
        (50_000, 100, 50, 16, 5)
    };
    let cfg = RunConfig::paper_defaults()
        .with_dpus(dpus)
        .with_episodes(episodes)
        .with_tau(tau);

    let mut fl = FrozenLake::slippery_4x4();
    let fl_data = collect_random(&mut fl, transitions, 42);
    let mut taxi = Taxi::new();
    let taxi_data = collect_random(&mut taxi, transitions, 42);
    let mut cliff = CliffWalking::new();
    let cliff_data = collect_random(&mut cliff, transitions, 42);

    let specs = if quick {
        vec![
            WorkloadSpec::q_learning_seq_fp32(),
            WorkloadSpec::q_learning_seq_int32(),
        ]
    } else {
        WorkloadSpec::paper_variants()
    };
    let mut cases = Vec::new();
    // CliffWalking is not one of the paper's figure environments; it
    // rides along under the "extra" label so the artifact keeps the
    // per-figure aggregation intact.
    for (env, figure, dataset) in [
        ("frozen_lake", "fig5", &fl_data),
        ("taxi", "fig7", &taxi_data),
        ("cliff_walking", "extra", &cliff_data),
    ] {
        for &spec in &specs {
            cases.push(Case {
                env,
                figure,
                spec,
                dataset: dataset.clone(),
                cfg,
            });
        }
    }

    println!("# Simulator throughput: reference vs fast vs batched execution tier\n");
    println!(
        "{} transitions, {episodes} episodes, tau {tau}, {dpus} DPUs{}\n",
        transitions,
        if quick { " (--quick)" } else { "" }
    );

    let mut rows = Vec::new();
    let mut entries = Vec::new();
    let mut speedups = Vec::new();
    // figure -> (ref kernel, fast kernel, batched kernel,
    //            ref wall, fast wall, batched wall) sums.
    struct PhaseSum {
        env: &'static str,
        figure: &'static str,
        ref_kernel: f64,
        fast_kernel: f64,
        batched_kernel: f64,
        ref_wall: f64,
        fast_wall: f64,
        batched_wall: f64,
    }
    let mut phase_sums: Vec<PhaseSum> = Vec::new();
    for case in &cases {
        let reference = run_tier(case, ExecTier::Reference, repeats);
        let fast = run_tier(case, ExecTier::Fast, repeats);
        let batched = run_tier(case, ExecTier::Batched, repeats);
        // The contract the speedups rest on: same bits, same cycles.
        assert_identical(case, &reference, &fast);
        assert_identical(case, &reference, &batched);
        let kernel_speedup = reference.kernel_wall_s / fast.kernel_wall_s;
        let batched_over_fast = fast.kernel_wall_s / batched.kernel_wall_s;
        rows.push(vec![
            format!("{} ({})", case.env, case.figure),
            case.spec.to_string(),
            swiftrl_bench::fmt_secs(reference.kernel_wall_s),
            swiftrl_bench::fmt_secs(fast.kernel_wall_s),
            swiftrl_bench::fmt_secs(batched.kernel_wall_s),
            swiftrl_bench::fmt_ratio(kernel_speedup),
            swiftrl_bench::fmt_ratio(batched_over_fast),
        ]);
        for m in [&reference, &fast, &batched] {
            entries.push(entry_json(case, case.cfg.dpus, m));
        }
        speedups.push(Json::obj([
            ("env", Json::str(case.env)),
            ("figure", Json::str(case.figure)),
            ("workload", Json::str(case.spec.to_string())),
            (
                "kernel_phase_fast_over_reference",
                swiftrl_bench::ratio_json(reference.kernel_wall_s, fast.kernel_wall_s),
            ),
            (
                "kernel_phase_batched_over_fast",
                swiftrl_bench::ratio_json(fast.kernel_wall_s, batched.kernel_wall_s),
            ),
            (
                "kernel_phase_batched_over_reference",
                swiftrl_bench::ratio_json(reference.kernel_wall_s, batched.kernel_wall_s),
            ),
            (
                "end_to_end_fast_over_reference",
                swiftrl_bench::ratio_json(reference.wall_s, fast.wall_s),
            ),
            (
                "end_to_end_batched_over_fast",
                swiftrl_bench::ratio_json(fast.wall_s, batched.wall_s),
            ),
        ]));
        match phase_sums.iter_mut().find(|p| p.figure == case.figure) {
            Some(p) => {
                p.ref_kernel += reference.kernel_wall_s;
                p.fast_kernel += fast.kernel_wall_s;
                p.batched_kernel += batched.kernel_wall_s;
                p.ref_wall += reference.wall_s;
                p.fast_wall += fast.wall_s;
                p.batched_wall += batched.wall_s;
            }
            None => phase_sums.push(PhaseSum {
                env: case.env,
                figure: case.figure,
                ref_kernel: reference.kernel_wall_s,
                fast_kernel: fast.kernel_wall_s,
                batched_kernel: batched.kernel_wall_s,
                ref_wall: reference.wall_s,
                fast_wall: fast.wall_s,
                batched_wall: batched.wall_s,
            }),
        }
    }

    swiftrl_bench::print_table(
        &[
            "Environment",
            "Workload",
            "Ref kernel",
            "Fast kernel",
            "Batched kernel",
            "Fast/ref",
            "Batched/fast",
        ],
        &rows,
    );
    println!(
        "\nAll tiers produced byte-identical Q-tables and identical simulated \
         times in every case; the speedups are pure host wall-clock.\n"
    );

    // The figure-level kernel phase is the sum over its variants: this is
    // the number that answers "how much faster does the whole fig5/fig7
    // kernel phase run under each tier".
    let mut aggregates = Vec::new();
    for p in &phase_sums {
        println!(
            "{} ({}) kernel phase over {} variant(s): {} -> {} -> {} \
             ({} fast/ref, {} batched/fast)",
            p.figure,
            p.env,
            cases.iter().filter(|c| c.figure == p.figure).count(),
            swiftrl_bench::fmt_secs(p.ref_kernel),
            swiftrl_bench::fmt_secs(p.fast_kernel),
            swiftrl_bench::fmt_secs(p.batched_kernel),
            swiftrl_bench::fmt_ratio(p.ref_kernel / p.fast_kernel),
            swiftrl_bench::fmt_ratio(p.fast_kernel / p.batched_kernel),
        );
        aggregates.push(Json::obj([
            ("env", Json::str(p.env)),
            ("figure", Json::str(p.figure)),
            ("ref_kernel_wall_s", Json::Num(p.ref_kernel)),
            ("fast_kernel_wall_s", Json::Num(p.fast_kernel)),
            ("batched_kernel_wall_s", Json::Num(p.batched_kernel)),
            (
                "kernel_phase_fast_over_reference",
                swiftrl_bench::ratio_json(p.ref_kernel, p.fast_kernel),
            ),
            (
                "kernel_phase_batched_over_fast",
                swiftrl_bench::ratio_json(p.fast_kernel, p.batched_kernel),
            ),
            (
                "end_to_end_fast_over_reference",
                swiftrl_bench::ratio_json(p.ref_wall, p.fast_wall),
            ),
            (
                "end_to_end_batched_over_fast",
                swiftrl_bench::ratio_json(p.fast_wall, p.batched_wall),
            ),
        ]));
    }

    // Fleet-scale sweep: the paper platform's 2,524 DPUs, fast vs
    // batched (the reference tier is impractical at this scale — that is
    // the point of the faster tiers). One workload variant suffices: the
    // entry exists to pin host cost per simulated kernel-second at fleet
    // width.
    let fleet_cfg = RunConfig::paper_defaults()
        .with_dpus(FLEET_DPUS)
        .with_episodes(episodes)
        .with_tau(tau);
    let fleet_case = Case {
        env: "frozen_lake",
        figure: "fleet",
        spec: WorkloadSpec::q_learning_seq_fp32(),
        dataset: fl_data.clone(),
        cfg: fleet_cfg,
    };
    println!("\n# Fleet-scale sweep: {FLEET_DPUS} DPUs, fast vs batched\n");
    let fleet_fast = run_tier(&fleet_case, ExecTier::Fast, 1);
    let fleet_batched = run_tier(&fleet_case, ExecTier::Batched, 1);
    assert_identical(&fleet_case, &fleet_fast, &fleet_batched);
    println!(
        "{} {} @ {FLEET_DPUS} DPUs: fast kernel {} -> batched kernel {} ({})",
        fleet_case.env,
        fleet_case.spec,
        swiftrl_bench::fmt_secs(fleet_fast.kernel_wall_s),
        swiftrl_bench::fmt_secs(fleet_batched.kernel_wall_s),
        swiftrl_bench::fmt_ratio(fleet_fast.kernel_wall_s / fleet_batched.kernel_wall_s),
    );
    entries.push(entry_json(&fleet_case, FLEET_DPUS, &fleet_fast));
    entries.push(entry_json(&fleet_case, FLEET_DPUS, &fleet_batched));
    speedups.push(Json::obj([
        ("env", Json::str(fleet_case.env)),
        ("figure", Json::str(fleet_case.figure)),
        ("workload", Json::str(fleet_case.spec.to_string())),
        (
            "kernel_phase_batched_over_fast",
            swiftrl_bench::ratio_json(fleet_fast.kernel_wall_s, fleet_batched.kernel_wall_s),
        ),
        (
            "end_to_end_batched_over_fast",
            swiftrl_bench::ratio_json(fleet_fast.wall_s, fleet_batched.wall_s),
        ),
    ]));

    // Same schema/keys the hand-formatted writer produced before the
    // shared builder existed; pre-existing artifacts keep parsing.
    let doc = Json::obj([
        ("benchmark", Json::str("sim_throughput")),
        ("quick", Json::Bool(quick)),
        ("transitions", Json::UInt(transitions as u64)),
        ("episodes", Json::UInt(u64::from(episodes))),
        ("tau", Json::UInt(u64::from(tau))),
        ("dpus", Json::UInt(dpus as u64)),
        ("fleet_dpus", Json::UInt(FLEET_DPUS as u64)),
        ("entries", Json::Arr(entries)),
        ("speedups", Json::Arr(speedups)),
        ("aggregates", Json::Arr(aggregates)),
    ]);
    write_json_artifact(std::path::Path::new("BENCH_SIM_THROUGHPUT.json"), &doc)
        .expect("write BENCH_SIM_THROUGHPUT.json");
    println!("\nWrote BENCH_SIM_THROUGHPUT.json");
}
