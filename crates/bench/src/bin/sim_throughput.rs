//! Simulator throughput: host wall-clock cost per simulated kernel-second
//! under the reference (instrumented soft-float) and fast (host-native
//! arithmetic, closed-form cycle tallies) tiers, across FrozenLake and
//! Taxi workload variants.
//!
//! Both tiers produce bit-identical Q-tables and cycle totals (enforced
//! here and proven in `tests/fastpath_parity.rs`); the only difference is
//! how fast the host gets there. Results land in
//! `BENCH_SIM_THROUGHPUT.json` in the current directory.
//!
//! ```text
//! cargo run --release -p swiftrl-bench --bin sim_throughput
//! cargo run --release -p swiftrl-bench --bin sim_throughput -- --quick
//! ```

use std::time::Instant;
use swiftrl_bench::write_json_artifact;
use swiftrl_core::config::{RunConfig, WorkloadSpec};
use swiftrl_core::runner::{PimRunner, RunOutcome};
use swiftrl_env::cliff_walking::CliffWalking;
use swiftrl_env::collect::collect_random;
use swiftrl_env::frozen_lake::FrozenLake;
use swiftrl_env::taxi::Taxi;
use swiftrl_env::ExperienceDataset;
use swiftrl_pim::config::{ArithTier, PimConfig};
use swiftrl_telemetry::Json;

/// One (environment, workload) point of the sweep.
struct Case {
    env: &'static str,
    figure: &'static str,
    spec: WorkloadSpec,
    dataset: ExperienceDataset,
    cfg: RunConfig,
}

/// One tier's measurement for a case.
struct Measurement {
    tier: ArithTier,
    wall_s: f64,
    kernel_wall_s: f64,
    sim_kernel_s: f64,
    sim_total_s: f64,
    q_bytes: Vec<u8>,
}

fn tier_name(tier: ArithTier) -> &'static str {
    match tier {
        ArithTier::Reference => "reference",
        ArithTier::Fast => "fast",
    }
}

fn run_tier(case: &Case, tier: ArithTier, repeats: usize) -> Measurement {
    let platform = PimConfig::builder()
        .dpus(case.cfg.dpus)
        .arith_tier(tier)
        .build();
    let runner = PimRunner::with_platform(case.spec, case.cfg, platform).expect("runner");
    let mut best_wall = f64::INFINITY;
    let mut best_kernel_wall = f64::INFINITY;
    let mut outcome: Option<RunOutcome> = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let out = runner.run(&case.dataset).expect("run");
        best_wall = best_wall.min(start.elapsed().as_secs_f64());
        best_kernel_wall = best_kernel_wall.min(out.host_kernel_s);
        outcome = Some(out);
    }
    let out = outcome.expect("at least one repeat");
    Measurement {
        tier,
        wall_s: best_wall,
        kernel_wall_s: best_kernel_wall,
        sim_kernel_s: out.breakdown.pim_kernel_s,
        sim_total_s: out.breakdown.total_seconds(),
        q_bytes: out.q_table.to_bytes(),
    }
}

fn main() {
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--help" | "-h" => {
                eprintln!("flags: --quick (smaller dataset/episodes for CI)");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }

    // Best-of-N wall clock per tier: on a busy host only the cleanest
    // run reflects the simulator's cost, and both tiers get the same
    // treatment. `--quick` covers the Q-learner SEQ variants only; the
    // full sweep runs every paper variant, because the fig5/fig7 kernel
    // phase is the sum over all twelve.
    let (transitions, episodes, tau, dpus, repeats) = if quick {
        (10_000, 20, 10, 8, 1)
    } else {
        (50_000, 100, 50, 16, 5)
    };
    let cfg = RunConfig::paper_defaults()
        .with_dpus(dpus)
        .with_episodes(episodes)
        .with_tau(tau);

    let mut fl = FrozenLake::slippery_4x4();
    let fl_data = collect_random(&mut fl, transitions, 42);
    let mut taxi = Taxi::new();
    let taxi_data = collect_random(&mut taxi, transitions, 42);
    let mut cliff = CliffWalking::new();
    let cliff_data = collect_random(&mut cliff, transitions, 42);

    let specs = if quick {
        vec![
            WorkloadSpec::q_learning_seq_fp32(),
            WorkloadSpec::q_learning_seq_int32(),
        ]
    } else {
        WorkloadSpec::paper_variants()
    };
    let mut cases = Vec::new();
    // CliffWalking is not one of the paper's figure environments; it
    // rides along under the "extra" label so the artifact keeps the
    // per-figure aggregation intact.
    for (env, figure, dataset) in [
        ("frozen_lake", "fig5", &fl_data),
        ("taxi", "fig7", &taxi_data),
        ("cliff_walking", "extra", &cliff_data),
    ] {
        for &spec in &specs {
            cases.push(Case {
                env,
                figure,
                spec,
                dataset: dataset.clone(),
                cfg,
            });
        }
    }

    println!("# Simulator throughput: reference vs fast arithmetic tier\n");
    println!(
        "{} transitions, {episodes} episodes, tau {tau}, {dpus} DPUs{}\n",
        transitions,
        if quick { " (--quick)" } else { "" }
    );

    let mut rows = Vec::new();
    let mut entries = Vec::new();
    let mut speedups = Vec::new();
    // figure -> (ref kernel, fast kernel, ref wall, fast wall) sums.
    let mut phase_sums: Vec<(&str, &str, f64, f64, f64, f64)> = Vec::new();
    for case in &cases {
        let reference = run_tier(case, ArithTier::Reference, repeats);
        let fast = run_tier(case, ArithTier::Fast, repeats);
        // The contract the speedup rests on: same bits, same cycles.
        assert_eq!(
            reference.q_bytes, fast.q_bytes,
            "{} {}: Q-table bytes diverged between tiers",
            case.env,
            case.spec
        );
        assert_eq!(
            reference.sim_kernel_s, fast.sim_kernel_s,
            "{} {}: simulated kernel seconds diverged between tiers",
            case.env,
            case.spec
        );
        assert_eq!(
            reference.sim_total_s, fast.sim_total_s,
            "{} {}: simulated total seconds diverged between tiers",
            case.env,
            case.spec
        );
        let kernel_speedup = reference.kernel_wall_s / fast.kernel_wall_s;
        let total_speedup = reference.wall_s / fast.wall_s;
        rows.push(vec![
            format!("{} ({})", case.env, case.figure),
            case.spec.to_string(),
            swiftrl_bench::fmt_secs(reference.kernel_wall_s),
            swiftrl_bench::fmt_secs(fast.kernel_wall_s),
            swiftrl_bench::fmt_ratio(kernel_speedup),
            swiftrl_bench::fmt_secs(reference.wall_s),
            swiftrl_bench::fmt_secs(fast.wall_s),
            swiftrl_bench::fmt_ratio(total_speedup),
        ]);
        for m in [&reference, &fast] {
            entries.push(Json::obj([
                ("env", Json::str(case.env)),
                ("figure", Json::str(case.figure)),
                ("workload", Json::str(case.spec.to_string())),
                ("tier", Json::str(tier_name(m.tier))),
                ("host_kernel_wall_s", Json::Num(m.kernel_wall_s)),
                ("host_wall_s", Json::Num(m.wall_s)),
                ("sim_kernel_s", Json::Num(m.sim_kernel_s)),
                (
                    "host_kernel_wall_per_sim_kernel_s",
                    // `null` when the modelled kernel time is zero (a
                    // degenerate run): the artifact must never carry a
                    // non-finite number.
                    swiftrl_bench::ratio_json(m.kernel_wall_s, m.sim_kernel_s),
                ),
            ]));
        }
        speedups.push(Json::obj([
            ("env", Json::str(case.env)),
            ("figure", Json::str(case.figure)),
            ("workload", Json::str(case.spec.to_string())),
            ("kernel_phase_fast_over_reference", Json::Num(kernel_speedup)),
            ("end_to_end_fast_over_reference", Json::Num(total_speedup)),
        ]));
        match phase_sums.iter_mut().find(|p| p.1 == case.figure) {
            Some(p) => {
                p.2 += reference.kernel_wall_s;
                p.3 += fast.kernel_wall_s;
                p.4 += reference.wall_s;
                p.5 += fast.wall_s;
            }
            None => phase_sums.push((
                case.env,
                case.figure,
                reference.kernel_wall_s,
                fast.kernel_wall_s,
                reference.wall_s,
                fast.wall_s,
            )),
        }
    }

    swiftrl_bench::print_table(
        &[
            "Environment",
            "Workload",
            "Ref kernel",
            "Fast kernel",
            "Kernel speedup",
            "Ref total",
            "Fast total",
            "Total speedup",
        ],
        &rows,
    );
    println!(
        "\nBoth tiers produced byte-identical Q-tables and identical simulated \
         times in every case; the speedup is pure host wall-clock.\n"
    );

    // The figure-level kernel phase is the sum over its variants: this is
    // the number that answers "how much faster does the whole fig5/fig7
    // kernel phase run under the fast tier".
    let mut aggregates = Vec::new();
    for (env, figure, ref_kernel, fast_kernel, ref_wall, fast_wall) in &phase_sums {
        println!(
            "{figure} ({env}) kernel phase over {} variant(s): {} -> {} ({} speedup)",
            cases.iter().filter(|c| c.figure == *figure).count(),
            swiftrl_bench::fmt_secs(*ref_kernel),
            swiftrl_bench::fmt_secs(*fast_kernel),
            swiftrl_bench::fmt_ratio(ref_kernel / fast_kernel),
        );
        aggregates.push(Json::obj([
            ("env", Json::str(*env)),
            ("figure", Json::str(*figure)),
            ("ref_kernel_wall_s", Json::Num(*ref_kernel)),
            ("fast_kernel_wall_s", Json::Num(*fast_kernel)),
            (
                "kernel_phase_fast_over_reference",
                Json::Num(ref_kernel / fast_kernel),
            ),
            (
                "end_to_end_fast_over_reference",
                Json::Num(ref_wall / fast_wall),
            ),
        ]));
    }

    // Same schema/keys the hand-formatted writer produced before the
    // shared builder existed; pre-existing artifacts keep parsing.
    let doc = Json::obj([
        ("benchmark", Json::str("sim_throughput")),
        ("quick", Json::Bool(quick)),
        ("transitions", Json::UInt(transitions as u64)),
        ("episodes", Json::UInt(u64::from(episodes))),
        ("tau", Json::UInt(u64::from(tau))),
        ("dpus", Json::UInt(dpus as u64)),
        ("entries", Json::Arr(entries)),
        ("speedups", Json::Arr(speedups)),
        ("aggregates", Json::Arr(aggregates)),
    ]);
    write_json_artifact(std::path::Path::new("BENCH_SIM_THROUGHPUT.json"), &doc)
        .expect("write BENCH_SIM_THROUGHPUT.json");
    println!("\nWrote BENCH_SIM_THROUGHPUT.json");
}
