//! Figure 6: execution time of the 12 RL workload variants on 125–2,000
//! PIM cores for the Taxi environment (5M transitions in the paper),
//! broken into PIM kernel, CPU-PIM, PIM-CPU and inter-PIM-core
//! components (τ = 50, stride = 4).
//!
//! Taxi's Q-table is ~47× larger than FrozenLake's, so the inter-PIM
//! component should become a visible share (up to ~21% for the INT32
//! variants at 2,000 cores in the paper).
//!
//! ```text
//! cargo run --release -p swiftrl-bench --bin fig6_taxi_scaling
//! ```

use swiftrl_bench::scaling::{run_scaling_figure, ScalingFigure};
use swiftrl_bench::HarnessArgs;
use swiftrl_core::config::DataType;
use swiftrl_env::collect::collect_random;
use swiftrl_env::taxi::Taxi;

fn main() {
    let args = HarnessArgs::parse(0.01);
    let fig = ScalingFigure {
        figure: "Figure 6",
        env: "taxi",
        paper_transitions: 5_000_000,
        paper_episodes: 2_000,
        tau: 50,
    };
    let transitions = args.scaled(fig.paper_transitions, 10_000);
    let mut env = Taxi::new();
    let dataset = collect_random(&mut env, transitions, args.seed.unwrap_or(42) as u64);
    let cells = run_scaling_figure(&fig, &dataset, &args);

    // The paper's observation 2: inter-PIM share peaks for INT32 at
    // 2,000 cores (≈21% for Q-STR-INT32 / 20.8% Q-SEQ-INT32).
    println!("\n## Inter-PIM-core share at 2,000 cores (paper: up to 21.19%)\n");
    for c in cells
        .iter()
        .filter(|c| c.dpus == 2_000 && c.spec.dtype == DataType::Int32)
    {
        let f = c.breakdown.fractions();
        println!("- {}: {:.2}%", c.spec, f[3] * 100.0);
    }
}
