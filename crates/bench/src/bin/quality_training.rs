//! §4.2 — RL training quality: mean evaluation reward of the PIM-trained
//! (τ-synchronized, aggregated) policies against CPU-trained references.
//!
//! Both sides run through the [`TrainingBackend`] trait — the PIM rows
//! via [`PimRunner`], the CPU rows via [`CpuModelBackend`] (whose
//! Q-table is the real host-trained reference).
//!
//! Paper numbers (1,000 evaluation episodes):
//!
//! * FrozenLake, Q-learner-SEQ: mean reward 0.74 / 0.7295 / 0.70 at
//!   τ = 10 / 25 / 50 — "relatively same or slightly better than CPU";
//! * FrozenLake, SARSA-SEQ (τ = 50): 0.71 vs CPU 0.723;
//! * Taxi, Q-learner-SEQ (τ = 50, approximated/INT32 model): −7.9 vs CPU
//!   −8.6; SARSA-SEQ: −8.8 vs CPU −8.2.
//!
//! ```text
//! cargo run --release -p swiftrl-bench --bin quality_training
//! ```

use swiftrl_baselines::cpu_model::{CpuModel, CpuVersion};
use swiftrl_bench::{print_table, HarnessArgs};
use swiftrl_core::backend::{CpuModelBackend, TrainingBackend};
use swiftrl_core::config::{RunConfig, WorkloadSpec};
use swiftrl_core::runner::PimRunner;
use swiftrl_env::collect::collect_random;
use swiftrl_env::frozen_lake::FrozenLake;
use swiftrl_env::taxi::Taxi;
use swiftrl_env::{DiscreteEnv, ExperienceDataset};
use swiftrl_rl::eval::evaluate_greedy;

const EVAL_EPISODES: u32 = 1_000;
const DPUS: usize = 125;
/// Seed of the CPU reference runs (kept distinct from the PIM seed so
/// the comparison is across independent training streams).
const CPU_SEED: u32 = 7;

/// Trains through any backend and evaluates the resulting greedy policy.
fn quality<E: DiscreteEnv>(
    env: &mut E,
    dataset: &ExperienceDataset,
    backend: &dyn TrainingBackend,
) -> f64 {
    let report = backend
        .train(dataset)
        .unwrap_or_else(|e| panic!("{} failed: {e}", backend.name()));
    evaluate_greedy(env, &report.q_table, EVAL_EPISODES, 1).mean_reward
}

fn pim_backend(spec: WorkloadSpec, episodes: u32, tau: u32) -> Box<dyn TrainingBackend> {
    let cfg = RunConfig::paper_defaults()
        .with_dpus(DPUS)
        .with_episodes(episodes)
        .with_tau(tau);
    Box::new(PimRunner::new(spec, cfg).expect("alloc failed"))
}

fn cpu_backend(spec: WorkloadSpec, episodes: u32) -> Box<dyn TrainingBackend> {
    let cfg = RunConfig::paper_defaults()
        .with_episodes(episodes)
        .with_tau(episodes)
        .with_seed(CPU_SEED);
    Box::new(CpuModelBackend::new(
        CpuVersion::V2,
        CpuModel::xeon_4110(),
        spec,
        cfg,
    ))
}

fn main() {
    let args = HarnessArgs::parse(0.1);

    // FrozenLake: scaled-down dataset/episodes still converge (tiny MDP).
    let fl_transitions = args.scaled(1_000_000, 20_000);
    let fl_episodes = args.scaled_episodes(2_000, 50);
    let mut fl = FrozenLake::slippery_4x4();
    let fl_data = collect_random(&mut fl, fl_transitions, 42);

    println!("# §4.2 RL training quality (evaluation over {EVAL_EPISODES} episodes)\n");
    println!(
        "FrozenLake: {fl_transitions} transitions, {fl_episodes} training episodes, {DPUS} DPUs\n"
    );

    let mut rows = Vec::new();

    // Q-learner-SEQ at τ ∈ {10, 25, 50}.
    for (tau, paper) in [(10u32, 0.74f64), (25, 0.7295), (50, 0.70)] {
        let backend = pim_backend(WorkloadSpec::q_learning_seq_fp32(), fl_episodes, tau);
        let mean = quality(&mut fl, &fl_data, backend.as_ref());
        rows.push(vec![
            format!("FL Q-learner-SEQ PIM τ={tau}"),
            format!("{paper:.3}"),
            format!("{mean:.3}"),
        ]);
    }

    // CPU reference (single learner over the full dataset).
    let backend = cpu_backend(WorkloadSpec::q_learning_seq_fp32(), fl_episodes);
    let cpu_q_mean = quality(&mut fl, &fl_data, backend.as_ref());
    rows.push(vec![
        "FL Q-learner-SEQ CPU".into(),
        "≈0.70–0.74".into(),
        format!("{cpu_q_mean:.3}"),
    ]);

    // SARSA τ = 50 vs CPU.
    let backend = pim_backend(WorkloadSpec::sarsa_seq_fp32(), fl_episodes, 50);
    let sarsa_mean = quality(&mut fl, &fl_data, backend.as_ref());
    rows.push(vec![
        "FL SARSA-SEQ PIM τ=50".into(),
        "0.71".into(),
        format!("{sarsa_mean:.3}"),
    ]);
    let backend = cpu_backend(WorkloadSpec::sarsa_seq_fp32(), fl_episodes);
    let cpu_sarsa_mean = quality(&mut fl, &fl_data, backend.as_ref());
    rows.push(vec![
        "FL SARSA-SEQ CPU".into(),
        "0.723".into(),
        format!("{cpu_sarsa_mean:.3}"),
    ]);

    // Taxi (paper evaluated the approximated INT32 model).
    let taxi_transitions = args.scaled(5_000_000, 100_000);
    // Taxi's quality depends on accumulating enough synchronization
    // rounds (the paper has 40); at reduced scale give it twice the
    // episode budget so the τ-averaging can reach consensus.
    let taxi_episodes = if args.scale < 1.0 {
        (args.scaled_episodes(2_000, 50) * 2).min(2_000)
    } else {
        2_000
    };
    let mut taxi = Taxi::new();
    let taxi_data = collect_random(&mut taxi, taxi_transitions, 42);
    println!(
        "Taxi: {taxi_transitions} transitions, {taxi_episodes} training episodes, {DPUS} DPUs\n"
    );

    let backend = pim_backend(WorkloadSpec::q_learning_seq_int32(), taxi_episodes, 50);
    let taxi_q = quality(&mut taxi, &taxi_data, backend.as_ref());
    rows.push(vec![
        "Taxi Q-learner-SEQ PIM τ=50 (INT32)".into(),
        "-7.9".into(),
        format!("{taxi_q:.2}"),
    ]);
    let backend = cpu_backend(WorkloadSpec::q_learning_seq_fp32(), taxi_episodes);
    let taxi_cpu_q_mean = quality(&mut taxi, &taxi_data, backend.as_ref());
    rows.push(vec![
        "Taxi Q-learner-SEQ CPU".into(),
        "-8.6".into(),
        format!("{taxi_cpu_q_mean:.2}"),
    ]);

    let backend = pim_backend(WorkloadSpec::sarsa_seq_int32(), taxi_episodes, 50);
    let taxi_sarsa = quality(&mut taxi, &taxi_data, backend.as_ref());
    rows.push(vec![
        "Taxi SARSA-SEQ PIM τ=50 (INT32)".into(),
        "-8.8".into(),
        format!("{taxi_sarsa:.2}"),
    ]);
    let backend = cpu_backend(WorkloadSpec::sarsa_seq_fp32(), taxi_episodes);
    let taxi_cpu_sarsa_mean = quality(&mut taxi, &taxi_data, backend.as_ref());
    rows.push(vec![
        "Taxi SARSA-SEQ CPU".into(),
        "-8.2".into(),
        format!("{taxi_cpu_sarsa_mean:.2}"),
    ]);

    print_table(&["Setting", "Paper", "Measured"], &rows);
    println!(
        "\nNote: measured values use a {:.0}%-scale dataset/episode budget \
         (pass --paper-scale for the full experiment); the check is that \
         PIM-trained policies match their CPU counterparts, which is \
         scale-independent.",
        args.scale * 100.0
    );
}
