//! Resilience sweep (extension): how training quality and modelled time
//! respond to injected platform faults under the host-side resilience
//! policy (retry / checkpoint / degrade).
//!
//! Three sweeps, all on Q-learner-SEQ-INT32 over FrozenLake:
//!
//! 1. **Transient fault rate vs retry** — per-(DPU, launch) abort
//!    probability swept with a bounded relaunch budget; an absorbed
//!    transient fault must not move the learned policy at all.
//! 2. **Dead DPUs vs degrade + checkpoint** — a growing set of DPUs
//!    dies mid-run; their chunks are remapped onto the survivors and
//!    the run rolls back to the last Q-table snapshot.
//! 3. **MRAM bit flips in the Q-table region** — silent data corruption
//!    retry cannot absorb; quality collapses once flips land, which is
//!    what motivates the host-side checkpoints.
//!
//! ```text
//! cargo run --release -p swiftrl-bench --bin resilience
//! ```

use swiftrl_bench::{fmt_secs, print_table, HarnessArgs};
use swiftrl_core::config::{RunConfig, WorkloadSpec};
use swiftrl_core::resilience::ResilienceConfig;
use swiftrl_core::runner::{PimRunner, RunOutcome};
use swiftrl_env::collect::collect_random;
use swiftrl_env::frozen_lake::FrozenLake;
use swiftrl_env::ExperienceDataset;
use swiftrl_core::layout::Q_TABLE_OFFSET;
use swiftrl_pim::config::PimConfig;
use swiftrl_pim::faults::{FaultPlan, MramRegion};
use swiftrl_rl::eval::evaluate_greedy;

fn run_resilient(
    spec: WorkloadSpec,
    cfg: RunConfig,
    faults: FaultPlan,
    resilience: ResilienceConfig,
    dataset: &ExperienceDataset,
) -> RunOutcome {
    let platform = PimConfig::builder().dpus(cfg.dpus).faults(faults).build();
    PimRunner::with_platform(spec, cfg, platform)
        .expect("runner construction")
        .with_resilience(resilience)
        .run(dataset)
        .unwrap_or_else(|e| panic!("resilient run failed: {e}"))
}

fn main() {
    let args = HarnessArgs::parse(0.05);
    let transitions = args.scaled(1_000_000, 20_000);
    let tau = 50u32;
    // At least 4 sync rounds: sweep 2 kills DPUs from launch 1 and the
    // checkpoint/rollback path needs rounds after the snapshot to replay.
    let episodes = args.scaled_episodes(2_000, tau).max(tau * 4);
    let dpus = 64;
    let spec = WorkloadSpec::q_learning_seq_int32();
    let cfg = RunConfig::paper_defaults()
        .with_dpus(dpus)
        .with_episodes(episodes)
        .with_tau(tau);

    let mut env = FrozenLake::slippery_4x4();
    let dataset = collect_random(&mut env, transitions, 42);
    let q_bytes = dataset.num_states() * dataset.num_actions() * 4;

    println!("# Resilience ({transitions} transitions, {episodes} episodes, τ={tau}, {dpus} DPUs)\n");

    // Fault-free reference for quality and overhead comparisons.
    let clean = run_resilient(
        spec,
        cfg,
        FaultPlan::none(),
        ResilienceConfig::none(),
        &dataset,
    );
    let clean_total = clean.breakdown.total_seconds();
    let clean_reward = evaluate_greedy(&mut env, &clean.q_table, 500, 1).mean_reward;

    // ---- 1. Transient fault rate vs bounded retry -----------------------
    println!("## 1. Transient fault rate (retry budget 6, no degradation)\n");
    let mut rows = Vec::new();
    for rate in [0.0f64, 0.01, 0.05, 0.1, 0.2] {
        let out = run_resilient(
            spec,
            cfg,
            FaultPlan::seeded(20).with_dpu_fail_rate(rate),
            ResilienceConfig::none().with_max_retries(6),
            &dataset,
        );
        let reward = evaluate_greedy(&mut env, &out.q_table, 500, 1).mean_reward;
        let total = out.breakdown.total_seconds();
        rows.push(vec![
            format!("{rate:.2}"),
            out.resilience.faults_seen.to_string(),
            out.resilience.retries.to_string(),
            fmt_secs(out.resilience.faulted_kernel_seconds),
            fmt_secs(total),
            format!("{:.2}×", total / clean_total),
            format!("{reward:.3}"),
            if out.q_table == clean.q_table { "yes" } else { "NO" }.to_string(),
        ]);
    }
    print_table(
        &[
            "Fail rate",
            "Faults",
            "Retries",
            "Wasted kernel",
            "Total",
            "vs clean",
            "Mean reward",
            "Q identical",
        ],
        &rows,
    );
    println!(
        "\nAn injected fault aborts before kernel work, so every absorbed \
         transient leaves the Q-table bit-identical — only time is lost.\n"
    );

    // ---- 2. Dead DPUs vs degrade + checkpoint ---------------------------
    println!("## 2. Dead DPUs (degrade on, checkpoint every round)\n");
    let mut rows = Vec::new();
    for kill in [0usize, 1, 4, 16] {
        let dead: Vec<usize> = (0..kill).map(|i| i * (dpus / kill.max(1))).collect();
        let out = run_resilient(
            spec,
            cfg,
            FaultPlan::seeded(21).with_dead_dpus(dead, 1),
            ResilienceConfig::none()
                .with_max_retries(1)
                .with_checkpoint_every(1)
                .with_degrade(true),
            &dataset,
        );
        let reward = evaluate_greedy(&mut env, &out.q_table, 500, 1).mean_reward;
        let total = out.breakdown.total_seconds();
        rows.push(vec![
            kill.to_string(),
            out.resilience.degraded_dpus.len().to_string(),
            out.resilience.rollbacks.to_string(),
            out.resilience.checkpoints.to_string(),
            fmt_secs(total),
            format!("{:.2}×", total / clean_total),
            format!("{reward:.3}"),
        ]);
    }
    print_table(
        &[
            "Killed",
            "Degraded",
            "Rollbacks",
            "Checkpoints",
            "Total",
            "vs clean",
            "Mean reward",
        ],
        &rows,
    );
    println!(
        "\nDead DPUs' chunks are remapped onto the survivors and the run \
         rolls back one sync round, so quality holds (reference {clean_reward:.3}) \
         while the smaller machine pays more kernel time per round.\n"
    );

    // ---- 3. Q-table bit flips -------------------------------------------
    println!("## 3. MRAM bit flips in the Q-table region (retry cannot help)\n");
    let region = MramRegion {
        offset: Q_TABLE_OFFSET,
        len: q_bytes,
    };
    let mut rows = Vec::new();
    for rate in [0.0f64, 0.001, 0.01, 0.1] {
        let out = run_resilient(
            spec,
            cfg,
            FaultPlan::seeded(22).with_bitflips(rate, region),
            ResilienceConfig::none(),
            &dataset,
        );
        let reward = evaluate_greedy(&mut env, &out.q_table, 500, 1).mean_reward;
        rows.push(vec![
            format!("{rate:.3}"),
            format!("{reward:.3}"),
            format!("{:+.3}", reward - clean_reward),
        ]);
    }
    print_table(&["Flip rate/launch", "Mean reward", "Δ vs clean"], &rows);
    println!(
        "\nSilent corruption is the failure mode retry cannot absorb: a \
         single high-bit flip in an INT32 Q-value still dominates the \
         {dpus}-way average, so quality falls off a cliff once flips land \
         at all — the motivation for the host-side Q-table checkpoints."
    );
}
