//! Extension: SwiftRL beyond the paper's two environments — FrozenLake
//! 8×8 and CliffWalking, demonstrating that the system is
//! environment-agnostic (any `DiscreteEnv` trains unchanged).
//!
//! ```text
//! cargo run --release -p swiftrl-bench --bin extension_envs
//! ```

use swiftrl_bench::{fmt_secs, print_table, HarnessArgs};
use swiftrl_core::backend::TrainingBackend;
use swiftrl_core::config::{RunConfig, WorkloadSpec};
use swiftrl_core::runner::PimRunner;
use swiftrl_env::cliff_walking::CliffWalking;
use swiftrl_env::collect::collect_random;
use swiftrl_env::frozen_lake::FrozenLake;
use swiftrl_env::taxi::Taxi;
use swiftrl_env::DiscreteEnv;
use swiftrl_rl::eval::evaluate_greedy;
use swiftrl_rl::online::{collect_partially_trained, OnlineConfig};

fn run_env<E: DiscreteEnv>(
    env: &mut E,
    transitions: usize,
    episodes: u32,
    dpus: usize,
    reference: &str,
) -> Vec<String> {
    let dataset = collect_random(env, transitions, 13);
    run_dataset(env, dataset, episodes, dpus, 0.0, reference)
}

fn run_dataset<E: DiscreteEnv>(
    env: &mut E,
    dataset: swiftrl_env::ExperienceDataset,
    episodes: u32,
    dpus: usize,
    initial_q: f32,
    reference: &str,
) -> Vec<String> {
    let backend: Box<dyn TrainingBackend> = Box::new(
        PimRunner::new(
            WorkloadSpec::q_learning_seq_int32(),
            RunConfig::paper_defaults()
                .with_dpus(dpus)
                .with_episodes(episodes)
                .with_tau(50)
                .with_initial_q(initial_q),
        )
        .expect("alloc"),
    );
    let report = backend.train(&dataset).expect("run");
    let stats = evaluate_greedy(env, &report.q_table, 500, 5);
    vec![
        env.name().to_string(),
        format!("{}x{}", env.num_states(), env.num_actions()),
        dataset.len().to_string(),
        fmt_secs(report.breakdown.total_seconds()),
        format!("{:.2}", stats.mean_reward),
        reference.to_string(),
    ]
}

fn main() {
    let args = HarnessArgs::parse(0.05);
    let n = args.scaled(1_000_000, 20_000);
    let episodes = args.scaled_episodes(2_000, 50).max(100);

    println!("# Extension: more environments (Q-learner-SEQ-INT32)\n");
    // Negative-reward environments (CliffWalking, Taxi) are sensitive to
    // per-chunk coverage: unvisited (s,a) pairs keep the optimistic zero
    // initialization through the averaging step, so they get fewer DPUs
    // (larger chunks) relative to their state-space size.
    let rows = vec![
        run_env(
            &mut FrozenLake::slippery_4x4(),
            n,
            episodes,
            64,
            "optimal ≈ 0.74",
        ),
        run_env(
            &mut FrozenLake::slippery_8x8(),
            n * 2,
            episodes,
            64,
            "optimal well above random ≈ 0",
        ),
        {
            // A random behaviour policy essentially never crosses the
            // cliff to the goal, so the dataset must come from the
            // paper's §4.1 pipeline: train a behaviour policy online to
            // a threshold, then log experiences under it.
            let mut cliff = CliffWalking::new();
            let online_cfg = OnlineConfig {
                epsilon: 0.3,
                max_episodes: 6_000,
                eval_every: 500,
                eval_episodes: 100,
                ..OnlineConfig::default()
            };
            let (dataset, _) =
                collect_partially_trained(&mut cliff, &online_cfg, -60.0, n, 13);
            // Pessimistic initialization: CliffWalking's rewards are all
            // negative, so zero-init is optimistic and pulls the greedy
            // policy toward unvisited pairs.
            run_dataset(
                &mut cliff,
                dataset,
                episodes,
                16,
                -25.0,
                "optimal = -13 (safe path ≈ -17)",
            )
        },
        run_env(&mut Taxi::new(), n * 8, episodes, 16, "optimal ≈ +8"),
    ];
    print_table(
        &[
            "Environment",
            "Space (SxA)",
            "Transitions",
            "Modelled time",
            "Mean reward",
            "Reference",
        ],
        &rows,
    );
    println!(
        "\nThe same kernels, runner and synchronization protocol train any \
         DiscreteEnv; distributed offline RL needs per-chunk coverage \
         commensurate with the state-action space."
    );
}
