//! Extension: weak scaling — per-DPU work held constant while cores
//! grow. Complements the paper's strong-scaling Figures 5–6: a
//! memory-centric system should sustain near-constant kernel time as the
//! problem grows with the machine.
//!
//! ```text
//! cargo run --release -p swiftrl-bench --bin extension_weak_scaling
//! ```

use swiftrl_bench::{fmt_secs, print_table, HarnessArgs};
use swiftrl_core::backend::TrainingBackend;
use swiftrl_core::config::{RunConfig, WorkloadSpec};
use swiftrl_core::runner::PimRunner;
use swiftrl_env::collect::collect_random;
use swiftrl_env::frozen_lake::FrozenLake;

const PER_DPU_TRANSITIONS: usize = 400;
const EPISODES: u32 = 100;

fn main() {
    let args = HarnessArgs::parse(1.0);
    let dpu_counts = args
        .dpus
        .clone()
        .unwrap_or_else(|| vec![125, 250, 500, 1_000, 2_000]);

    println!(
        "# Extension: weak scaling (Q-learner-SEQ-INT32, {PER_DPU_TRANSITIONS} \
         transitions per DPU, {EPISODES} episodes, τ=50)\n"
    );

    let mut env = FrozenLake::slippery_4x4();
    let mut rows = Vec::new();
    let mut baseline = None;
    for &dpus in &dpu_counts {
        let dataset = collect_random(
            &mut env,
            PER_DPU_TRANSITIONS * dpus,
            args.seed.unwrap_or(17) as u64,
        );
        let backend: Box<dyn TrainingBackend> = Box::new(
            PimRunner::new(
                WorkloadSpec::q_learning_seq_int32(),
                RunConfig::paper_defaults()
                    .with_dpus(dpus)
                    .with_episodes(EPISODES)
                    .with_tau(50),
            )
            .expect("alloc"),
        );
        let report = backend.train(&dataset).expect("run");
        let b = &report.breakdown;
        let base = *baseline.get_or_insert(b.pim_kernel_s);
        rows.push(vec![
            dpus.to_string(),
            dataset.len().to_string(),
            fmt_secs(b.pim_kernel_s),
            format!("{:.1}%", (b.pim_kernel_s / base - 1.0) * 100.0),
            fmt_secs(b.cpu_pim_s),
            fmt_secs(b.inter_pim_s),
            fmt_secs(b.total_seconds()),
        ]);
    }
    print_table(
        &[
            "PIM cores",
            "Transitions",
            "PIM kernel",
            "Kernel drift",
            "CPU-PIM",
            "Inter-PIM",
            "Total",
        ],
        &rows,
    );
    println!(
        "\nKernel time stays flat (perfect weak scaling); only the host-side \
         setup and synchronization grow with the machine."
    );
}
