//! Table 1: evaluated UPMEM PIM system and baseline CPU/GPU
//! specifications.
//!
//! ```text
//! cargo run -p swiftrl-bench --bin table1_systems
//! ```

use swiftrl_baselines::specs::MachineSpec;
use swiftrl_bench::print_table;

fn main() {
    println!("# Table 1: Evaluated systems\n");
    let rows: Vec<Vec<String>> = MachineSpec::table1()
        .iter()
        .map(|m| {
            vec![
                m.name.clone(),
                m.process_node.clone(),
                m.total_cores.clone(),
                format!("{} MHz", m.frequency_mhz),
                format!("{:.0} GOPS", m.peak_gops),
                format!("{:.0} GB", m.memory_gb),
                format!("{:.1} GB/s", m.memory_bandwidth_gbps),
                format!("{:.0} W", m.tdp_w),
                format!("{:.2} GOPS/W", m.gops_per_watt()),
            ]
        })
        .collect();
    print_table(
        &[
            "System",
            "Node",
            "Total cores",
            "Frequency",
            "Peak perf",
            "Main memory",
            "Memory BW",
            "TDP",
            "Efficiency",
        ],
        &rows,
    );
    println!(
        "\nThe simulated PIM platform in this reproduction instantiates the \
         UPMEM row (see swiftrl_pim::config::PimConfig::default)."
    );
}
