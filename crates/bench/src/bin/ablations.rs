//! Ablations of SwiftRL's design choices (§5 key takeaways):
//!
//! 1. **Synchronization period τ** — communication/quality trade-off of
//!    the τ-periodic inter-PIM aggregation;
//! 2. **Emulation charging mode** — calibrated per-op costs vs the
//!    data-dependent tally of the soft-float library (simulator
//!    methodology check);
//! 3. **Stride value** — STR sampling's DMA behaviour across strides;
//! 4. **Fixed-point scale factor** — quality sensitivity of the INT32
//!    optimization to the scale constant (the paper picked 10,000 to
//!    balance overflow and precision).
//!
//! Every configuration runs through the [`TrainingBackend`] trait.
//!
//! ```text
//! cargo run --release -p swiftrl-bench --bin ablations
//! ```

use swiftrl_bench::{fmt_secs, print_table, HarnessArgs};
use swiftrl_core::backend::{BackendStats, TrainingBackend, TrainingReport};
use swiftrl_core::config::{DataType, RunConfig, WorkloadSpec};
use swiftrl_core::runner::PimRunner;
use swiftrl_env::collect::collect_random;
use swiftrl_env::frozen_lake::FrozenLake;
use swiftrl_env::ExperienceDataset;
use swiftrl_pim::config::{EmulationCharging, PimConfig};
use swiftrl_rl::eval::evaluate_greedy;
use swiftrl_rl::sampling::SamplingStrategy;

/// Trains through the backend interface, panicking with the backend's
/// name on failure (acceptable in an experiment binary).
fn train(backend: &dyn TrainingBackend, dataset: &ExperienceDataset) -> TrainingReport {
    backend
        .train(dataset)
        .unwrap_or_else(|e| panic!("{} failed: {e}", backend.name()))
}

/// Synchronization rounds reported by a PIM backend.
fn comm_rounds(report: &TrainingReport) -> u32 {
    match &report.stats {
        BackendStats::Pim { comm_rounds, .. } => *comm_rounds,
        other => panic!("expected Pim stats, got {other:?}"),
    }
}

fn main() {
    let args = HarnessArgs::parse(0.05);
    let transitions = args.scaled(1_000_000, 20_000);
    let episodes = args.scaled_episodes(2_000, 100);
    let dpus = 128;

    let mut env = FrozenLake::slippery_4x4();
    let dataset = collect_random(&mut env, transitions, 42);

    println!("# Ablations ({transitions} transitions, {episodes} episodes, {dpus} DPUs)\n");

    // ---- 1. τ sweep -----------------------------------------------------
    println!("## 1. Synchronization period τ (Q-learner-SEQ-INT32)\n");
    let mut rows = Vec::new();
    for tau in [10u32, 25, 50, 100] {
        if !episodes.is_multiple_of(tau) {
            continue;
        }
        let cfg = RunConfig::paper_defaults()
            .with_dpus(dpus)
            .with_episodes(episodes)
            .with_tau(tau);
        let backend = PimRunner::new(WorkloadSpec::q_learning_seq_int32(), cfg).expect("alloc");
        let report = train(&backend, &dataset);
        let quality = evaluate_greedy(&mut env, &report.q_table, 500, 1).mean_reward;
        rows.push(vec![
            tau.to_string(),
            comm_rounds(&report).to_string(),
            fmt_secs(report.breakdown.inter_pim_s),
            fmt_secs(report.breakdown.total_seconds()),
            format!("{quality:.3}"),
        ]);
    }
    print_table(
        &["τ", "Comm rounds", "Inter-PIM", "Total", "Mean reward"],
        &rows,
    );
    println!("\nSmaller τ buys more synchronization (higher inter-PIM cost).\n");

    // ---- 2. Emulation charging mode --------------------------------------
    println!("## 2. Emulation charging: calibrated constants vs executed-op tally\n");
    let mut rows = Vec::new();
    for spec in [
        WorkloadSpec::q_learning_seq_fp32(),
        WorkloadSpec::q_learning_seq_int32(),
    ] {
        let mut cells = vec![spec.name()];
        let mut times = Vec::new();
        for charging in [EmulationCharging::Calibrated, EmulationCharging::Tally] {
            let mut platform = PimConfig::builder().dpus(dpus).build();
            platform.cost.emulation_charging = charging;
            let cfg = RunConfig::paper_defaults()
                .with_dpus(dpus)
                .with_episodes(100)
                .with_tau(100);
            let backend = PimRunner::with_platform(spec, cfg, platform).expect("alloc");
            let report = train(&backend, &dataset);
            times.push(report.breakdown.pim_kernel_s);
            cells.push(fmt_secs(report.breakdown.pim_kernel_s));
        }
        cells.push(format!("{:.2}×", times[1] / times[0]));
        rows.push(cells);
    }
    print_table(
        &["Workload", "Calibrated kernel", "Tally kernel", "Tally/Calibrated"],
        &rows,
    );
    println!(
        "\nBoth charging modes must agree that FP32 ≫ INT32; the tally mode \
         is data-dependent like the real runtime library.\n"
    );

    // ---- 3. Stride sweep --------------------------------------------------
    println!("## 3. STR stride value (Q-learner-STR-INT32, paper uses 4)\n");
    let mut rows = Vec::new();
    for stride in [2usize, 4, 8, 16] {
        let spec = WorkloadSpec {
            sampling: SamplingStrategy::Stride(stride),
            dtype: DataType::Int32,
            ..WorkloadSpec::q_learning_seq_int32()
        };
        let cfg = RunConfig::paper_defaults()
            .with_dpus(dpus)
            .with_episodes(100)
            .with_tau(100);
        let backend = PimRunner::new(spec, cfg).expect("alloc");
        let report = train(&backend, &dataset);
        rows.push(vec![
            stride.to_string(),
            fmt_secs(report.breakdown.pim_kernel_s),
            fmt_secs(report.breakdown.total_seconds()),
        ]);
    }
    print_table(&["Stride", "PIM kernel", "Total"], &rows);
    println!(
        "\nOn PIM the MRAM latency is locality-insensitive, so stride barely \
         matters — unlike on the prefetching CPU (§5, takeaway 4).\n"
    );

    // ---- 4. Fixed-point scale factor ---------------------------------------
    println!("## 4. INT32 scale factor (paper: 10,000)\n");
    let mut rows = Vec::new();
    for scale in [1i32, 10, 100, 10_000, 1_000_000] {
        let mut cfg = RunConfig::paper_defaults()
            .with_dpus(dpus)
            .with_episodes(episodes.min(200))
            .with_tau(50);
        cfg.scale_factor = scale;
        let backend = PimRunner::new(WorkloadSpec::q_learning_seq_int32(), cfg).expect("alloc");
        let report = train(&backend, &dataset);
        let quality = evaluate_greedy(&mut env, &report.q_table, 500, 1).mean_reward;
        rows.push(vec![scale.to_string(), format!("{quality:.3}")]);
    }
    print_table(&["Scale factor", "Mean reward"], &rows);
    println!(
        "\nScale 1 encodes α = 0.1 as 0 (no learning); tiny scales quantize \
         the update away, and very large scales risk overflow on bigger \
         reward ranges — 10,000 balances both, matching the paper's choice.\n"
    );

    // ---- 5. Tasklet-level parallelism (the paper's future work) -----------
    println!("## 5. Tasklets per DPU (extension; paper uses 1 tasklet/DPU)\n");
    let mut rows = Vec::new();
    let mut baseline = None;
    for tasklets in [1usize, 2, 4, 8, 11, 16, 24] {
        let cfg = RunConfig::paper_defaults()
            .with_dpus(dpus)
            .with_episodes(100)
            .with_tau(100)
            .with_tasklets(tasklets);
        let backend = PimRunner::new(WorkloadSpec::q_learning_seq_int32(), cfg).expect("alloc");
        let report = train(&backend, &dataset);
        let t = report.breakdown.pim_kernel_s;
        let base = *baseline.get_or_insert(t);
        rows.push(vec![
            tasklets.to_string(),
            fmt_secs(t),
            format!("{:.2}×", base / t),
        ]);
    }
    print_table(&["Tasklets", "PIM kernel", "Speedup vs 1"], &rows);
    println!(
        "\nThe 14-stage pipeline issues one instruction per tasklet every 11 \
         cycles, so intra-DPU speedup saturates at ~11× — the headroom the \
         paper leaves on the table by using core-level parallelism only."
    );
}
