//! Observability driver: runs paper workload variants with telemetry
//! enabled and emits both observability artifacts per variant — a
//! Chrome/Perfetto `trace_event` JSON laying DPU lanes and host phases
//! on the simulated timeline, and a versioned metrics-snapshot bundle
//! per environment.
//!
//! Open a `trace_*.json` in <https://ui.perfetto.dev> (or
//! `chrome://tracing`) to see per-DPU kernel spans, transfer phases and
//! sync-round markers; feed the `metrics_*.json` bundle to anything that
//! reads the `swiftrl-metrics-bundle-v1` schema.
//!
//! ```text
//! cargo run --release -p swiftrl-bench --bin trace_run
//! cargo run --release -p swiftrl-bench --bin trace_run -- --quick --env frozen_lake
//! cargo run --release -p swiftrl-bench --bin trace_run -- --variant INT32 --out-dir traces
//! ```

use std::path::PathBuf;
use swiftrl_bench::{fmt_secs, print_table, write_json_artifact, write_trace_artifact};
use swiftrl_core::config::{RunConfig, WorkloadSpec};
use swiftrl_core::runner::PimRunner;
use swiftrl_env::collect::collect_random;
use swiftrl_env::frozen_lake::FrozenLake;
use swiftrl_env::taxi::Taxi;
use swiftrl_env::ExperienceDataset;
use swiftrl_telemetry::{chrome_trace, snapshot_bundle, MetricsSnapshot, Telemetry};

struct Args {
    quick: bool,
    env: Option<String>,
    variant: Option<String>,
    dpus: Option<usize>,
    out_dir: PathBuf,
}

fn parse_args() -> Args {
    fn usage(msg: &str) -> ! {
        panic!("{msg}; try --help")
    }
    let mut out = Args {
        quick: false,
        env: None,
        variant: None,
        dpus: None,
        out_dir: PathBuf::from("traces"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => out.quick = true,
            "--env" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--env needs frozen_lake or taxi"));
                if v != "frozen_lake" && v != "taxi" {
                    usage("--env must be frozen_lake or taxi");
                }
                out.env = Some(v);
            }
            "--variant" => {
                out.variant = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--variant needs a substring")),
                );
            }
            "--dpus" => {
                let v = args.next().unwrap_or_else(|| usage("--dpus needs a value"));
                out.dpus = Some(v.parse().unwrap_or_else(|_| usage("--dpus must be an integer")));
            }
            "--out-dir" => {
                out.out_dir = PathBuf::from(
                    args.next().unwrap_or_else(|| usage("--out-dir needs a path")),
                );
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --quick | --env <frozen_lake|taxi> | --variant <substring> | \
                     --dpus <n> | --out-dir <path (default traces)>"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    out
}

/// Lowercase filesystem slug for a workload name
/// (`Q-learner-SEQ-FP32` → `q_learner_seq_fp32`).
fn slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

fn main() {
    let args = parse_args();
    // Reduced-scale by default (this is an inspection tool, not a
    // benchmark); --quick shrinks further for CI.
    let (transitions, episodes, tau, default_dpus) = if args.quick {
        (5_000, 20, 10, 8)
    } else {
        (50_000, 100, 50, 32)
    };
    let dpus = args.dpus.unwrap_or(default_dpus);

    let mut fl = FrozenLake::slippery_4x4();
    let mut taxi = Taxi::new();
    let envs: Vec<(&str, ExperienceDataset)> = [
        ("frozen_lake", collect_random(&mut fl, transitions, 42)),
        ("taxi", collect_random(&mut taxi, transitions, 42)),
    ]
    .into_iter()
    .filter(|(tag, _)| args.env.as_deref().is_none_or(|e| e == *tag))
    .collect();

    let variants: Vec<WorkloadSpec> = WorkloadSpec::paper_variants()
        .into_iter()
        .filter(|spec| {
            args.variant.as_deref().is_none_or(|f| {
                spec.name().to_ascii_lowercase().contains(&f.to_ascii_lowercase())
            })
        })
        .collect();
    assert!(!variants.is_empty(), "--variant matched no workload");

    println!("# trace_run: telemetry artifacts for the paper variants\n");
    println!(
        "{transitions} transitions, {episodes} episodes, tau {tau}, {dpus} DPUs{}\n",
        if args.quick { " (--quick)" } else { "" }
    );

    let mut rows = Vec::new();
    for (tag, dataset) in &envs {
        let mut snapshots = Vec::new();
        for &spec in &variants {
            let cfg = RunConfig::paper_defaults()
                .with_dpus(dpus)
                .with_episodes(episodes)
                .with_tau(tau);
            let telemetry = Telemetry::enabled();
            let runner = PimRunner::new(spec, cfg)
                .expect("DPU allocation failed")
                .with_telemetry(telemetry.clone());
            runner
                .run(dataset)
                .unwrap_or_else(|e| panic!("{tag} {spec} failed: {e}"));

            let events = telemetry.events();
            let label = format!("{tag} {}", spec.name());
            let trace_path = args
                .out_dir
                .join(format!("trace_{tag}_{}.json", slug(&spec.name())));
            write_trace_artifact(&trace_path, &chrome_trace(&label, &events))
                .unwrap_or_else(|e| panic!("writing {}: {e}", trace_path.display()));

            let snap = MetricsSnapshot::from_events(label, &events);
            rows.push(vec![
                (*tag).to_string(),
                spec.name(),
                events.len().to_string(),
                snap.launches.to_string(),
                snap.sync_rounds.to_string(),
                fmt_secs(snap.kernel_seconds),
                trace_path.display().to_string(),
            ]);
            snapshots.push(snap);
        }
        let metrics_path = args.out_dir.join(format!("metrics_{tag}.json"));
        write_json_artifact(&metrics_path, &snapshot_bundle("trace_run", &snapshots))
            .unwrap_or_else(|e| panic!("writing {}: {e}", metrics_path.display()));
        println!(
            "metrics bundle: {} ({} variants)\n",
            metrics_path.display(),
            snapshots.len()
        );
    }

    print_table(
        &["Env", "Workload", "Events", "Launches", "Syncs", "Sim kernel", "Trace"],
        &rows,
    );
    println!(
        "\nOpen a trace in https://ui.perfetto.dev — one process per run, \
         lane 0 is the host, lanes 1..N are DPUs on the simulated timeline."
    );
}
