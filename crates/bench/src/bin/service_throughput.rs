//! Service throughput: multi-tenant job multiplexing over one fleet.
//!
//! Submits a batch of heterogeneous training jobs — mixed workloads,
//! DPU counts, and fault plans — to the [`TrainingService`] job queue
//! and measures end-to-end drain time against running the same batch
//! serially on a dedicated platform. Reports per-batch throughput
//! (jobs/s), aggregate simulated kernel time, and the fault/resilience
//! totals across tenants. Results land in `BENCH_SERVICE.json` in the
//! current directory.
//!
//! ```text
//! cargo run --release -p swiftrl-bench --bin service_throughput
//! cargo run --release -p swiftrl-bench --bin service_throughput -- --quick
//! cargo run --release -p swiftrl-bench --bin service_throughput -- \
//!     --quick --trace service.trace.json --metrics service.metrics.json
//! ```
//!
//! `--trace` / `--metrics` run one extra *observed* drain after the
//! measured sweep (which stays un-instrumented so the ratcheted
//! `BENCH_SERVICE.json` numbers are untouched): a service built with
//! [`TrainingService::with_observability`] records the full
//! [`ServiceEvent`](swiftrl_telemetry::ServiceEvent) stream, from which
//! the fleet-wide Chrome trace, the `swiftrl-service-metrics-v1`
//! snapshot and a Prometheus text exposition (`.prom` sibling of the
//! metrics path) are derived.

use std::time::Instant;
use swiftrl_bench::{write_json_artifact, write_trace_artifact};
use swiftrl_core::config::{RunConfig, WorkloadSpec};
use swiftrl_core::resilience::ResilienceConfig;
use swiftrl_core::runner::PimRunner;
use swiftrl_core::service::{JobOutcome, JobRequest, TrainingService};
use swiftrl_env::collect::collect_random;
use swiftrl_env::frozen_lake::FrozenLake;
use swiftrl_env::taxi::Taxi;
use swiftrl_env::ExperienceDataset;
use swiftrl_pim::config::PimConfig;
use swiftrl_pim::faults::FaultPlan;
use swiftrl_telemetry::{service_trace, Event, Json, ServiceMetrics, ServiceTelemetry};

/// Builds the heterogeneous tenant batch: four workload variants,
/// 2–4-DPU slices, a quarter of the tenants with transient faults and
/// a quarter with a dead DPU recovered by checkpointed degradation.
fn build_requests(jobs: usize, episodes: u32) -> Vec<JobRequest> {
    let specs = [
        WorkloadSpec::q_learning_seq_fp32(),
        WorkloadSpec::q_learning_seq_int32(),
        WorkloadSpec::sarsa_seq_fp32(),
        WorkloadSpec::sarsa_seq_int32(),
    ];
    (0..jobs)
        .map(|i| {
            let spec = specs[i % 4];
            let dpus = 2 + i % 3;
            let transitions = 600 + 60 * (i % 5);
            let dataset: ExperienceDataset = if i % 2 == 0 {
                let mut env = Taxi::new();
                collect_random(&mut env, transitions, 1_000 + i as u64)
            } else {
                let mut env = FrozenLake::slippery_4x4();
                collect_random(&mut env, transitions, 1_000 + i as u64)
            };
            let cfg = RunConfig::paper_defaults()
                .with_dpus(dpus)
                .with_episodes(episodes)
                .with_tau(2)
                .with_seed(i as u32);
            let (faults, resilience) = match i % 4 {
                1 => (
                    FaultPlan::seeded(i as u64).with_dpu_fail_rate(0.2),
                    ResilienceConfig::none().with_max_retries(8),
                ),
                3 => (
                    FaultPlan::seeded(i as u64).with_dead_dpus(vec![i % dpus], 1),
                    ResilienceConfig::none()
                        .with_max_retries(1)
                        .with_checkpoint_every(1)
                        .with_degrade(true),
                ),
                _ => (FaultPlan::none(), ResilienceConfig::none()),
            };
            JobRequest::new(format!("tenant-{i}"), spec, cfg, dataset)
                .with_faults(faults)
                .with_resilience(resilience)
        })
        .collect()
}

fn main() {
    let mut quick = false;
    let mut trace: Option<std::path::PathBuf> = None;
    let mut metrics: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--trace" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("--trace needs a path; try --help");
                    std::process::exit(2);
                });
                trace = Some(std::path::PathBuf::from(v));
            }
            "--metrics" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("--metrics needs a path; try --help");
                    std::process::exit(2);
                });
                metrics = Some(std::path::PathBuf::from(v));
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --quick (fewer jobs and episodes for CI) | \
                     --trace <path> (fleet-wide Chrome trace from an observed drain) | \
                     --metrics <path> (service metrics JSON + .prom exposition sibling)"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }

    let (jobs, episodes, worker_sweep): (usize, u32, Vec<usize>) = if quick {
        (24, 8, vec![1, 4])
    } else {
        (120, 16, vec![1, 2, 4, 8])
    };
    // 16 ranks of 4 DPUs: single-rank jobs multiplex heavily without
    // the host cost of simulating the full 2,524-DPU machine per job.
    let fleet = PimConfig::builder().dpus(64).dpus_per_rank(4).build();
    let requests = build_requests(jobs, episodes);

    println!("# Service throughput: multi-tenant multiplexing over one shared fleet\n");
    println!(
        "{jobs} jobs, {episodes} episodes each, fleet of {} DPUs in {} ranks{}\n",
        fleet.dpus,
        fleet.ranks_for(fleet.dpus),
        if quick { " (--quick)" } else { "" }
    );

    // Baseline: the same batch run serially on dedicated platforms.
    let serial_started = Instant::now();
    let mut serial_sim_kernel_s = 0.0_f64;
    for request in &requests {
        let mut platform = fleet.clone();
        platform.dpus = request.cfg.dpus;
        platform.faults = request.faults.clone();
        let out = PimRunner::with_platform(request.spec, request.cfg, platform)
            .expect("runner")
            .with_resilience(request.resilience)
            .run(&request.dataset)
            .expect("serial run");
        serial_sim_kernel_s += out.breakdown.pim_kernel_s;
    }
    let serial_wall_s = serial_started.elapsed().as_secs_f64();

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &workers in &worker_sweep {
        let service = TrainingService::new(fleet.clone(), workers);
        let started = Instant::now();
        let handles: Vec<_> = requests
            .iter()
            .map(|r| service.submit(r.clone()).expect("admission"))
            .collect();
        let mut completed = 0usize;
        let mut sim_kernel_s = 0.0_f64;
        let mut faulted_launches = 0u64;
        let mut retries = 0u64;
        let mut rollbacks = 0u64;
        for handle in &handles {
            match handle.wait() {
                JobOutcome::Completed(out) => {
                    completed += 1;
                    sim_kernel_s += out.breakdown.pim_kernel_s;
                }
                other => panic!("job {} did not complete: {other:?}", handle.id()),
            }
            let metrics = handle.metrics();
            faulted_launches += metrics.faulted_launches;
            retries += metrics.retries;
            rollbacks += metrics.rollbacks;
        }
        let wall_s = started.elapsed().as_secs_f64();
        let jobs_per_s = if wall_s > 0.0 {
            completed as f64 / wall_s
        } else {
            0.0
        };

        rows.push(vec![
            workers.to_string(),
            completed.to_string(),
            swiftrl_bench::fmt_secs(wall_s),
            format!("{jobs_per_s:.1}"),
            swiftrl_bench::fmt_secs(sim_kernel_s),
            faulted_launches.to_string(),
            retries.to_string(),
            rollbacks.to_string(),
        ]);
        points.push(Json::obj([
            ("workers", Json::UInt(workers as u64)),
            ("jobs", Json::UInt(completed as u64)),
            ("host_wall_s", Json::Num(wall_s)),
            // `null` instead of a non-finite value on a degenerate
            // zero-wall measurement.
            ("jobs_per_s", swiftrl_bench::ratio_json(completed as f64, wall_s)),
            (
                "speedup_vs_serial",
                swiftrl_bench::ratio_json(serial_wall_s, wall_s),
            ),
            ("sim_kernel_s", Json::Num(sim_kernel_s)),
            ("faulted_launches", Json::UInt(faulted_launches)),
            ("retries", Json::UInt(retries)),
            ("rollbacks", Json::UInt(rollbacks)),
        ]));
    }

    swiftrl_bench::print_table(
        &[
            "Workers",
            "Jobs",
            "Drain wall",
            "Jobs/s",
            "Sim kernel",
            "Faulted",
            "Retries",
            "Rollbacks",
        ],
        &rows,
    );
    println!(
        "\nSerial baseline (dedicated platform per job): {}\n",
        swiftrl_bench::fmt_secs(serial_wall_s)
    );

    let doc = Json::obj([
        ("benchmark", Json::str("service_throughput")),
        ("quick", Json::Bool(quick)),
        ("jobs", Json::UInt(jobs as u64)),
        ("episodes", Json::UInt(u64::from(episodes))),
        ("fleet_dpus", Json::UInt(fleet.dpus as u64)),
        ("fleet_ranks", Json::UInt(fleet.ranks_for(fleet.dpus) as u64)),
        ("serial_wall_s", Json::Num(serial_wall_s)),
        ("serial_sim_kernel_s", Json::Num(serial_sim_kernel_s)),
        ("points", Json::Arr(points)),
    ]);
    write_json_artifact(std::path::Path::new("BENCH_SERVICE.json"), &doc)
        .expect("write BENCH_SERVICE.json");
    println!("\nWrote BENCH_SERVICE.json");

    if trace.is_some() || metrics.is_some() {
        observed_drain(&fleet, &requests, *worker_sweep.last().unwrap_or(&4), trace, metrics);
    }
}

/// One extra drain with service observability on, separate from the
/// measured sweep above so the ratcheted numbers never pay for it.
/// Writes the fleet-wide Chrome trace (worker/rank/per-job lanes), the
/// `swiftrl-service-metrics-v1` snapshot, and its Prometheus text
/// exposition as a `.prom` sibling of the metrics path.
fn observed_drain(
    fleet: &PimConfig,
    requests: &[JobRequest],
    workers: usize,
    trace: Option<std::path::PathBuf>,
    metrics: Option<std::path::PathBuf>,
) {
    let service =
        TrainingService::with_observability(fleet.clone(), workers, ServiceTelemetry::enabled());
    let handles: Vec<_> = requests
        .iter()
        .map(|r| service.submit(r.clone()).expect("admission"))
        .collect();
    for handle in &handles {
        match handle.wait() {
            JobOutcome::Completed(_) => {}
            other => panic!("observed job {} did not complete: {other:?}", handle.id()),
        }
    }
    let records = service.service_telemetry().records();
    println!(
        "\nObserved drain: {} jobs on {workers} workers, {} service events",
        handles.len(),
        records.len()
    );

    if let Some(path) = &trace {
        let jobs: Vec<(u64, String, Vec<Event>)> = handles
            .iter()
            .map(|h| {
                (
                    h.id(),
                    format!("{}/job-{}", h.tenant(), h.id()),
                    h.telemetry().events(),
                )
            })
            .collect();
        write_trace_artifact(path, &service_trace(&records, &jobs))
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("service trace: {}", path.display());
    }
    if let Some(path) = &metrics {
        let registry = ServiceMetrics::from_records(&records);
        write_json_artifact(path, &registry.to_json())
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        let prom_path = path.with_extension("prom");
        std::fs::write(&prom_path, registry.to_prometheus())
            .unwrap_or_else(|e| panic!("writing {}: {e}", prom_path.display()));
        println!(
            "service metrics: {}; exposition: {}",
            path.display(),
            prom_path.display()
        );
    }
}
