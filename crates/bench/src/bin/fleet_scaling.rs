//! Fleet scaling: host-side cost of simulating the paper's full fleet.
//!
//! Sweeps the DPU count from the smallest figure point (125) through
//! the paper's 2,524-DPU fleet and one past-paper point (4,096),
//! recording for each point the host wall-clock of a fixed workload
//! under the fast and batched execution tiers (asserted bit- and
//! cycle-identical at every size), the simulated time breakdown, and
//! the *peak materialized bank bytes* — the number that lazy bank
//! segments keep small while an eager fleet would pin `dpus × 64 MiB`
//! up front. Results land in `BENCH_FLEET_SCALING.json` in the current
//! directory.
//!
//! ```text
//! cargo run --release -p swiftrl-bench --bin fleet_scaling
//! cargo run --release -p swiftrl-bench --bin fleet_scaling -- --quick
//! ```

use std::time::Instant;
use swiftrl_bench::scaling::FLEET_DPU_COUNTS;
use swiftrl_bench::write_json_artifact;
use swiftrl_core::config::{RunConfig, WorkloadSpec};
use swiftrl_core::runner::PimRunner;
use swiftrl_env::collect::collect_random;
use swiftrl_env::taxi::Taxi;
use swiftrl_pim::config::{ArithTier, PimConfig, MRAM_BANK_CAPACITY_BYTES};
use swiftrl_pim::ExecutionEngine;
use swiftrl_telemetry::Json;

fn main() {
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--help" | "-h" => {
                eprintln!("flags: --quick (smaller workload and sweep for CI)");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }

    // The quick sweep keeps the two points that matter for the lazy-bank
    // claim — the smallest figure point and the paper's full fleet — on
    // a workload small enough for CI. The full sweep adds the
    // intermediate figure counts and a past-paper 4,096-DPU point.
    let (transitions, episodes, tau, counts): (usize, u32, u32, Vec<usize>) = if quick {
        (4_000, 10, 5, vec![125, 2_524])
    } else {
        (20_000, 40, 20, FLEET_DPU_COUNTS.to_vec())
    };
    let spec = WorkloadSpec::q_learning_seq_int32();
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);

    let mut taxi = Taxi::new();
    let dataset = collect_random(&mut taxi, transitions, 42);

    println!("# Fleet scaling: lazy banks and work-stealing to the paper's 2,524 DPUs\n");
    println!(
        "{transitions} transitions, {episodes} episodes, tau {tau}, {spec}, \
         work-stealing with {workers} workers{}\n",
        if quick { " (--quick)" } else { "" }
    );

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &dpus in &counts {
        let cfg = RunConfig::paper_defaults()
            .with_dpus(dpus)
            .with_episodes(episodes)
            .with_tau(tau);
        let run_tier = |tier| {
            let platform = PimConfig::builder()
                .dpus(dpus)
                .arith_tier(tier)
                .engine(ExecutionEngine::WorkStealing { workers })
                .build();
            let runner = PimRunner::with_platform(spec, cfg, platform).expect("runner");
            let start = Instant::now();
            let out = runner.run(&dataset).expect("run");
            (out, start.elapsed().as_secs_f64())
        };
        let (out, host_wall_s) = run_tier(ArithTier::Fast);
        let (batched_out, host_wall_batched_s) = run_tier(ArithTier::Batched);
        // The tier contract at every fleet size: same bits, same cycles.
        assert_eq!(
            out.q_table.to_bytes(),
            batched_out.q_table.to_bytes(),
            "{dpus} DPUs: Q-tables diverged between fast and batched tiers"
        );
        assert_eq!(
            out.breakdown, batched_out.breakdown,
            "{dpus} DPUs: breakdowns diverged between fast and batched tiers"
        );

        let platform = PimConfig::builder().dpus(dpus).build();
        let ranks = platform.ranks_for(dpus);
        let eager_bank_bytes = (dpus as u64) * (MRAM_BANK_CAPACITY_BYTES as u64);
        let lazy_fraction = out.memory.bank_peak_bytes as f64 / eager_bank_bytes as f64;
        rows.push(vec![
            dpus.to_string(),
            ranks.to_string(),
            swiftrl_bench::fmt_secs(host_wall_s),
            swiftrl_bench::fmt_secs(host_wall_batched_s),
            swiftrl_bench::fmt_ratio(host_wall_s / host_wall_batched_s),
            swiftrl_bench::fmt_secs(out.breakdown.pim_kernel_s),
            swiftrl_bench::fmt_secs(out.breakdown.total_seconds()),
            format!("{:.1} MiB", out.memory.bank_peak_bytes as f64 / (1u64 << 20) as f64),
            format!("{:.1} GiB", eager_bank_bytes as f64 / (1u64 << 30) as f64),
            format!("{:.4}%", lazy_fraction * 100.0),
        ]);
        points.push(Json::obj([
            ("dpus", Json::UInt(dpus as u64)),
            ("ranks", Json::UInt(ranks as u64)),
            ("workload", Json::str(spec.to_string())),
            ("host_wall_s", Json::Num(host_wall_s)),
            ("host_wall_batched_s", Json::Num(host_wall_batched_s)),
            (
                "end_to_end_batched_over_fast",
                swiftrl_bench::ratio_json(host_wall_s, host_wall_batched_s),
            ),
            ("sim_kernel_s", Json::Num(out.breakdown.pim_kernel_s)),
            ("sim_total_s", Json::Num(out.breakdown.total_seconds())),
            ("bank_peak_bytes", Json::UInt(out.memory.bank_peak_bytes)),
            ("arena_peak_bytes", Json::UInt(out.memory.arena_peak_bytes)),
            ("eager_bank_bytes", Json::UInt(eager_bank_bytes)),
            // `null` rather than a non-finite number if the eager
            // denominator ever degenerates to zero.
            (
                "lazy_fraction",
                swiftrl_bench::ratio_json(out.memory.bank_peak_bytes as f64, eager_bank_bytes as f64),
            ),
        ]));
    }

    swiftrl_bench::print_table(
        &[
            "DPUs",
            "Ranks",
            "Fast wall",
            "Batched wall",
            "Batched/fast",
            "Sim kernel",
            "Sim total",
            "Peak bank",
            "Eager bank",
            "Peak/eager",
        ],
        &rows,
    );
    println!(
        "\nPeak bank bytes are what the lazily-materialized banks actually \
         held; eager is the dpus x 64 MiB an up-front fleet would pin.\n"
    );

    let doc = Json::obj([
        ("benchmark", Json::str("fleet_scaling")),
        ("quick", Json::Bool(quick)),
        ("transitions", Json::UInt(transitions as u64)),
        ("episodes", Json::UInt(u64::from(episodes))),
        ("tau", Json::UInt(u64::from(tau))),
        ("workload", Json::str(spec.to_string())),
        ("engine", Json::str("work_stealing")),
        ("points", Json::Arr(points)),
    ]);
    write_json_artifact(std::path::Path::new("BENCH_FLEET_SCALING.json"), &doc)
        .expect("write BENCH_FLEET_SCALING.json");
    println!("\nWrote BENCH_FLEET_SCALING.json");
}
