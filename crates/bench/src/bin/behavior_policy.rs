//! Extension: behaviour-policy quality vs offline-training outcome.
//!
//! The paper collects its datasets from a *partially trained* behaviour
//! policy ("we train a random behavior policy online and log the
//! experiences until the policy performance achieves a performance
//! threshold", §4.1). This experiment compares offline training from
//! (a) a uniform-random behaviour policy and (b) the paper's
//! partially-trained pipeline, at equal dataset sizes — showing how the
//! dataset's provenance moves the §4.2 quality numbers.
//!
//! ```text
//! cargo run --release -p swiftrl-bench --bin behavior_policy
//! ```

use swiftrl_bench::{print_table, HarnessArgs};
use swiftrl_core::backend::TrainingBackend;
use swiftrl_core::config::{RunConfig, WorkloadSpec};
use swiftrl_core::runner::PimRunner;
use swiftrl_env::collect::collect_random;
use swiftrl_env::frozen_lake::FrozenLake;
use swiftrl_env::ExperienceDataset;
use swiftrl_rl::eval::evaluate_greedy;
use swiftrl_rl::online::{collect_partially_trained, OnlineConfig};

fn train_and_eval(dataset: &ExperienceDataset, episodes: u32) -> f64 {
    let backend: Box<dyn TrainingBackend> = Box::new(
        PimRunner::new(
            WorkloadSpec::q_learning_seq_int32(),
            RunConfig::paper_defaults()
                .with_dpus(64)
                .with_episodes(episodes)
                .with_tau(50),
        )
        .expect("alloc"),
    );
    let report = backend.train(dataset).expect("run");
    let mut env = FrozenLake::slippery_4x4();
    evaluate_greedy(&mut env, &report.q_table, 1_000, 11).mean_reward
}

fn goal_fraction(d: &ExperienceDataset) -> f64 {
    d.iter().filter(|t| t.reward > 0.0).count() as f64 / d.len() as f64
}

fn main() {
    let args = HarnessArgs::parse(0.05);
    let transitions = args.scaled(1_000_000, 20_000);
    let episodes = args.scaled_episodes(2_000, 50);
    let seed = args.seed.unwrap_or(21);

    println!("# Extension: behaviour-policy provenance ({transitions} transitions, {episodes} episodes)\n");

    let mut env = FrozenLake::slippery_4x4();

    // (a) Uniform random behaviour policy.
    let random = collect_random(&mut env, transitions, seed as u64);

    // (b) The paper's pipeline: online training to a threshold, then
    //     logging under the frozen ε-greedy policy.
    let online_cfg = OnlineConfig {
        epsilon: 0.5,
        max_episodes: 10_000,
        eval_every: 500,
        eval_episodes: 200,
        ..OnlineConfig::default()
    };
    let (partial, online) =
        collect_partially_trained(&mut env, &online_cfg, 0.4, transitions, seed);
    println!(
        "behaviour policy trained online for {} episodes (eval {:.3}, threshold 0.4 {})\n",
        online.episodes,
        online.final_eval.mean_reward,
        if online.reached_threshold { "reached" } else { "NOT reached" }
    );

    let rows = vec![
        vec![
            "random".into(),
            format!("{:.4}", goal_fraction(&random)),
            format!("{:.3}", train_and_eval(&random, episodes)),
        ],
        vec![
            "partially trained (paper §4.1)".into(),
            format!("{:.4}", goal_fraction(&partial)),
            format!("{:.3}", train_and_eval(&partial, episodes)),
        ],
    ];
    print_table(
        &[
            "Behaviour policy",
            "Goal-reward fraction in dataset",
            "Offline-trained mean reward",
        ],
        &rows,
    );
    println!(
        "\nA better behaviour policy concentrates experience along useful \
         trajectories (higher goal fraction) but narrows state coverage; \
         offline Q-learning tolerates both on FrozenLake. On larger state \
         spaces the coverage difference explains why partially-trained \
         datasets (as in the paper) land below the optimum."
    );
}
