//! Figure 5: execution time of the 12 RL workload variants on 125–2,000
//! PIM cores for the FrozenLake environment, broken into PIM kernel,
//! CPU-PIM, PIM-CPU and inter-PIM-core components (τ = 50, stride = 4).
//!
//! ```text
//! cargo run --release -p swiftrl-bench --bin fig5_frozenlake_scaling
//! cargo run --release -p swiftrl-bench --bin fig5_frozenlake_scaling -- --paper-scale
//! ```

use swiftrl_bench::scaling::{run_scaling_figure, ScalingFigure};
use swiftrl_bench::HarnessArgs;
use swiftrl_env::collect::collect_random;
use swiftrl_env::frozen_lake::FrozenLake;

fn main() {
    let args = HarnessArgs::parse(0.05);
    let fig = ScalingFigure {
        figure: "Figure 5",
        env: "frozen lake",
        paper_transitions: 1_000_000,
        paper_episodes: 2_000,
        tau: 50,
    };
    let transitions = args.scaled(fig.paper_transitions, 10_000);
    let mut env = FrozenLake::slippery_4x4();
    let dataset = collect_random(&mut env, transitions, args.seed.unwrap_or(42) as u64);
    run_scaling_figure(&fig, &dataset, &args);
}
