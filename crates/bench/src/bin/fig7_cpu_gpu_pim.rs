//! Figure 7: execution time of the RL training phase on CPU, GPU and PIM
//! for FrozenLake and Taxi — PIM at 2,000 cores (best-performing count),
//! FP32 vs INT32, against CPU-V1, CPU-V2 and the GPU.
//!
//! Every comparator runs through the [`TrainingBackend`] trait: PIM
//! times come from the cycle-level simulator (extrapolated from a
//! reduced-scale run); CPU and GPU times come from the analytical
//! Table-1 model backends (see DESIGN.md on the substitution). The
//! binary also reports the paper's headline ratios next to the measured
//! ones.
//!
//! ```text
//! cargo run --release -p swiftrl-bench --bin fig7_cpu_gpu_pim
//! ```

use std::collections::HashMap;
use swiftrl_baselines::cpu_model::{CpuModel, CpuVersion};
use swiftrl_baselines::gpu_model::GpuModel;
use swiftrl_bench::{
    fmt_ratio, fmt_secs, metrics_sibling, print_table, write_json_artifact, write_trace_artifact,
    Extrapolation, HarnessArgs,
};
use swiftrl_core::backend::{BackendStats, CpuModelBackend, GpuModelBackend, TrainingBackend};
use swiftrl_core::config::{RunConfig, WorkloadSpec};
use swiftrl_core::runner::PimRunner;
use swiftrl_env::collect::collect_random;
use swiftrl_env::frozen_lake::FrozenLake;
use swiftrl_env::taxi::Taxi;
use swiftrl_env::ExperienceDataset;
use swiftrl_telemetry::{chrome_trace_multi, snapshot_bundle, Event, MetricsSnapshot, Telemetry};

const PAPER_EPISODES: u32 = 2_000;
const TAU: u32 = 50;
const PIM_CORES: usize = 2_000;

/// Backend names as produced by `TrainingBackend::name`, used as keys
/// into the collected time table by the headline/energy sections (which
/// only consult the PIM, CPU-V1, and GPU comparators).
const PIM_NAME: &str = "PIM (2000 DPUs)";
const V1_NAME: &str = "CPU-V1";
const GPU_NAME: &str = "GPU";

struct EnvCase {
    tag: &'static str,
    paper_transitions: usize,
    dataset: ExperienceDataset,
}

/// times[(env_tag, workload name, backend name)] = paper-scale seconds.
type TimeTable = HashMap<(&'static str, String, String), f64>;

fn main() {
    let args = HarnessArgs::parse(0.01);

    let mut fl = FrozenLake::slippery_4x4();
    let mut taxi = Taxi::new();
    let cases = [
        EnvCase {
            tag: "FL",
            paper_transitions: 1_000_000,
            dataset: collect_random(&mut fl, args.scaled(1_000_000, 10_000), 42),
        },
        EnvCase {
            tag: "Taxi",
            paper_transitions: 5_000_000,
            dataset: collect_random(&mut taxi, args.scaled(5_000_000, 10_000), 42),
        },
    ];

    let cpu = CpuModel::xeon_4110();
    let gpu = GpuModel::rtx_3090();
    let episodes = args.scaled_episodes(PAPER_EPISODES, TAU);

    println!("# Figure 7: CPU vs GPU vs PIM (2,000 PIM cores)\n");

    let mut times: TimeTable = HashMap::new();
    // (label, events) per PIM run when --trace is set; the modelled
    // CPU/GPU backends have no simulated event stream to record.
    let mut traced: Vec<(String, Vec<Event>)> = Vec::new();

    for case in &cases {
        let extra = Extrapolation::new(
            case.paper_transitions,
            case.dataset.len(),
            PAPER_EPISODES,
            episodes,
            TAU,
        );
        // The CPU/GPU model backends are given the paper-scale schedule
        // directly (the V2 merge term is not linear in updates, so
        // extrapolating a reduced-scale model run would not reproduce
        // the paper-scale figure).
        let total_updates = case.paper_transitions as u64 * PAPER_EPISODES as u64;

        println!("## {} environment\n", case.tag);
        let mut rows = Vec::new();
        for spec in WorkloadSpec::paper_variants() {
            let cfg = RunConfig::paper_defaults()
                .with_dpus(PIM_CORES)
                .with_episodes(episodes)
                .with_tau(TAU)
                .with_seed(args.seed.unwrap_or(0xC0FFEE));
            let telemetry = if args.observability_on() {
                Telemetry::enabled()
            } else {
                Telemetry::disabled()
            };
            // The four comparators of the figure, behind one interface.
            let backends: Vec<Box<dyn TrainingBackend>> = vec![
                Box::new(
                    PimRunner::new(spec, cfg)
                        .expect("alloc failed")
                        .with_telemetry(telemetry.clone()),
                ),
                Box::new(
                    CpuModelBackend::new(CpuVersion::V1, cpu.clone(), spec, cfg)
                        .with_total_updates(total_updates),
                ),
                Box::new(
                    CpuModelBackend::new(CpuVersion::V2, cpu.clone(), spec, cfg)
                        .with_total_updates(total_updates),
                ),
                Box::new(GpuModelBackend::new(
                    gpu.clone(),
                    PAPER_EPISODES as u64,
                    case.paper_transitions as u64,
                )),
            ];

            let mut row_secs = Vec::new();
            for backend in &backends {
                let report = backend
                    .train(&case.dataset)
                    .unwrap_or_else(|e| panic!("{} failed: {e}", backend.name()));
                // Simulator reports are reduced-scale and need the
                // extrapolation; modelled backends are paper-scale.
                let secs = match &report.stats {
                    BackendStats::Pim { .. } => extra.apply(&report.breakdown).total_seconds(),
                    _ => report.total_seconds(),
                };
                times.insert((case.tag, spec.name(), backend.name()), secs);
                row_secs.push(secs);
            }
            if args.observability_on() {
                traced.push((format!("{} {}", case.tag, spec.name()), telemetry.events()));
            }
            let [pim_s, v1, v2, gpu_s] = row_secs[..] else {
                unreachable!("four backends per workload");
            };
            rows.push(vec![
                spec.name(),
                fmt_secs(pim_s),
                fmt_secs(v1),
                fmt_secs(v2),
                fmt_secs(gpu_s),
                fmt_ratio(v1 / pim_s),
                fmt_ratio(gpu_s / pim_s),
            ]);
        }
        print_table(
            &[
                "Workload",
                "PIM (2000)",
                "CPU-V1",
                "CPU-V2",
                "GPU",
                "CPU-V1/PIM",
                "GPU/PIM",
            ],
            &rows,
        );
        println!();
    }

    headline_checks(&times);
    energy_extension(&times);

    if let Some(path) = &args.trace {
        let runs: Vec<(String, &[Event])> = traced
            .iter()
            .map(|(label, events)| (label.clone(), events.as_slice()))
            .collect();
        write_trace_artifact(path, &chrome_trace_multi(&runs))
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        let snapshots: Vec<MetricsSnapshot> = traced
            .iter()
            .map(|(label, events)| MetricsSnapshot::from_events(label.clone(), events))
            .collect();
        let metrics_path = metrics_sibling(path);
        write_json_artifact(&metrics_path, &snapshot_bundle("Figure 7", &snapshots))
            .unwrap_or_else(|e| panic!("writing {}: {e}", metrics_path.display()));
        println!(
            "\ntrace: {} ({} PIM runs); metrics: {}",
            path.display(),
            runs.len(),
            metrics_path.display()
        );
    }
    if let Some(path) = &args.metrics {
        let snapshots: Vec<MetricsSnapshot> = traced
            .iter()
            .map(|(label, events)| MetricsSnapshot::from_events(label.clone(), events))
            .collect();
        write_json_artifact(path, &snapshot_bundle("Figure 7", &snapshots))
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("\nmetrics: {} ({} PIM runs)", path.display(), snapshots.len());
    }
}

/// Looks one (env, workload, backend) time up from the collected table.
fn t(times: &TimeTable, env: &'static str, workload: &str, backend: &str) -> f64 {
    times[&(env, workload.to_string(), backend.to_string())]
}

/// Extension: first-order energy comparison at Table-1 TDPs for the
/// FrozenLake Q-learner (the paper motivates PIM with energy but reports
/// no numbers). All times are read back from the backend runs above.
fn energy_extension(times: &TimeTable) {
    use swiftrl_baselines::energy;

    let pim_int32 = t(times, "FL", "Q-learner-SEQ-INT32", PIM_NAME);
    let cpu_v1 = t(times, "FL", "Q-learner-SEQ-FP32", V1_NAME);
    let gpu_s = t(times, "FL", "Q-learner-SEQ-FP32", GPU_NAME);

    println!("\n## Extension: energy estimate, FrozenLake Q-learner (TDP × utilization × time)\n");
    let rows: Vec<Vec<String>> = energy::table1_comparison(pim_int32, cpu_v1, gpu_s)
        .iter()
        .map(|e| {
            vec![
                e.system.clone(),
                fmt_secs(e.seconds),
                format!("{:.0} W", e.watts),
                format!("{:.0} J", e.joules),
            ]
        })
        .collect();
    print_table(&["System", "Time", "Avg power", "Energy"], &rows);
}

fn headline_checks(times: &TimeTable) {
    let q_seq_fp32 = t(times, "FL", "Q-learner-SEQ-FP32", PIM_NAME);
    let q_ran_fp32 = t(times, "FL", "Q-learner-RAN-FP32", PIM_NAME);
    let q_seq_int32 = t(times, "FL", "Q-learner-SEQ-INT32", PIM_NAME);
    let s_seq_fp32 = t(times, "FL", "SARSA-SEQ-FP32", PIM_NAME);
    let s_seq_int32 = t(times, "FL", "SARSA-SEQ-INT32", PIM_NAME);
    let cpu_v1_seq = t(times, "FL", "Q-learner-SEQ-FP32", V1_NAME);
    let cpu_v1_ran = t(times, "FL", "Q-learner-RAN-FP32", V1_NAME);
    let gpu_fl = t(times, "FL", "Q-learner-SEQ-FP32", GPU_NAME);

    let taxi_fp32_avg = ["SEQ", "RAN", "STR"]
        .iter()
        .map(|s| t(times, "Taxi", &format!("Q-learner-{s}-FP32"), PIM_NAME))
        .sum::<f64>()
        / 3.0;
    let taxi_cpu_v1_avg = ["SEQ", "RAN", "STR"]
        .iter()
        .map(|s| t(times, "Taxi", &format!("Q-learner-{s}-FP32"), V1_NAME))
        .sum::<f64>()
        / 3.0;

    println!("## Headline ratios (paper vs this reproduction)\n");
    let rows = vec![
        vec![
            "Q-SEQ-FP32-FL faster than CPU-V1".into(),
            "1.84×".into(),
            fmt_ratio(cpu_v1_seq / q_seq_fp32),
        ],
        vec![
            "SARSA-SEQ-FP32-FL faster than CPU-V1".into(),
            "2.08×".into(),
            fmt_ratio(cpu_v1_seq / s_seq_fp32),
        ],
        vec![
            "Q-RAN-FP32-FL faster than CPU-V1".into(),
            "1.96×".into(),
            fmt_ratio(cpu_v1_ran / q_ran_fp32),
        ],
        vec![
            "Q-SEQ-INT32 faster than Q-SEQ-FP32 (FL)".into(),
            "8.16×".into(),
            fmt_ratio(q_seq_fp32 / q_seq_int32),
        ],
        vec![
            "SARSA-SEQ-INT32 faster than SARSA-SEQ-FP32 (FL)".into(),
            "4.73×".into(),
            fmt_ratio(s_seq_fp32 / s_seq_int32),
        ],
        vec![
            "GPU faster than Q-SEQ-FP32-FL".into(),
            "1.68×".into(),
            fmt_ratio(q_seq_fp32 / gpu_fl),
        ],
        vec![
            "Q-SEQ-INT32-FL faster than GPU".into(),
            "4.84×".into(),
            fmt_ratio(gpu_fl / q_seq_int32),
        ],
        vec![
            "Taxi: PIM-FP32 speed relative to CPU-V1 (paper: 0.64×, slower)".into(),
            "0.64×".into(),
            fmt_ratio(taxi_cpu_v1_avg / taxi_fp32_avg),
        ],
    ];
    print_table(&["Claim", "Paper", "Measured"], &rows);
}
